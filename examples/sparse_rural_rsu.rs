//! Sparse (rural / night-time) traffic: the regime where every purely ad hoc
//! protocol struggles because the network is partitioned most of the time,
//! and where infrastructure (road-side units, buses) earns its deployment
//! cost — exactly the trade-off of the paper's Table I.
//!
//! Run with: `cargo run --release --example sparse_rural_rsu`

use vanet::prelude::*;

fn main() {
    println!("Sparse highway (3 veh/km/direction), 6 flows, 120 s\n");
    println!("{}", Report::table_header());

    let base = Scenario::highway_regime(TrafficRegime::Sparse)
        .with_seed(5)
        .with_flows(6)
        .with_duration(SimDuration::from_secs(120.0));

    // Pure ad hoc protocols in the sparse regime.
    for kind in [ProtocolKind::Aodv, ProtocolKind::Greedy, ProtocolKind::Yan] {
        let report = run_scenario(base.clone().with_name("sparse/no-rsu"), kind);
        println!("{}", report.table_row());
    }

    // Infrastructure-assisted routing with increasing RSU deployments.
    for rsus in [2usize, 4, 8] {
        let scenario = base
            .clone()
            .with_rsus(rsus)
            .with_name(format!("sparse/{rsus}-rsus"));
        let report = run_scenario(scenario, ProtocolKind::Drr);
        println!("{}", report.table_row());
    }

    // Bus ferries as the "poor man's infrastructure".
    let with_buses = base.clone().with_buses(3).with_name("sparse/3-buses");
    let report = run_scenario(with_buses, ProtocolKind::Bus);
    println!("{}", report.table_row());

    println!(
        "\nExpected shape (paper, Table I): ad hoc protocols lose most packets in \
         sparse traffic; adding RSUs (or buses) restores delivery at the cost of \
         deploying infrastructure."
    );
}
