//! The full Table-I style comparison: one representative protocol per
//! category, across the three traffic regimes (sparse / normal / congested),
//! printing delivery ratio, delay, overhead and route breaks.
//!
//! Run with: `cargo run --release --example protocol_comparison`

use vanet::core::{render_table, run_matrix, ProtocolKind, Scenario, TrafficRegime};
use vanet::sim::SimDuration;

fn main() {
    let scenarios: Vec<(String, Scenario)> = TrafficRegime::ALL
        .iter()
        .map(|&regime| {
            (
                regime.to_string(),
                Scenario::highway_regime(regime)
                    .with_flows(4)
                    .with_duration(SimDuration::from_secs(60.0)),
            )
        })
        .collect();

    println!("Representative protocol per category, 3 traffic regimes, 60 s each\n");
    let cells = run_matrix(&scenarios, &ProtocolKind::REPRESENTATIVES, 2);
    println!("{}", render_table(&cells));

    println!("Categories (Fig. 1 taxonomy):");
    for line in vanet::core::taxonomy_lines() {
        println!("  {line}");
    }
}
