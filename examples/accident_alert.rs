//! Safety application: an accident alert must reach the vehicles approaching
//! the crash site. Dissemination-style traffic is where connectivity-based
//! flooding shines (the paper calls it "a good solution for traffic
//! notification applications") and where zone-restricted flooding removes
//! most of the redundant rebroadcasts.
//!
//! Run with: `cargo run --release --example accident_alert`

use vanet::prelude::*;

fn main() {
    // An urban grid around the accident site; every flow models an alert
    // stream from the witnessing vehicle to one approaching vehicle.
    let scenario = Scenario::urban(70)
        .with_name("accident-alert")
        .with_seed(11)
        .with_flows(5)
        .with_duration(SimDuration::from_secs(60.0));

    println!("Accident-alert dissemination on a 70-vehicle urban grid\n");
    println!("{}", Report::table_header());
    let mut rows = Vec::new();
    for kind in [
        ProtocolKind::Flooding,
        ProtocolKind::Biswas,
        ProtocolKind::Zone,
        ProtocolKind::Greedy,
    ] {
        let report = run_scenario(scenario.clone(), kind);
        println!("{}", report.table_row());
        rows.push(report);
    }

    let flooding = &rows[0];
    let zone = &rows[2];
    println!(
        "\nZone-restricted flooding reaches {:.0}% of the alerts that pure flooding \
         reaches while transmitting {:.1}x fewer frames per delivered alert.",
        100.0 * zone.delivery_ratio / flooding.delivery_ratio.max(1e-9),
        flooding.transmissions_per_delivered / zone.transmissions_per_delivered.max(1e-9)
    );
}
