//! Quickstart: simulate one protocol on a highway and print its report.
//!
//! Run with: `cargo run --release --example quickstart`

use vanet::prelude::*;

fn main() {
    // A 4 km bidirectional highway with 60 vehicles, four unicast flows.
    let scenario = Scenario::highway(60)
        .with_name("quickstart")
        .with_seed(42)
        .with_flows(4)
        .with_duration(SimDuration::from_secs(60.0));

    println!("Running AODV and PBR on the same highway scenario...\n");
    println!("{}", Report::table_header());
    for kind in [ProtocolKind::Aodv, ProtocolKind::Pbr, ProtocolKind::Greedy] {
        let report = run_scenario(scenario.clone(), kind);
        println!("{}", report.table_row());
    }

    // The analytic side of the paper: predict how long a link lasts.
    let lifetime = link_lifetime_constant_speed(-50.0, 33.0, 28.0, 250.0);
    println!(
        "\nA vehicle 50 m behind another, closing at 5 m/s with 250 m range, keeps \
         its link for {:.0} s (Eq. 1-4 of the paper).",
        lifetime.duration_s
    );
}
