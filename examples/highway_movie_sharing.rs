//! The paper's motivating application (Sec. I): a car on the interstate wants
//! to fetch the blocks of a movie that are stored on other cars, possibly
//! miles away. At the network layer this is a set of long unicast flows from
//! several sources to the same receiving car.
//!
//! This example compares how the five routing families cope with those long
//! multi-hop flows on a moderately dense highway.
//!
//! Run with: `cargo run --release --example highway_movie_sharing`

use vanet::prelude::*;

fn main() {
    let scenario = Scenario::highway(80)
        .with_name("movie-sharing")
        .with_seed(7)
        .with_flows(6) // six cars each serve a block of the movie
        .with_duration(SimDuration::from_secs(90.0))
        .with_rsus(2);

    println!("Movie-block fetching on an 80-vehicle highway (6 flows, 90 s, 2 RSUs)\n");
    println!("{}", Report::table_header());
    let mut best: Option<Report> = None;
    for kind in ProtocolKind::REPRESENTATIVES {
        let report = run_scenario(scenario.clone(), kind);
        println!("{}", report.table_row());
        let better = match &best {
            Some(b) => report.delivery_ratio > b.delivery_ratio,
            None => true,
        };
        if better {
            best = Some(report);
        }
    }
    if let Some(best) = best {
        println!(
            "\nBest block-delivery ratio: {} with {:.0}% of blocks delivered \
             (mean delay {:.0} ms over {:.1} hops).",
            best.protocol,
            best.delivery_ratio * 100.0,
            best.avg_delay_s * 1_000.0,
            best.avg_hops
        );
    }
}
