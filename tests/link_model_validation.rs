//! Validates the analytic link models (Eq. 1–4 and the Sec. VII probability
//! models) against the simulated mobility substrate: the closed-form lifetime
//! must match the break time observed when actually moving the vehicles.

use vanet::links::lifetime::{link_lifetime_constant_speed, link_lifetime_planar};
use vanet::links::path_lifetime;
use vanet::links::probability::{link_availability, segment_connectivity_probability};
use vanet::mobility::geometry::distance;
use vanet::mobility::{HighwayBuilder, MobilityModel, Vec2};
use vanet::sim::{NodeId, SimDuration, SimRng};

/// Simulates two constant-speed vehicles and measures when their separation
/// first exceeds the range.
fn simulate_break_time(p0: Vec2, v0: Vec2, p1: Vec2, v1: Vec2, range: f64) -> Option<f64> {
    let dt = 0.01;
    let mut t = 0.0;
    while t < 600.0 {
        let a = p0 + v0 * t;
        let b = p1 + v1 * t;
        if distance(a, b) > range {
            return Some(t);
        }
        t += dt;
    }
    None
}

#[test]
fn planar_lifetime_matches_simulated_two_vehicle_motion() {
    let cases = [
        (
            Vec2::new(0.0, 0.0),
            Vec2::new(33.0, 0.0),
            Vec2::new(80.0, 4.0),
            Vec2::new(25.0, 0.0),
        ),
        (
            Vec2::new(0.0, 0.0),
            Vec2::new(30.0, 0.0),
            Vec2::new(120.0, 4.0),
            Vec2::new(-28.0, 0.0),
        ),
        (
            Vec2::new(50.0, 0.0),
            Vec2::new(20.0, 0.0),
            Vec2::new(0.0, 0.0),
            Vec2::new(31.0, 0.0),
        ),
    ];
    for (p0, v0, p1, v1) in cases {
        let predicted = link_lifetime_planar(p0, v0, p1, v1, 250.0);
        let simulated = simulate_break_time(p0, v0, p1, v1, 250.0);
        match simulated {
            Some(t) => {
                assert!(
                    (predicted.duration_s - t).abs() < 0.05,
                    "predicted {} vs simulated {t}",
                    predicted.duration_s
                );
            }
            None => assert!(!predicted.is_finite()),
        }
    }
}

#[test]
fn analytic_lifetime_matches_highway_mobility_model() {
    // Take two same-direction vehicles from the highway generator, freeze
    // their current kinematics and compare the analytic prediction with the
    // straight-line extrapolation of the mobility state.
    let mut rng = SimRng::new(13);
    let hw = HighwayBuilder::new()
        .length_m(100_000.0) // long ring so the wrap never interferes
        .vehicles(40)
        .lane_changes(false)
        .build(&mut rng);
    let states = hw.states();
    let mut checked = 0;
    for i in 0..states.len() {
        for j in (i + 1)..states.len() {
            let (a, b) = (states[i], states[j]);
            if distance(a.position, b.position) > 200.0 {
                continue;
            }
            let predicted =
                link_lifetime_planar(a.position, a.velocity, b.position, b.velocity, 250.0);
            let simulated =
                simulate_break_time(a.position, a.velocity, b.position, b.velocity, 250.0);
            match simulated {
                Some(t) => assert!(
                    (predicted.duration_s - t).abs() < 0.1,
                    "predicted {} vs simulated {t}",
                    predicted.duration_s
                ),
                // The simulation horizon is 600 s: beyond it we only require
                // the prediction to agree that the link outlives the horizon.
                None => assert!(predicted.duration_s > 590.0),
            }
            checked += 1;
        }
    }
    assert!(checked > 5, "expected several vehicle pairs within range");
}

#[test]
fn one_dimensional_and_planar_models_agree_on_same_lane_traffic() {
    for (d0, vi, vj) in [
        (-100.0, 32.0, 27.0),
        (60.0, 25.0, 30.0),
        (-20.0, 35.0, 10.0),
    ] {
        let linear = link_lifetime_constant_speed(d0, vi, vj, 250.0);
        let planar = link_lifetime_planar(
            Vec2::new(0.0, 0.0),
            Vec2::new(vi, 0.0),
            Vec2::new(-d0, 0.0),
            Vec2::new(vj, 0.0),
            250.0,
        );
        assert!((linear.duration_s - planar.duration_s).abs() < 1e-6);
    }
}

#[test]
fn path_lifetime_is_bottleneck_of_measured_links() {
    // Three links with known lifetimes: the path must break when the weakest
    // link breaks.
    let links = [
        (
            Vec2::new(0.0, 0.0),
            Vec2::new(30.0, 0.0),
            Vec2::new(100.0, 0.0),
            Vec2::new(28.0, 0.0),
        ),
        (
            Vec2::new(100.0, 0.0),
            Vec2::new(28.0, 0.0),
            Vec2::new(250.0, 0.0),
            Vec2::new(22.0, 0.0),
        ),
        (
            Vec2::new(250.0, 0.0),
            Vec2::new(22.0, 0.0),
            Vec2::new(350.0, 0.0),
            Vec2::new(30.0, 0.0),
        ),
    ];
    let lifetimes: Vec<f64> = links
        .iter()
        .map(|(pa, va, pb, vb)| link_lifetime_planar(*pa, *va, *pb, *vb, 250.0).duration_s)
        .collect();
    let path = path_lifetime(&lifetimes);
    let min = lifetimes.iter().copied().fold(f64::INFINITY, f64::min);
    assert_eq!(path, min);
    assert!(path.is_finite());
}

#[test]
fn availability_model_tracks_empirical_survival_frequency() {
    // Empirically: draw relative speeds from the assumed normal distribution,
    // check the fraction of links still alive at horizon T, compare with the
    // analytic availability.
    use vanet::mobility::distributions::{Normal, Sampler};
    let range = 250.0;
    let (mean, std, d0, horizon) = (4.0, 3.0, 50.0, 20.0);
    let analytic = link_availability(d0, mean, std, range, horizon);
    let dist = Normal::new(mean, std);
    let mut rng = SimRng::new(33);
    let n = 20_000;
    let mut alive = 0;
    for _ in 0..n {
        let v = dist.sample(&mut rng);
        let future = d0 + v * horizon;
        if (-range..=range).contains(&future) {
            alive += 1;
        }
    }
    let empirical = f64::from(alive) / f64::from(n);
    assert!(
        (analytic - empirical).abs() < 0.02,
        "analytic {analytic} vs empirical {empirical}"
    );
}

#[test]
fn segment_connectivity_tracks_empirical_gap_statistics() {
    // Place Poisson traffic on a segment and measure how often all gaps are
    // below the radio range; the analytic formula should be in the right
    // ballpark (it uses the expected vehicle count).
    use vanet::mobility::distributions::{Exponential, Sampler};
    let mut rng = SimRng::new(44);
    let density = 0.012; // vehicles per metre
    let length = 2_000.0;
    let range = 250.0;
    let analytic = segment_connectivity_probability(density, length, range);
    let gaps = Exponential::new(density);
    let trials = 4_000;
    let mut connected = 0;
    for _ in 0..trials {
        let mut pos = 0.0;
        let mut ok = true;
        loop {
            let gap = gaps.sample(&mut rng);
            if pos + gap > length {
                break;
            }
            if gap > range {
                ok = false;
                break;
            }
            pos += gap;
        }
        if ok {
            connected += 1;
        }
    }
    let empirical = f64::from(connected) / f64::from(trials);
    assert!(
        (analytic - empirical).abs() < 0.12,
        "analytic {analytic} vs empirical {empirical}"
    );
}

#[test]
fn highway_neighbour_counts_scale_with_density() {
    // Sanity check tying mobility and the radio range together: the expected
    // number of single-hop neighbours grows with vehicle density.
    let count_neighbors = |vehicles: usize| -> f64 {
        let mut rng = SimRng::new(5);
        let hw = HighwayBuilder::new()
            .length_m(4_000.0)
            .vehicles(vehicles)
            .build(&mut rng);
        let states = hw.states();
        let mut total = 0usize;
        for a in states {
            total += states
                .iter()
                .filter(|b| b.id != a.id && distance(a.position, b.position) <= 250.0)
                .count();
        }
        total as f64 / states.len() as f64
    };
    let sparse = count_neighbors(20);
    let dense = count_neighbors(160);
    assert!(dense > sparse * 4.0, "dense {dense} vs sparse {sparse}");
    // NodeId sanity for the generated vehicles.
    let mut rng = SimRng::new(5);
    let hw = HighwayBuilder::new().vehicles(10).build(&mut rng);
    assert!(hw.state(NodeId(0)).is_some());
    let _ = SimDuration::from_secs(1.0);
}
