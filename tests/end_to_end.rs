//! Cross-crate integration tests: every protocol family delivers data on a
//! well-connected scenario, runs are deterministic, infrastructure rescues
//! sparse traffic, and the broadcast storm is visible at high density.

use vanet::prelude::*;

fn dense_highway(seed: u64) -> Scenario {
    Scenario::highway(80)
        .with_seed(seed)
        .with_flows(3)
        .with_duration(SimDuration::from_secs(25.0))
}

/// The delivery thresholds below are deliberately loose: they encode
/// "delivers a meaningful share", not a precise expectation, because
/// per-seed delivery naturally varies across protocols. What is *not* left
/// loose any more is AODV's historical failure mode — unbounded RERR storms
/// on dense highways — which is now capped by the per-destination
/// origination rate limit and asserted exactly in
/// [`aodv_rerr_rate_limit_bounds_churn`].
fn assert_delivers(kind: ProtocolKind, scenario: Scenario, min_ratio: f64) -> Report {
    let report = run_scenario(scenario, kind);
    assert!(report.data_sent > 0, "{kind}: no traffic generated");
    assert!(
        report.delivery_ratio >= min_ratio,
        "{kind}: delivery ratio {:.3} below {min_ratio}",
        report.delivery_ratio
    );
    report
}

#[test]
fn connectivity_protocols_deliver_on_dense_highway() {
    for kind in [
        ProtocolKind::Flooding,
        ProtocolKind::Biswas,
        ProtocolKind::Aodv,
        ProtocolKind::Dsdv,
    ] {
        assert_delivers(kind, dense_highway(12), 0.10);
    }
}

#[test]
fn mobility_protocols_deliver_on_dense_highway() {
    for kind in [ProtocolKind::Pbr, ProtocolKind::Taleb, ProtocolKind::Abedi] {
        assert_delivers(kind, dense_highway(12), 0.10);
    }
}

#[test]
fn geographic_protocols_deliver_on_dense_highway() {
    for kind in [
        ProtocolKind::Greedy,
        ProtocolKind::Zone,
        ProtocolKind::Rover,
    ] {
        assert_delivers(kind, dense_highway(12), 0.10);
    }
}

#[test]
fn probability_protocols_deliver_on_dense_highway() {
    for kind in [
        ProtocolKind::Yan,
        ProtocolKind::YanTbpss,
        ProtocolKind::Car,
        ProtocolKind::Rear,
        ProtocolKind::GvGrid,
    ] {
        assert_delivers(kind, dense_highway(12), 0.10);
    }
}

#[test]
fn infrastructure_protocols_deliver_with_their_infrastructure() {
    // DRR needs RSUs, the bus ferry needs buses.
    let with_rsus = dense_highway(7).with_rsus(4);
    assert_delivers(ProtocolKind::Drr, with_rsus, 0.10);
    let with_buses = dense_highway(7).with_buses(4);
    assert_delivers(ProtocolKind::Bus, with_buses, 0.05);
}

#[test]
fn same_seed_is_bit_for_bit_reproducible() {
    let a = run_scenario(dense_highway(13), ProtocolKind::Pbr);
    let b = run_scenario(dense_highway(13), ProtocolKind::Pbr);
    assert_eq!(a, b);
}

#[test]
fn rsus_rescue_sparse_traffic() {
    let sparse = Scenario::highway_regime(TrafficRegime::Sparse)
        .with_seed(5)
        .with_flows(5)
        .with_duration(SimDuration::from_secs(60.0));
    let ad_hoc = run_scenario(sparse.clone(), ProtocolKind::Aodv);
    let assisted = run_scenario(sparse.with_rsus(8), ProtocolKind::Drr);
    assert!(
        assisted.delivery_ratio > ad_hoc.delivery_ratio,
        "RSU-assisted routing ({:.2}) must beat pure ad hoc ({:.2}) in sparse traffic",
        assisted.delivery_ratio,
        ad_hoc.delivery_ratio
    );
}

#[test]
fn broadcast_storm_grows_superlinearly_with_density() {
    // Transmissions per delivered packet for flooding at two densities.
    let small = run_scenario(
        Scenario::highway(30)
            .with_seed(3)
            .with_flows(2)
            .with_duration(SimDuration::from_secs(20.0)),
        ProtocolKind::Flooding,
    );
    let large = run_scenario(
        Scenario::highway(120)
            .with_seed(3)
            .with_flows(2)
            .with_duration(SimDuration::from_secs(20.0)),
        ProtocolKind::Flooding,
    );
    assert!(
        large.data_transmissions > small.data_transmissions * 2,
        "flooding transmissions must grow with density ({} vs {})",
        large.data_transmissions,
        small.data_transmissions
    );
}

#[test]
fn zone_flooding_cuts_redundant_transmissions() {
    let scenario = Scenario::urban(60)
        .with_seed(9)
        .with_flows(3)
        .with_duration(SimDuration::from_secs(25.0));
    let flooding = run_scenario(scenario.clone(), ProtocolKind::Flooding);
    let zone = run_scenario(scenario, ProtocolKind::Zone);
    assert!(flooding.data_sent == zone.data_sent);
    assert!(
        zone.data_transmissions < flooding.data_transmissions,
        "zone-restricted flooding must transmit less ({} vs {})",
        zone.data_transmissions,
        flooding.data_transmissions
    );
}

#[test]
fn reports_render_as_table_and_csv() {
    let report = run_scenario(
        Scenario::highway(25)
            .with_seed(2)
            .with_flows(2)
            .with_duration(SimDuration::from_secs(15.0)),
        ProtocolKind::Greedy,
    );
    assert!(report.table_row().contains("Greedy"));
    assert_eq!(
        Report::csv_header().split(',').count(),
        report.csv_row().split(',').count()
    );
}

#[test]
fn dtn_family_survives_disruption_where_connected_routing_fails() {
    // A sparse 4 km ring (16 vehicles, 120 m radio) with real counterflow
    // and two scheduled node outages: the network is partitioned for most of
    // the run, so contemporaneous-path routing finds no route while the
    // store-carry-forward family ferries bundles across the gaps on the
    // opposite carriageway.
    let scenario = Scenario::disrupted_highway(16);
    for kind in [ProtocolKind::Flooding, ProtocolKind::Aodv] {
        let r = run_scenario(scenario.clone(), kind);
        assert!(
            r.delivery_ratio <= 0.02,
            "{kind}: connected-path routing should collapse here, got {:.3}",
            r.delivery_ratio
        );
    }
    for kind in [ProtocolKind::Epidemic, ProtocolKind::SprayWait] {
        let r = run_scenario(scenario.clone(), kind);
        assert!(
            r.delivery_ratio >= 0.10,
            "{kind}: store-carry-forward should deliver through partitions, got {:.3}",
            r.delivery_ratio
        );
        assert!(r.bundles_stored > 0, "{kind}: bundles must be buffered");
        assert!(r.bundles_forwarded > 0, "{kind}: bundles must be ferried");
        assert!(r.buffer_peak > 0, "{kind}: occupancy must be tracked");
    }
}

#[test]
fn aodv_rerr_rate_limit_bounds_churn() {
    use vanet_routing::{Aodv, AodvPolicy, OnDemandConfig};
    // Seed 3 historically triggered the worst RERR storm on this scenario.
    // Zeroing both the origination interval and the relay-dedup horizon
    // reproduces the unlimited pre-fix behaviour, where every receiver
    // re-broadcast every RERR and the storm was bounded only by packet TTL.
    let scenario = dense_highway(3);
    let limited = run_scenario(scenario.clone(), ProtocolKind::Aodv);
    let unlimited = Simulation::with_factory(scenario, &|| {
        Box::new(Aodv::with_config(
            AodvPolicy::default(),
            OnDemandConfig {
                rerr_interval: SimDuration::from_secs(0.0),
                rerr_seen_horizon_s: 0.0,
                ..OnDemandConfig::default()
            },
        ))
    })
    .run();
    assert!(
        limited.route_errors * 2 <= unlimited.route_errors,
        "rate limit should at least halve RERR volume ({} vs {})",
        limited.route_errors,
        unlimited.route_errors
    );
}
