//! Property-based tests (proptest) of the core invariants:
//! event ordering, link-lifetime closed forms vs numeric integration,
//! probability models staying in [0, 1], path-metric algebra and greedy
//! forwarding monotonicity.

use proptest::prelude::*;
use vanet::links::lifetime::{
    link_lifetime_constant_acceleration, link_lifetime_constant_speed, link_lifetime_numeric,
    link_lifetime_planar,
};
use vanet::links::probability::{
    link_availability, receipt_probability, segment_connectivity_probability,
};
use vanet::links::{path_lifetime, path_reliability};
use vanet::mobility::geometry::distance;
use vanet::mobility::Vec2;
use vanet::net::NeighborTable;
use vanet::sim::{EventQueue, NodeId, SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn event_queue_pops_in_nondecreasing_time_order(times in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let mut queue = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            queue.push(SimTime::from_secs(*t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = queue.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn constant_speed_lifetime_matches_numeric_integration(
        d0 in -240.0f64..240.0,
        vi in 0.0f64..40.0,
        vj in 0.0f64..40.0,
    ) {
        let closed = link_lifetime_constant_speed(d0, vi, vj, 250.0);
        let numeric = link_lifetime_numeric(d0, |_| vi, |_| vj, 250.0, 0.005, 2_000.0);
        if closed.is_finite() && closed.duration_s < 1_900.0 {
            prop_assert!((closed.duration_s - numeric.duration_s).abs() < 0.05,
                "closed {} vs numeric {}", closed.duration_s, numeric.duration_s);
        }
    }

    #[test]
    fn acceleration_lifetime_matches_numeric_integration(
        d0 in -200.0f64..200.0,
        vi in 0.0f64..40.0,
        vj in 0.0f64..40.0,
        ai in -2.0f64..2.0,
        aj in -2.0f64..2.0,
    ) {
        let closed = link_lifetime_constant_acceleration(d0, vi, vj, ai, aj, 250.0);
        let numeric = link_lifetime_numeric(
            d0,
            move |t| vi + ai * t,
            move |t| vj + aj * t,
            250.0,
            0.002,
            500.0,
        );
        if closed.is_finite() && closed.duration_s < 450.0 && numeric.is_finite() {
            prop_assert!((closed.duration_s - numeric.duration_s).abs() < 0.1,
                "closed {} vs numeric {}", closed.duration_s, numeric.duration_s);
        }
    }

    #[test]
    fn planar_lifetime_is_never_negative_and_breaks_at_range(
        px in -200.0f64..200.0, py in -5.0f64..5.0,
        vix in -40.0f64..40.0, vjx in -40.0f64..40.0,
    ) {
        let p_i = Vec2::new(0.0, 0.0);
        let p_j = Vec2::new(px, py);
        let lt = link_lifetime_planar(p_i, Vec2::new(vix, 0.0), p_j, Vec2::new(vjx, 0.0), 250.0);
        prop_assert!(lt.duration_s >= 0.0);
        if lt.is_finite() && lt.duration_s > 0.0 && distance(p_i, p_j) <= 250.0 {
            // At the predicted break instant the separation is exactly the range.
            let t = lt.duration_s;
            let a = p_i + Vec2::new(vix, 0.0) * t;
            let b = p_j + Vec2::new(vjx, 0.0) * t;
            prop_assert!((distance(a, b) - 250.0).abs() < 1e-6);
        }
    }

    #[test]
    fn probability_models_stay_in_unit_interval(
        separation in -300.0f64..300.0,
        mean in -60.0f64..60.0,
        std in 0.0f64..20.0,
        horizon in 0.0f64..120.0,
        density in 0.0f64..0.2,
        length in 0.0f64..5_000.0,
        dist in 1.0f64..1_000.0,
    ) {
        let a = link_availability(separation, mean, std, 250.0, horizon);
        prop_assert!((0.0..=1.0).contains(&a));
        let c = segment_connectivity_probability(density, length, 250.0);
        prop_assert!((0.0..=1.0).contains(&c));
        let r = receipt_probability(dist, 250.0, 2.7, 6.0);
        prop_assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn availability_is_monotone_nonincreasing_in_horizon(
        mean in -30.0f64..30.0,
        std in 0.1f64..10.0,
        d0 in -200.0f64..200.0,
        t1 in 0.0f64..60.0,
        dt in 0.0f64..60.0,
    ) {
        let early = link_availability(d0, mean, std, 250.0, t1);
        let late = link_availability(d0, mean, std, 250.0, t1 + dt);
        prop_assert!(late <= early + 1e-9);
    }

    #[test]
    fn receipt_probability_is_monotone_in_distance(
        d1 in 1.0f64..2_000.0,
        extra in 0.0f64..500.0,
        sigma in 0.1f64..12.0,
    ) {
        let near = receipt_probability(d1, 250.0, 2.7, sigma);
        let far = receipt_probability(d1 + extra, 250.0, 2.7, sigma);
        prop_assert!(far <= near + 1e-9);
    }

    #[test]
    fn path_metrics_algebra(
        lifetimes in prop::collection::vec(0.0f64..1_000.0, 0..12),
        rels in prop::collection::vec(0.0f64..1.0, 0..12),
    ) {
        let pl = path_lifetime(&lifetimes);
        for l in &lifetimes {
            prop_assert!(pl <= *l + 1e-12);
        }
        let pr = path_reliability(&rels);
        prop_assert!((0.0..=1.0).contains(&pr));
        for r in &rels {
            prop_assert!(pr <= *r + 1e-12);
        }
    }

    #[test]
    fn greedy_next_hop_always_makes_progress(
        neighbours in prop::collection::vec((-1_000.0f64..1_000.0, -1_000.0f64..1_000.0), 1..30),
        dest_x in -2_000.0f64..2_000.0,
        dest_y in -2_000.0f64..2_000.0,
    ) {
        let mut table = NeighborTable::new();
        for (i, (x, y)) in neighbours.iter().enumerate() {
            table.observe(
                NodeId(i as u32 + 1),
                Vec2::new(*x, *y),
                Vec2::ZERO,
                SimTime::ZERO,
                SimDuration::from_secs(10.0),
            );
        }
        let own = Vec2::new(0.0, 0.0);
        let dest = Vec2::new(dest_x, dest_y);
        let own_distance = distance(own, dest);
        if let Some(next) = table.greedy_next_hop(dest, own_distance) {
            prop_assert!(distance(next.position, dest) < own_distance);
        } else {
            // Local maximum: indeed no neighbour is closer.
            for n in table.iter() {
                prop_assert!(distance(n.position, dest) >= own_distance);
            }
        }
    }

    #[test]
    fn seqno_and_routing_table_freshness(seqs in prop::collection::vec(0u64..50, 1..40)) {
        use vanet::routing::{RouteEntry, RoutingTable};
        use vanet::sim::SeqNo;
        let mut table = RoutingTable::new();
        let mut best_seq = 0;
        for (i, s) in seqs.iter().enumerate() {
            table.upsert(RouteEntry {
                destination: NodeId(9),
                next_hop: NodeId(i as u32),
                hops: 3,
                seq: SeqNo(*s),
                metric: 0.0,
                expires_at: SimTime::from_secs(1_000.0),
            });
            best_seq = best_seq.max(*s);
        }
        let entry = table.route(NodeId(9), SimTime::ZERO).unwrap();
        prop_assert_eq!(entry.seq, SeqNo(best_seq));
    }
}
