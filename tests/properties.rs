//! Property-style tests of the core invariants: event ordering,
//! link-lifetime closed forms vs numeric integration, probability models
//! staying in [0, 1], path-metric algebra and greedy forwarding monotonicity.
//!
//! Inputs are sampled from seeded `SimRng` streams rather than a
//! property-testing framework (the offline build has no proptest), so every
//! case is deterministic and reproducible by seed.

use vanet::links::lifetime::{
    link_lifetime_constant_acceleration, link_lifetime_constant_speed, link_lifetime_numeric,
    link_lifetime_planar,
};
use vanet::links::probability::{
    link_availability, receipt_probability, segment_connectivity_probability,
};
use vanet::links::{path_lifetime, path_reliability};
use vanet::mobility::geometry::distance;
use vanet::mobility::Vec2;
use vanet::net::NeighborTable;
use vanet::sim::{EventQueue, NodeId, SimDuration, SimRng, SimTime};

const CASES: usize = 128;

#[test]
fn event_queue_pops_in_nondecreasing_time_order() {
    let mut rng = SimRng::new(0xE0E0);
    for _ in 0..CASES {
        let count = 1 + rng.uniform_usize(199);
        let mut queue = EventQueue::new();
        for i in 0..count {
            queue.push(SimTime::from_secs(rng.uniform_range(0.0, 1e6)), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = queue.pop() {
            assert!(t >= last);
            last = t;
        }
    }
}

#[test]
fn constant_speed_lifetime_matches_numeric_integration() {
    let mut rng = SimRng::new(0xC5C5);
    for _ in 0..CASES {
        let d0 = rng.uniform_range(-240.0, 240.0);
        let vi = rng.uniform_range(0.0, 40.0);
        let vj = rng.uniform_range(0.0, 40.0);
        let closed = link_lifetime_constant_speed(d0, vi, vj, 250.0);
        let numeric = link_lifetime_numeric(d0, |_| vi, |_| vj, 250.0, 0.005, 2_000.0);
        if closed.is_finite() && closed.duration_s < 1_900.0 {
            assert!(
                (closed.duration_s - numeric.duration_s).abs() < 0.05,
                "closed {} vs numeric {} (d0 {d0}, vi {vi}, vj {vj})",
                closed.duration_s,
                numeric.duration_s
            );
        }
    }
}

#[test]
fn acceleration_lifetime_matches_numeric_integration() {
    let mut rng = SimRng::new(0xACCE);
    for _ in 0..CASES {
        let d0 = rng.uniform_range(-200.0, 200.0);
        let vi = rng.uniform_range(0.0, 40.0);
        let vj = rng.uniform_range(0.0, 40.0);
        let ai = rng.uniform_range(-2.0, 2.0);
        let aj = rng.uniform_range(-2.0, 2.0);
        let closed = link_lifetime_constant_acceleration(d0, vi, vj, ai, aj, 250.0);
        let numeric = link_lifetime_numeric(
            d0,
            move |t| vi + ai * t,
            move |t| vj + aj * t,
            250.0,
            0.002,
            500.0,
        );
        if closed.is_finite() && closed.duration_s < 450.0 && numeric.is_finite() {
            assert!(
                (closed.duration_s - numeric.duration_s).abs() < 0.1,
                "closed {} vs numeric {} (d0 {d0}, vi {vi}, vj {vj}, ai {ai}, aj {aj})",
                closed.duration_s,
                numeric.duration_s
            );
        }
    }
}

#[test]
fn planar_lifetime_is_never_negative_and_breaks_at_range() {
    let mut rng = SimRng::new(0x9A9A);
    for _ in 0..CASES {
        let px = rng.uniform_range(-200.0, 200.0);
        let py = rng.uniform_range(-5.0, 5.0);
        let vix = rng.uniform_range(-40.0, 40.0);
        let vjx = rng.uniform_range(-40.0, 40.0);
        let p_i = Vec2::new(0.0, 0.0);
        let p_j = Vec2::new(px, py);
        let lt = link_lifetime_planar(p_i, Vec2::new(vix, 0.0), p_j, Vec2::new(vjx, 0.0), 250.0);
        assert!(lt.duration_s >= 0.0);
        if lt.is_finite() && lt.duration_s > 0.0 && distance(p_i, p_j) <= 250.0 {
            // At the predicted break instant the separation is exactly the range.
            let t = lt.duration_s;
            let a = p_i + Vec2::new(vix, 0.0) * t;
            let b = p_j + Vec2::new(vjx, 0.0) * t;
            assert!((distance(a, b) - 250.0).abs() < 1e-6);
        }
    }
}

#[test]
fn probability_models_stay_in_unit_interval() {
    let mut rng = SimRng::new(0x1111);
    for _ in 0..CASES {
        let separation = rng.uniform_range(-300.0, 300.0);
        let mean = rng.uniform_range(-60.0, 60.0);
        let std = rng.uniform_range(0.0, 20.0);
        let horizon = rng.uniform_range(0.0, 120.0);
        let density = rng.uniform_range(0.0, 0.2);
        let length = rng.uniform_range(0.0, 5_000.0);
        let dist = rng.uniform_range(1.0, 1_000.0);
        let a = link_availability(separation, mean, std, 250.0, horizon);
        assert!((0.0..=1.0).contains(&a));
        let c = segment_connectivity_probability(density, length, 250.0);
        assert!((0.0..=1.0).contains(&c));
        let r = receipt_probability(dist, 250.0, 2.7, 6.0);
        assert!((0.0..=1.0).contains(&r));
    }
}

#[test]
fn availability_is_monotone_nonincreasing_in_horizon() {
    let mut rng = SimRng::new(0xA0A0);
    for _ in 0..CASES {
        let mean = rng.uniform_range(-30.0, 30.0);
        let std = rng.uniform_range(0.1, 10.0);
        let d0 = rng.uniform_range(-200.0, 200.0);
        let t1 = rng.uniform_range(0.0, 60.0);
        let dt = rng.uniform_range(0.0, 60.0);
        let early = link_availability(d0, mean, std, 250.0, t1);
        let late = link_availability(d0, mean, std, 250.0, t1 + dt);
        assert!(late <= early + 1e-9);
    }
}

#[test]
fn receipt_probability_is_monotone_in_distance() {
    let mut rng = SimRng::new(0x4E4E);
    for _ in 0..CASES {
        let d1 = rng.uniform_range(1.0, 2_000.0);
        let extra = rng.uniform_range(0.0, 500.0);
        let sigma = rng.uniform_range(0.1, 12.0);
        let near = receipt_probability(d1, 250.0, 2.7, sigma);
        let far = receipt_probability(d1 + extra, 250.0, 2.7, sigma);
        assert!(far <= near + 1e-9);
    }
}

#[test]
fn path_metrics_algebra() {
    let mut rng = SimRng::new(0x9878);
    for _ in 0..CASES {
        let lifetimes: Vec<f64> = (0..rng.uniform_usize(12))
            .map(|_| rng.uniform_range(0.0, 1_000.0))
            .collect();
        let rels: Vec<f64> = (0..rng.uniform_usize(12))
            .map(|_| rng.uniform_range(0.0, 1.0))
            .collect();
        let pl = path_lifetime(&lifetimes);
        for l in &lifetimes {
            assert!(pl <= *l + 1e-12);
        }
        let pr = path_reliability(&rels);
        assert!((0.0..=1.0).contains(&pr));
        for r in &rels {
            assert!(pr <= *r + 1e-12);
        }
    }
}

#[test]
fn greedy_next_hop_always_makes_progress() {
    let mut rng = SimRng::new(0x64EE);
    for _ in 0..CASES {
        let count = 1 + rng.uniform_usize(29);
        let mut table = NeighborTable::new();
        let mut positions = Vec::new();
        for i in 0..count {
            let pos = Vec2::new(
                rng.uniform_range(-1_000.0, 1_000.0),
                rng.uniform_range(-1_000.0, 1_000.0),
            );
            positions.push(pos);
            table.observe(
                NodeId(i as u32 + 1),
                pos,
                Vec2::ZERO,
                SimTime::ZERO,
                SimDuration::from_secs(10.0),
            );
        }
        let own = Vec2::new(0.0, 0.0);
        let dest = Vec2::new(
            rng.uniform_range(-2_000.0, 2_000.0),
            rng.uniform_range(-2_000.0, 2_000.0),
        );
        let own_distance = distance(own, dest);
        if let Some(next) = table.greedy_next_hop(dest, own_distance) {
            assert!(distance(next.position, dest) < own_distance);
        } else {
            // Local maximum: indeed no neighbour is closer.
            for p in &positions {
                assert!(distance(*p, dest) >= own_distance);
            }
        }
    }
}

#[test]
fn seqno_and_routing_table_freshness() {
    use vanet::routing::{RouteEntry, RoutingTable};
    use vanet::sim::SeqNo;
    let mut rng = SimRng::new(0x5E05);
    for _ in 0..CASES {
        let count = 1 + rng.uniform_usize(39);
        let mut table = RoutingTable::new();
        let mut best_seq = 0;
        for i in 0..count {
            let s = rng.uniform_usize(50) as u64;
            table.upsert(RouteEntry {
                destination: NodeId(9),
                next_hop: NodeId(i as u32),
                hops: 3,
                seq: SeqNo(s),
                metric: 0.0,
                expires_at: SimTime::from_secs(1_000.0),
            });
            best_seq = best_seq.max(s);
        }
        let entry = table.route(NodeId(9), SimTime::ZERO).unwrap();
        assert_eq!(entry.seq, SeqNo(best_seq));
    }
}
