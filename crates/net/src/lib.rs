//! # vanet-net — wireless network substrate
//!
//! Packets, propagation models, a simplified contention-based MAC, the shared
//! wireless medium and neighbour discovery. This crate models the two radio
//! effects the paper's reliability argument rests on:
//!
//! 1. **Bounded communication range** (FCC-mandated short range): links break
//!    when the inter-vehicle distance exceeds the range `r` — this is Eq. (4)
//!    of the paper and the root cause of route breakage.
//! 2. **Broadcast congestion**: rebroadcast-based discovery floods the channel
//!    and collides (the *broadcast storm problem*), which is what makes pure
//!    connectivity-based routing degrade at high density (Table I).
//!
//! # Example
//!
//! ```
//! use vanet_net::{Medium, MediumConfig, Packet, PacketKind, UnitDisk};
//! use vanet_mobility::Vec2;
//! use vanet_sim::{NodeId, SimRng, SimTime};
//!
//! let mut medium = Medium::new(MediumConfig::default(), Box::new(UnitDisk::new(250.0)));
//! let packet = Packet::broadcast(NodeId(0), PacketKind::Hello, 64);
//! let nodes = vec![(NodeId(1), Vec2::new(100.0, 0.0)), (NodeId(2), Vec2::new(500.0, 0.0))];
//! let mut rng = SimRng::new(7);
//! let deliveries = medium.transmit(SimTime::ZERO, NodeId(0), Vec2::ZERO, &packet, &nodes, &mut rng);
//! assert_eq!(deliveries.len(), 1, "only the node within 250 m receives the frame");
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod channel;
pub mod grid;
pub mod mac;
pub mod medium;
pub mod neighbor;
pub mod packet;

pub use arena::{ArenaTable, NeighborArena, NeighborView};
pub use channel::{FreeSpacePathLoss, LogNormalShadowing, PropagationModel, UnitDisk};
pub use grid::SpatialGrid;
pub use mac::MacParams;
pub use medium::{Delivery, Medium, MediumConfig, MediumStats};
pub use neighbor::{BeaconConfig, NeighborInfo, NeighborTable};
pub use packet::{GeoAddress, Packet, PacketKind, RouteRecord};
