//! Neighbour discovery: HELLO beaconing and the neighbour table.
//!
//! Mobility-based and probability-based protocols need "neighbouring
//! awareness" — each vehicle periodically broadcasts its position and velocity
//! so its neighbours can predict link lifetimes. This is exactly the extra
//! communication overhead Table I charges to those categories; the beacon
//! packets are counted by the metrics layer like any other control packet.
//!
//! # Storage and the lazy expiry deadline
//!
//! Entries live in a [`NodeId`]-sorted `Vec` rather than a `BTreeMap`, with
//! the ids additionally mirrored in a parallel key vector. A table holds a
//! few dozen neighbours, so the key vector spans a handful of cache lines;
//! a lookup does one sequential, prefetch-friendly scan of those lines and
//! then exactly one access into the (much larger) entry payloads. That
//! matters at fleet scale: with 100k nodes the tables are far beyond cache,
//! and the previous pointer-chasing (or an entry-striding binary search)
//! paid a chain of dependent cache misses per received frame — `observe` is
//! the single hottest call in the megacity bench. Refreshes update in place
//! without allocating, and every read (`iter`, [`NeighborTable::
//! closest_to`], …) walks contiguous memory. Iteration order is ascending
//! `NodeId` — the same order the previous `BTreeMap` produced, which the
//! deterministic simulation driver depends on.
//!
//! Expiry is *lazy*: the table tracks [`NeighborTable::next_deadline`], a
//! conservative lower bound on the earliest `expires_at` of any live entry
//! (refreshing an entry raises its real deadline but leaves the bound
//! untouched, so the bound only ever errs towards checking early). The
//! driver's per-node maintenance event calls [`NeighborTable::purge_due`],
//! which is an O(1) no-op until the bound falls due and only then scans —
//! so steady-state maintenance cost tracks actual expiry activity, not
//! fleet size. The eager [`NeighborTable::purge_expired`] sweep is kept as
//! the reference implementation; a property test pins the two to identical
//! loss observations.

use serde::{Deserialize, Serialize};
use vanet_mobility::geometry::distance;
use vanet_mobility::{Position, Velocity};
use vanet_sim::{NodeId, SimDuration, SimTime};

/// Beaconing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BeaconConfig {
    /// Interval between HELLO beacons.
    pub interval: SimDuration,
    /// How long a neighbour entry stays valid without a fresh beacon.
    pub lifetime: SimDuration,
    /// Random jitter applied to each beacon (fraction of the interval) so
    /// that beacons from different vehicles do not synchronise.
    pub jitter_fraction: f64,
}

impl Default for BeaconConfig {
    fn default() -> Self {
        BeaconConfig {
            interval: SimDuration::from_secs(1.0),
            lifetime: SimDuration::from_secs(3.0),
            jitter_fraction: 0.1,
        }
    }
}

/// What a node knows about one of its neighbours.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NeighborInfo {
    /// The neighbour's id.
    pub id: NodeId,
    /// Last advertised position.
    pub position: Position,
    /// Last advertised velocity.
    pub velocity: Velocity,
    /// When the last beacon (or overheard packet) from it arrived.
    pub last_heard: SimTime,
    /// When the entry expires if no further beacon arrives.
    pub expires_at: SimTime,
}

impl NeighborInfo {
    /// Predicted position of the neighbour at `time`, extrapolating its last
    /// advertised velocity (dead reckoning).
    #[must_use]
    pub fn predicted_position(&self, time: SimTime) -> Position {
        let dt = time.saturating_since(self.last_heard).as_secs();
        self.position + self.velocity * dt
    }
}

/// Entry ids mirrored inline in the table struct itself (see
/// [`NeighborTable::keys_inline`]). 104 ids cover every table a realistic
/// density produces; larger tables fall back to the heap-allocated key
/// vector with identical behaviour.
const INLINE_KEYS: usize = 104;

/// The neighbour table maintained by every node.
///
/// `repr(C)` pins the field order so the inline key array sits directly
/// after the scalar header fields: the hot lookup then walks cache lines
/// adjacent to the one the table header itself occupies, instead of
/// dereferencing into a separately-allocated key vector.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[repr(C)]
pub struct NeighborTable {
    /// Entries sorted ascending by [`NodeId`].
    entries: Vec<NeighborInfo>,
    /// Entry ids, ascending — `keys[i] == entries[i].id`; the authoritative
    /// key list, kept separate from the 64-byte entries so key scans never
    /// stride through payloads.
    keys: Vec<NodeId>,
    /// Lower bound on the earliest `expires_at` among live entries, or
    /// [`SimTime::MAX`] when the table is empty. Maintained on insert and
    /// tightened whenever a purge scans the table.
    next_deadline: SimTime,
    /// Mirror of `keys[..len]` while `len <= INLINE_KEYS`, re-synced
    /// wholesale after every structural change (a few-hundred-byte copy at
    /// neighbour-churn rate, nothing on the refresh fast path). Lookups use
    /// it to stay within the node's own cache-line neighbourhood — at fleet
    /// scale the tables are cold, and the extra dependent miss through the
    /// key vector's heap allocation was the single largest remaining cost
    /// per received frame.
    keys_inline: [NodeId; INLINE_KEYS],
}

impl Default for NeighborTable {
    fn default() -> Self {
        NeighborTable {
            entries: Vec::new(),
            keys: Vec::new(),
            next_deadline: SimTime::MAX,
            keys_inline: [NodeId(0); INLINE_KEYS],
        }
    }
}

impl PartialEq for NeighborTable {
    /// Tables are equal when they hold the same entries; the expiry bound is
    /// a maintenance accelerator, not part of the observable state.
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl NeighborTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Where `id` lives (`Ok`) or belongs (`Err`). A sequential scan of the
    /// dense key array (inline while the table fits): for tables of tens of
    /// neighbours this touches fewer cache lines than a binary search and
    /// the hardware prefetcher hides the latency, which a dependent probe
    /// chain cannot.
    fn position_of(&self, id: NodeId) -> Result<usize, usize> {
        let n = self.entries.len();
        let keys: &[NodeId] = if n <= INLINE_KEYS {
            &self.keys_inline[..n]
        } else {
            &self.keys
        };
        match keys.iter().position(|&k| k >= id) {
            Some(i) if keys[i] == id => Ok(i),
            Some(i) => Err(i),
            None => Err(n),
        }
    }

    /// Cache-warming probe for event-lookahead: walks exactly the lines a
    /// coming `observe`/lookup for `id` will touch — the table header, the
    /// key scan, and the entry slot itself — and folds them into a value the
    /// caller can `black_box` so the loads stay alive. Behaviourally inert;
    /// the point is that a batch of these probes for *independent* tables
    /// overlaps its cache misses, where the real event handlers would pay
    /// them serially.
    #[must_use]
    pub fn warm_for(&self, id: NodeId) -> usize {
        match self.position_of(id) {
            Ok(i) => self.entries[i].last_heard.as_secs().to_bits() as usize,
            Err(i) => i,
        }
    }

    /// Re-mirrors the key vector into the inline array after a structural
    /// change (no-op for tables that have outgrown it).
    fn sync_inline(&mut self) {
        let n = self.keys.len();
        if n <= INLINE_KEYS {
            self.keys_inline[..n].copy_from_slice(&self.keys);
        }
    }

    /// Inserts or refreshes a neighbour from a received beacon. Returns
    /// `true` when the neighbour was newly inserted (a link came up) and
    /// `false` on a refresh of a live entry — the "gained" half of the
    /// neighbour-churn signal telemetry taps record.
    pub fn observe(
        &mut self,
        id: NodeId,
        position: Position,
        velocity: Velocity,
        now: SimTime,
        lifetime: SimDuration,
    ) -> bool {
        let expires_at = now + lifetime;
        let info = NeighborInfo {
            id,
            position,
            velocity,
            last_heard: now,
            expires_at,
        };
        let inserted = match self.position_of(id) {
            Ok(i) => {
                self.entries[i] = info;
                false
            }
            Err(i) => {
                self.keys.insert(i, id);
                self.entries.insert(i, info);
                self.sync_inline();
                true
            }
        };
        // Keep the bound a lower bound of every live deadline on refreshes
        // too: with monotone observation times a refresh can only raise its
        // entry's deadline, but enforcing the invariant here (one compare)
        // makes the table correct for out-of-order replays as well.
        if expires_at < self.next_deadline {
            self.next_deadline = expires_at;
        }
        inserted
    }

    /// The lazy-expiry deadline: no entry can expire strictly before this
    /// time, so maintenance may skip the table until the clock reaches it.
    /// [`SimTime::MAX`] when the table is empty.
    #[must_use]
    pub fn next_deadline(&self) -> SimTime {
        self.next_deadline
    }

    /// Lazy purge: removes entries with `expires_at < now` and appends their
    /// ids (ascending) to `out`. O(1) while [`NeighborTable::next_deadline`]
    /// has not fallen due; otherwise one contiguous scan that also tightens
    /// the deadline to the exact earliest `expires_at` of the survivors.
    ///
    /// Observes exactly the same (neighbour, time) losses as the eager
    /// [`NeighborTable::purge_expired`] sweep would at the same instants.
    pub fn purge_due(&mut self, now: SimTime, out: &mut Vec<NodeId>) {
        if self.next_deadline >= now {
            return;
        }
        self.scan_and_purge(now, out);
    }

    /// Eager purge (the reference sweep): removes expired entries and returns
    /// the ids that were dropped (each a detected link break), ascending.
    pub fn purge_expired(&mut self, now: SimTime) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.scan_and_purge(now, &mut out);
        out
    }

    fn scan_and_purge(&mut self, now: SimTime, out: &mut Vec<NodeId>) {
        let mut earliest = SimTime::MAX;
        let mut write = 0;
        for read in 0..self.entries.len() {
            let e = self.entries[read];
            if e.expires_at < now {
                out.push(e.id);
            } else {
                if e.expires_at < earliest {
                    earliest = e.expires_at;
                }
                self.keys[write] = self.keys[read];
                self.entries[write] = e;
                write += 1;
            }
        }
        self.keys.truncate(write);
        self.entries.truncate(write);
        self.sync_inline();
        self.next_deadline = earliest;
    }

    /// Removes a specific neighbour (e.g. after a failed unicast).
    pub fn remove(&mut self, id: NodeId) -> Option<NeighborInfo> {
        match self.position_of(id) {
            Ok(i) => {
                self.keys.remove(i);
                let removed = self.entries.remove(i);
                self.sync_inline();
                Some(removed)
            }
            Err(_) => None,
        }
    }

    /// Looks up a neighbour.
    #[must_use]
    pub fn get(&self, id: NodeId) -> Option<&NeighborInfo> {
        self.position_of(id).ok().map(|i| &self.entries[i])
    }

    /// Whether `id` is currently a (non-expired, as of last purge) neighbour.
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        self.position_of(id).is_ok()
    }

    /// All current neighbours, ascending by id.
    pub fn iter(&self) -> impl Iterator<Item = &NeighborInfo> {
        self.entries.iter()
    }

    /// The entries as one contiguous slice, ascending by id — the concrete
    /// form [`NeighborView`](crate::NeighborView) wraps.
    #[must_use]
    pub fn as_slice(&self) -> &[NeighborInfo] {
        &self.entries
    }

    /// Number of neighbours.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The neighbour geographically closest to `target`, if any — the greedy
    /// forwarding primitive.
    #[must_use]
    pub fn closest_to(&self, target: Position) -> Option<&NeighborInfo> {
        self.entries
            .iter()
            .min_by(|a, b| distance(a.position, target).total_cmp(&distance(b.position, target)))
    }

    /// The neighbour closest to `target` that is strictly closer to it than
    /// `own_distance` (greedy forwarding with the local-maximum check).
    #[must_use]
    pub fn greedy_next_hop(&self, target: Position, own_distance: f64) -> Option<&NeighborInfo> {
        self.closest_to(target)
            .filter(|n| distance(n.position, target) < own_distance)
    }

    /// Neighbours sorted by a caller-provided score, best (highest) first.
    #[must_use]
    pub fn ranked_by<F>(&self, mut score: F) -> Vec<&NeighborInfo>
    where
        F: FnMut(&NeighborInfo) -> f64,
    {
        let mut v: Vec<&NeighborInfo> = self.entries.iter().collect();
        v.sort_by(|a, b| score(b).total_cmp(&score(a)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanet_mobility::Vec2;
    use vanet_sim::SimRng;

    fn table_with_three() -> NeighborTable {
        let mut t = NeighborTable::new();
        let life = SimDuration::from_secs(3.0);
        t.observe(
            NodeId(1),
            Vec2::new(100.0, 0.0),
            Vec2::new(10.0, 0.0),
            SimTime::ZERO,
            life,
        );
        t.observe(
            NodeId(2),
            Vec2::new(200.0, 0.0),
            Vec2::new(-10.0, 0.0),
            SimTime::ZERO,
            life,
        );
        t.observe(
            NodeId(3),
            Vec2::new(50.0, 50.0),
            Vec2::ZERO,
            SimTime::ZERO,
            life,
        );
        t
    }

    #[test]
    fn observe_and_lookup() {
        let t = table_with_three();
        assert_eq!(t.len(), 3);
        assert!(t.contains(NodeId(1)));
        assert!(!t.contains(NodeId(9)));
        assert_eq!(t.get(NodeId(2)).unwrap().position, Vec2::new(200.0, 0.0));
    }

    #[test]
    fn re_observation_refreshes_entry() {
        let mut t = table_with_three();
        t.observe(
            NodeId(1),
            Vec2::new(150.0, 0.0),
            Vec2::new(12.0, 0.0),
            SimTime::from_secs(1.0),
            SimDuration::from_secs(3.0),
        );
        assert_eq!(t.len(), 3);
        let n = t.get(NodeId(1)).unwrap();
        assert_eq!(n.position, Vec2::new(150.0, 0.0));
        assert_eq!(n.last_heard, SimTime::from_secs(1.0));
    }

    #[test]
    fn iteration_is_ascending_by_id_regardless_of_observation_order() {
        let mut t = NeighborTable::new();
        let life = SimDuration::from_secs(3.0);
        for id in [7u32, 2, 9, 4, 1] {
            t.observe(NodeId(id), Vec2::ZERO, Vec2::ZERO, SimTime::ZERO, life);
        }
        let ids: Vec<u32> = t.iter().map(|n| n.id.0).collect();
        assert_eq!(ids, vec![1, 2, 4, 7, 9]);
    }

    #[test]
    fn purge_removes_stale_entries() {
        let mut t = table_with_three();
        t.observe(
            NodeId(1),
            Vec2::new(100.0, 0.0),
            Vec2::ZERO,
            SimTime::from_secs(5.0),
            SimDuration::from_secs(3.0),
        );
        let dropped = t.purge_expired(SimTime::from_secs(6.0));
        assert_eq!(t.len(), 1);
        assert!(t.contains(NodeId(1)));
        assert_eq!(dropped.len(), 2);
    }

    #[test]
    fn purge_due_is_a_noop_before_the_deadline() {
        let mut t = table_with_three();
        // All entries expire at 3.0; the bound must hold off any scan first.
        assert_eq!(t.next_deadline(), SimTime::from_secs(3.0));
        let mut lost = Vec::new();
        t.purge_due(SimTime::from_secs(2.0), &mut lost);
        assert!(lost.is_empty());
        assert_eq!(t.len(), 3);
        // Exactly at the deadline nothing has *strictly* expired yet.
        t.purge_due(SimTime::from_secs(3.0), &mut lost);
        assert!(lost.is_empty());
        // Past it, everything goes, ascending by id.
        t.purge_due(SimTime::from_secs(3.5), &mut lost);
        assert_eq!(lost, vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert!(t.is_empty());
        assert_eq!(t.next_deadline(), SimTime::MAX);
    }

    #[test]
    fn refreshes_leave_the_deadline_conservative_but_correct() {
        let mut t = NeighborTable::new();
        let life = SimDuration::from_secs(3.0);
        t.observe(NodeId(1), Vec2::ZERO, Vec2::ZERO, SimTime::ZERO, life);
        t.observe(
            NodeId(1),
            Vec2::ZERO,
            Vec2::ZERO,
            SimTime::from_secs(2.0),
            life,
        );
        // The bound is stale-low (3.0) while the real deadline is 5.0: a due
        // check scans, loses nothing, and tightens the bound.
        let mut lost = Vec::new();
        t.purge_due(SimTime::from_secs(4.0), &mut lost);
        assert!(lost.is_empty());
        assert_eq!(t.len(), 1);
        assert_eq!(t.next_deadline(), SimTime::from_secs(5.0));
    }

    /// The satellite property: on a randomised beacon schedule, the lazy
    /// `purge_due` path observes exactly the same (neighbour, tick) loss
    /// events as the old eager per-tick sweep.
    #[test]
    fn lazy_and_eager_purges_observe_identical_losses() {
        let mut rng = SimRng::new(0xbeac0);
        for case in 0..50 {
            let mut lazy = NeighborTable::new();
            let mut eager = NeighborTable::new();
            let mut lazy_losses: Vec<(NodeId, u32)> = Vec::new();
            let mut eager_losses: Vec<(NodeId, u32)> = Vec::new();
            let lifetime = SimDuration::from_secs(1.0 + rng.uniform_range(0.0, 3.0));
            let neighbors = 1 + rng.uniform_usize(12) as u32;
            let mut scratch = Vec::new();
            for tick in 1..=40u32 {
                let tick_time = SimTime::from_secs(f64::from(tick));
                // Random beacon arrivals within the previous tick interval.
                for _ in 0..rng.uniform_usize(2 * neighbors as usize) {
                    let id = NodeId(rng.uniform_usize(neighbors as usize) as u32);
                    let at = SimTime::from_secs(f64::from(tick) - rng.uniform_range(0.0, 1.0));
                    lazy.observe(id, Vec2::ZERO, Vec2::ZERO, at, lifetime);
                    eager.observe(id, Vec2::ZERO, Vec2::ZERO, at, lifetime);
                }
                scratch.clear();
                lazy.purge_due(tick_time, &mut scratch);
                lazy_losses.extend(scratch.iter().map(|&id| (id, tick)));
                eager_losses.extend(
                    eager
                        .purge_expired(tick_time)
                        .into_iter()
                        .map(|id| (id, tick)),
                );
                assert_eq!(lazy, eager, "case {case} diverged at tick {tick}");
            }
            assert_eq!(
                lazy_losses, eager_losses,
                "case {case}: loss events diverged"
            );
        }
    }

    #[test]
    fn tables_larger_than_the_inline_mirror_behave_identically() {
        // 3× the inline capacity: lookups fall back to the key vector, and
        // shrinking back under the cap re-arms the mirror.
        let mut t = NeighborTable::new();
        let life = SimDuration::from_secs(3.0);
        let count = 3 * super::INLINE_KEYS as u32;
        for i in (0..count).rev() {
            t.observe(
                NodeId(i),
                Vec2::new(f64::from(i), 0.0),
                Vec2::ZERO,
                SimTime::ZERO,
                life,
            );
        }
        assert_eq!(t.len(), count as usize);
        let ids: Vec<u32> = t.iter().map(|n| n.id.0).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "ascending iteration");
        assert_eq!(t.get(NodeId(200)).unwrap().position.x, 200.0);
        // Refresh a late entry past the purge horizon, purge the rest.
        t.observe(
            NodeId(7),
            Vec2::ZERO,
            Vec2::ZERO,
            SimTime::from_secs(2.0),
            life,
        );
        let mut lost = Vec::new();
        t.purge_due(SimTime::from_secs(4.0), &mut lost);
        assert_eq!(t.len(), 1, "only the refreshed entry survives");
        assert_eq!(lost.len(), count as usize - 1);
        assert!(t.contains(NodeId(7)));
        // Back under the inline cap: lookups and inserts still correct.
        t.observe(
            NodeId(3),
            Vec2::ZERO,
            Vec2::ZERO,
            SimTime::from_secs(4.0),
            life,
        );
        assert!(t.contains(NodeId(3)));
        assert_eq!(
            t.iter().map(|n| n.id.0).collect::<Vec<_>>(),
            vec![3, 7],
            "ascending after shrink"
        );
    }

    #[test]
    fn closest_and_greedy_next_hop() {
        let t = table_with_three();
        let target = Vec2::new(300.0, 0.0);
        assert_eq!(t.closest_to(target).unwrap().id, NodeId(2));
        // Own distance 120 m: node 2 at 100 m qualifies, others do not.
        assert_eq!(t.greedy_next_hop(target, 120.0).unwrap().id, NodeId(2));
        // Own distance 50 m: nobody is closer — local maximum.
        assert!(t.greedy_next_hop(target, 50.0).is_none());
        let empty = NeighborTable::new();
        assert!(empty.closest_to(target).is_none());
    }

    #[test]
    fn dead_reckoning_prediction() {
        let t = table_with_three();
        let n = t.get(NodeId(1)).unwrap();
        let predicted = n.predicted_position(SimTime::from_secs(2.0));
        assert_eq!(predicted, Vec2::new(120.0, 0.0));
    }

    #[test]
    fn ranking_by_score() {
        let t = table_with_three();
        // Rank by x coordinate: highest first.
        let ranked = t.ranked_by(|n| n.position.x);
        let ids: Vec<u32> = ranked.iter().map(|n| n.id.0).collect();
        assert_eq!(ids, vec![2, 1, 3]);
    }

    #[test]
    fn remove_returns_entry() {
        let mut t = table_with_three();
        assert!(t.remove(NodeId(3)).is_some());
        assert!(t.remove(NodeId(3)).is_none());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn beacon_config_defaults_are_sane() {
        let c = BeaconConfig::default();
        assert!(c.lifetime.as_secs() > c.interval.as_secs());
        assert!(c.jitter_fraction < 1.0);
    }
}
