//! Neighbour discovery: HELLO beaconing and the neighbour table.
//!
//! Mobility-based and probability-based protocols need "neighbouring
//! awareness" — each vehicle periodically broadcasts its position and velocity
//! so its neighbours can predict link lifetimes. This is exactly the extra
//! communication overhead Table I charges to those categories; the beacon
//! packets are counted by the metrics layer like any other control packet.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vanet_mobility::geometry::distance;
use vanet_mobility::{Position, Velocity};
use vanet_sim::{NodeId, SimDuration, SimTime};

/// Beaconing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BeaconConfig {
    /// Interval between HELLO beacons.
    pub interval: SimDuration,
    /// How long a neighbour entry stays valid without a fresh beacon.
    pub lifetime: SimDuration,
    /// Random jitter applied to each beacon (fraction of the interval) so
    /// that beacons from different vehicles do not synchronise.
    pub jitter_fraction: f64,
}

impl Default for BeaconConfig {
    fn default() -> Self {
        BeaconConfig {
            interval: SimDuration::from_secs(1.0),
            lifetime: SimDuration::from_secs(3.0),
            jitter_fraction: 0.1,
        }
    }
}

/// What a node knows about one of its neighbours.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NeighborInfo {
    /// The neighbour's id.
    pub id: NodeId,
    /// Last advertised position.
    pub position: Position,
    /// Last advertised velocity.
    pub velocity: Velocity,
    /// When the last beacon (or overheard packet) from it arrived.
    pub last_heard: SimTime,
    /// When the entry expires if no further beacon arrives.
    pub expires_at: SimTime,
}

impl NeighborInfo {
    /// Predicted position of the neighbour at `time`, extrapolating its last
    /// advertised velocity (dead reckoning).
    #[must_use]
    pub fn predicted_position(&self, time: SimTime) -> Position {
        let dt = time.saturating_since(self.last_heard).as_secs();
        self.position + self.velocity * dt
    }
}

/// The neighbour table maintained by every node.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NeighborTable {
    entries: BTreeMap<NodeId, NeighborInfo>,
}

impl NeighborTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or refreshes a neighbour from a received beacon.
    pub fn observe(
        &mut self,
        id: NodeId,
        position: Position,
        velocity: Velocity,
        now: SimTime,
        lifetime: SimDuration,
    ) {
        self.entries.insert(
            id,
            NeighborInfo {
                id,
                position,
                velocity,
                last_heard: now,
                expires_at: now + lifetime,
            },
        );
    }

    /// Removes expired entries and returns the ids that were dropped (each a
    /// detected link break).
    pub fn purge_expired(&mut self, now: SimTime) -> Vec<NodeId> {
        let expired: Vec<NodeId> = self
            .entries
            .values()
            .filter(|e| e.expires_at < now)
            .map(|e| e.id)
            .collect();
        for id in &expired {
            self.entries.remove(id);
        }
        expired
    }

    /// Removes a specific neighbour (e.g. after a failed unicast).
    pub fn remove(&mut self, id: NodeId) -> Option<NeighborInfo> {
        self.entries.remove(&id)
    }

    /// Looks up a neighbour.
    #[must_use]
    pub fn get(&self, id: NodeId) -> Option<&NeighborInfo> {
        self.entries.get(&id)
    }

    /// Whether `id` is currently a (non-expired, as of last purge) neighbour.
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        self.entries.contains_key(&id)
    }

    /// All current neighbours in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &NeighborInfo> {
        self.entries.values()
    }

    /// Number of neighbours.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The neighbour geographically closest to `target`, if any — the greedy
    /// forwarding primitive.
    #[must_use]
    pub fn closest_to(&self, target: Position) -> Option<&NeighborInfo> {
        self.entries.values().min_by(|a, b| {
            distance(a.position, target)
                .partial_cmp(&distance(b.position, target))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// The neighbour closest to `target` that is strictly closer to it than
    /// `own_distance` (greedy forwarding with the local-maximum check).
    #[must_use]
    pub fn greedy_next_hop(&self, target: Position, own_distance: f64) -> Option<&NeighborInfo> {
        self.closest_to(target)
            .filter(|n| distance(n.position, target) < own_distance)
    }

    /// Neighbours sorted by a caller-provided score, best (highest) first.
    #[must_use]
    pub fn ranked_by<F>(&self, mut score: F) -> Vec<&NeighborInfo>
    where
        F: FnMut(&NeighborInfo) -> f64,
    {
        let mut v: Vec<&NeighborInfo> = self.entries.values().collect();
        v.sort_by(|a, b| {
            score(b)
                .partial_cmp(&score(a))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanet_mobility::Vec2;

    fn table_with_three() -> NeighborTable {
        let mut t = NeighborTable::new();
        let life = SimDuration::from_secs(3.0);
        t.observe(
            NodeId(1),
            Vec2::new(100.0, 0.0),
            Vec2::new(10.0, 0.0),
            SimTime::ZERO,
            life,
        );
        t.observe(
            NodeId(2),
            Vec2::new(200.0, 0.0),
            Vec2::new(-10.0, 0.0),
            SimTime::ZERO,
            life,
        );
        t.observe(
            NodeId(3),
            Vec2::new(50.0, 50.0),
            Vec2::ZERO,
            SimTime::ZERO,
            life,
        );
        t
    }

    #[test]
    fn observe_and_lookup() {
        let t = table_with_three();
        assert_eq!(t.len(), 3);
        assert!(t.contains(NodeId(1)));
        assert!(!t.contains(NodeId(9)));
        assert_eq!(t.get(NodeId(2)).unwrap().position, Vec2::new(200.0, 0.0));
    }

    #[test]
    fn re_observation_refreshes_entry() {
        let mut t = table_with_three();
        t.observe(
            NodeId(1),
            Vec2::new(150.0, 0.0),
            Vec2::new(12.0, 0.0),
            SimTime::from_secs(1.0),
            SimDuration::from_secs(3.0),
        );
        assert_eq!(t.len(), 3);
        let n = t.get(NodeId(1)).unwrap();
        assert_eq!(n.position, Vec2::new(150.0, 0.0));
        assert_eq!(n.last_heard, SimTime::from_secs(1.0));
    }

    #[test]
    fn purge_removes_stale_entries() {
        let mut t = table_with_three();
        t.observe(
            NodeId(1),
            Vec2::new(100.0, 0.0),
            Vec2::ZERO,
            SimTime::from_secs(5.0),
            SimDuration::from_secs(3.0),
        );
        let dropped = t.purge_expired(SimTime::from_secs(6.0));
        assert_eq!(t.len(), 1);
        assert!(t.contains(NodeId(1)));
        assert_eq!(dropped.len(), 2);
    }

    #[test]
    fn closest_and_greedy_next_hop() {
        let t = table_with_three();
        let target = Vec2::new(300.0, 0.0);
        assert_eq!(t.closest_to(target).unwrap().id, NodeId(2));
        // Own distance 120 m: node 2 at 100 m qualifies, others do not.
        assert_eq!(t.greedy_next_hop(target, 120.0).unwrap().id, NodeId(2));
        // Own distance 50 m: nobody is closer — local maximum.
        assert!(t.greedy_next_hop(target, 50.0).is_none());
        let empty = NeighborTable::new();
        assert!(empty.closest_to(target).is_none());
    }

    #[test]
    fn dead_reckoning_prediction() {
        let t = table_with_three();
        let n = t.get(NodeId(1)).unwrap();
        let predicted = n.predicted_position(SimTime::from_secs(2.0));
        assert_eq!(predicted, Vec2::new(120.0, 0.0));
    }

    #[test]
    fn ranking_by_score() {
        let t = table_with_three();
        // Rank by x coordinate: highest first.
        let ranked = t.ranked_by(|n| n.position.x);
        let ids: Vec<u32> = ranked.iter().map(|n| n.id.0).collect();
        assert_eq!(ids, vec![2, 1, 3]);
    }

    #[test]
    fn remove_returns_entry() {
        let mut t = table_with_three();
        assert!(t.remove(NodeId(3)).is_some());
        assert!(t.remove(NodeId(3)).is_none());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn beacon_config_defaults_are_sane() {
        let c = BeaconConfig::default();
        assert!(c.lifetime.as_secs() > c.interval.as_secs());
        assert!(c.jitter_fraction < 1.0);
    }
}
