//! Packet model: data packets plus the control packets used by the five
//! routing families (RREQ/RREP/RERR, HELLO beacons, probe tickets, zone
//! location requests, acknowledgements).

use serde::{Deserialize, Serialize};
use vanet_mobility::{Position, Velocity};
use vanet_sim::{FlowId, NodeId, PacketId, SeqNo, SimTime};

/// Geographic addressing information carried by position-based protocols.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoAddress {
    /// Last known position of the destination.
    pub position: Position,
    /// Radius of the destination zone in metres (0 for a point destination).
    pub zone_radius: f64,
}

/// A recorded route (list of node ids), used by source routing and by RREP
/// packets returning the discovered path.
pub type RouteRecord = Vec<NodeId>;

/// The kind of a packet, together with kind-specific header fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PacketKind {
    /// Application data.
    Data,
    /// Periodic single-hop beacon advertising position and velocity
    /// (neighbour awareness; the per-protocol overhead Table I mentions).
    Hello,
    /// Route request, flooded during discovery.
    RouteRequest {
        /// The node the route is sought for.
        target: NodeId,
        /// Sequence number of the request at the originator.
        request_id: u64,
        /// Hop count so far.
        hop_count: u32,
        /// Accumulated path (source routing / reverse-path construction).
        path: RouteRecord,
        /// Protocol-specific path metric accumulated along the request
        /// (e.g. minimum predicted link lifetime, product of link
        /// reliabilities). Interpreted by the protocol that issued it.
        metric: f64,
    },
    /// Route reply, unicast back along the reverse path.
    RouteReply {
        /// The node the route leads to.
        target: NodeId,
        /// The discovered route from source to target.
        route: RouteRecord,
        /// Metric of the discovered route.
        metric: f64,
        /// Destination sequence number (AODV-style freshness).
        target_seq: SeqNo,
    },
    /// Route error, reporting a broken link.
    RouteError {
        /// The unreachable destination(s).
        unreachable: Vec<NodeId>,
        /// The broken link's upstream node.
        broken_link_from: NodeId,
        /// The broken link's downstream node.
        broken_link_to: NodeId,
    },
    /// Probe ticket used by ticket-based probing (Yan et al.): a bounded
    /// number of tickets explore candidate links instead of flooding.
    Ticket {
        /// The node the route is sought for.
        target: NodeId,
        /// Identifier of the probing round.
        probe_id: u64,
        /// Tickets remaining on this branch (limits the exploration budget).
        tickets: u32,
        /// Accumulated path.
        path: RouteRecord,
        /// Accumulated stability metric (minimum expected link duration).
        metric: f64,
    },
    /// Acknowledgement (used by implicit/explicit reliability schemes).
    Ack {
        /// The packet being acknowledged.
        of: PacketId,
    },
    /// Proactive distance-vector update (DSDV-style full or incremental dump).
    TopologyUpdate {
        /// (destination, metric/hops, destination sequence number) triples.
        entries: Vec<(NodeId, u32, SeqNo)>,
    },
    /// Infrastructure synchronisation between road-side units over the wired
    /// backbone (position registration, buffered-packet hand-off).
    InfrastructureSync {
        /// The vehicle whose position is being synchronised.
        vehicle: NodeId,
        /// Where it was last seen.
        position: Position,
    },
    /// DTN summary vector: the anti-entropy advertisement a store-carry-
    /// forward node broadcasts on neighbour contact, listing the bundles it
    /// already holds (or has delivered) so peers only transfer the
    /// difference. PRoPHET additionally piggybacks its delivery
    /// predictabilities so peers can apply the transitive update.
    SummaryVector {
        /// `(origin, packet id)` keys of every bundle the sender holds or
        /// has already seen to its final destination.
        have: Vec<(NodeId, u64)>,
        /// PRoPHET delivery predictabilities `(destination, P)` at the
        /// sender; empty for protocols that do not track them.
        predictabilities: Vec<(NodeId, f64)>,
    },
    /// DTN custody acknowledgement: the receiver of a bundle confirms it has
    /// taken responsibility for it, letting the previous custodian release
    /// its own custody flag (and become eligible for no-custody-first
    /// eviction).
    CustodyAck {
        /// Originator of the acknowledged bundle.
        origin: NodeId,
        /// Packet id of the acknowledged bundle at its originator.
        bundle_id: u64,
    },
}

impl PacketKind {
    /// Whether this kind is a control packet (everything except `Data`).
    #[must_use]
    pub fn is_control(&self) -> bool {
        !matches!(self, PacketKind::Data)
    }

    /// A short name for metrics/debug output.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            PacketKind::Data => "DATA",
            PacketKind::Hello => "HELLO",
            PacketKind::RouteRequest { .. } => "RREQ",
            PacketKind::RouteReply { .. } => "RREP",
            PacketKind::RouteError { .. } => "RERR",
            PacketKind::Ticket { .. } => "TICKET",
            PacketKind::Ack { .. } => "ACK",
            PacketKind::TopologyUpdate { .. } => "TUPD",
            PacketKind::InfrastructureSync { .. } => "ISYNC",
            PacketKind::SummaryVector { .. } => "SVEC",
            PacketKind::CustodyAck { .. } => "CACK",
        }
    }

    /// Nominal header size in bytes for this packet kind (used for overhead
    /// accounting in bytes; sizes follow typical AODV/DSR field layouts).
    #[must_use]
    pub fn header_bytes(&self) -> usize {
        match self {
            PacketKind::Data => 20,
            PacketKind::Hello => 32,
            PacketKind::RouteRequest { path, .. } => 24 + 4 * path.len(),
            PacketKind::RouteReply { route, .. } => 20 + 4 * route.len(),
            PacketKind::RouteError { unreachable, .. } => 12 + 4 * unreachable.len(),
            PacketKind::Ticket { path, .. } => 28 + 4 * path.len(),
            PacketKind::Ack { .. } => 12,
            PacketKind::TopologyUpdate { entries } => 8 + 12 * entries.len(),
            PacketKind::InfrastructureSync { .. } => 24,
            PacketKind::SummaryVector {
                have,
                predictabilities,
            } => 8 + 12 * have.len() + 12 * predictabilities.len(),
            PacketKind::CustodyAck { .. } => 16,
        }
    }
}

/// A packet travelling through the simulated network.
///
/// A packet is either *unicast* (has a `next_hop`) or *broadcast*
/// (`next_hop == None`), and carries an optional final `destination`
/// (broadcast floods such as HELLO have none).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique identifier (assigned by the originating node).
    pub id: PacketId,
    /// Kind and kind-specific headers.
    pub kind: PacketKind,
    /// The node that originated the packet.
    pub source: NodeId,
    /// The final destination, if any.
    pub destination: Option<NodeId>,
    /// The node that transmitted this copy (updated at every hop).
    pub prev_hop: NodeId,
    /// The intended link-layer receiver; `None` means link-layer broadcast.
    pub next_hop: Option<NodeId>,
    /// Remaining hops before the packet is dropped.
    pub ttl: u8,
    /// Application payload size in bytes (0 for pure control packets).
    pub payload_bytes: usize,
    /// When the packet was originally created.
    pub created_at: SimTime,
    /// The application flow this packet belongs to, if any.
    pub flow: Option<FlowId>,
    /// Source sequence number.
    pub seq: SeqNo,
    /// Number of hops traversed so far.
    pub hops: u32,
    /// Geographic destination information for position-based protocols.
    pub geo: Option<GeoAddress>,
    /// Source route for source-routed data (DSR-style), if any.
    pub source_route: Option<RouteRecord>,
    /// Sender position and velocity at transmission time (piggybacked
    /// mobility information used by mobility/probability-based protocols).
    pub sender_position: Option<Position>,
    /// Sender velocity at transmission time.
    pub sender_velocity: Option<Velocity>,
    /// Copy tickets granted to the receiver of this transmission
    /// (spray-and-wait binary splitting); 0 for protocols that do not
    /// budget copies.
    pub copies: u32,
}

/// Default time-to-live for network-layer packets.
pub const DEFAULT_TTL: u8 = 32;

impl Packet {
    /// Creates a link-layer broadcast packet with no final destination.
    #[must_use]
    pub fn broadcast(source: NodeId, kind: PacketKind, payload_bytes: usize) -> Self {
        Packet {
            id: PacketId(0),
            kind,
            source,
            destination: None,
            prev_hop: source,
            next_hop: None,
            ttl: DEFAULT_TTL,
            payload_bytes,
            created_at: SimTime::ZERO,
            flow: None,
            seq: SeqNo(0),
            hops: 0,
            geo: None,
            source_route: None,
            sender_position: None,
            sender_velocity: None,
            copies: 0,
        }
    }

    /// Creates a unicast data packet from `source` to `destination`.
    #[must_use]
    pub fn data(source: NodeId, destination: NodeId, payload_bytes: usize) -> Self {
        Packet {
            id: PacketId(0),
            kind: PacketKind::Data,
            source,
            destination: Some(destination),
            prev_hop: source,
            next_hop: None,
            ttl: DEFAULT_TTL,
            payload_bytes,
            created_at: SimTime::ZERO,
            flow: None,
            seq: SeqNo(0),
            hops: 0,
            geo: None,
            source_route: None,
            sender_position: None,
            sender_velocity: None,
            copies: 0,
        }
    }

    /// Total size on the wire: kind-specific header plus payload.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.kind.header_bytes() + self.payload_bytes
    }

    /// Whether this packet is a control packet.
    #[must_use]
    pub fn is_control(&self) -> bool {
        self.kind.is_control()
    }

    /// Whether this copy is a link-layer broadcast.
    #[must_use]
    pub fn is_link_broadcast(&self) -> bool {
        self.next_hop.is_none()
    }

    /// Returns a copy prepared for forwarding by `forwarder` to `next_hop`:
    /// hop count incremented, TTL decremented, previous hop updated.
    #[must_use]
    pub fn forwarded_by(&self, forwarder: NodeId, next_hop: Option<NodeId>) -> Packet {
        let mut p = self.clone();
        p.prev_hop = forwarder;
        p.next_hop = next_hop;
        p.hops += 1;
        p.ttl = p.ttl.saturating_sub(1);
        p
    }

    /// Whether the TTL allows another hop.
    #[must_use]
    pub fn ttl_allows_forwarding(&self) -> bool {
        self.ttl > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanet_mobility::Vec2;

    #[test]
    fn kinds_classify_control_vs_data() {
        assert!(!PacketKind::Data.is_control());
        assert!(PacketKind::Hello.is_control());
        assert!(PacketKind::Ack { of: PacketId(1) }.is_control());
        assert_eq!(PacketKind::Data.name(), "DATA");
        assert_eq!(PacketKind::Hello.name(), "HELLO");
    }

    #[test]
    fn header_sizes_grow_with_recorded_path() {
        let short = PacketKind::RouteRequest {
            target: NodeId(1),
            request_id: 0,
            hop_count: 0,
            path: vec![],
            metric: 0.0,
        };
        let long = PacketKind::RouteRequest {
            target: NodeId(1),
            request_id: 0,
            hop_count: 3,
            path: vec![NodeId(1), NodeId(2), NodeId(3)],
            metric: 0.0,
        };
        assert!(long.header_bytes() > short.header_bytes());
    }

    #[test]
    fn broadcast_and_data_constructors() {
        let b = Packet::broadcast(NodeId(1), PacketKind::Hello, 0);
        assert!(b.is_link_broadcast());
        assert!(b.destination.is_none());
        assert!(b.is_control());

        let d = Packet::data(NodeId(1), NodeId(5), 512);
        assert_eq!(d.destination, Some(NodeId(5)));
        assert!(!d.is_control());
        assert_eq!(d.size_bytes(), 512 + 20);
    }

    #[test]
    fn forwarding_updates_hop_state() {
        let p = Packet::data(NodeId(1), NodeId(5), 100);
        let f = p.forwarded_by(NodeId(2), Some(NodeId(3)));
        assert_eq!(f.prev_hop, NodeId(2));
        assert_eq!(f.next_hop, Some(NodeId(3)));
        assert_eq!(f.hops, 1);
        assert_eq!(f.ttl, DEFAULT_TTL - 1);
        assert_eq!(f.source, NodeId(1), "source never changes");
    }

    #[test]
    fn ttl_exhaustion() {
        let mut p = Packet::data(NodeId(1), NodeId(2), 10);
        p.ttl = 1;
        assert!(p.ttl_allows_forwarding());
        let f = p.forwarded_by(NodeId(3), None);
        assert!(!f.ttl_allows_forwarding());
        let g = f.forwarded_by(NodeId(4), None);
        assert_eq!(g.ttl, 0, "ttl saturates at zero");
    }

    #[test]
    fn geo_address_is_carried() {
        let mut p = Packet::data(NodeId(1), NodeId(2), 10);
        p.geo = Some(GeoAddress {
            position: Vec2::new(100.0, 50.0),
            zone_radius: 250.0,
        });
        assert_eq!(p.geo.unwrap().zone_radius, 250.0);
    }
}
