//! Simplified contention-based MAC (CSMA/CA broadcast).
//!
//! We do not simulate per-slot 802.11p behaviour; instead the MAC model
//! captures the three effects that matter at the routing layer:
//!
//! * **Serialisation delay** — a frame of `b` bytes at `data_rate` bit/s takes
//!   `8·b / rate` seconds to transmit.
//! * **Contention delay** — a uniformly distributed backoff whose upper bound
//!   grows with the recent channel load.
//! * **Collision loss** — the probability that a frame is lost grows with the
//!   number of concurrent transmissions heard at the receiver. This is the
//!   mechanism behind the broadcast-storm degradation of flooding protocols.

use serde::{Deserialize, Serialize};
use vanet_sim::{SimDuration, SimRng};

/// Parameters of the simplified MAC layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MacParams {
    /// Link data rate in bits per second (6 Mb/s DSRC default).
    pub data_rate_bps: f64,
    /// Base (minimum) contention window in seconds.
    pub min_backoff_s: f64,
    /// Additional backoff per concurrently contending transmission, seconds.
    pub backoff_per_contender_s: f64,
    /// Per-interfering-transmission collision probability: a frame survives
    /// each overlapping transmission independently with probability
    /// `1 − collision_probability`.
    pub collision_probability: f64,
    /// Length of the window over which transmissions are counted as
    /// "concurrent" for contention/collision purposes, in seconds.
    pub contention_window_s: f64,
    /// Propagation speed in metres per second (speed of light).
    pub propagation_speed_mps: f64,
    /// Fixed per-frame processing delay in seconds (driver + queueing).
    pub processing_delay_s: f64,
}

impl Default for MacParams {
    fn default() -> Self {
        MacParams {
            data_rate_bps: 6_000_000.0,
            min_backoff_s: 0.000_2,
            backoff_per_contender_s: 0.000_5,
            collision_probability: 0.06,
            contention_window_s: 0.01,
            propagation_speed_mps: 299_792_458.0,
            processing_delay_s: 0.000_3,
        }
    }
}

impl MacParams {
    /// An idealised MAC with no contention and no collisions: useful for
    /// isolating routing-layer behaviour in unit tests.
    #[must_use]
    pub fn ideal() -> Self {
        MacParams {
            collision_probability: 0.0,
            min_backoff_s: 0.0,
            backoff_per_contender_s: 0.0,
            processing_delay_s: 0.0,
            ..Self::default()
        }
    }

    /// Serialisation (transmission) delay for a frame of `bytes`.
    #[must_use]
    pub fn transmission_delay(&self, bytes: usize) -> SimDuration {
        SimDuration::from_secs((bytes as f64) * 8.0 / self.data_rate_bps)
    }

    /// Propagation delay over `distance_m` metres.
    #[must_use]
    pub fn propagation_delay(&self, distance_m: f64) -> SimDuration {
        SimDuration::from_secs(distance_m.max(0.0) / self.propagation_speed_mps)
    }

    /// Samples the contention backoff given `contenders` recent transmissions.
    #[must_use]
    pub fn sample_backoff(&self, contenders: usize, rng: &mut SimRng) -> SimDuration {
        let upper = self.min_backoff_s + self.backoff_per_contender_s * contenders as f64;
        if upper <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs(rng.uniform_range(0.0, upper))
    }

    /// Probability that a frame survives `interferers` overlapping
    /// transmissions at the receiver.
    #[must_use]
    pub fn survival_probability(&self, interferers: usize) -> f64 {
        (1.0 - self.collision_probability).powi(interferers as i32)
    }

    /// Samples whether a frame survives collisions from `interferers`
    /// overlapping transmissions.
    #[must_use]
    pub fn sample_collision_survival(&self, interferers: usize, rng: &mut SimRng) -> bool {
        rng.chance(self.survival_probability(interferers))
    }

    /// End-to-end single-hop latency (processing + backoff upper bound +
    /// serialisation + propagation) used by protocols when they estimate
    /// per-hop delay without sampling.
    #[must_use]
    pub fn nominal_hop_delay(&self, bytes: usize, distance_m: f64) -> SimDuration {
        SimDuration::from_secs(self.processing_delay_s + self.min_backoff_s)
            + self.transmission_delay(bytes)
            + self.propagation_delay(distance_m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmission_delay_scales_with_size() {
        let mac = MacParams::default();
        let small = mac.transmission_delay(100);
        let large = mac.transmission_delay(1_000);
        assert!(large.as_secs() > small.as_secs());
        // 1000 bytes at 6 Mb/s = 8000/6e6 s ≈ 1.33 ms
        assert!((large.as_secs() - 8_000.0 / 6_000_000.0).abs() < 1e-9);
    }

    #[test]
    fn propagation_delay_is_tiny_but_positive() {
        let mac = MacParams::default();
        let d = mac.propagation_delay(300.0);
        assert!(d.as_secs() > 0.0);
        assert!(d.as_secs() < 1e-5);
        assert_eq!(mac.propagation_delay(-5.0), SimDuration::ZERO);
    }

    #[test]
    fn survival_decreases_with_interferers() {
        let mac = MacParams::default();
        assert_eq!(mac.survival_probability(0), 1.0);
        let mut last = 1.0;
        for k in 1..20 {
            let p = mac.survival_probability(k);
            assert!(p < last);
            last = p;
        }
    }

    #[test]
    fn ideal_mac_never_collides() {
        let mac = MacParams::ideal();
        let mut rng = SimRng::new(1);
        assert_eq!(mac.survival_probability(50), 1.0);
        assert!(mac.sample_collision_survival(50, &mut rng));
        assert_eq!(mac.sample_backoff(10, &mut rng), SimDuration::ZERO);
    }

    #[test]
    fn backoff_grows_with_contention() {
        let mac = MacParams::default();
        let mut rng = SimRng::new(2);
        let mut low = 0.0;
        let mut high = 0.0;
        for _ in 0..200 {
            low += mac.sample_backoff(0, &mut rng).as_secs();
            high += mac.sample_backoff(20, &mut rng).as_secs();
        }
        assert!(high > low * 2.0, "mean backoff should grow with contenders");
    }

    #[test]
    fn nominal_hop_delay_is_sum_of_parts() {
        let mac = MacParams::default();
        let d = mac.nominal_hop_delay(500, 200.0);
        assert!(d.as_secs() > mac.transmission_delay(500).as_secs());
        assert!(d.as_secs() < 0.01);
    }
}
