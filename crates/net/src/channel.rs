//! Radio propagation models.
//!
//! The probability-model-based family (Sec. VII) builds directly on the
//! "wireless signal strength attenuation model": received power is assumed
//! log-normally distributed around a deterministic path-loss mean, and the
//! reception probability as a function of distance follows. We provide three
//! models with increasing fidelity:
//!
//! * [`UnitDisk`] — deterministic range `r`: exactly Eq. (4)'s break distance.
//! * [`FreeSpacePathLoss`] — deterministic SNR threshold on a power-law decay.
//! * [`LogNormalShadowing`] — power-law decay plus log-normal fading, yielding
//!   a smooth reception-probability curve (the REAR receipt-probability model).

use serde::{Deserialize, Serialize};
use std::fmt::Debug;
use vanet_mobility::distributions::std_normal_cdf;
use vanet_sim::SimRng;

/// A radio propagation model: maps distance to reception probability.
pub trait PropagationModel: Debug {
    /// Probability that a frame transmitted over `distance_m` metres is
    /// received (before MAC-level collisions are considered). Must be in
    /// `[0, 1]` and non-increasing in distance.
    fn reception_probability(&self, distance_m: f64) -> f64;

    /// The nominal communication range in metres: the distance used by
    /// protocols when they reason about link breakage (Eq. 4's `r`).
    fn nominal_range(&self) -> f64;

    /// Samples whether a frame at `distance_m` is received.
    fn sample_reception(&self, distance_m: f64, rng: &mut SimRng) -> bool {
        rng.chance(self.reception_probability(distance_m))
    }

    /// The maximum distance at which reception is possible at all (used to
    /// prune candidate receivers). Defaults to 1.5× the nominal range.
    fn max_range(&self) -> f64 {
        self.nominal_range() * 1.5
    }
}

/// Deterministic unit-disk model: received iff within `range` metres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitDisk {
    range_m: f64,
}

impl UnitDisk {
    /// Creates a unit-disk model with the given range in metres.
    ///
    /// # Panics
    ///
    /// Panics if `range_m` is not positive.
    #[must_use]
    pub fn new(range_m: f64) -> Self {
        assert!(range_m > 0.0, "range must be positive");
        UnitDisk { range_m }
    }
}

impl PropagationModel for UnitDisk {
    fn reception_probability(&self, distance_m: f64) -> f64 {
        if distance_m <= self.range_m {
            1.0
        } else {
            0.0
        }
    }

    fn nominal_range(&self) -> f64 {
        self.range_m
    }

    fn max_range(&self) -> f64 {
        self.range_m
    }
}

/// Free-space (power-law) path loss with a hard SNR threshold.
///
/// Received power decays as `d^-alpha`; reception succeeds whenever the
/// received power is above the threshold corresponding to `nominal_range`.
/// With no fading this behaves like a unit disk, but it exposes the received
/// power for the REAR-style signal-strength heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FreeSpacePathLoss {
    nominal_range_m: f64,
    path_loss_exponent: f64,
    tx_power_dbm: f64,
}

impl FreeSpacePathLoss {
    /// Creates a free-space model whose threshold corresponds to
    /// `nominal_range_m` with path-loss exponent `alpha` (2 for free space,
    /// 2.7–4 for ground reflection / urban).
    ///
    /// # Panics
    ///
    /// Panics if the range or exponent is not positive.
    #[must_use]
    pub fn new(nominal_range_m: f64, alpha: f64) -> Self {
        assert!(nominal_range_m > 0.0, "range must be positive");
        assert!(alpha > 0.0, "path-loss exponent must be positive");
        FreeSpacePathLoss {
            nominal_range_m,
            path_loss_exponent: alpha,
            tx_power_dbm: 20.0,
        }
    }

    /// Received power in dBm at `distance_m` (reference: −50 dBm at 1 m).
    #[must_use]
    pub fn received_power_dbm(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(1.0);
        self.tx_power_dbm - 50.0 - 10.0 * self.path_loss_exponent * d.log10()
    }

    /// The reception threshold in dBm (received power at the nominal range).
    #[must_use]
    pub fn threshold_dbm(&self) -> f64 {
        self.received_power_dbm(self.nominal_range_m)
    }
}

impl PropagationModel for FreeSpacePathLoss {
    fn reception_probability(&self, distance_m: f64) -> f64 {
        if self.received_power_dbm(distance_m) >= self.threshold_dbm() {
            1.0
        } else {
            0.0
        }
    }

    fn nominal_range(&self) -> f64 {
        self.nominal_range_m
    }

    fn max_range(&self) -> f64 {
        self.nominal_range_m
    }
}

/// Log-normal shadowing: power-law mean path loss plus Gaussian (in dB)
/// shadow fading with standard deviation `sigma_db`.
///
/// The reception probability at distance `d` is
/// `P[X > Pth]` where `X ~ N(P(d), sigma²)`, i.e.
/// `Q((Pth − P(d)) / sigma)` — the standard log-normal link model the REAR
/// protocol computes its receipt probability from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormalShadowing {
    mean: FreeSpacePathLoss,
    sigma_db: f64,
}

impl LogNormalShadowing {
    /// Creates a shadowing model around a free-space mean with `sigma_db`
    /// dB of shadow fading.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_db` is negative.
    #[must_use]
    pub fn new(nominal_range_m: f64, alpha: f64, sigma_db: f64) -> Self {
        assert!(sigma_db >= 0.0, "sigma must be non-negative");
        LogNormalShadowing {
            mean: FreeSpacePathLoss::new(nominal_range_m, alpha),
            sigma_db,
        }
    }

    /// The shadow-fading standard deviation in dB.
    #[must_use]
    pub fn sigma_db(&self) -> f64 {
        self.sigma_db
    }

    /// Mean received power in dBm at `distance_m`.
    #[must_use]
    pub fn mean_received_power_dbm(&self, distance_m: f64) -> f64 {
        self.mean.received_power_dbm(distance_m)
    }
}

impl PropagationModel for LogNormalShadowing {
    fn reception_probability(&self, distance_m: f64) -> f64 {
        if self.sigma_db == 0.0 {
            return self.mean.reception_probability(distance_m);
        }
        let margin_db = self.mean.received_power_dbm(distance_m) - self.mean.threshold_dbm();
        std_normal_cdf(margin_db / self.sigma_db)
    }

    fn nominal_range(&self) -> f64 {
        self.mean.nominal_range()
    }

    fn max_range(&self) -> f64 {
        // Beyond ~2× the nominal range the reception probability is
        // negligible for the sigma values used in the scenarios.
        self.mean.nominal_range() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_disk_is_a_step_function() {
        let m = UnitDisk::new(250.0);
        assert_eq!(m.reception_probability(0.0), 1.0);
        assert_eq!(m.reception_probability(250.0), 1.0);
        assert_eq!(m.reception_probability(250.1), 0.0);
        assert_eq!(m.nominal_range(), 250.0);
        assert_eq!(m.max_range(), 250.0);
    }

    #[test]
    fn free_space_threshold_matches_range() {
        let m = FreeSpacePathLoss::new(300.0, 2.7);
        assert_eq!(m.reception_probability(299.0), 1.0);
        assert_eq!(m.reception_probability(301.0), 0.0);
        assert!(m.received_power_dbm(10.0) > m.received_power_dbm(100.0));
    }

    #[test]
    fn shadowing_probability_is_half_at_nominal_range() {
        let m = LogNormalShadowing::new(250.0, 2.7, 4.0);
        let p = m.reception_probability(250.0);
        assert!(
            (p - 0.5).abs() < 1e-3,
            "P at nominal range should be 0.5, got {p}"
        );
        assert!(m.reception_probability(50.0) > 0.99);
        assert!(m.reception_probability(600.0) < 0.05);
    }

    #[test]
    fn shadowing_is_monotone_decreasing() {
        let m = LogNormalShadowing::new(250.0, 2.7, 6.0);
        let mut last = 1.1;
        for d in (0..60).map(|i| i as f64 * 10.0) {
            let p = m.reception_probability(d.max(1.0));
            assert!(p <= last + 1e-12, "not monotone at {d}");
            assert!((0.0..=1.0).contains(&p));
            last = p;
        }
    }

    #[test]
    fn shadowing_with_zero_sigma_degenerates() {
        let m = LogNormalShadowing::new(250.0, 2.7, 0.0);
        assert_eq!(m.reception_probability(100.0), 1.0);
        assert_eq!(m.reception_probability(400.0), 0.0);
    }

    #[test]
    fn sampling_respects_probability() {
        let m = LogNormalShadowing::new(250.0, 2.7, 4.0);
        let mut rng = SimRng::new(1);
        let n = 10_000;
        let hits = (0..n)
            .filter(|_| m.sample_reception(250.0, &mut rng))
            .count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.5).abs() < 0.03, "sampled frequency {freq}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn unit_disk_rejects_zero_range() {
        let _ = UnitDisk::new(0.0);
    }
}
