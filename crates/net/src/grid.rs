//! A uniform-grid spatial index over node positions.
//!
//! [`Medium::transmit`](crate::Medium::transmit) historically scanned *every*
//! node in the simulation for each frame, so per-transmission cost grew with
//! total fleet size even though a frame can only reach nodes within the
//! propagation model's maximum range. [`SpatialGrid`] hashes nodes into square
//! cells sized to that range; a range query then inspects only the 3×3 block
//! of cells around the transmitter, making the cost proportional to the local
//! node density instead of the global population.
//!
//! Queries return candidates sorted by [`NodeId`], which is exactly the order
//! the simulation driver used to iterate the full node list in. Keeping that
//! order is what lets the indexed transmit path consume the RNG identically
//! to the exhaustive scan and therefore reproduce its results bit for bit.

use std::collections::HashMap;
use vanet_mobility::Position;
use vanet_sim::NodeId;

/// A uniform grid of square cells indexing node positions.
#[derive(Debug, Clone, Default)]
pub struct SpatialGrid {
    cell_m: f64,
    buckets: HashMap<(i64, i64), Vec<(NodeId, Position)>>,
    len: usize,
}

impl SpatialGrid {
    /// Builds a grid with `cell_m`-sized cells over `nodes`.
    ///
    /// Pick `cell_m` equal to the largest query radius you intend to use:
    /// [`SpatialGrid::candidates_within`] only inspects the 3×3 cell block
    /// around the query point, which covers every point within one cell size.
    ///
    /// # Panics
    ///
    /// Panics if `cell_m` is not strictly positive and finite.
    #[must_use]
    pub fn build(cell_m: f64, nodes: &[(NodeId, Position)]) -> Self {
        assert!(
            cell_m.is_finite() && cell_m > 0.0,
            "grid cell size must be positive and finite"
        );
        let mut buckets: HashMap<(i64, i64), Vec<(NodeId, Position)>> = HashMap::new();
        for &(id, pos) in nodes {
            buckets
                .entry(Self::cell_of(cell_m, pos))
                .or_default()
                .push((id, pos));
        }
        SpatialGrid {
            cell_m,
            buckets,
            len: nodes.len(),
        }
    }

    fn cell_of(cell_m: f64, pos: Position) -> (i64, i64) {
        (
            (pos.x / cell_m).floor() as i64,
            (pos.y / cell_m).floor() as i64,
        )
    }

    /// Number of indexed nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the grid contains no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The cell size the grid was built with, metres.
    #[must_use]
    pub fn cell_size_m(&self) -> f64 {
        self.cell_m
    }

    /// Every indexed node within `radius_m` of `center` — plus possibly a few
    /// just beyond it (cell-corner over-approximation) — sorted by node id.
    ///
    /// # Panics
    ///
    /// Panics if `radius_m` exceeds the grid's cell size: the 3×3 block scan
    /// would miss nodes further than one cell away.
    #[must_use]
    pub fn candidates_within(&self, center: Position, radius_m: f64) -> Vec<(NodeId, Position)> {
        let mut out = Vec::new();
        self.candidates_within_into(center, radius_m, &mut out);
        out
    }

    /// The allocation-free form of [`SpatialGrid::candidates_within`]: clears
    /// `out` and fills it with the candidates, letting callers reuse one
    /// buffer across queries.
    ///
    /// # Panics
    ///
    /// Panics if `radius_m` exceeds the grid's cell size.
    pub fn candidates_within_into(
        &self,
        center: Position,
        radius_m: f64,
        out: &mut Vec<(NodeId, Position)>,
    ) {
        assert!(
            radius_m <= self.cell_m,
            "query radius {radius_m} exceeds grid cell size {}",
            self.cell_m
        );
        out.clear();
        let (cx, cy) = Self::cell_of(self.cell_m, center);
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(bucket) = self.buckets.get(&(cx + dx, cy + dy)) {
                    out.extend_from_slice(bucket);
                }
            }
        }
        out.sort_unstable_by_key(|&(id, _)| id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanet_mobility::geometry::distance;
    use vanet_mobility::Vec2;
    use vanet_sim::SimRng;

    fn random_nodes(n: usize, extent: f64, seed: u64) -> Vec<(NodeId, Position)> {
        let mut rng = SimRng::new(seed);
        (0..n)
            .map(|i| {
                (
                    NodeId(i as u32),
                    Vec2::new(
                        rng.uniform_range(0.0, extent),
                        rng.uniform_range(0.0, extent),
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn query_finds_every_node_in_range() {
        let nodes = random_nodes(300, 3_000.0, 1);
        let grid = SpatialGrid::build(250.0, &nodes);
        assert_eq!(grid.len(), 300);
        for &(_, center) in nodes.iter().step_by(17) {
            let candidates = grid.candidates_within(center, 250.0);
            let expect: Vec<NodeId> = nodes
                .iter()
                .filter(|&&(_, p)| distance(center, p) <= 250.0)
                .map(|&(id, _)| id)
                .collect();
            for id in &expect {
                assert!(
                    candidates.iter().any(|(c, _)| c == id),
                    "node {id:?} within range but missing from grid query"
                );
            }
        }
    }

    #[test]
    fn candidates_are_sorted_by_node_id() {
        let nodes = random_nodes(120, 400.0, 2);
        let grid = SpatialGrid::build(250.0, &nodes);
        let candidates = grid.candidates_within(Vec2::new(200.0, 200.0), 250.0);
        assert!(candidates.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(!candidates.is_empty());
    }

    #[test]
    fn negative_coordinates_are_indexed() {
        let nodes = vec![
            (NodeId(0), Vec2::new(-10.0, -10.0)),
            (NodeId(1), Vec2::new(-240.0, 0.0)),
            (NodeId(2), Vec2::new(300.0, 300.0)),
        ];
        let grid = SpatialGrid::build(250.0, &nodes);
        let near_origin = grid.candidates_within(Vec2::ZERO, 250.0);
        assert!(near_origin.iter().any(|&(id, _)| id == NodeId(0)));
        assert!(near_origin.iter().any(|&(id, _)| id == NodeId(1)));
    }

    #[test]
    fn empty_grid_queries_are_empty() {
        let grid = SpatialGrid::build(100.0, &[]);
        assert!(grid.is_empty());
        assert!(grid.candidates_within(Vec2::ZERO, 100.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds grid cell size")]
    fn oversized_radius_panics() {
        let grid = SpatialGrid::build(100.0, &[]);
        let _ = grid.candidates_within(Vec2::ZERO, 150.0);
    }
}
