//! A uniform-grid spatial index over node positions.
//!
//! [`Medium::transmit`](crate::Medium::transmit) historically scanned *every*
//! node in the simulation for each frame, so per-transmission cost grew with
//! total fleet size even though a frame can only reach nodes within the
//! propagation model's maximum range. [`SpatialGrid`] hashes nodes into square
//! cells sized to that range; a range query then inspects only the 3×3 block
//! of cells around the transmitter, making the cost proportional to the local
//! node density instead of the global population.
//!
//! Queries return candidates sorted by [`NodeId`], which is exactly the order
//! the simulation driver used to iterate the full node list in. Keeping that
//! order is what lets the indexed transmit path consume the RNG identically
//! to the exhaustive scan and therefore reproduce its results bit for bit.
//!
//! The grid is maintained *incrementally*: [`SpatialGrid::update`] moves one
//! node between cells (or adjusts its stored position in place when the cell
//! is unchanged), so a mobility step costs one O(cell-occupancy) operation
//! per node that actually moved instead of a full rebuild plus a collected
//! position `Vec`. Buckets are kept sorted by [`NodeId`] — ordered inserts
//! and removes cost a few-hundred-byte `memmove` on a cell's occupants, and
//! in exchange a range query is a k-way merge of nine already-sorted runs
//! instead of a copy-then-sort of the whole 3×3 block, which used to be a
//! measurable slice of every transmission at fleet scale.
//! A full [`SpatialGrid::build`] is only needed when the cell size changes —
//! in the simulation the cell size is the propagation model's maximum range,
//! fixed for the lifetime of a run.

// lint: hot-path

use std::collections::HashMap;
use vanet_mobility::Position;
use vanet_sim::NodeId;

/// A uniform grid of square cells indexing node positions.
#[derive(Debug, Clone, Default)]
pub struct SpatialGrid {
    cell_m: f64,
    // lint: allow(D1) — buckets are read only by keyed 3×3-block lookup and
    // each bucket is kept NodeId-sorted, so map order never reaches a query
    // result; pinned by `candidates_are_sorted_by_node_id` and
    // `incremental_updates_match_a_fresh_build`.
    buckets: HashMap<(i64, i64), Vec<(NodeId, Position)>>,
    len: usize,
}

impl SpatialGrid {
    /// Builds a grid with `cell_m`-sized cells over `nodes`.
    ///
    /// Pick `cell_m` equal to the largest query radius you intend to use:
    /// [`SpatialGrid::candidates_within`] only inspects the 3×3 cell block
    /// around the query point, which covers every point within one cell size.
    ///
    /// # Panics
    ///
    /// Panics if `cell_m` is not strictly positive and finite.
    #[must_use]
    pub fn build(cell_m: f64, nodes: &[(NodeId, Position)]) -> Self {
        assert!(
            cell_m.is_finite() && cell_m > 0.0,
            "grid cell size must be positive and finite"
        );
        // Two passes: count cell occupancy first, then place. At megacity
        // scale the counting pass lets every bucket (and the map itself) be
        // allocated exactly once instead of growing organically through
        // ~log(occupancy) reallocations per cell.
        // lint: allow(D1) — build-time scratch; only per-cell counts leave
        // it (below), never an ordering.
        // lint: allow(P1) — build() runs once per run (cell size is fixed);
        // the steady state goes through `update`.
        let mut occupancy: HashMap<(i64, i64), usize> = HashMap::with_capacity(nodes.len());
        for &(_, pos) in nodes {
            *occupancy.entry(Self::cell_of(cell_m, pos)).or_insert(0) += 1;
        }
        // lint: allow(D1) — see the field declaration: keyed lookup only,
        // buckets individually sorted before any query can observe them.
        let mut buckets: HashMap<(i64, i64), Vec<(NodeId, Position)>> =
            HashMap::with_capacity(occupancy.len()); // lint: allow(P1) — build-time, exact size

        // lint: allow(D1) — insertion order into a map is unobservable; each
        // (cell, count) lands at its own key.
        for (cell, count) in occupancy {
            // lint: allow(P1) — build-time, exact-size bucket allocation.
            buckets.insert(cell, Vec::with_capacity(count));
        }
        for &(id, pos) in nodes {
            buckets
                .entry(Self::cell_of(cell_m, pos))
                .or_default()
                .push((id, pos));
        }
        // lint: allow(D1) — each bucket is sorted independently; visit order
        // cannot affect the per-bucket result (pinned by
        // `candidates_are_sorted_by_node_id`).
        for bucket in buckets.values_mut() {
            bucket.sort_unstable_by_key(|&(id, _)| id);
        }
        SpatialGrid {
            cell_m,
            buckets,
            len: nodes.len(),
        }
    }

    fn cell_of(cell_m: f64, pos: Position) -> (i64, i64) {
        (
            (pos.x / cell_m).floor() as i64,
            (pos.y / cell_m).floor() as i64,
        )
    }

    /// Moves one indexed node from `old_pos` to `new_pos`.
    ///
    /// When both positions hash to the same cell the stored position is
    /// updated in place; otherwise the node is removed from its old bucket
    /// and spliced into id-order in the new one (each a small `memmove` over
    /// a cell's occupants). Steady state allocates nothing: bucket capacity
    /// is retained, and a fresh cell's bucket is the only occasional
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if the node is not indexed at `old_pos` — callers must pass
    /// exactly the position the node was last built or updated with.
    pub fn update(&mut self, id: NodeId, old_pos: Position, new_pos: Position) {
        let old_cell = Self::cell_of(self.cell_m, old_pos);
        let new_cell = Self::cell_of(self.cell_m, new_pos);
        if old_cell == new_cell {
            let bucket = self
                .buckets
                .get_mut(&old_cell)
                .unwrap_or_else(|| panic!("node {id:?} not indexed in cell {old_cell:?}"));
            let at = bucket
                .binary_search_by_key(&id, |&(i, _)| i)
                .unwrap_or_else(|_| panic!("node {id:?} not indexed in cell {old_cell:?}"));
            bucket[at].1 = new_pos;
            return;
        }
        let old_bucket = self
            .buckets
            .get_mut(&old_cell)
            .unwrap_or_else(|| panic!("node {id:?} not indexed in cell {old_cell:?}"));
        let at = old_bucket
            .binary_search_by_key(&id, |&(i, _)| i)
            .unwrap_or_else(|_| panic!("node {id:?} not indexed in cell {old_cell:?}"));
        old_bucket.remove(at);
        let new_bucket = self.buckets.entry(new_cell).or_default();
        let at = new_bucket
            .binary_search_by_key(&id, |&(i, _)| i)
            .unwrap_or_else(|i| i);
        new_bucket.insert(at, (id, new_pos));
    }

    /// Number of indexed nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the grid contains no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The cell size the grid was built with, metres.
    #[must_use]
    pub fn cell_size_m(&self) -> f64 {
        self.cell_m
    }

    /// Every indexed node within `radius_m` of `center` — plus possibly a few
    /// just beyond it (cell-corner over-approximation) — sorted by node id.
    ///
    /// # Panics
    ///
    /// Panics if `radius_m` exceeds the grid's cell size: the 3×3 block scan
    /// would miss nodes further than one cell away.
    #[must_use]
    pub fn candidates_within(&self, center: Position, radius_m: f64) -> Vec<(NodeId, Position)> {
        // lint: allow(P1) — convenience form; warm paths use the `_into` /
        // `_scratch` variants with caller-owned buffers.
        let mut out = Vec::new();
        self.candidates_within_into(center, radius_m, &mut out);
        out
    }

    /// Convenience form of [`SpatialGrid::candidates_within_scratch`] that
    /// allocates its own merge scratch: clears `out` and fills it with the
    /// candidates. Warm-path callers should hold a scratch buffer and use
    /// the `_scratch` form instead.
    ///
    /// # Panics
    ///
    /// Panics if `radius_m` exceeds the grid's cell size.
    pub fn candidates_within_into(
        &self,
        center: Position,
        radius_m: f64,
        out: &mut Vec<(NodeId, Position)>,
    ) {
        // lint: allow(P1) — convenience form; warm paths hold a scratch
        // buffer and call `candidates_within_scratch` directly.
        let mut scratch = Vec::new();
        self.candidates_within_scratch(center, radius_m, out, &mut scratch);
    }

    /// Like [`SpatialGrid::candidates_within_into`], with a caller-owned
    /// scratch buffer so the internal merge allocates nothing once both
    /// buffers have warmed up — the form the transmit hot path uses.
    ///
    /// The buckets of the 3×3 block are individually id-sorted; the block is
    /// gathered once and then merged bottom-up, pairs of runs at a time,
    /// ping-ponging between `out` and `scratch`. Ids are unique across
    /// buckets, so the result is exactly the ascending sequence a
    /// copy-then-sort would produce, at a fraction of the comparisons.
    ///
    /// # Panics
    ///
    /// Panics if `radius_m` exceeds the grid's cell size.
    pub fn candidates_within_scratch(
        &self,
        center: Position,
        radius_m: f64,
        out: &mut Vec<(NodeId, Position)>,
        scratch: &mut Vec<(NodeId, Position)>,
    ) {
        assert!(
            radius_m <= self.cell_m,
            "query radius {radius_m} exceeds grid cell size {}",
            self.cell_m
        );
        out.clear();
        let (cx, cy) = Self::cell_of(self.cell_m, center);
        // Gather: concatenate the non-empty buckets, recording run bounds.
        let mut bounds = [0usize; 10];
        let mut runs = 0;
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(bucket) = self.buckets.get(&(cx + dx, cy + dy)) {
                    if !bucket.is_empty() {
                        out.extend_from_slice(bucket);
                        runs += 1;
                        bounds[runs] = out.len();
                    }
                }
            }
        }
        // Merge passes: halve the run count until one ascending run remains.
        while runs > 1 {
            scratch.clear();
            let mut new_bounds = [0usize; 10];
            let mut new_runs = 0;
            let mut r = 0;
            while r + 1 < runs {
                let (mut i, iend) = (bounds[r], bounds[r + 1]);
                let (mut j, jend) = (bounds[r + 1], bounds[r + 2]);
                while i < iend && j < jend {
                    if out[i].0 < out[j].0 {
                        scratch.push(out[i]);
                        i += 1;
                    } else {
                        scratch.push(out[j]);
                        j += 1;
                    }
                }
                scratch.extend_from_slice(&out[i..iend]);
                scratch.extend_from_slice(&out[j..jend]);
                new_runs += 1;
                new_bounds[new_runs] = scratch.len();
                r += 2;
            }
            if r < runs {
                scratch.extend_from_slice(&out[bounds[r]..bounds[r + 1]]);
                new_runs += 1;
                new_bounds[new_runs] = scratch.len();
            }
            std::mem::swap(out, scratch);
            bounds = new_bounds;
            runs = new_runs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanet_mobility::geometry::distance;
    use vanet_mobility::Vec2;
    use vanet_sim::SimRng;

    fn random_nodes(n: usize, extent: f64, seed: u64) -> Vec<(NodeId, Position)> {
        let mut rng = SimRng::new(seed);
        (0..n)
            .map(|i| {
                (
                    NodeId(i as u32),
                    Vec2::new(
                        rng.uniform_range(0.0, extent),
                        rng.uniform_range(0.0, extent),
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn query_finds_every_node_in_range() {
        let nodes = random_nodes(300, 3_000.0, 1);
        let grid = SpatialGrid::build(250.0, &nodes);
        assert_eq!(grid.len(), 300);
        for &(_, center) in nodes.iter().step_by(17) {
            let candidates = grid.candidates_within(center, 250.0);
            let expect: Vec<NodeId> = nodes
                .iter()
                .filter(|&&(_, p)| distance(center, p) <= 250.0)
                .map(|&(id, _)| id)
                .collect();
            for id in &expect {
                assert!(
                    candidates.iter().any(|(c, _)| c == id),
                    "node {id:?} within range but missing from grid query"
                );
            }
        }
    }

    #[test]
    fn candidates_are_sorted_by_node_id() {
        let nodes = random_nodes(120, 400.0, 2);
        let grid = SpatialGrid::build(250.0, &nodes);
        let candidates = grid.candidates_within(Vec2::new(200.0, 200.0), 250.0);
        assert!(candidates.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(!candidates.is_empty());
    }

    #[test]
    fn negative_coordinates_are_indexed() {
        let nodes = vec![
            (NodeId(0), Vec2::new(-10.0, -10.0)),
            (NodeId(1), Vec2::new(-240.0, 0.0)),
            (NodeId(2), Vec2::new(300.0, 300.0)),
        ];
        let grid = SpatialGrid::build(250.0, &nodes);
        let near_origin = grid.candidates_within(Vec2::ZERO, 250.0);
        assert!(near_origin.iter().any(|&(id, _)| id == NodeId(0)));
        assert!(near_origin.iter().any(|&(id, _)| id == NodeId(1)));
    }

    #[test]
    fn empty_grid_queries_are_empty() {
        let grid = SpatialGrid::build(100.0, &[]);
        assert!(grid.is_empty());
        assert!(grid.candidates_within(Vec2::ZERO, 100.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds grid cell size")]
    fn oversized_radius_panics() {
        let grid = SpatialGrid::build(100.0, &[]);
        let _ = grid.candidates_within(Vec2::ZERO, 150.0);
    }

    #[test]
    fn update_moves_nodes_between_cells() {
        let mut grid = SpatialGrid::build(
            100.0,
            &[
                (NodeId(0), Vec2::new(10.0, 10.0)),
                (NodeId(1), Vec2::new(50.0, 50.0)),
            ],
        );
        // Same-cell move: position updates in place.
        grid.update(NodeId(0), Vec2::new(10.0, 10.0), Vec2::new(20.0, 20.0));
        // Cross-cell move far away: node leaves the origin neighbourhood.
        grid.update(NodeId(1), Vec2::new(50.0, 50.0), Vec2::new(950.0, 950.0));
        assert_eq!(grid.len(), 2);
        let near = grid.candidates_within(Vec2::ZERO, 100.0);
        assert_eq!(near, vec![(NodeId(0), Vec2::new(20.0, 20.0))]);
        let far = grid.candidates_within(Vec2::new(940.0, 940.0), 100.0);
        assert_eq!(far, vec![(NodeId(1), Vec2::new(950.0, 950.0))]);
    }

    #[test]
    #[should_panic(expected = "not indexed")]
    fn update_with_a_wrong_old_position_panics() {
        let mut grid = SpatialGrid::build(100.0, &[(NodeId(0), Vec2::new(10.0, 10.0))]);
        grid.update(NodeId(0), Vec2::new(500.0, 500.0), Vec2::ZERO);
    }

    /// The satellite property: after a randomised sequence of incremental
    /// moves, queries against the updated grid equal queries against a grid
    /// freshly built from the final positions — same ids, same order (the
    /// NodeId-sorted order deterministic RNG consumption depends on).
    #[test]
    fn incremental_updates_match_a_fresh_build() {
        let mut rng = SimRng::new(0x9a1d);
        for case in 0..20 {
            let extent = 2_000.0;
            let cell = 250.0;
            let mut nodes = random_nodes(150, extent, 1_000 + case);
            let mut grid = SpatialGrid::build(cell, &nodes);
            for _ in 0..600 {
                let at = rng.uniform_usize(nodes.len());
                let (id, old_pos) = nodes[at];
                // Mix of small jitters (usually same cell) and long jumps.
                let new_pos = if rng.chance(0.2) {
                    Vec2::new(
                        rng.uniform_range(-300.0, extent + 300.0),
                        rng.uniform_range(-300.0, extent + 300.0),
                    )
                } else {
                    old_pos
                        + Vec2::new(
                            rng.uniform_range(-40.0, 40.0),
                            rng.uniform_range(-40.0, 40.0),
                        )
                };
                grid.update(id, old_pos, new_pos);
                nodes[at] = (id, new_pos);
            }
            let fresh = SpatialGrid::build(cell, &nodes);
            assert_eq!(grid.len(), fresh.len());
            for _ in 0..40 {
                let center = Vec2::new(
                    rng.uniform_range(-100.0, extent + 100.0),
                    rng.uniform_range(-100.0, extent + 100.0),
                );
                assert_eq!(
                    grid.candidates_within(center, cell),
                    fresh.candidates_within(center, cell),
                    "case {case}: incremental grid diverged from fresh build at {center:?}"
                );
            }
        }
    }
}
