//! The shared wireless medium.
//!
//! [`Medium::transmit`] is the single entry point through which every frame in
//! the simulation travels. Given the sender, its position, the packet and the
//! current positions of all nodes, it decides who receives a copy and when,
//! applying the propagation model, the contention/collision model and — for
//! unicast frames — the intended-receiver filter.

// lint: hot-path

use crate::channel::PropagationModel;
use crate::mac::MacParams;
use crate::packet::Packet;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use vanet_mobility::geometry::{distance, within, WithinFilter};
use vanet_mobility::Position;
use vanet_sim::{Counter, NodeId, SimRng, SimTime};

/// Configuration of the medium.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MediumConfig {
    /// MAC parameters.
    pub mac: MacParams,
    /// Whether unicast frames are also overheard by other nodes in range
    /// (promiscuous mode, used by implicit-acknowledgement schemes such as
    /// Biswas et al.).
    pub promiscuous: bool,
}

impl Default for MediumConfig {
    fn default() -> Self {
        MediumConfig {
            mac: MacParams::default(),
            promiscuous: true,
        }
    }
}

/// One frame delivery produced by [`Medium::transmit`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Delivery {
    /// The node receiving the frame.
    pub receiver: NodeId,
    /// When the frame finishes arriving at the receiver.
    pub arrival: SimTime,
    /// Whether this receiver was the intended link-layer destination
    /// (`false` for frames merely overheard in promiscuous mode).
    pub intended: bool,
    /// Distance between sender and receiver at transmission time, metres.
    pub distance_m: f64,
}

/// Aggregate statistics collected by the medium.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MediumStats {
    /// Frames handed to the medium for transmission.
    pub transmissions: Counter,
    /// Total frame copies delivered to receivers.
    pub deliveries: Counter,
    /// Frame copies lost to propagation (out of range / fading).
    pub propagation_losses: Counter,
    /// Frame copies lost to collisions.
    pub collision_losses: Counter,
    /// Frame copies lost to an active fault overlay (jamming / burst loss).
    pub fault_losses: Counter,
    /// Total bytes handed to the medium (control + data).
    pub bytes_transmitted: Counter,
}

impl MediumStats {
    /// Counter-wise difference `self − earlier` (saturating at zero): the
    /// medium activity between two snapshots. Telemetry taps snapshot the
    /// stats at each window boundary and report the per-window delta as the
    /// channel-load record — frames on air, deliveries, losses by cause and
    /// bytes, all attributed to the window they happened in.
    #[must_use]
    pub fn since(&self, earlier: &MediumStats) -> MediumStats {
        let delta = |now: Counter, before: Counter| {
            let mut c = Counter::new();
            c.add(now.value().saturating_sub(before.value()));
            c
        };
        MediumStats {
            transmissions: delta(self.transmissions, earlier.transmissions),
            deliveries: delta(self.deliveries, earlier.deliveries),
            propagation_losses: delta(self.propagation_losses, earlier.propagation_losses),
            collision_losses: delta(self.collision_losses, earlier.collision_losses),
            fault_losses: delta(self.fault_losses, earlier.fault_losses),
            bytes_transmitted: delta(self.bytes_transmitted, earlier.bytes_transmitted),
        }
    }

    /// Fraction of candidate receptions lost to collisions.
    #[must_use]
    pub fn collision_rate(&self) -> f64 {
        let attempts = self.deliveries.value()
            + self.collision_losses.value()
            + self.propagation_losses.value();
        if attempts == 0 {
            0.0
        } else {
            self.collision_losses.value() as f64 / attempts as f64
        }
    }
}

/// A rectangular extra-loss overlay installed by the fault subsystem: while
/// active, receivers standing inside `min..=max` lose each frame copy with
/// probability `loss` (after propagation and collision have been resolved).
/// Zones are pre-registered at build time and merely toggled by fault events,
/// so the steady-state transmit path never allocates for them; when no zone
/// is active the delivery pipeline pays a single integer compare.
#[derive(Debug, Clone, Copy)]
struct FaultZone {
    min: Position,
    max: Position,
    loss: f64,
    active: bool,
}

impl FaultZone {
    #[inline]
    fn covers(&self, pos: Position) -> bool {
        pos.x >= self.min.x && pos.x <= self.max.x && pos.y >= self.min.y && pos.y <= self.max.y
    }
}

/// Number of `positions` within `range` of `center` (the interference count
/// against a per-transmission snapshot of the contention window). Uses the
/// banded squared-distance comparison — decision-identical to
/// `distance(p, center) <= range` without the per-entry `hypot`.
fn count_within(positions: &[Position], center: Position, range: f64) -> usize {
    let filter = WithinFilter::new(range);
    positions
        .iter()
        .filter(|&&p| filter.check(p, center))
        .count()
}

/// A coarse uniform-grid index over recent transmissions.
///
/// The interference pipeline needs "transmissions inside the contention
/// window near this point". A flat deque of every recent transmission made
/// that an O(fleet × rate) scan *per frame* — at 100k beaconing vehicles the
/// window holds thousands of entries and the scan dwarfed the rest of the
/// transmit path. Bucketing by position bounds each query to the 3×3 cells
/// around the point. Per-cell deques stay time-ordered (simulation time is
/// monotone), so pruning is a pop-front loop; queries re-apply the exact
/// time-window and banded-distance predicates, so the surviving set — and
/// therefore every interference *count* derived from it — is identical to
/// the flat scan's. Only counts ever leave this index, so the cell-by-cell
/// visit order is unobservable.
#[derive(Debug, Default)]
struct RecentIndex {
    cell_m: f64,
    // lint: allow(D1) — cells are read only by keyed 3×3-block lookup and
    // every query re-applies the exact time-window and distance predicates,
    // so only counts (and predicate-filtered positions, gathered in the
    // deterministic dx/dy block order) ever leave the map; pinned by
    // `recent_index_counts_match_a_flat_scan`.
    cells: HashMap<(i64, i64), VecDeque<(SimTime, Position)>>,
}

impl RecentIndex {
    /// (Re)initialises the index for `cell_m`-sized cells. Queries are valid
    /// for any radius up to `cell_m`.
    fn reset(&mut self, cell_m: f64) {
        assert!(
            cell_m.is_finite() && cell_m > 0.0,
            "recent-transmission cell size must be positive and finite"
        );
        self.cell_m = cell_m;
        self.cells.clear();
    }

    fn cell_of(&self, pos: Position) -> (i64, i64) {
        (
            (pos.x / self.cell_m).floor() as i64,
            (pos.y / self.cell_m).floor() as i64,
        )
    }

    /// Records a transmission and prunes that cell's entries older than
    /// `keep` (entries arrive in time order, so pruning is front-pops).
    fn push(&mut self, now: SimTime, pos: Position, keep: f64) {
        let cell = self.cells.entry(self.cell_of(pos)).or_default();
        while let Some((t, _)) = cell.front() {
            if now.saturating_since(*t).as_secs() > keep {
                cell.pop_front();
            } else {
                break;
            }
        }
        cell.push_back((now, pos));
    }

    /// Appends to `out` the positions of transmissions within `window`
    /// seconds before `now` and within `radius` of `center`.
    ///
    /// # Panics
    ///
    /// Panics if `radius` exceeds the cell size (the 3×3 block would miss
    /// entries further than one cell away).
    fn collect_window(
        &self,
        now: SimTime,
        center: Position,
        window: f64,
        radius: f64,
        out: &mut Vec<Position>,
    ) {
        assert!(
            radius <= self.cell_m,
            "query radius {radius} exceeds recent-index cell size {}",
            self.cell_m
        );
        let filter = WithinFilter::new(radius);
        let (cx, cy) = self.cell_of(center);
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(cell) = self.cells.get(&(cx + dx, cy + dy)) {
                    // Entries are time-ordered: skip the stale prefix, then
                    // everything from the first in-window entry onward is in
                    // the window.
                    for &(t, p) in cell.iter().rev() {
                        if now.saturating_since(t).as_secs() > window {
                            break;
                        }
                        if filter.check(p, center) {
                            out.push(p);
                        }
                    }
                }
            }
        }
    }

    /// Counts transmissions within `window` seconds before `now` and within
    /// `radius` of `center` — allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `radius` exceeds the cell size.
    fn count_window(&self, now: SimTime, center: Position, window: f64, radius: f64) -> usize {
        assert!(
            radius <= self.cell_m,
            "query radius {radius} exceeds recent-index cell size {}",
            self.cell_m
        );
        let filter = WithinFilter::new(radius);
        let (cx, cy) = self.cell_of(center);
        let mut count = 0;
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(cell) = self.cells.get(&(cx + dx, cy + dy)) {
                    for &(t, p) in cell.iter().rev() {
                        if now.saturating_since(t).as_secs() > window {
                            break;
                        }
                        if filter.check(p, center) {
                            count += 1;
                        }
                    }
                }
            }
        }
        count
    }
}

/// The shared broadcast medium connecting all nodes.
#[derive(Debug)]
pub struct Medium {
    config: MediumConfig,
    propagation: Box<dyn PropagationModel + Send>,
    /// Recent transmissions, spatially bucketed. Used for the interference
    /// snapshot and to estimate channel load.
    recent: RecentIndex,
    /// Positions of the transmissions inside the contention window at the
    /// time of the current frame — snapshotted once per transmission so the
    /// per-receiver interference count is a scan of the (small) in-window
    /// set instead of re-filtering the whole `recent` deque per candidate.
    snapshot: Vec<Position>,
    /// Reusable buffer for spatial-grid candidate queries.
    candidates: Vec<(NodeId, Position)>,
    /// Scratch buffer for the grid query's run merge.
    candidate_scratch: Vec<(NodeId, Position)>,
    /// Pre-registered fault overlay rectangles, toggled by fault events.
    fault_zones: Vec<FaultZone>,
    /// How many fault zones are currently active — the transmit path's only
    /// cost when faults are disabled is comparing this against zero.
    active_fault_zones: usize,
    stats: MediumStats,
}

impl Medium {
    /// Creates a medium with the given configuration and propagation model.
    #[must_use]
    pub fn new(config: MediumConfig, propagation: Box<dyn PropagationModel + Send>) -> Self {
        let mut recent = RecentIndex::default();
        recent.reset(Self::relevant_range(propagation.as_ref()));
        Medium {
            config,
            propagation,
            recent,
            // lint: allow(P1) — construction, once per simulation; these
            // buffers grow to steady-state size and are reused thereafter.
            snapshot: Vec::new(),
            // lint: allow(P1) — construction, once per simulation.
            candidates: Vec::new(),
            // lint: allow(P1) — construction, once per simulation.
            candidate_scratch: Vec::new(),
            // lint: allow(P1) — construction, once per simulation.
            fault_zones: Vec::new(),
            active_fault_zones: 0,
            stats: MediumStats::default(),
        }
    }

    /// Registers a rectangular fault-overlay zone (inactive until toggled)
    /// and returns its slot for [`Medium::set_fault_zone_active`]. Zones are
    /// registered once at simulation build time, so the delivery pipeline
    /// iterates a pre-sized, allocation-free vector.
    pub fn add_fault_zone(&mut self, min: Position, max: Position, loss: f64) -> usize {
        self.fault_zones.push(FaultZone {
            min,
            max,
            loss,
            active: false,
        });
        self.fault_zones.len() - 1
    }

    /// Activates or deactivates a registered fault zone.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was not returned by [`Medium::add_fault_zone`].
    pub fn set_fault_zone_active(&mut self, slot: usize, active: bool) {
        let zone = &mut self.fault_zones[slot];
        if zone.active != active {
            zone.active = active;
            if active {
                self.active_fault_zones += 1;
            } else {
                self.active_fault_zones -= 1;
            }
        }
    }

    /// Number of currently active fault zones.
    #[must_use]
    pub fn active_fault_zone_count(&self) -> usize {
        self.active_fault_zones
    }

    /// Pre-sizes the per-transmission scratch buffers for a neighbourhood of
    /// `expected_candidates` nodes (the typical 3×3-cell grid query result).
    /// Purely a capacity hint — the buffers grow on demand regardless — but
    /// reserving up front means a fleet-scale run's first transmissions don't
    /// pay a reallocation ramp while the caches are already cold.
    pub fn reserve_for_neighborhood(&mut self, expected_candidates: usize) {
        self.candidates.reserve(expected_candidates);
        self.candidate_scratch.reserve(expected_candidates);
        self.snapshot.reserve(expected_candidates);
    }

    /// The largest distance at which a recent transmission can matter to any
    /// receiver of a frame: every receiver lies within `max_range` of the
    /// sender, interference reaches `2 × nominal_range`, and the extra metre
    /// of slack dwarfs any floating-point rounding. Doubles as the recent-
    /// index cell size, so 3×3-cell queries cover both the snapshot radius
    /// and the smaller `channel_load` radius.
    fn relevant_range(propagation: &(dyn PropagationModel + Send)) -> f64 {
        propagation.max_range() + propagation.nominal_range() * 2.0 + 1.0
    }

    /// The propagation model in use.
    #[must_use]
    pub fn propagation(&self) -> &(dyn PropagationModel + Send) {
        self.propagation.as_ref()
    }

    /// The medium configuration.
    #[must_use]
    pub fn config(&self) -> &MediumConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &MediumStats {
        &self.stats
    }

    /// Resets the accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats = MediumStats::default();
    }

    /// Number of transmissions in the contention window around `now` within
    /// interference range (2× nominal range) of `position`.
    #[must_use]
    pub fn channel_load(&self, now: SimTime, position: Position) -> usize {
        let window = self.config.mac.contention_window_s;
        let interference_range = self.propagation.nominal_range() * 2.0;
        self.recent
            .count_window(now, position, window, interference_range)
    }

    /// Transmits `packet` from `sender` at `sender_pos` to every node in
    /// `nodes` (id, position) pairs, excluding the sender itself. Returns the
    /// successful deliveries; losses are recorded in [`MediumStats`].
    pub fn transmit(
        &mut self,
        now: SimTime,
        sender: NodeId,
        sender_pos: Position,
        packet: &Packet,
        nodes: &[(NodeId, Position)],
        rng: &mut SimRng,
    ) -> Vec<Delivery> {
        // lint: allow(P1) — convenience form; the engine's warm path owns a
        // delivery buffer and calls the `_into` variants.
        let mut deliveries = Vec::new();
        self.begin_transmission(now, sender_pos, packet);
        self.deliver(now, sender, sender_pos, packet, nodes, rng, &mut deliveries);
        deliveries
    }

    /// Like [`Medium::transmit`], but takes the candidate receivers from a
    /// [`SpatialGrid`](crate::SpatialGrid) instead of scanning every node, so
    /// the cost scales with local density rather than total fleet size.
    ///
    /// The grid must be built with a cell size of at least
    /// [`PropagationModel::max_range`]. Candidates are processed in ascending
    /// node-id order — the same order `transmit` sees when its `nodes` slice
    /// is id-sorted — so both paths draw identically from `rng` and produce
    /// identical deliveries.
    pub fn transmit_indexed(
        &mut self,
        now: SimTime,
        sender: NodeId,
        sender_pos: Position,
        packet: &Packet,
        grid: &crate::SpatialGrid,
        rng: &mut SimRng,
    ) -> Vec<Delivery> {
        // lint: allow(P1) — convenience form; warm-path callers reuse a
        // buffer via `transmit_indexed_into`.
        let mut deliveries = Vec::new();
        self.transmit_indexed_into(now, sender, sender_pos, packet, grid, rng, &mut deliveries);
        deliveries
    }

    /// The allocation-free form of [`Medium::transmit_indexed`]: clears `out`
    /// and fills it with this frame's deliveries. A driver that owns `out`
    /// and reuses it across calls pays no per-transmission heap allocation
    /// once the buffer has warmed up.
    #[allow(clippy::too_many_arguments)]
    pub fn transmit_indexed_into(
        &mut self,
        now: SimTime,
        sender: NodeId,
        sender_pos: Position,
        packet: &Packet,
        grid: &crate::SpatialGrid,
        rng: &mut SimRng,
        out: &mut Vec<Delivery>,
    ) {
        out.clear();
        self.begin_transmission(now, sender_pos, packet);
        let mut candidates = std::mem::take(&mut self.candidates);
        let mut scratch = std::mem::take(&mut self.candidate_scratch);
        grid.candidates_within_scratch(
            sender_pos,
            self.propagation.max_range(),
            &mut candidates,
            &mut scratch,
        );
        self.deliver(now, sender, sender_pos, packet, &candidates, rng, out);
        candidates.clear();
        self.candidates = candidates;
        self.candidate_scratch = scratch;
    }

    /// Books the transmission into the contention window and the statistics,
    /// and snapshots the in-window transmission positions (including this
    /// frame's own) for the interference counts of the delivery pipeline.
    ///
    /// The snapshot keeps only entries that could possibly interfere at this
    /// frame's sender or any of its receivers: every receiver lies within
    /// `max_range` of the sender, so by the triangle inequality an entry
    /// further than `max_range + interference_range` from the sender is out
    /// of interference range of all of them (see [`Medium::relevant_range`]).
    /// The spatially-bucketed recent index serves that query from the 3×3
    /// cells around the sender instead of a scan of every in-window
    /// transmission in the fleet; the predicates are unchanged, so the
    /// snapshot multiset — and every count derived from it — is identical.
    fn begin_transmission(&mut self, now: SimTime, sender_pos: Position, packet: &Packet) {
        let keep = self.config.mac.contention_window_s * 4.0;
        self.recent.push(now, sender_pos, keep);
        self.stats.transmissions.incr();
        self.stats.bytes_transmitted.add(packet.size_bytes() as u64);
        let window = self.config.mac.contention_window_s;
        let relevant = Self::relevant_range(self.propagation.as_ref());
        self.snapshot.clear();
        self.recent
            .collect_window(now, sender_pos, window, relevant, &mut self.snapshot);
    }

    /// Runs the propagation / contention / collision pipeline over the
    /// candidate receivers, in slice order, appending to `out`.
    #[allow(clippy::too_many_arguments)]
    fn deliver(
        &mut self,
        now: SimTime,
        sender: NodeId,
        sender_pos: Position,
        packet: &Packet,
        nodes: &[(NodeId, Position)],
        rng: &mut SimRng,
        out: &mut Vec<Delivery>,
    ) {
        let interference_range = self.propagation.nominal_range() * 2.0;
        // The snapshot always contains this frame's own entry; when it is
        // the only one, every interference count below is 0 after the
        // self-discount, so the scans can be skipped outright (the RNG draws
        // they feed still happen, so outcomes are identical).
        let snapshot_trivial = self.snapshot.len() <= 1;
        // `begin_transmission` has already pushed this frame into the window
        // (and the snapshot), so discount it when counting contenders.
        let contenders = if snapshot_trivial {
            0
        } else {
            count_within(&self.snapshot, sender_pos, interference_range).saturating_sub(1)
        };
        let backoff = self.config.mac.sample_backoff(contenders, rng);
        let tx_delay = self.config.mac.transmission_delay(packet.size_bytes());
        let processing = vanet_sim::SimDuration::from_secs(self.config.mac.processing_delay_s);
        let range_filter = WithinFilter::new(self.propagation.max_range());

        for &(node, pos) in nodes {
            if node == sender {
                continue;
            }
            // Cheap banded reject first — a 3×3-cell candidate block holds
            // roughly twice as many nodes as the range circle, so most
            // candidates leave here without paying for an exact distance.
            if !range_filter.check(sender_pos, pos) {
                continue;
            }
            let d = distance(sender_pos, pos);
            // Unicast frames are only *delivered* to the intended next hop
            // unless promiscuous overhearing is enabled.
            let intended = match packet.next_hop {
                None => true,
                Some(h) => h == node,
            };
            if !intended && !self.config.promiscuous {
                continue;
            }
            if !self.propagation.sample_reception(d, rng) {
                self.stats.propagation_losses.incr();
                continue;
            }
            let interferers = if snapshot_trivial {
                0
            } else {
                count_within(&self.snapshot, pos, interference_range).saturating_sub(1)
            };
            if !self.config.mac.sample_collision_survival(interferers, rng) {
                self.stats.collision_losses.incr();
                continue;
            }
            // Fault overlay: one combined-survival draw per candidate that
            // stands inside at least one active zone. With no active zones
            // this is a single integer compare and zero RNG draws, keeping
            // fault-free runs byte-identical.
            if self.active_fault_zones > 0 {
                let mut survive = 1.0;
                for zone in &self.fault_zones {
                    if zone.active && zone.covers(pos) {
                        survive *= 1.0 - zone.loss;
                    }
                }
                if survive < 1.0 && rng.uniform() >= survive {
                    self.stats.fault_losses.incr();
                    continue;
                }
            }
            let arrival =
                now + processing + backoff + tx_delay + self.config.mac.propagation_delay(d);
            self.stats.deliveries.incr();
            out.push(Delivery {
                receiver: node,
                arrival,
                intended,
                distance_m: d,
            });
        }
    }

    /// Whether two positions are within nominal communication range: the
    /// connectivity predicate used by protocols when they reason about links.
    #[must_use]
    pub fn in_range(&self, a: Position, b: Position) -> bool {
        within(a, b, self.propagation.nominal_range())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{LogNormalShadowing, UnitDisk};
    use crate::packet::{Packet, PacketKind};
    use vanet_mobility::Vec2;

    fn nodes_on_a_line(count: usize, spacing: f64) -> Vec<(NodeId, Position)> {
        (0..count)
            .map(|i| (NodeId(i as u32), Vec2::new(i as f64 * spacing, 0.0)))
            .collect()
    }

    fn medium_unit_disk(range: f64) -> Medium {
        Medium::new(
            MediumConfig {
                mac: MacParams::ideal(),
                promiscuous: true,
            },
            Box::new(UnitDisk::new(range)),
        )
    }

    #[test]
    fn broadcast_reaches_only_nodes_in_range() {
        let mut m = medium_unit_disk(250.0);
        let nodes = nodes_on_a_line(5, 200.0); // 0,200,400,600,800
        let pkt = Packet::broadcast(NodeId(0), PacketKind::Hello, 0);
        let mut rng = SimRng::new(1);
        let deliveries = m.transmit(SimTime::ZERO, NodeId(0), Vec2::ZERO, &pkt, &nodes, &mut rng);
        let receivers: Vec<u32> = deliveries.iter().map(|d| d.receiver.0).collect();
        assert_eq!(receivers, vec![1], "only the 200 m neighbour is in range");
        assert_eq!(m.stats().transmissions.value(), 1);
        assert_eq!(m.stats().deliveries.value(), 1);
    }

    #[test]
    fn sender_never_receives_its_own_frame() {
        let mut m = medium_unit_disk(1_000.0);
        let nodes = nodes_on_a_line(3, 100.0);
        let pkt = Packet::broadcast(NodeId(1), PacketKind::Hello, 0);
        let mut rng = SimRng::new(2);
        let deliveries = m.transmit(
            SimTime::ZERO,
            NodeId(1),
            Vec2::new(100.0, 0.0),
            &pkt,
            &nodes,
            &mut rng,
        );
        assert!(deliveries.iter().all(|d| d.receiver != NodeId(1)));
        assert_eq!(deliveries.len(), 2);
    }

    #[test]
    fn unicast_marks_intended_receiver() {
        let mut m = medium_unit_disk(500.0);
        let nodes = nodes_on_a_line(3, 100.0);
        let mut pkt = Packet::data(NodeId(0), NodeId(2), 100);
        pkt.next_hop = Some(NodeId(1));
        let mut rng = SimRng::new(3);
        let deliveries = m.transmit(SimTime::ZERO, NodeId(0), Vec2::ZERO, &pkt, &nodes, &mut rng);
        let intended: Vec<u32> = deliveries
            .iter()
            .filter(|d| d.intended)
            .map(|d| d.receiver.0)
            .collect();
        assert_eq!(intended, vec![1]);
        // Promiscuous mode: node 2 overhears.
        assert!(deliveries
            .iter()
            .any(|d| d.receiver == NodeId(2) && !d.intended));
    }

    #[test]
    fn non_promiscuous_unicast_reaches_only_next_hop() {
        let mut m = Medium::new(
            MediumConfig {
                mac: MacParams::ideal(),
                promiscuous: false,
            },
            Box::new(UnitDisk::new(500.0)),
        );
        let nodes = nodes_on_a_line(3, 100.0);
        let mut pkt = Packet::data(NodeId(0), NodeId(2), 100);
        pkt.next_hop = Some(NodeId(1));
        let mut rng = SimRng::new(4);
        let deliveries = m.transmit(SimTime::ZERO, NodeId(0), Vec2::ZERO, &pkt, &nodes, &mut rng);
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].receiver, NodeId(1));
    }

    #[test]
    fn arrival_time_is_after_transmission_time() {
        let mut m = medium_unit_disk(500.0);
        let nodes = nodes_on_a_line(2, 100.0);
        let pkt = Packet::data(NodeId(0), NodeId(1), 1_000);
        let mut rng = SimRng::new(5);
        let now = SimTime::from_secs(10.0);
        let deliveries = m.transmit(now, NodeId(0), Vec2::ZERO, &pkt, &nodes, &mut rng);
        assert!(deliveries[0].arrival > now);
        assert!((deliveries[0].arrival - now).as_secs() < 0.01);
    }

    #[test]
    fn channel_load_counts_recent_nearby_transmissions() {
        let mut m = Medium::new(MediumConfig::default(), Box::new(UnitDisk::new(250.0)));
        let nodes = nodes_on_a_line(2, 100.0);
        let pkt = Packet::broadcast(NodeId(0), PacketKind::Hello, 0);
        let mut rng = SimRng::new(6);
        for _ in 0..5 {
            m.transmit(SimTime::ZERO, NodeId(0), Vec2::ZERO, &pkt, &nodes, &mut rng);
        }
        assert_eq!(m.channel_load(SimTime::ZERO, Vec2::ZERO), 5);
        // Far away, the same transmissions do not count.
        assert_eq!(m.channel_load(SimTime::ZERO, Vec2::new(10_000.0, 0.0)), 0);
        // Long after, they have been pruned from the window.
        assert_eq!(m.channel_load(SimTime::from_secs(10.0), Vec2::ZERO), 0);
    }

    #[test]
    fn collisions_increase_with_simultaneous_transmissions() {
        let mut m = Medium::new(
            MediumConfig {
                mac: MacParams {
                    collision_probability: 0.2,
                    ..MacParams::default()
                },
                promiscuous: true,
            },
            Box::new(UnitDisk::new(500.0)),
        );
        let nodes = nodes_on_a_line(30, 20.0);
        let mut rng = SimRng::new(7);
        // Every node broadcasts at the same instant: heavy contention.
        for i in 0..30u32 {
            let pkt = Packet::broadcast(NodeId(i), PacketKind::Hello, 64);
            let pos = Vec2::new(i as f64 * 20.0, 0.0);
            m.transmit(SimTime::ZERO, NodeId(i), pos, &pkt, &nodes, &mut rng);
        }
        assert!(
            m.stats().collision_losses.value() > 0,
            "synchronous broadcasts should collide"
        );
        assert!(m.stats().collision_rate() > 0.0);
    }

    #[test]
    fn shadowing_medium_delivers_probabilistically() {
        let mut m = Medium::new(
            MediumConfig {
                mac: MacParams::ideal(),
                promiscuous: true,
            },
            Box::new(LogNormalShadowing::new(250.0, 2.7, 4.0)),
        );
        let nodes = vec![(NodeId(1), Vec2::new(250.0, 0.0))];
        let pkt = Packet::broadcast(NodeId(0), PacketKind::Hello, 0);
        let mut rng = SimRng::new(8);
        let mut received = 0;
        let n = 2_000;
        for _ in 0..n {
            received += m
                .transmit(SimTime::ZERO, NodeId(0), Vec2::ZERO, &pkt, &nodes, &mut rng)
                .len();
        }
        let freq = received as f64 / n as f64;
        assert!(
            (freq - 0.5).abs() < 0.05,
            "delivery frequency at nominal range should be ~0.5, got {freq}"
        );
        assert!(m.stats().propagation_losses.value() > 0);
    }

    #[test]
    fn in_range_uses_nominal_range() {
        let m = medium_unit_disk(250.0);
        assert!(m.in_range(Vec2::ZERO, Vec2::new(200.0, 0.0)));
        assert!(!m.in_range(Vec2::ZERO, Vec2::new(300.0, 0.0)));
    }

    #[test]
    fn fault_zone_drops_receivers_inside_it() {
        let mut m = medium_unit_disk(500.0);
        let nodes = nodes_on_a_line(3, 100.0); // at 0, 100, 200
        let pkt = Packet::broadcast(NodeId(0), PacketKind::Hello, 0);
        // Total-loss zone covering only the node at x=200.
        let slot = m.add_fault_zone(Vec2::new(150.0, -10.0), Vec2::new(250.0, 10.0), 1.0);
        let mut rng = SimRng::new(11);

        // Inactive zone: both neighbours receive.
        let deliveries = m.transmit(SimTime::ZERO, NodeId(0), Vec2::ZERO, &pkt, &nodes, &mut rng);
        assert_eq!(deliveries.len(), 2);
        assert_eq!(m.stats().fault_losses.value(), 0);

        // Active zone: the covered receiver is lost, the other survives.
        m.set_fault_zone_active(slot, true);
        assert_eq!(m.active_fault_zone_count(), 1);
        let deliveries = m.transmit(SimTime::ZERO, NodeId(0), Vec2::ZERO, &pkt, &nodes, &mut rng);
        let receivers: Vec<u32> = deliveries.iter().map(|d| d.receiver.0).collect();
        assert_eq!(receivers, vec![1]);
        assert_eq!(m.stats().fault_losses.value(), 1);

        // Deactivated again: back to both.
        m.set_fault_zone_active(slot, false);
        assert_eq!(m.active_fault_zone_count(), 0);
        let deliveries = m.transmit(SimTime::ZERO, NodeId(0), Vec2::ZERO, &pkt, &nodes, &mut rng);
        assert_eq!(deliveries.len(), 2);
    }

    #[test]
    fn overlapping_fault_zones_compose_their_loss() {
        let mut m = medium_unit_disk(500.0);
        let nodes = vec![(NodeId(1), Vec2::new(100.0, 0.0))];
        let pkt = Packet::broadcast(NodeId(0), PacketKind::Hello, 0);
        let everywhere_min = Vec2::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        let everywhere_max = Vec2::new(f64::INFINITY, f64::INFINITY);
        let a = m.add_fault_zone(everywhere_min, everywhere_max, 0.5);
        let b = m.add_fault_zone(everywhere_min, everywhere_max, 0.5);
        m.set_fault_zone_active(a, true);
        m.set_fault_zone_active(b, true);
        let mut rng = SimRng::new(12);
        let n = 4_000;
        let mut received = 0;
        for _ in 0..n {
            received += m
                .transmit(SimTime::ZERO, NodeId(0), Vec2::ZERO, &pkt, &nodes, &mut rng)
                .len();
        }
        // Two independent 50% zones compose to 25% survival.
        let freq = received as f64 / n as f64;
        assert!(
            (freq - 0.25).abs() < 0.05,
            "composed survival should be ~0.25, got {freq}"
        );
        assert_eq!(
            m.stats().fault_losses.value() + received as u64,
            n as u64,
            "every candidate is either delivered or counted as fault loss"
        );
    }

    #[test]
    fn inactive_zones_consume_no_rng() {
        // Identical RNG streams with and without registered-but-inactive
        // zones: the delivery sequence must match draw-for-draw.
        let nodes = nodes_on_a_line(5, 80.0);
        let pkt = Packet::broadcast(NodeId(0), PacketKind::Hello, 0);
        let mut plain = medium_unit_disk(500.0);
        let mut with_zones = medium_unit_disk(500.0);
        with_zones.add_fault_zone(Vec2::ZERO, Vec2::new(1.0, 1.0), 1.0);
        let mut rng_a = SimRng::new(13);
        let mut rng_b = SimRng::new(13);
        for _ in 0..50 {
            let a = plain.transmit(
                SimTime::ZERO,
                NodeId(0),
                Vec2::ZERO,
                &pkt,
                &nodes,
                &mut rng_a,
            );
            let b = with_zones.transmit(
                SimTime::ZERO,
                NodeId(0),
                Vec2::ZERO,
                &pkt,
                &nodes,
                &mut rng_b,
            );
            assert_eq!(a, b);
        }
    }

    /// The order-insensitivity property behind the `RecentIndex` D1 allow:
    /// after a randomised stream of transmissions, both the window *counts*
    /// and the collected window positions equal a brute-force scan over a
    /// flat, insertion-ordered log — map order never reaches either.
    #[test]
    fn recent_index_counts_match_a_flat_scan() {
        let cell = 250.0;
        let keep = 2.0;
        let mut rng = SimRng::new(0x5eed);
        for case in 0..10 {
            let mut index = RecentIndex::default();
            index.reset(cell);
            let mut flat: Vec<(SimTime, Position)> = Vec::new();
            let mut now = SimTime::ZERO;
            for _ in 0..400 {
                now += vanet_sim::SimDuration::from_secs(rng.uniform_range(0.0, 0.05));
                let pos = Vec2::new(
                    rng.uniform_range(-500.0, 1_500.0),
                    rng.uniform_range(-500.0, 1_500.0),
                );
                index.push(now, pos, keep);
                flat.push((now, pos));
            }
            for _ in 0..30 {
                let center = Vec2::new(
                    rng.uniform_range(-400.0, 1_400.0),
                    rng.uniform_range(-400.0, 1_400.0),
                );
                let window = rng.uniform_range(0.1, keep);
                let radius = rng.uniform_range(10.0, cell);
                let filter = WithinFilter::new(radius);
                let expected = flat
                    .iter()
                    .filter(|&&(t, p)| {
                        now.saturating_since(t).as_secs() <= window && filter.check(p, center)
                    })
                    .count();
                assert_eq!(
                    index.count_window(now, center, window, radius),
                    expected,
                    "case {case}: bucketed count diverged from the flat scan"
                );
                let mut collected = Vec::new();
                index.collect_window(now, center, window, radius, &mut collected);
                assert_eq!(
                    collected.len(),
                    expected,
                    "case {case}: collected window size diverged from the flat scan"
                );
            }
        }
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut m = medium_unit_disk(250.0);
        let nodes = nodes_on_a_line(2, 100.0);
        let pkt = Packet::broadcast(NodeId(0), PacketKind::Hello, 0);
        let mut rng = SimRng::new(9);
        m.transmit(SimTime::ZERO, NodeId(0), Vec2::ZERO, &pkt, &nodes, &mut rng);
        assert!(m.stats().transmissions.value() > 0);
        m.reset_stats();
        assert_eq!(m.stats().transmissions.value(), 0);
    }
}
