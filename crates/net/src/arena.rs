//! Arena co-location of neighbour state.
//!
//! [`NeighborTable`] gives every node two heap `Vec`s (plus an inline key
//! mirror sized for the worst case); at fleet scale that is millions of
//! scattered allocations, and the warmed `observe` path — the hottest call
//! in the megacity bench — still pays a dependent cache miss into each
//! node's own little heap islands. [`NeighborArena`] replaces all of that
//! with **one contiguous slab** shared by the whole fleet: entries live in
//! fixed-size blocks (index-linked, ascending by [`NodeId`] across a node's
//! chain), nodes hold a 16-byte [`ArenaTable`] handle instead of owning
//! storage, and blocks freed by neighbour churn go on a free list for O(1)
//! reuse. Observe/purge walks touch a handful of adjacent cache lines in
//! one region the hardware prefetcher understands, and the per-node handle
//! shrinks the fleet's node array by two orders of magnitude.
//!
//! The eager [`NeighborTable`] remains the reference implementation: the
//! property tests in this module drive both through randomised churn and
//! pin identical observe results, iteration order, loss observations and
//! deadline evolution — the same technique that pinned lazy expiry and the
//! incremental grid.
//!
//! Protocols never mutate neighbour state, so they read through
//! [`NeighborView`], a copyable facade over either backing store with the
//! exact read API (`contains` / `get` / `iter` / `closest_to` /
//! `greedy_next_hop` / `ranked_by`) and the same ascending-id iteration
//! order the deterministic driver depends on.

// lint: hot-path

use crate::neighbor::{NeighborInfo, NeighborTable};
use vanet_mobility::geometry::distance;
use vanet_mobility::{Position, Vec2, Velocity};
use vanet_sim::{NodeId, SimDuration, SimTime};

/// Entries per block. Thirty-two 56-byte entries keep a realistic urban
/// density (~50 neighbours) to a two-to-three block chain, so a lookup's
/// pointer-chase is bounded by a couple of dependent loads; the compact key
/// mirror at the front of the block means the in-block scan touches two
/// cache lines before any payload is read. (Narrower blocks were measured
/// slower: with 8 entries the same density chained ~7 scattered blocks and
/// the dependent misses dominated the refresh path.)
const BLOCK_ENTRIES: usize = 32;

/// Null block index (the slab can therefore hold up to `u32::MAX - 1`
/// blocks, far beyond any fleet this simulates).
const NIL: u32 = u32::MAX;

/// Filler for unoccupied entry slots; never observable through the API.
const EMPTY_INFO: NeighborInfo = NeighborInfo {
    id: NodeId(0),
    position: Vec2::ZERO,
    velocity: Vec2::ZERO,
    last_heard: SimTime::ZERO,
    expires_at: SimTime::ZERO,
};

/// One slab block: up to [`BLOCK_ENTRIES`] entries sorted ascending by id,
/// with the ids mirrored in a compact key array so lookups scan keys
/// without striding through payloads (the same layout trick the reference
/// table uses, applied per block).
#[derive(Debug, Clone)]
struct Block {
    /// `keys[i] == entries[i].id` for `i < len`.
    keys: [NodeId; BLOCK_ENTRIES],
    /// Occupied entry count (≥ 1 for every block linked into a chain).
    len: u32,
    /// Next block in this node's chain, or — for blocks on the free list —
    /// the next free block. [`NIL`] terminates both lists.
    next: u32,
    /// Entry payloads.
    entries: [NeighborInfo; BLOCK_ENTRIES],
}

impl Block {
    fn empty() -> Self {
        Block {
            keys: [NodeId(0); BLOCK_ENTRIES],
            len: 0,
            next: NIL,
            entries: [EMPTY_INFO; BLOCK_ENTRIES],
        }
    }
}

/// A node's handle into the [`NeighborArena`]: the head of its block chain
/// plus the cached entry count and the lazy-expiry deadline bound. 16 bytes
/// where the owning [`NeighborTable`] was hundreds — the fleet's node array
/// stays dense.
#[derive(Debug, Clone, Copy)]
pub struct ArenaTable {
    head: u32,
    len: u32,
    /// Lower bound on the earliest `expires_at` among live entries, or
    /// [`SimTime::MAX`] when empty — identical semantics (and evolution) to
    /// [`NeighborTable::next_deadline`].
    next_deadline: SimTime,
}

impl Default for ArenaTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ArenaTable {
    /// Creates an empty handle.
    #[must_use]
    pub fn new() -> Self {
        ArenaTable {
            head: NIL,
            len: 0,
            next_deadline: SimTime::MAX,
        }
    }

    /// Number of neighbours.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The lazy-expiry deadline bound (see [`NeighborTable::next_deadline`]).
    #[must_use]
    pub fn next_deadline(&self) -> SimTime {
        self.next_deadline
    }
}

/// The shared neighbour-state slab: one `Vec<Block>` for the whole fleet,
/// with an intrusive free list recycling blocks vacated by churn.
#[derive(Debug, Clone, Default)]
pub struct NeighborArena {
    blocks: Vec<Block>,
    free_head: u32,
    free_len: usize,
}

impl NeighborArena {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Self {
        NeighborArena {
            // lint: allow(P1) — construction, once per simulation; the slab
            // itself is what makes the steady state alloc-free.
            blocks: Vec::new(),
            free_head: NIL,
            free_len: 0,
        }
    }

    /// Creates an arena with room for `blocks` blocks before the slab has
    /// to reallocate — sized from the scenario's node count and expected
    /// neighbour density so fleet start-up never pays a doubling ramp over
    /// a multi-gigabyte slab.
    #[must_use]
    pub fn with_block_capacity(blocks: usize) -> Self {
        NeighborArena {
            // lint: allow(P1) — pre-sizing at scenario setup: this is the
            // one allocation that prevents the doubling ramp later.
            blocks: Vec::with_capacity(blocks),
            free_head: NIL,
            free_len: 0,
        }
    }

    /// How many blocks a fleet of `nodes` nodes needs if each averages
    /// `expected_neighbors` entries (rounded up per node, plus one spill
    /// block each).
    #[must_use]
    pub fn blocks_for(nodes: usize, expected_neighbors: f64) -> usize {
        let per_node = (expected_neighbors.max(0.0) / BLOCK_ENTRIES as f64).ceil() as usize + 1;
        nodes.saturating_mul(per_node)
    }

    /// Total slab blocks (live + free).
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Blocks currently parked on the free list.
    #[must_use]
    pub fn free_blocks(&self) -> usize {
        self.free_len
    }

    fn alloc_block(&mut self) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let b = &mut self.blocks[idx as usize];
            self.free_head = b.next;
            self.free_len -= 1;
            b.len = 0;
            b.next = NIL;
            idx
        } else {
            let idx = u32::try_from(self.blocks.len()).expect("arena slab outgrew u32 indices");
            assert!(idx != NIL, "arena slab outgrew u32 indices");
            self.blocks.push(Block::empty());
            idx
        }
    }

    fn free_block(&mut self, idx: u32) {
        let b = &mut self.blocks[idx as usize];
        b.len = 0;
        b.next = self.free_head;
        self.free_head = idx;
        self.free_len += 1;
    }

    /// Inserts or refreshes a neighbour — identical contract to
    /// [`NeighborTable::observe`], including the conservative deadline
    /// bound update. Returns `true` when the neighbour was newly inserted.
    pub fn observe(
        &mut self,
        table: &mut ArenaTable,
        id: NodeId,
        position: Position,
        velocity: Velocity,
        now: SimTime,
        lifetime: SimDuration,
    ) -> bool {
        let expires_at = now + lifetime;
        let info = NeighborInfo {
            id,
            position,
            velocity,
            last_heard: now,
            expires_at,
        };
        let inserted = self.upsert(table, info);
        if expires_at < table.next_deadline {
            table.next_deadline = expires_at;
        }
        inserted
    }

    /// Inserts `info` keeping the chain sorted ascending by id, or replaces
    /// the existing entry in place. Full blocks split in half (classic
    /// unrolled-list insert); appends past a full tail block link a fresh
    /// block instead, which keeps the monotonically-growing case dense.
    fn upsert(&mut self, table: &mut ArenaTable, info: NeighborInfo) -> bool {
        let id = info.id;
        if table.head == NIL {
            let nb = self.alloc_block();
            let blk = &mut self.blocks[nb as usize];
            blk.keys[0] = id;
            blk.entries[0] = info;
            blk.len = 1;
            table.head = nb;
            table.len = 1;
            return true;
        }
        // Target: the first block whose last key is >= id, else the tail.
        let mut cur = table.head;
        loop {
            let blk = &self.blocks[cur as usize];
            if blk.keys[blk.len as usize - 1] >= id || blk.next == NIL {
                break;
            }
            cur = blk.next;
        }
        let blk = &self.blocks[cur as usize];
        let n = blk.len as usize;
        let pos = blk.keys[..n].iter().position(|&k| k >= id).unwrap_or(n);
        if pos < n && blk.keys[pos] == id {
            self.blocks[cur as usize].entries[pos] = info;
            return false;
        }
        table.len += 1;
        if n < BLOCK_ENTRIES {
            let blk = &mut self.blocks[cur as usize];
            for i in (pos..n).rev() {
                blk.keys[i + 1] = blk.keys[i];
                blk.entries[i + 1] = blk.entries[i];
            }
            blk.keys[pos] = id;
            blk.entries[pos] = info;
            blk.len += 1;
            return true;
        }
        if pos == BLOCK_ENTRIES {
            // Appending past a full tail block (the selection loop only
            // leaves pos == n on the tail): link a fresh block.
            let nb = self.alloc_block();
            let blk = &mut self.blocks[nb as usize];
            blk.keys[0] = id;
            blk.entries[0] = info;
            blk.len = 1;
            self.blocks[cur as usize].next = nb;
            return true;
        }
        // Split: upper half moves to a recycled/new block linked after cur.
        const HALF: usize = BLOCK_ENTRIES / 2;
        let nb = self.alloc_block();
        let mut upper_keys = [NodeId(0); HALF];
        let mut upper_entries = [EMPTY_INFO; HALF];
        {
            let blk = &mut self.blocks[cur as usize];
            upper_keys.copy_from_slice(&blk.keys[HALF..]);
            upper_entries.copy_from_slice(&blk.entries[HALF..]);
            blk.len = HALF as u32;
        }
        let old_next = self.blocks[cur as usize].next;
        {
            let blk = &mut self.blocks[nb as usize];
            blk.keys[..HALF].copy_from_slice(&upper_keys);
            blk.entries[..HALF].copy_from_slice(&upper_entries);
            blk.len = HALF as u32;
            blk.next = old_next;
        }
        self.blocks[cur as usize].next = nb;
        let (target, at) = if pos <= HALF {
            (cur, pos)
        } else {
            (nb, pos - HALF)
        };
        let blk = &mut self.blocks[target as usize];
        let n = blk.len as usize;
        for i in (at..n).rev() {
            blk.keys[i + 1] = blk.keys[i];
            blk.entries[i + 1] = blk.entries[i];
        }
        blk.keys[at] = id;
        blk.entries[at] = info;
        blk.len += 1;
        true
    }

    /// Lazy purge with the exact [`NeighborTable::purge_due`] contract:
    /// O(1) until the deadline bound falls due, then one chain scan that
    /// appends expired ids (ascending) to `out`, frees emptied blocks to
    /// the free list and tightens the bound.
    pub fn purge_due(&mut self, table: &mut ArenaTable, now: SimTime, out: &mut Vec<NodeId>) {
        if table.next_deadline >= now {
            return;
        }
        self.scan_and_purge(table, now, out);
    }

    /// Eager purge mirroring [`NeighborTable::purge_expired`]; used by the
    /// equivalence tests.
    pub fn purge_expired(&mut self, table: &mut ArenaTable, now: SimTime) -> Vec<NodeId> {
        // lint: allow(P1) — reference form for the equivalence tests only;
        // the sim drives `purge_due` with a caller-owned buffer.
        let mut out = Vec::new();
        self.scan_and_purge(table, now, &mut out);
        out
    }

    fn scan_and_purge(&mut self, table: &mut ArenaTable, now: SimTime, out: &mut Vec<NodeId>) {
        let mut earliest = SimTime::MAX;
        let mut live = 0u32;
        let mut prev = NIL;
        let mut cur = table.head;
        while cur != NIL {
            let blk = &mut self.blocks[cur as usize];
            let next = blk.next;
            let n = blk.len as usize;
            let mut write = 0;
            for read in 0..n {
                let e = blk.entries[read];
                if e.expires_at < now {
                    out.push(e.id);
                } else {
                    if e.expires_at < earliest {
                        earliest = e.expires_at;
                    }
                    blk.keys[write] = blk.keys[read];
                    blk.entries[write] = e;
                    write += 1;
                }
            }
            blk.len = write as u32;
            live += write as u32;
            if write == 0 {
                if prev == NIL {
                    table.head = next;
                } else {
                    self.blocks[prev as usize].next = next;
                }
                self.free_block(cur);
            } else {
                prev = cur;
            }
            cur = next;
        }
        table.len = live;
        table.next_deadline = earliest;
    }

    /// Removes a specific neighbour, freeing its block if that empties it.
    pub fn remove(&mut self, table: &mut ArenaTable, id: NodeId) -> Option<NeighborInfo> {
        let mut prev = NIL;
        let mut cur = table.head;
        while cur != NIL {
            let blk = &self.blocks[cur as usize];
            let next = blk.next;
            let n = blk.len as usize;
            if id <= blk.keys[n - 1] {
                let i = blk.keys[..n].iter().position(|&k| k == id)?;
                let blk = &mut self.blocks[cur as usize];
                let removed = blk.entries[i];
                for j in i..n - 1 {
                    blk.keys[j] = blk.keys[j + 1];
                    blk.entries[j] = blk.entries[j + 1];
                }
                blk.len -= 1;
                table.len -= 1;
                if blk.len == 0 {
                    if prev == NIL {
                        table.head = next;
                    } else {
                        self.blocks[prev as usize].next = next;
                    }
                    self.free_block(cur);
                }
                return Some(removed);
            }
            prev = cur;
            cur = next;
        }
        None
    }

    /// Looks up a neighbour.
    #[must_use]
    pub fn get<'a>(&'a self, table: &ArenaTable, id: NodeId) -> Option<&'a NeighborInfo> {
        let mut cur = table.head;
        while cur != NIL {
            let blk = &self.blocks[cur as usize];
            let n = blk.len as usize;
            if id <= blk.keys[n - 1] {
                return blk.keys[..n]
                    .iter()
                    .position(|&k| k == id)
                    .map(|i| &blk.entries[i]);
            }
            cur = blk.next;
        }
        None
    }

    /// Whether `id` is currently a neighbour.
    #[must_use]
    pub fn contains(&self, table: &ArenaTable, id: NodeId) -> bool {
        self.get(table, id).is_some()
    }

    /// All of the node's neighbours, ascending by id.
    #[must_use]
    pub fn iter<'a>(&'a self, table: &ArenaTable) -> ArenaIter<'a> {
        ArenaIter {
            arena: self,
            block: table.head,
            pos: 0,
        }
    }

    /// Cache-warming probe mirroring [`NeighborTable::warm_for`]: walks the
    /// chain's key lines and the entry slot a coming `observe` for `id`
    /// will touch, folded into a value the caller can `black_box`.
    #[must_use]
    pub fn warm_for(&self, table: &ArenaTable, id: NodeId) -> usize {
        let mut acc = 0usize;
        let mut cur = table.head;
        while cur != NIL {
            let blk = &self.blocks[cur as usize];
            let n = blk.len as usize;
            if id <= blk.keys[n - 1] {
                return match blk.keys[..n].iter().position(|&k| k == id) {
                    Some(i) => acc ^ (blk.entries[i].last_heard.as_secs().to_bits() as usize),
                    None => acc ^ n,
                };
            }
            acc ^= n;
            cur = blk.next;
        }
        acc
    }

    /// A read-only [`NeighborView`] of one node's table, the form protocols
    /// consume through `ProtocolContext`.
    #[must_use]
    pub fn view<'a>(&'a self, table: &'a ArenaTable) -> NeighborView<'a> {
        NeighborView::Arena { arena: self, table }
    }
}

/// Iterator over one node's chain, ascending by id.
#[derive(Debug, Clone)]
pub struct ArenaIter<'a> {
    arena: &'a NeighborArena,
    block: u32,
    pos: usize,
}

impl<'a> Iterator for ArenaIter<'a> {
    type Item = &'a NeighborInfo;

    fn next(&mut self) -> Option<Self::Item> {
        while self.block != NIL {
            let blk = &self.arena.blocks[self.block as usize];
            if self.pos < blk.len as usize {
                let item = &blk.entries[self.pos];
                self.pos += 1;
                return Some(item);
            }
            self.block = blk.next;
            self.pos = 0;
        }
        None
    }
}

/// A copyable, read-only facade over either neighbour backing store. This
/// is what `ProtocolContext` hands to protocols: the full read API of the
/// reference table, with identical ascending-id iteration (and therefore
/// identical tie-breaks in `closest_to`/`ranked_by`) regardless of backing.
#[derive(Debug, Clone, Copy)]
pub enum NeighborView<'a> {
    /// Backed by an owning [`NeighborTable`] (reference implementation,
    /// protocol unit tests).
    Table(&'a NeighborTable),
    /// Backed by the shared slab (the simulation driver).
    Arena {
        /// The fleet-wide slab.
        arena: &'a NeighborArena,
        /// The node's handle into it.
        table: &'a ArenaTable,
    },
}

impl<'a> From<&'a NeighborTable> for NeighborView<'a> {
    fn from(table: &'a NeighborTable) -> Self {
        NeighborView::Table(table)
    }
}

/// Iterator behind [`NeighborView::iter`].
#[derive(Debug, Clone)]
pub enum NeighborViewIter<'a> {
    /// Contiguous reference-table entries.
    Slice(std::slice::Iter<'a, NeighborInfo>),
    /// Chain walk through the slab.
    Arena(ArenaIter<'a>),
}

impl<'a> Iterator for NeighborViewIter<'a> {
    type Item = &'a NeighborInfo;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            NeighborViewIter::Slice(it) => it.next(),
            NeighborViewIter::Arena(it) => it.next(),
        }
    }
}

impl<'a> NeighborView<'a> {
    /// Number of neighbours.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            NeighborView::Table(t) => t.len(),
            NeighborView::Arena { table, .. } => table.len(),
        }
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `id` is currently a neighbour.
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        match self {
            NeighborView::Table(t) => t.contains(id),
            NeighborView::Arena { arena, table } => arena.contains(table, id),
        }
    }

    /// Looks up a neighbour.
    #[must_use]
    pub fn get(&self, id: NodeId) -> Option<&'a NeighborInfo> {
        match self {
            NeighborView::Table(t) => t.as_slice().iter().find(|n| n.id == id),
            NeighborView::Arena { arena, table } => arena.get(table, id),
        }
    }

    /// All current neighbours, ascending by id.
    #[must_use]
    pub fn iter(&self) -> NeighborViewIter<'a> {
        match self {
            NeighborView::Table(t) => NeighborViewIter::Slice(t.as_slice().iter()),
            NeighborView::Arena { arena, table } => NeighborViewIter::Arena(arena.iter(table)),
        }
    }

    /// The neighbour geographically closest to `target` — same comparator
    /// and tie-break as [`NeighborTable::closest_to`].
    #[must_use]
    pub fn closest_to(&self, target: Position) -> Option<&'a NeighborInfo> {
        self.iter()
            .min_by(|a, b| distance(a.position, target).total_cmp(&distance(b.position, target)))
    }

    /// Greedy forwarding with the local-maximum check (see
    /// [`NeighborTable::greedy_next_hop`]).
    #[must_use]
    pub fn greedy_next_hop(&self, target: Position, own_distance: f64) -> Option<&'a NeighborInfo> {
        self.closest_to(target)
            .filter(|n| distance(n.position, target) < own_distance)
    }

    /// Neighbours sorted by a caller-provided score, best (highest) first —
    /// stable over ascending-id order like [`NeighborTable::ranked_by`].
    #[must_use]
    pub fn ranked_by<F>(&self, mut score: F) -> Vec<&'a NeighborInfo>
    where
        F: FnMut(&NeighborInfo) -> f64,
    {
        // lint: allow(P1) — ranking is a per-route-discovery operation, not
        // per-event; mirrors `NeighborTable::ranked_by`.
        let mut v: Vec<&NeighborInfo> = self.iter().collect();
        v.sort_by(|a, b| score(b).total_cmp(&score(a)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanet_sim::SimRng;

    fn obs(
        arena: &mut NeighborArena,
        t: &mut ArenaTable,
        id: u32,
        x: f64,
        now: f64,
        life: f64,
    ) -> bool {
        arena.observe(
            t,
            NodeId(id),
            Vec2::new(x, 0.0),
            Vec2::ZERO,
            SimTime::from_secs(now),
            SimDuration::from_secs(life),
        )
    }

    #[test]
    fn observe_insert_refresh_and_lookup() {
        let mut arena = NeighborArena::new();
        let mut t = ArenaTable::new();
        assert!(obs(&mut arena, &mut t, 5, 50.0, 0.0, 3.0));
        assert!(obs(&mut arena, &mut t, 2, 20.0, 0.0, 3.0));
        assert!(!obs(&mut arena, &mut t, 5, 55.0, 1.0, 3.0), "refresh");
        assert_eq!(t.len(), 2);
        assert!(arena.contains(&t, NodeId(2)));
        assert!(!arena.contains(&t, NodeId(3)));
        assert_eq!(arena.get(&t, NodeId(5)).unwrap().position.x, 55.0);
    }

    #[test]
    fn iteration_is_ascending_across_block_spills() {
        let mut arena = NeighborArena::new();
        let mut t = ArenaTable::new();
        // 3× the block size, inserted in a scrambled order, forces splits.
        let mut ids: Vec<u32> = (0..(3 * BLOCK_ENTRIES as u32)).collect();
        let mut rng = SimRng::new(9);
        for i in (1..ids.len()).rev() {
            ids.swap(i, rng.uniform_usize(i + 1));
        }
        for &id in &ids {
            obs(&mut arena, &mut t, id, f64::from(id), 0.0, 3.0);
        }
        let seen: Vec<u32> = arena.iter(&t).map(|n| n.id.0).collect();
        let expect: Vec<u32> = (0..(3 * BLOCK_ENTRIES as u32)).collect();
        assert_eq!(seen, expect);
        assert_eq!(t.len(), expect.len());
    }

    #[test]
    fn freed_blocks_are_reused_across_tables() {
        let mut arena = NeighborArena::new();
        let mut a = ArenaTable::new();
        let mut b = ArenaTable::new();
        for id in 0..(2 * BLOCK_ENTRIES as u32) {
            obs(&mut arena, &mut a, id, 0.0, 0.0, 1.0);
        }
        let grown = arena.block_count();
        // Expire everything in `a`; its blocks go to the free list...
        let lost = arena.purge_expired(&mut a, SimTime::from_secs(5.0));
        assert_eq!(lost.len(), 2 * BLOCK_ENTRIES);
        assert!(a.is_empty());
        assert!(arena.free_blocks() > 0);
        // ...and table `b` recycles them without growing the slab.
        for id in 0..(2 * BLOCK_ENTRIES as u32) {
            obs(&mut arena, &mut b, id, 0.0, 6.0, 1.0);
        }
        assert_eq!(arena.block_count(), grown, "churn must reuse freed blocks");
        assert_eq!(arena.free_blocks(), 0);
    }

    #[test]
    fn remove_frees_emptied_blocks_and_keeps_chain_sorted() {
        let mut arena = NeighborArena::new();
        let mut t = ArenaTable::new();
        for id in 0..(2 * BLOCK_ENTRIES as u32) {
            obs(&mut arena, &mut t, id, 0.0, 0.0, 3.0);
        }
        assert!(arena.remove(&mut t, NodeId(3)).is_some());
        assert!(arena.remove(&mut t, NodeId(3)).is_none());
        // Drain the whole first block.
        for id in 0..BLOCK_ENTRIES as u32 {
            arena.remove(&mut t, NodeId(id));
        }
        assert!(arena.free_blocks() > 0);
        let seen: Vec<u32> = arena.iter(&t).map(|n| n.id.0).collect();
        let expect: Vec<u32> = (BLOCK_ENTRIES as u32..2 * BLOCK_ENTRIES as u32).collect();
        assert_eq!(seen, expect);
    }

    /// The tentpole pin: randomised churn (observes, lazy purges, removals)
    /// drives the arena and the reference table in lockstep; observe
    /// results, loss observations, iteration order and the deadline bound
    /// must stay identical. Several handles share one arena so chain
    /// interleaving and free-list reuse are exercised the way the fleet
    /// driver exercises them.
    #[test]
    fn arena_matches_reference_table_under_randomized_churn() {
        let mut rng = SimRng::new(0xa7e4a);
        for case in 0..40 {
            let mut arena = NeighborArena::new();
            let tables = 3usize;
            let mut handles: Vec<ArenaTable> = (0..tables).map(|_| ArenaTable::new()).collect();
            let mut refs: Vec<NeighborTable> = (0..tables).map(|_| NeighborTable::new()).collect();
            let lifetime = SimDuration::from_secs(1.0 + rng.uniform_range(0.0, 3.0));
            let universe = 4 + rng.uniform_usize(40) as u32;
            let mut scratch_a = Vec::new();
            let mut scratch_r = Vec::new();
            for tick in 1..=30u32 {
                let tick_time = SimTime::from_secs(f64::from(tick));
                for _ in 0..rng.uniform_usize(2 * universe as usize) {
                    let w = rng.uniform_usize(tables);
                    let id = NodeId(rng.uniform_usize(universe as usize) as u32);
                    let at = SimTime::from_secs(f64::from(tick) - rng.uniform_range(0.0, 1.0));
                    let pos = Vec2::new(rng.uniform_range(0.0, 500.0), 0.0);
                    let vel = Vec2::new(rng.uniform_range(-20.0, 20.0), 0.0);
                    let ia = arena.observe(&mut handles[w], id, pos, vel, at, lifetime);
                    let ir = refs[w].observe(id, pos, vel, at, lifetime);
                    assert_eq!(ia, ir, "case {case} tick {tick}: insert flag diverged");
                }
                if rng.chance(0.2) {
                    let w = rng.uniform_usize(tables);
                    let id = NodeId(rng.uniform_usize(universe as usize) as u32);
                    let ra = arena.remove(&mut handles[w], id);
                    let rr = refs[w].remove(id);
                    assert_eq!(ra, rr, "case {case} tick {tick}: removal diverged");
                }
                for w in 0..tables {
                    scratch_a.clear();
                    scratch_r.clear();
                    arena.purge_due(&mut handles[w], tick_time, &mut scratch_a);
                    refs[w].purge_due(tick_time, &mut scratch_r);
                    assert_eq!(
                        scratch_a, scratch_r,
                        "case {case} tick {tick}: losses diverged"
                    );
                    let ea: Vec<NeighborInfo> = arena.iter(&handles[w]).copied().collect();
                    let er: Vec<NeighborInfo> = refs[w].iter().copied().collect();
                    assert_eq!(ea, er, "case {case} tick {tick}: entries diverged");
                    assert_eq!(handles[w].len(), refs[w].len());
                    assert_eq!(
                        handles[w].next_deadline(),
                        refs[w].next_deadline(),
                        "case {case} tick {tick}: deadline bound diverged"
                    );
                }
            }
        }
    }

    /// The protocol-facing read API must answer identically through either
    /// view backing, including `closest_to`/`ranked_by` tie-breaks.
    #[test]
    fn view_reads_identically_over_both_backings() {
        let mut rng = SimRng::new(0x51de5);
        let mut arena = NeighborArena::new();
        let mut handle = ArenaTable::new();
        let mut table = NeighborTable::new();
        for _ in 0..60 {
            let id = NodeId(rng.uniform_usize(24) as u32);
            let pos = Vec2::new(rng.uniform_range(0.0, 400.0), rng.uniform_range(0.0, 400.0));
            let at = SimTime::from_secs(rng.uniform_range(0.0, 2.0));
            let life = SimDuration::from_secs(3.0);
            arena.observe(&mut handle, id, pos, Vec2::ZERO, at, life);
            table.observe(id, pos, Vec2::ZERO, at, life);
        }
        let va = arena.view(&handle);
        let vt = NeighborView::from(&table);
        assert_eq!(va.len(), vt.len());
        assert_eq!(va.is_empty(), vt.is_empty());
        let target = Vec2::new(200.0, 200.0);
        assert_eq!(va.closest_to(target), vt.closest_to(target));
        assert_eq!(
            va.greedy_next_hop(target, 150.0),
            vt.greedy_next_hop(target, 150.0)
        );
        for id in 0..26 {
            assert_eq!(va.contains(NodeId(id)), vt.contains(NodeId(id)));
            assert_eq!(va.get(NodeId(id)), vt.get(NodeId(id)));
        }
        let ia: Vec<NeighborInfo> = va.iter().copied().collect();
        let it: Vec<NeighborInfo> = vt.iter().copied().collect();
        assert_eq!(ia, it);
        let ra: Vec<NodeId> = va
            .ranked_by(|n| n.position.x)
            .iter()
            .map(|n| n.id)
            .collect();
        let rt: Vec<NodeId> = vt
            .ranked_by(|n| n.position.x)
            .iter()
            .map(|n| n.id)
            .collect();
        assert_eq!(ra, rt);
    }
}
