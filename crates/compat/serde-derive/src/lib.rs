//! No-op derive macros standing in for `serde_derive` in offline builds.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so that
//! downstream users with the real serde can serialise them, but nothing inside
//! the workspace calls the serde traits. These derives therefore expand to
//! nothing; they exist only so the `#[derive(Serialize, Deserialize)]`
//! attributes keep compiling without network access to crates.io.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
