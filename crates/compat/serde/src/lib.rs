//! Offline stand-in for the `serde` facade crate.
//!
//! The build environment has no access to crates.io, so this tiny local
//! package satisfies the workspace's `use serde::{Deserialize, Serialize}`
//! imports with no-op derive macros (see `crates/compat/serde-derive`).
//! Swapping in the real serde is a one-line change in the workspace manifest:
//! replace the `serde` path entry under `[workspace.dependencies]` with the
//! crates.io version and enable its `derive` feature.

pub use serde_derive::{Deserialize, Serialize};
