//! Declarative campaign plans: the redesigned experiment orchestration API.
//!
//! A [`CampaignPlan`] is a list of explicit *cells* — each a labelled
//! (scenario, protocol, replication policy) binding — rather than the uniform
//! (scenario grid × protocol list) cross product the old `CampaignSpec`
//! forced. That makes mixed comparisons (Fig. 5's "AODV without RSUs vs DRR
//! with increasing RSU counts") one plan instead of several specs, while
//! [`CampaignPlan::cross_product`] preserves the old behaviour for uniform
//! sweeps.
//!
//! The plan also owns the campaign layer's two determinism conventions, so
//! every consumer (the `vanet-runner` engine, `run_matrix`, figure
//! generators) agrees by construction:
//!
//! * **seeding** — replication `r` of a cell runs the cell's scenario with
//!   seed `scenario.seed + r` ([`CampaignPlan::job`]);
//! * **identity** — a job is identified by the stable content hash of its
//!   fully seeded scenario and its protocol ([`PlanJob::key`]), which is what
//!   journals and caches key on.

use crate::scenario::Scenario;
use crate::taxonomy::ProtocolKind;
use vanet_sim::StableHasher;

/// How many replications a cell runs.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplicationPolicy {
    /// Exactly `n` replications (clamped to at least 1). Results are
    /// byte-identical to the legacy cross-product path for the same count.
    Fixed(usize),
    /// Keep adding replications until the 95% confidence interval of the
    /// chosen summary metric is narrow enough (or `max` is reached).
    ConfidenceWidth {
        /// The summary metric to watch (a `METRIC_NAMES` entry, e.g.
        /// `"delivery_ratio"`).
        metric: String,
        /// Stop once the CI half-width is at or below this value.
        target_width: f64,
        /// Replications to run before the first width check (at least 2 —
        /// a single sample has no width).
        min: usize,
        /// Hard ceiling on replications (clamped to at least `min`).
        max: usize,
    },
}

impl ReplicationPolicy {
    /// A confidence-width policy with the usual clamps applied.
    #[must_use]
    pub fn confidence_width(
        metric: impl Into<String>,
        target_width: f64,
        min: usize,
        max: usize,
    ) -> Self {
        ReplicationPolicy::ConfidenceWidth {
            metric: metric.into(),
            target_width,
            min,
            max,
        }
    }

    /// Replications to schedule before any adaptive decision.
    #[must_use]
    pub fn initial_replications(&self) -> usize {
        match self {
            ReplicationPolicy::Fixed(n) => (*n).max(1),
            ReplicationPolicy::ConfidenceWidth { min, .. } => (*min).max(2),
        }
    }

    /// The most replications the policy will ever run.
    #[must_use]
    pub fn max_replications(&self) -> usize {
        match self {
            ReplicationPolicy::Fixed(n) => (*n).max(1),
            ReplicationPolicy::ConfidenceWidth { min, max, .. } => (*max).max((*min).max(2)),
        }
    }
}

/// One explicit cell of a campaign plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanCell {
    /// The cell label used in results and exports.
    pub label: String,
    /// The scenario this cell runs (its `seed` is the replication base seed).
    pub scenario: Scenario,
    /// The protocol this cell evaluates.
    pub protocol: ProtocolKind,
    /// How many replications to run.
    pub replication: ReplicationPolicy,
}

/// A declarative campaign: explicit per-cell (scenario, protocol, policy)
/// bindings, built with the fluent methods or [`CampaignPlan::cross_product`].
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignPlan {
    /// Campaign name (used in exports and progress output).
    pub name: String,
    /// The cells, in result order.
    pub cells: Vec<PlanCell>,
}

impl CampaignPlan {
    /// Creates an empty plan.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        CampaignPlan {
            name: name.into(),
            cells: Vec::new(),
        }
    }

    /// Adds a cell with a single replication (override with
    /// [`CampaignPlan::cell_with`] or [`CampaignPlan::with_replication`]).
    #[must_use]
    pub fn cell(
        self,
        label: impl Into<String>,
        scenario: Scenario,
        protocol: ProtocolKind,
    ) -> Self {
        self.cell_with(label, scenario, protocol, ReplicationPolicy::Fixed(1))
    }

    /// Adds a cell with an explicit replication policy.
    #[must_use]
    pub fn cell_with(
        mut self,
        label: impl Into<String>,
        scenario: Scenario,
        protocol: ProtocolKind,
        replication: ReplicationPolicy,
    ) -> Self {
        self.cells.push(PlanCell {
            label: label.into(),
            scenario,
            protocol,
            replication,
        });
        self
    }

    /// Applies one replication policy to every cell added so far (the CLI's
    /// `--seeds` / `--ci-target` override).
    #[must_use]
    pub fn with_replication(mut self, policy: ReplicationPolicy) -> Self {
        for cell in &mut self.cells {
            cell.replication = policy.clone();
        }
        self
    }

    /// The uniform (scenario grid × protocol list) expansion the old
    /// `CampaignSpec` produced: scenario-major cell order, every protocol on
    /// every scenario, `replications` fixed seeds per cell. Cell numbering
    /// and seeding are identical to the legacy path, which is what keeps
    /// `Fixed`-policy results byte-identical through the redesign.
    #[must_use]
    pub fn cross_product(
        name: impl Into<String>,
        scenarios: &[(String, Scenario)],
        protocols: &[ProtocolKind],
        replications: usize,
    ) -> Self {
        let mut plan = CampaignPlan::new(name);
        for (label, scenario) in scenarios {
            for &protocol in protocols {
                plan = plan.cell_with(
                    label.clone(),
                    scenario.clone(),
                    protocol,
                    ReplicationPolicy::Fixed(replications),
                );
            }
        }
        plan
    }

    /// Number of jobs scheduled before any adaptive growth.
    #[must_use]
    pub fn initial_job_count(&self) -> usize {
        self.cells
            .iter()
            .map(|c| c.replication.initial_replications())
            .sum()
    }

    /// Whether any cell uses an adaptive replication policy.
    #[must_use]
    pub fn is_adaptive(&self) -> bool {
        self.cells
            .iter()
            .any(|c| matches!(c.replication, ReplicationPolicy::ConfidenceWidth { .. }))
    }

    /// The fully seeded job for replication `replicate` of cell `cell`:
    /// the single place the `base seed + replicate` convention lives.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    #[must_use]
    pub fn job(&self, cell: usize, replicate: usize) -> PlanJob {
        let spec = &self.cells[cell];
        PlanJob {
            cell,
            replicate,
            scenario: spec
                .scenario
                .clone()
                .with_seed(spec.scenario.seed + replicate as u64),
            protocol: spec.protocol,
        }
    }

    /// Expands every cell's initial replications into a flat, cell-major job
    /// list (for `Fixed`-only plans this is the complete job list).
    #[must_use]
    pub fn initial_jobs(&self) -> Vec<PlanJob> {
        let mut jobs = Vec::with_capacity(self.initial_job_count());
        for (cell, spec) in self.cells.iter().enumerate() {
            for replicate in 0..spec.replication.initial_replications() {
                jobs.push(self.job(cell, replicate));
            }
        }
        jobs
    }
}

/// One independent unit of work: a single seeded simulation run.
#[derive(Debug, Clone)]
pub struct PlanJob {
    /// Index of the plan cell this job belongs to.
    pub cell: usize,
    /// Replication index within the cell (0-based).
    pub replicate: usize,
    /// The fully seeded scenario to run.
    pub scenario: Scenario,
    /// The protocol to run it with.
    pub protocol: ProtocolKind,
}

impl PlanJob {
    /// The job's stable identity: the content hash of its seeded scenario
    /// and protocol. Two jobs share a key exactly when they would produce
    /// the same report, so journals and caches key on it — independent of
    /// campaign name, cell label, cell index or replication index.
    #[must_use]
    pub fn key(&self) -> u64 {
        let mut hasher = StableHasher::new();
        hasher.write_str("job/v1");
        hasher.write_u64(self.scenario.content_hash());
        hasher.write_u64(self.protocol.content_hash());
        hasher.finish()
    }

    /// The key rendered as fixed-width hex (the journal's on-disk form).
    #[must_use]
    pub fn key_hex(&self) -> String {
        format!("{:016x}", self.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanet_sim::SimDuration;

    fn tiny(seed: u64) -> Scenario {
        Scenario::highway(8)
            .with_seed(seed)
            .with_duration(SimDuration::from_secs(5.0))
    }

    #[test]
    fn cross_product_matches_legacy_cell_order() {
        let scenarios = vec![("a".to_owned(), tiny(100)), ("b".to_owned(), tiny(200))];
        let protocols = [ProtocolKind::Aodv, ProtocolKind::Greedy];
        let plan = CampaignPlan::cross_product("x", &scenarios, &protocols, 3);
        assert_eq!(plan.cells.len(), 4);
        assert_eq!(plan.cells[0].label, "a");
        assert_eq!(plan.cells[0].protocol, ProtocolKind::Aodv);
        assert_eq!(plan.cells[1].protocol, ProtocolKind::Greedy);
        assert_eq!(plan.cells[2].label, "b");
        let jobs = plan.initial_jobs();
        assert_eq!(jobs.len(), 12);
        // Cell-major, seeds base + replicate — the legacy convention.
        assert_eq!(jobs[0].cell, 0);
        assert_eq!(jobs[0].scenario.seed, 100);
        assert_eq!(jobs[2].scenario.seed, 102);
        assert_eq!(jobs[3].cell, 1);
        assert_eq!(jobs[6].scenario.seed, 200);
    }

    #[test]
    fn mixed_cells_bind_protocols_per_cell() {
        let plan = CampaignPlan::new("fig5")
            .cell("AODV / 0 RSUs", tiny(5), ProtocolKind::Aodv)
            .cell_with(
                "DRR / 4 RSUs",
                tiny(5).with_rsus(4),
                ProtocolKind::Drr,
                ReplicationPolicy::Fixed(2),
            );
        assert_eq!(plan.cells.len(), 2);
        assert_eq!(plan.initial_job_count(), 3);
        assert!(!plan.is_adaptive());
    }

    #[test]
    fn policy_clamps() {
        assert_eq!(ReplicationPolicy::Fixed(0).initial_replications(), 1);
        let cw = ReplicationPolicy::confidence_width("delivery_ratio", 0.1, 0, 0);
        assert_eq!(cw.initial_replications(), 2);
        assert_eq!(cw.max_replications(), 2);
        let cw = ReplicationPolicy::confidence_width("delivery_ratio", 0.1, 3, 10);
        assert_eq!(cw.initial_replications(), 3);
        assert_eq!(cw.max_replications(), 10);
    }

    #[test]
    fn job_keys_identify_work_not_bookkeeping() {
        let a = CampaignPlan::new("one").cell("l1", tiny(7), ProtocolKind::Greedy);
        let b = CampaignPlan::new("two")
            .cell("other-label", tiny(1), ProtocolKind::Aodv)
            .cell("l2", tiny(7), ProtocolKind::Greedy);
        // Same (scenario, protocol, seed) → same key, despite different
        // campaign names, labels and cell indices.
        assert_eq!(a.job(0, 0).key(), b.job(1, 0).key());
        // Different seed, protocol or scenario → different key.
        assert_ne!(a.job(0, 0).key(), a.job(0, 1).key());
        assert_ne!(
            a.job(0, 0).key(),
            CampaignPlan::new("p")
                .cell("l", tiny(7), ProtocolKind::Aodv)
                .job(0, 0)
                .key()
        );
        assert_eq!(a.job(0, 0).key_hex().len(), 16);
    }

    #[test]
    fn with_replication_applies_to_all_cells() {
        let plan = CampaignPlan::new("x")
            .cell("a", tiny(1), ProtocolKind::Flooding)
            .cell("b", tiny(2), ProtocolKind::Greedy)
            .with_replication(ReplicationPolicy::confidence_width(
                "delivery_ratio",
                0.05,
                2,
                8,
            ));
        assert!(plan.is_adaptive());
        assert_eq!(plan.initial_job_count(), 4);
    }
}
