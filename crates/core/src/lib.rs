//! # vanet-core — scenarios, simulation driver, metrics and experiments
//!
//! The integration layer of the workspace: it wires the mobility substrate
//! (`vanet-mobility`), the wireless network (`vanet-net`), the analytic link
//! models (`vanet-links`) and the routing protocols (`vanet-routing`) into a
//! runnable discrete-event simulation, and provides the experiment harness
//! used to regenerate every figure and table of the paper.
//!
//! # Example
//!
//! ```
//! use vanet_core::{run_scenario, ProtocolKind, Scenario};
//! use vanet_sim::SimDuration;
//!
//! let scenario = Scenario::highway(30)
//!     .with_flows(2)
//!     .with_duration(SimDuration::from_secs(20.0));
//! let report = run_scenario(scenario, ProtocolKind::Aodv);
//! assert!(report.data_sent > 0);
//! ```

#![warn(missing_docs)]

pub mod experiment;
pub mod fault;
pub mod metrics;
pub mod plan;
pub mod scenario;
pub mod simulation;
pub mod taxonomy;
pub mod telemetry;

pub use experiment::{
    average_reports, render_csv, render_table, run_averaged, run_matrix, run_matrix_with_workers,
    ExperimentCell,
};
pub use fault::{Fault, FaultKind, FaultPlan, FaultPlanError};
pub use metrics::{Metrics, Report};
pub use plan::{CampaignPlan, PlanCell, PlanJob, ReplicationPolicy};
pub use scenario::{ChannelModel, RoadLayout, Scenario, TrafficRegime};
pub use simulation::{run_scenario, Flow, Simulation};
pub use taxonomy::{taxonomy_lines, ProtocolKind};
pub use telemetry::{
    drop_reason_index, NoTelemetry, RegionRecord, Telemetry, WindowRecord, WindowedTap,
    DROP_REASON_COUNT, DROP_REASON_NAMES,
};
// The telemetry trait's hook signatures mention these types, so downstream
// crates (the runner) can name them without depending on the layer crates.
pub use vanet_mobility::Position;
pub use vanet_net::MediumStats;
pub use vanet_routing::{BundleOp, DropReason, DtnParams};
