//! Scenario configuration: traffic regime, road layout, radio, infrastructure
//! and application traffic.

use crate::fault::FaultPlan;
use vanet_mobility::{HighwayBuilder, MobilityModel, UrbanGridBuilder};
use vanet_net::MacParams;
use vanet_routing::DtnParams;
use vanet_sim::{SimDuration, SimRng};

/// Which road layout the scenario uses.
#[derive(Debug, Clone, PartialEq)]
pub enum RoadLayout {
    /// Multi-lane bidirectional highway (ring).
    Highway(HighwayBuilder),
    /// Manhattan-grid urban area.
    Urban(UrbanGridBuilder),
}

/// Radio channel model selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChannelModel {
    /// Deterministic unit-disk reception within the nominal range.
    UnitDisk,
    /// Log-normal shadowing with the given path-loss exponent and sigma (dB).
    Shadowing {
        /// Path-loss exponent.
        alpha: f64,
        /// Shadow-fading standard deviation in dB.
        sigma_db: f64,
    },
}

/// The coarse traffic regimes Table I distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficRegime {
    /// Sparse traffic (rural / night): the network is frequently partitioned.
    Sparse,
    /// Normal free-flowing traffic.
    Normal,
    /// Congested traffic: high density, low speeds.
    Congested,
}

impl TrafficRegime {
    /// Vehicles per kilometre of highway (per direction) for this regime.
    #[must_use]
    pub fn density_per_km(self) -> f64 {
        match self {
            TrafficRegime::Sparse => 3.0,
            TrafficRegime::Normal => 15.0,
            TrafficRegime::Congested => 60.0,
        }
    }

    /// All regimes.
    pub const ALL: [TrafficRegime; 3] = [
        TrafficRegime::Sparse,
        TrafficRegime::Normal,
        TrafficRegime::Congested,
    ];
}

impl std::fmt::Display for TrafficRegime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TrafficRegime::Sparse => "sparse",
            TrafficRegime::Normal => "normal",
            TrafficRegime::Congested => "congested",
        };
        f.write_str(s)
    }
}

/// Complete configuration of one simulation run.
#[derive(Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (used in reports).
    pub name: String,
    /// Master random seed.
    pub seed: u64,
    /// Road layout and vehicle population.
    pub layout: RoadLayout,
    /// Nominal radio range in metres.
    pub radio_range_m: f64,
    /// Channel model.
    pub channel: ChannelModel,
    /// MAC parameters.
    pub mac: MacParams,
    /// Number of road-side units placed evenly along the scenario area.
    pub rsu_count: usize,
    /// Wired backbone latency between road-side units.
    pub backbone_latency: SimDuration,
    /// Number of constant-bit-rate unicast flows between random vehicle pairs.
    pub flows: usize,
    /// Interval between packets of each flow.
    pub packet_interval: SimDuration,
    /// Payload size of each data packet, bytes.
    pub payload_bytes: usize,
    /// Total simulated time.
    pub duration: SimDuration,
    /// Warm-up period before application traffic starts.
    pub warmup: SimDuration,
    /// Mobility integration step.
    pub mobility_step: SimDuration,
    /// Protocol maintenance tick interval.
    pub tick_interval: SimDuration,
    /// Scheduled deterministic disruptions (empty by default).
    pub faults: FaultPlan,
    /// Store-carry-forward knobs for the DTN protocol family (defaults by
    /// default; connected-path protocols never read them).
    pub dtn: DtnParams,
}

/// Hand-rolled to match the derived rendering field-for-field, but omitting
/// `faults` when the plan is empty and `dtn` when it holds the defaults. The
/// content hash is computed over this rendering, so an empty plan / default
/// knobs keep every pre-existing scenario hash — and therefore every cached
/// campaign result — byte-identical, while any non-empty plan or tuned DTN
/// knob invalidates the affected cache entries.
impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("Scenario");
        s.field("name", &self.name)
            .field("seed", &self.seed)
            .field("layout", &self.layout)
            .field("radio_range_m", &self.radio_range_m)
            .field("channel", &self.channel)
            .field("mac", &self.mac)
            .field("rsu_count", &self.rsu_count)
            .field("backbone_latency", &self.backbone_latency)
            .field("flows", &self.flows)
            .field("packet_interval", &self.packet_interval)
            .field("payload_bytes", &self.payload_bytes)
            .field("duration", &self.duration)
            .field("warmup", &self.warmup)
            .field("mobility_step", &self.mobility_step)
            .field("tick_interval", &self.tick_interval);
        if !self.faults.is_empty() {
            s.field("faults", &self.faults);
        }
        if !self.dtn.is_default() {
            s.field("dtn", &self.dtn);
        }
        s.finish()
    }
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            name: "default-highway".to_owned(),
            seed: 1,
            layout: RoadLayout::Highway(HighwayBuilder::new().length_m(4_000.0).vehicles(60)),
            radio_range_m: 250.0,
            channel: ChannelModel::UnitDisk,
            mac: MacParams::default(),
            rsu_count: 0,
            backbone_latency: SimDuration::from_millis(5.0),
            flows: 4,
            packet_interval: SimDuration::from_secs(1.0),
            payload_bytes: 512,
            duration: SimDuration::from_secs(120.0),
            warmup: SimDuration::from_secs(5.0),
            mobility_step: SimDuration::from_secs(0.5),
            tick_interval: SimDuration::from_secs(1.0),
            faults: FaultPlan::default(),
            dtn: DtnParams::default(),
        }
    }
}

impl Scenario {
    /// A highway scenario with an explicit vehicle count.
    #[must_use]
    pub fn highway(vehicles: usize) -> Self {
        Scenario {
            name: format!("highway-{vehicles}"),
            layout: RoadLayout::Highway(HighwayBuilder::new().length_m(4_000.0).vehicles(vehicles)),
            ..Self::default()
        }
    }

    /// A sparse highway under scheduled node outages: the regime where
    /// connected-path routing measurably fails (a contemporaneous multi-hop
    /// path rarely exists) but store-carry-forward delivers, because the
    /// ring circulation brings carriers within range of destinations well
    /// within the stretched bundle TTL. This is the asserted version of the
    /// ROADMAP's "bus-ferry only delivers when the ferry happens to pass
    /// both endpoints" observation, generalised to the whole DTN family.
    #[must_use]
    pub fn disrupted_highway(vehicles: usize) -> Self {
        Scenario {
            name: format!("disrupted-highway-{vehicles}"),
            layout: RoadLayout::Highway(
                // Real counterflow is what mixes the clusters: opposite
                // carriageways close at twice the mean speed, so westbound
                // vehicles ferry bundles between eastbound partitions that
                // are never radio-connected to each other.
                HighwayBuilder::new()
                    .length_m(4_000.0)
                    .vehicles(vehicles)
                    .counterflow(true)
                    .speed_std_mps(8.0),
            ),
            radio_range_m: 120.0,
            flows: 2,
            duration: SimDuration::from_secs(300.0),
            faults: FaultPlan::new()
                .node_outage(1, 20.0, 40.0)
                .node_outage(2, 60.0, 80.0),
            // Buffers sized so a carrier can hold the whole disruption's
            // worth of bundles: the point of the scenario is partition
            // tolerance, not buffer pressure.
            dtn: DtnParams {
                buffer_capacity: 1024,
                bundle_ttl: SimDuration::from_secs(300.0),
                ..DtnParams::default()
            },
            ..Self::default()
        }
    }

    /// A highway scenario for one of the Table-I traffic regimes.
    #[must_use]
    pub fn highway_regime(regime: TrafficRegime) -> Self {
        let length_km = 4.0;
        let vehicles = (regime.density_per_km() * length_km * 2.0).round() as usize;
        let builder = HighwayBuilder::new()
            .length_m(length_km * 1_000.0)
            .vehicles(vehicles.max(4))
            .speed_mean_mps(match regime {
                TrafficRegime::Congested => 12.0,
                _ => 30.0,
            });
        Scenario {
            name: format!("highway-{regime}"),
            layout: RoadLayout::Highway(builder),
            ..Self::default()
        }
    }

    /// A production-scale Manhattan-grid scenario: the city grows with the
    /// fleet so vehicle density stays at roughly 275 vehicles/km² (dense
    /// urban traffic) regardless of `vehicles`. `megacity(10_000)` is the
    /// workspace's standard stress/bench workload.
    #[must_use]
    pub fn megacity(vehicles: usize) -> Self {
        let side_m = (vehicles.max(1) as f64 / 275.0).sqrt() * 1_000.0;
        let blocks = ((side_m / 300.0).ceil() as usize).max(2);
        Scenario {
            name: format!("megacity-{vehicles}"),
            layout: RoadLayout::Urban(
                UrbanGridBuilder::new()
                    .blocks(blocks, blocks)
                    .block_m(300.0)
                    .vehicles(vehicles),
            ),
            flows: 16,
            duration: SimDuration::from_secs(20.0),
            warmup: SimDuration::from_secs(2.0),
            ..Self::default()
        }
    }

    /// An urban Manhattan-grid scenario with an explicit vehicle count.
    #[must_use]
    pub fn urban(vehicles: usize) -> Self {
        Scenario {
            name: format!("urban-{vehicles}"),
            layout: RoadLayout::Urban(
                UrbanGridBuilder::new()
                    .blocks(4, 4)
                    .block_m(300.0)
                    .vehicles(vehicles),
            ),
            ..Self::default()
        }
    }

    /// Sets the scenario name.
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of road-side units.
    #[must_use]
    pub fn with_rsus(mut self, count: usize) -> Self {
        self.rsu_count = count;
        self
    }

    /// Sets the number of application flows.
    #[must_use]
    pub fn with_flows(mut self, flows: usize) -> Self {
        self.flows = flows;
        self
    }

    /// Sets the simulated duration.
    #[must_use]
    pub fn with_duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Sets the radio range.
    #[must_use]
    pub fn with_radio_range(mut self, range_m: f64) -> Self {
        self.radio_range_m = range_m;
        self
    }

    /// Sets the channel model.
    #[must_use]
    pub fn with_channel(mut self, channel: ChannelModel) -> Self {
        self.channel = channel;
        self
    }

    /// Sets the fault plan (scheduled deterministic disruptions).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the per-node DTN bundle-buffer capacity.
    #[must_use]
    pub fn with_dtn_buffer(mut self, capacity: usize) -> Self {
        self.dtn.buffer_capacity = capacity;
        self
    }

    /// Sets the DTN bundle TTL.
    #[must_use]
    pub fn with_dtn_ttl(mut self, ttl: SimDuration) -> Self {
        self.dtn.bundle_ttl = ttl;
        self
    }

    /// Sets the spray-and-wait copy-ticket budget.
    #[must_use]
    pub fn with_dtn_copies(mut self, copies: u32) -> Self {
        self.dtn.copies = copies;
        self
    }

    /// Sets how many buses are among the vehicles (highway/urban builders).
    #[must_use]
    pub fn with_buses(mut self, buses: usize) -> Self {
        self.layout = match self.layout {
            RoadLayout::Highway(b) => RoadLayout::Highway(b.buses(buses)),
            RoadLayout::Urban(b) => RoadLayout::Urban(b.buses(buses)),
        };
        self
    }

    /// A stable 64-bit content hash of the complete configuration (seed
    /// included): two scenarios hash equal exactly when every field —
    /// layout builder parameters, radio, MAC, traffic, durations — is equal.
    ///
    /// The hash is computed over the canonical `Debug` rendering with the
    /// pinned FNV-1a algorithm from `vanet_sim::hash`, so it is identical
    /// across runs, platforms and worker counts. The campaign journal uses
    /// it as the scenario half of its cache keys, which means any edit to a
    /// scenario automatically invalidates that scenario's cached results.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        let mut hasher = vanet_sim::StableHasher::new();
        hasher.write_str("scenario/v1");
        hasher.write_str(&format!("{self:?}"));
        hasher.finish()
    }

    /// Number of vehicles in the configured layout.
    #[must_use]
    pub fn vehicle_count(&self) -> usize {
        match &self.layout {
            RoadLayout::Highway(b) => {
                // The builder stores the count; rebuild a tiny model to read it
                // without exposing builder internals.
                let mut rng = SimRng::new(0);
                b.clone().build(&mut rng).states().len()
            }
            RoadLayout::Urban(b) => {
                let mut rng = SimRng::new(0);
                b.clone().build(&mut rng).states().len()
            }
        }
    }

    /// Builds the mobility model for this scenario.
    #[must_use]
    pub fn build_mobility(&self, rng: &mut SimRng) -> Box<dyn MobilityModel + Send> {
        match &self.layout {
            RoadLayout::Highway(b) => Box::new(b.clone().build(rng)),
            RoadLayout::Urban(b) => Box::new(b.clone().build(rng)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regimes_have_increasing_density() {
        assert!(TrafficRegime::Sparse.density_per_km() < TrafficRegime::Normal.density_per_km());
        assert!(TrafficRegime::Normal.density_per_km() < TrafficRegime::Congested.density_per_km());
        assert_eq!(TrafficRegime::ALL.len(), 3);
        assert_eq!(TrafficRegime::Sparse.to_string(), "sparse");
    }

    #[test]
    fn scenario_builders() {
        let s = Scenario::highway(40)
            .with_name("test")
            .with_seed(9)
            .with_rsus(3)
            .with_flows(2)
            .with_radio_range(300.0);
        assert_eq!(s.name, "test");
        assert_eq!(s.seed, 9);
        assert_eq!(s.rsu_count, 3);
        assert_eq!(s.flows, 2);
        assert_eq!(s.radio_range_m, 300.0);
        assert_eq!(s.vehicle_count(), 40);
    }

    #[test]
    fn regime_scenarios_scale_population() {
        let sparse = Scenario::highway_regime(TrafficRegime::Sparse);
        let congested = Scenario::highway_regime(TrafficRegime::Congested);
        assert!(sparse.vehicle_count() < congested.vehicle_count());
    }

    #[test]
    fn urban_scenario_builds_mobility() {
        let s = Scenario::urban(25);
        let mut rng = SimRng::new(1);
        let m = s.build_mobility(&mut rng);
        assert_eq!(m.states().len(), 25);
    }

    #[test]
    fn content_hash_tracks_every_field() {
        let base = Scenario::highway(40);
        assert_eq!(base.content_hash(), Scenario::highway(40).content_hash());
        for edited in [
            base.clone().with_seed(2),
            base.clone().with_rsus(1),
            base.clone().with_flows(9),
            base.clone().with_radio_range(100.0),
            base.clone().with_name("other"),
            base.clone().with_buses(1),
            base.clone()
                .with_duration(vanet_sim::SimDuration::from_secs(1.0)),
            base.clone()
                .with_faults(FaultPlan::new().node_outage(3, 5.0, 10.0)),
            base.clone().with_dtn_buffer(4),
            base.clone()
                .with_dtn_ttl(vanet_sim::SimDuration::from_secs(90.0)),
            base.clone().with_dtn_copies(2),
        ] {
            assert_ne!(
                base.content_hash(),
                edited.content_hash(),
                "edit not reflected in content hash: {edited:?}"
            );
        }
    }

    #[test]
    fn default_dtn_knobs_are_invisible_to_hash_and_debug() {
        let base = Scenario::highway(40);
        let rendered = format!("{base:?}");
        assert!(
            !rendered.contains("dtn"),
            "default DTN knobs must be omitted from Debug: {rendered}"
        );
        let tuned = base.clone().with_dtn_buffer(8);
        assert!(format!("{tuned:?}").contains("dtn"));
        assert_ne!(base.content_hash(), tuned.content_hash());
    }

    #[test]
    fn disrupted_highway_is_sparse_and_fault_laden() {
        let s = Scenario::disrupted_highway(10);
        assert_eq!(s.vehicle_count(), 10);
        assert!(!s.faults.is_empty());
        assert!(s.radio_range_m < 250.0);
        // Bundles must outlive the partition gaps the scenario engineers, so
        // the TTL spans the whole run.
        assert_eq!(s.dtn.bundle_ttl, SimDuration::from_secs(300.0));
    }

    #[test]
    fn buses_can_be_added() {
        let s = Scenario::highway(20).with_buses(2);
        assert_eq!(s.vehicle_count(), 20);
    }

    #[test]
    fn empty_fault_plan_is_invisible_to_hash_and_debug() {
        let base = Scenario::highway(40);
        let explicit_empty = base.clone().with_faults(FaultPlan::default());
        assert_eq!(base.content_hash(), explicit_empty.content_hash());
        let rendered = format!("{base:?}");
        assert!(
            !rendered.contains("faults"),
            "empty plan must be omitted from Debug: {rendered}"
        );
        // A non-empty plan appears in the rendering (and thus the hash), and
        // two different plans hash differently.
        let jammed = base
            .clone()
            .with_faults(FaultPlan::new().jam(0, 0.9, 0.0, 10.0));
        assert!(format!("{jammed:?}").contains("faults"));
        let outage = base
            .clone()
            .with_faults(FaultPlan::new().node_outage(1, 0.0, 10.0));
        assert_ne!(jammed.content_hash(), outage.content_hash());
    }
}
