//! The simulation driver: wires mobility, the wireless medium, the beaconing
//! service, application traffic and one routing-protocol instance per node,
//! and collects the metrics every experiment is built from.

use crate::fault::FaultKind;
use crate::metrics::{Metrics, Report};
use crate::scenario::{ChannelModel, Scenario};
use crate::taxonomy::ProtocolKind;
use crate::telemetry::{NoTelemetry, Telemetry};
use std::sync::Arc;
use vanet_mobility::{MobilityModel, Position, VehicleKind, VehicleState, Velocity};
use vanet_net::{
    ArenaTable, BeaconConfig, Delivery, LogNormalShadowing, Medium, MediumConfig, NeighborArena,
    Packet, PacketKind, SpatialGrid, UnitDisk,
};
use vanet_routing::{Action, ActionSink, ProtocolContext, RoutingProtocol, TableLocationService};
use vanet_sim::{FlowId, NodeId, PacketIdAllocator, Scheduler, SimDuration, SimRng, SimTime};

/// One constant-bit-rate application flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flow {
    /// Flow identifier.
    pub id: FlowId,
    /// Source vehicle.
    pub source: NodeId,
    /// Destination vehicle.
    pub destination: NodeId,
}

/// Scheduler payload. Frames are behind `Arc` so a broadcast delivered to N
/// receivers schedules N refcount bumps instead of N deep packet clones, and
/// the heap entries stay a pointer wide.
#[derive(Debug)]
enum Event {
    MobilityStep,
    /// Per-node maintenance deadline (replaces the old fleet-wide `Tick`):
    /// lazy neighbour-lease purge, neighbour-count sample, `on_tick`. Rides
    /// the batched timer wheel like beacons do.
    Maintain(NodeId),
    Beacon(NodeId),
    FlowSend(usize),
    PacketArrival {
        receiver: NodeId,
        packet: Arc<Packet>,
        intended: bool,
    },
    BackboneArrival {
        receiver: NodeId,
        packet: Arc<Packet>,
    },
    /// A scheduled fault transition: index into the pre-built fault
    /// timeline. Fault transitions are first-class events riding the same
    /// `(time, seq)` discipline as everything else, so runs with a fault
    /// plan are deterministic across runs, workers and shards.
    Fault(usize),
}

/// One pre-resolved fault transition (what `Event::Fault` executes).
#[derive(Debug, Clone, Copy)]
enum FaultAction {
    /// Node's radio goes dark (vehicle or RSU outage begins).
    NodeDown(NodeId),
    /// Node's radio recovers.
    NodeUp(NodeId),
    /// A medium fault-overlay zone (jam / burst loss) activates.
    ZoneOn(usize),
    /// A medium fault-overlay zone deactivates.
    ZoneOff(usize),
    /// A chaos fault: panic the worker, deterministically.
    Poison,
}

/// Per-node control state. Kinematics live in the simulation's
/// structure-of-arrays (`states`/`positions`/`velocities`) and neighbour
/// entries in the shared [`NeighborArena`], so this stays a few dozen bytes
/// and the fleet's node array is cache-dense.
struct NodeRuntime {
    id: NodeId,
    protocol: Box<dyn RoutingProtocol + Send>,
    /// Handle into the fleet-shared neighbour arena.
    neighbors: ArenaTable,
    rng: SimRng,
}

/// A complete, runnable simulation of one scenario with one protocol.
///
/// Generic over a [`Telemetry`] tap; the default [`NoTelemetry`]
/// instantiation monomorphises every hook call to nothing, so the hot path
/// is untouched unless a tap is attached via
/// [`Simulation::with_telemetry`].
pub struct Simulation<T: Telemetry = NoTelemetry> {
    scenario: Scenario,
    mobility: Box<dyn MobilityModel + Send>,
    mobility_rng: SimRng,
    nodes: Vec<NodeRuntime>,
    /// Fleet-shared neighbour storage: every node's entries live in one
    /// contiguous slab of index-linked blocks instead of a `Vec` per node,
    /// so neighbour walks stay inside a few hot cache lines per node and
    /// start-up makes one allocation instead of a million.
    neighbor_arena: NeighborArena,
    /// Structure-of-arrays kinematics, indexed by `NodeId::index()`. The
    /// full per-node `VehicleState` backs protocol contexts; positions and
    /// velocities are mirrored in dense arrays so the transmit / grid /
    /// telemetry hot paths read 16-byte entries instead of striding over
    /// whole node runtimes.
    states: Vec<VehicleState>,
    positions: Vec<Position>,
    velocities: Vec<Velocity>,
    rsu_ids: Vec<NodeId>,
    bus_ids: Vec<NodeId>,
    medium: Medium,
    medium_rng: SimRng,
    /// Spatial index over current node positions. Built once at start-up and
    /// maintained incrementally: every mobility step feeds per-node position
    /// deltas into [`SpatialGrid::update`] (a full rebuild would only be
    /// needed if the cell size — the propagation model's maximum range —
    /// changed mid-run, which it never does).
    grid: SpatialGrid,
    scheduler: Scheduler<Event>,
    location: TableLocationService,
    packet_ids: PacketIdAllocator,
    metrics: Metrics,
    flows: Vec<Flow>,
    beacon_config: BeaconConfig,
    protocol_name: String,
    /// Reusable sink protocol callbacks push actions into.
    sink: ActionSink,
    /// Scratch buffer the sink is drained into (ping-ponged with the sink's
    /// own buffer, so draining allocates nothing in steady state).
    action_scratch: Vec<Action>,
    /// Reusable buffer for `Medium::transmit_indexed_into`.
    delivery_buf: Vec<Delivery>,
    /// Reusable buffer for expired-neighbour ids during a maintenance event
    /// (ping-ponged around `dispatch`, so purges allocate nothing).
    lost_scratch: Vec<NodeId>,
    /// Pre-resolved fault transitions, scheduled as `Event::Fault(index)`.
    fault_timeline: Vec<(SimTime, FaultAction)>,
    /// Per-node outage flag, indexed by `NodeId::index()`. Only consulted
    /// when `faults_enabled`, so fault-free runs pay one branch on a
    /// false bool per transmit/arrival.
    node_down: Vec<bool>,
    /// Whether the scenario has a non-empty fault plan.
    faults_enabled: bool,
    /// Streaming observation tap (zero-sized no-op by default).
    telemetry: T,
}

impl<T: Telemetry> std::fmt::Debug for Simulation<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("scenario", &self.scenario.name)
            .field("protocol", &self.protocol_name)
            .field("nodes", &self.nodes.len())
            .field("flows", &self.flows.len())
            .finish()
    }
}

impl Simulation {
    /// Builds a simulation of `scenario` where every node runs a fresh
    /// instance of `kind`.
    #[must_use]
    pub fn new(scenario: Scenario, kind: ProtocolKind) -> Self {
        let dtn = scenario.dtn;
        Self::with_factory(scenario, &move || kind.build_with(dtn))
    }

    /// Builds a simulation with a custom protocol factory (one call per node).
    #[must_use]
    pub fn with_factory(
        scenario: Scenario,
        factory: &dyn Fn() -> Box<dyn RoutingProtocol + Send>,
    ) -> Self {
        Self::build(scenario, &|| factory(), NoTelemetry)
    }
}

impl<T: Telemetry> Simulation<T> {
    /// Builds a simulation with a streaming telemetry tap attached. The
    /// event stream is identical to the untapped run — the tap only
    /// observes — so reports stay byte-identical with and without it.
    #[must_use]
    pub fn with_telemetry(scenario: Scenario, kind: ProtocolKind, telemetry: T) -> Self {
        let dtn = scenario.dtn;
        Self::build(scenario, &move || kind.build_with(dtn), telemetry)
    }

    fn build(
        scenario: Scenario,
        factory: &dyn Fn() -> Box<dyn RoutingProtocol + Send>,
        mut telemetry: T,
    ) -> Self {
        let master = SimRng::new(scenario.seed);
        let mut mobility_rng = master.derive("mobility");
        let medium_rng = master.derive("medium");
        let mut traffic_rng = master.derive("traffic");

        let mobility = scenario.build_mobility(&mut mobility_rng);
        let vehicle_states: Vec<VehicleState> = mobility.states().to_vec();
        let bounds = mobility.bounds();
        telemetry.on_start(bounds.min, bounds.max, scenario.duration);

        // Road-side units are placed evenly along the scenario's x extent.
        let vehicle_count = vehicle_states.len();
        let mut rsu_states = Vec::new();
        for i in 0..scenario.rsu_count {
            let frac = (i as f64 + 0.5) / scenario.rsu_count as f64;
            let pos = Position::new(bounds.min.x + frac * bounds.width(), bounds.center().y);
            rsu_states.push(VehicleState::stationary(
                NodeId((vehicle_count + i) as u32),
                VehicleKind::RoadSideUnit,
                pos,
            ));
        }

        let node_count = vehicle_count + rsu_states.len();
        let mut location = TableLocationService::new();
        let mut nodes = Vec::with_capacity(node_count);
        let mut states = Vec::with_capacity(node_count);
        let mut positions = Vec::with_capacity(node_count);
        let mut velocities = Vec::with_capacity(node_count);
        let mut rsu_ids = Vec::new();
        let mut bus_ids = Vec::new();
        for state in vehicle_states.iter().chain(rsu_states.iter()) {
            location.set(state.id, state.position, state.velocity);
            match state.kind {
                VehicleKind::RoadSideUnit => rsu_ids.push(state.id),
                VehicleKind::Bus => bus_ids.push(state.id),
                VehicleKind::Car => {}
            }
            nodes.push(NodeRuntime {
                id: state.id,
                protocol: factory(),
                neighbors: ArenaTable::new(),
                rng: master.derive_index("node", u64::from(state.id.0)),
            });
            states.push(*state);
            positions.push(state.position);
            velocities.push(state.velocity);
        }
        let protocol_name = nodes
            .first()
            .map(|n| n.protocol.name().to_owned())
            .unwrap_or_else(|| "none".to_owned());

        let propagation: Box<dyn vanet_net::PropagationModel + Send> = match scenario.channel {
            ChannelModel::UnitDisk => Box::new(UnitDisk::new(scenario.radio_range_m)),
            ChannelModel::Shadowing { alpha, sigma_db } => Box::new(LogNormalShadowing::new(
                scenario.radio_range_m,
                alpha,
                sigma_db,
            )),
        };
        let mut medium = Medium::new(
            MediumConfig {
                mac: scenario.mac,
                promiscuous: true,
            },
            propagation,
        );

        // Application flows between random distinct vehicle pairs.
        let mut flows = Vec::new();
        if vehicle_count >= 2 {
            for i in 0..scenario.flows {
                let src = traffic_rng.uniform_usize(vehicle_count);
                let mut dst = traffic_rng.uniform_usize(vehicle_count);
                while dst == src {
                    dst = traffic_rng.uniform_usize(vehicle_count);
                }
                flows.push(Flow {
                    id: FlowId(i as u32),
                    source: NodeId(src as u32),
                    destination: NodeId(dst as u32),
                });
            }
        }

        // Pre-size every hot-path container from the scenario itself, so a
        // megacity-scale start-up makes its big allocations once instead of
        // paying a reallocation ramp while the caches are cold. The expected
        // neighbourhood is the uniform-density estimate `density × π r²`,
        // capped at the fleet size.
        let max_range = medium.propagation().max_range();
        let area = (bounds.width() * bounds.height()).max(1.0);
        let expected_neighbors =
            ((node_count as f64 / area) * std::f64::consts::PI * max_range * max_range)
                .ceil()
                .min(node_count as f64);
        // A 3×3-cell grid query covers 9 r² ≈ 2.9 π r², so the candidate
        // buffers see roughly three neighbourhoods' worth of entries.
        let expected_candidates = (expected_neighbors * 3.0) as usize + 16;
        medium.reserve_for_neighborhood(expected_candidates);
        let neighbor_arena = NeighborArena::with_block_capacity(NeighborArena::blocks_for(
            node_count,
            expected_neighbors,
        ));

        // Resolve the fault plan into a concrete timeline: node ids for
        // outages, pre-registered medium overlay zones for jams and burst
        // loss. Out-of-range targets and transitions at/after the horizon
        // are dropped here, so the run loop never re-checks them. An empty
        // plan builds nothing — the engine is byte-identical to one without
        // fault support.
        let faults_enabled = !scenario.faults.is_empty();
        let mut fault_timeline: Vec<(SimTime, FaultAction)> = Vec::new();
        if faults_enabled {
            scenario
                .faults
                .validate()
                .unwrap_or_else(|e| panic!("invalid fault plan: {e}"));
            let horizon = SimTime::ZERO + scenario.duration;
            let regions = scenario.faults.regions_per_axis;
            let cell_w = bounds.width() / regions as f64;
            let cell_h = bounds.height() / regions as f64;
            for fault in &scenario.faults.faults {
                let transition = match fault.kind {
                    FaultKind::NodeOutage { node } => {
                        if (node as usize) < vehicle_count {
                            let id = NodeId(node);
                            Some((FaultAction::NodeDown(id), FaultAction::NodeUp(id)))
                        } else {
                            None
                        }
                    }
                    FaultKind::RsuOutage { rsu } => {
                        if (rsu as usize) < scenario.rsu_count {
                            let id = NodeId((vehicle_count + rsu as usize) as u32);
                            Some((FaultAction::NodeDown(id), FaultAction::NodeUp(id)))
                        } else {
                            None
                        }
                    }
                    FaultKind::Jam { region, loss } => {
                        let rx = region as usize % regions;
                        let ry = region as usize / regions;
                        let min = Position::new(
                            bounds.min.x + rx as f64 * cell_w,
                            bounds.min.y + ry as f64 * cell_h,
                        );
                        let max = Position::new(min.x + cell_w, min.y + cell_h);
                        let slot = medium.add_fault_zone(min, max, loss);
                        Some((FaultAction::ZoneOn(slot), FaultAction::ZoneOff(slot)))
                    }
                    FaultKind::BurstLoss { loss } => {
                        let everywhere = f64::INFINITY;
                        let slot = medium.add_fault_zone(
                            Position::new(-everywhere, -everywhere),
                            Position::new(everywhere, everywhere),
                            loss,
                        );
                        Some((FaultAction::ZoneOn(slot), FaultAction::ZoneOff(slot)))
                    }
                    // A poison never recovers, so the up action is never
                    // scheduled (its window end is infinite by construction).
                    FaultKind::Poison => Some((FaultAction::Poison, FaultAction::Poison)),
                };
                if let Some((down, up)) = transition {
                    let start = SimTime::ZERO + SimDuration::from_secs(fault.start_s);
                    if start < horizon {
                        fault_timeline.push((start, down));
                        if fault.end_s.is_finite() {
                            let end = SimTime::ZERO + SimDuration::from_secs(fault.end_s);
                            if end < horizon {
                                fault_timeline.push((end, up));
                            }
                        }
                    }
                }
            }
        }

        let mut sim = Simulation {
            scheduler: Scheduler::with_horizon(SimTime::ZERO + scenario.duration),
            scenario,
            mobility,
            mobility_rng,
            nodes,
            neighbor_arena,
            states,
            positions,
            velocities,
            rsu_ids,
            bus_ids,
            medium,
            medium_rng,
            grid: SpatialGrid::default(),
            location,
            packet_ids: PacketIdAllocator::new(),
            metrics: Metrics::new(),
            flows,
            beacon_config: BeaconConfig::default(),
            protocol_name,
            sink: ActionSink::with_capacity(32),
            action_scratch: Vec::with_capacity(32),
            delivery_buf: Vec::with_capacity(expected_neighbors as usize + 16),
            lost_scratch: Vec::with_capacity(64),
            fault_timeline,
            node_down: vec![false; node_count],
            faults_enabled,
            telemetry,
        };
        // Beacons and per-node maintenance deadlines go through the
        // scheduler's timer wheel: one slot per interval instead of one heap
        // entry per node.
        sim.scheduler.enable_batching(sim.beacon_config.interval);
        // Packet arrivals land a MAC processing + contention delay ahead of
        // now (sub-millisecond to a few tens of milliseconds), far denser
        // than the wheel's beacon intervals: they get the calendar-queue
        // tier — O(1) ring pushes instead of heap sifts. Anything beyond the
        // 64 ms window falls back to the heap with ordering unchanged. The
        // bucket width sits *below* the MAC's fixed processing + minimum
        // backoff delay (0.5 ms), so a new arrival always lands in a
        // not-yet-activated bucket and the sorted-splice slow path for
        // already-activated buckets never runs in steady state.
        sim.scheduler
            .enable_calendar(SimDuration::from_secs(0.000_25), 256);
        sim.build_grid();
        sim.schedule_initial_events(&mut traffic_rng);
        sim
    }

    /// Builds the spatial index from the current node positions — once, at
    /// start-up; mobility steps keep it current via [`SpatialGrid::update`].
    /// Node ids ascend in `nodes` order, so grid queries (which sort by id)
    /// candidate nodes in exactly the order the old exhaustive scan visited
    /// them.
    fn build_grid(&mut self) {
        let positions: Vec<(NodeId, Position)> = self
            .positions
            .iter()
            .enumerate()
            .map(|(i, &pos)| (NodeId(i as u32), pos))
            .collect();
        self.grid = SpatialGrid::build(self.medium.propagation().max_range(), &positions);
    }

    fn schedule_initial_events(&mut self, traffic_rng: &mut SimRng) {
        self.scheduler
            .schedule_after(self.scenario.mobility_step, Event::MobilityStep);
        // One maintenance deadline per node, scheduled in ascending node
        // order so same-timestamp wheel entries fire in exactly the order
        // the old fleet-wide `Tick` loop visited the nodes.
        for i in 0..self.nodes.len() {
            let id = self.nodes[i].id;
            self.scheduler
                .schedule_batched_after(self.scenario.tick_interval, Event::Maintain(id));
        }
        for i in 0..self.nodes.len() {
            if let Some(interval) = self.nodes[i].protocol.beacon_interval() {
                let jitter = interval * traffic_rng.uniform_range(0.0, 1.0);
                let id = self.nodes[i].id;
                self.scheduler
                    .schedule_batched_after(jitter, Event::Beacon(id));
            }
        }
        for (i, _flow) in self.flows.iter().enumerate() {
            let offset = self.scenario.warmup
                + self.scenario.packet_interval * traffic_rng.uniform_range(0.0, 1.0);
            self.scheduler.schedule_after(offset, Event::FlowSend(i));
        }
        // Fault transitions are scheduled last, and only for a non-empty
        // plan, so the sequence numbers of every other initial event — and
        // with them the entire fault-free event order — are unchanged.
        for index in 0..self.fault_timeline.len() {
            let (time, _) = self.fault_timeline[index];
            self.scheduler
                .schedule_at(time, Event::Fault(index))
                .expect("fault times are validated non-negative");
        }
    }

    /// The application flows generated for this run.
    #[must_use]
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// The metrics accumulated so far.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The ids of the road-side units.
    #[must_use]
    pub fn rsu_ids(&self) -> &[NodeId] {
        &self.rsu_ids
    }

    /// Total number of nodes (vehicles + RSUs).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of scheduler events processed so far (the denominator of the
    /// events/sec throughput metric reported by `vanet-campaign --bench`).
    #[must_use]
    pub fn processed_events(&self) -> u64 {
        self.scheduler.processed_events()
    }

    /// How often (in events) the run loop warms the cache for upcoming
    /// events, and how many upcoming events it previews each time.
    const WARM_STRIDE: u32 = 8;
    const WARM_LOOKAHEAD: usize = 16;

    /// Touches the per-node state the next few events will need. Event
    /// handling is a serial chain of dependent cache misses over hundreds of
    /// megabytes of per-node tables at fleet scale; issuing the next events'
    /// loads a few microseconds early lets those misses overlap instead of
    /// serialising. Purely a cache hint — `black_box` just keeps the reads
    /// alive — so behaviour is untouched.
    fn warm_upcoming(&self) {
        let mut warm = 0usize;
        for event in self.scheduler.peek_upcoming(Self::WARM_LOOKAHEAD) {
            match event {
                Event::PacketArrival {
                    receiver, packet, ..
                } => {
                    // Walk the exact arena blocks the arrival's neighbour
                    // refresh will touch (handle, key scan, entry slot).
                    warm ^= self
                        .neighbor_arena
                        .warm_for(&self.nodes[receiver.index()].neighbors, packet.prev_hop);
                }
                Event::BackboneArrival { receiver, .. } => {
                    warm ^= self.nodes[receiver.index()].neighbors.len();
                }
                Event::Beacon(id) | Event::Maintain(id) => {
                    warm ^= self.nodes[id.index()].neighbors.len();
                }
                Event::MobilityStep | Event::FlowSend(_) | Event::Fault(_) => {}
            }
        }
        std::hint::black_box(warm);
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(&mut self) -> Report {
        let mut until_warm = 0u32;
        while let Some((now, event)) = self.scheduler.next_event() {
            if until_warm == 0 {
                until_warm = Self::WARM_STRIDE;
                self.warm_upcoming();
            }
            until_warm -= 1;
            self.telemetry.on_event(now, self.medium.stats());
            self.handle_event(now, event);
        }
        let end = SimTime::ZERO + self.scenario.duration;
        self.telemetry.on_finish(end, self.medium.stats());
        self.metrics
            .report(self.protocol_name.clone(), self.scenario.name.clone())
    }

    /// The attached telemetry tap.
    #[must_use]
    pub fn telemetry(&self) -> &T {
        &self.telemetry
    }

    /// Consumes the simulation and returns the tap (for flushing after
    /// [`Simulation::run`]).
    #[must_use]
    pub fn into_telemetry(self) -> T {
        self.telemetry
    }

    fn node_index(&self, id: NodeId) -> usize {
        id.index()
    }

    /// Whether `idx`'s radio is currently disabled by a scheduled fault.
    /// `faults_enabled` short-circuits first, so fault-free runs pay a
    /// single always-false branch.
    #[inline]
    fn node_is_down(&self, idx: usize) -> bool {
        self.faults_enabled && self.node_down[idx]
    }

    fn handle_event(&mut self, now: SimTime, event: Event) {
        match event {
            Event::MobilityStep => {
                self.mobility
                    .step(self.scenario.mobility_step, &mut self.mobility_rng);
                // Position deltas feed the spatial index directly — no
                // per-step position collect, no rebuild. RSUs are not part
                // of the mobility model and simply stay in their cells.
                for state in self.mobility.states() {
                    let idx = state.id.index();
                    let old_pos = self.positions[idx];
                    if old_pos != state.position {
                        self.grid.update(state.id, old_pos, state.position);
                    }
                    self.states[idx] = *state;
                    self.positions[idx] = state.position;
                    self.velocities[idx] = state.velocity;
                    self.location.set(state.id, state.position, state.velocity);
                }
                self.scheduler
                    .schedule_after(self.scenario.mobility_step, Event::MobilityStep);
            }
            Event::Maintain(node_id) => {
                // Per-node maintenance, byte-identical to one iteration of
                // the old fleet-wide `Tick` loop: lazy lease purge (an O(1)
                // deadline check for most nodes), the post-purge neighbour-
                // count sample, loss callbacks in ascending neighbour order,
                // then the protocol's periodic tick.
                let idx = self.node_index(node_id);
                let mut lost = std::mem::take(&mut self.lost_scratch);
                lost.clear();
                self.neighbor_arena
                    .purge_due(&mut self.nodes[idx].neighbors, now, &mut lost);
                if !lost.is_empty() {
                    self.telemetry.on_neighbor_lost(now, lost.len());
                }
                let count = self.nodes[idx].neighbors.len();
                self.metrics.record_neighbor_count(count);
                for &neighbor in &lost {
                    self.dispatch(idx, now, |p, ctx| p.on_neighbor_lost(ctx, neighbor));
                }
                self.lost_scratch = lost;
                self.dispatch(idx, now, |p, ctx| p.on_tick(ctx));
                self.scheduler
                    .schedule_batched_after(self.scenario.tick_interval, Event::Maintain(node_id));
            }
            Event::Beacon(node_id) => {
                let idx = self.node_index(node_id);
                let Some(interval) = self.nodes[idx].protocol.beacon_interval() else {
                    return;
                };
                let mut hello = Packet::broadcast(node_id, PacketKind::Hello, 0);
                hello.id = self.packet_ids.allocate();
                hello.created_at = now;
                hello.sender_position = Some(self.positions[idx]);
                hello.sender_velocity = Some(self.velocities[idx]);
                self.transmit(idx, now, hello);
                let jitter = 1.0
                    + self.beacon_config.jitter_fraction * (self.nodes[idx].rng.uniform() - 0.5);
                self.scheduler
                    .schedule_batched_after(interval * jitter, Event::Beacon(node_id));
            }
            Event::FlowSend(flow_idx) => {
                let flow = self.flows[flow_idx];
                let mut packet =
                    Packet::data(flow.source, flow.destination, self.scenario.payload_bytes);
                packet.id = self.packet_ids.allocate();
                packet.created_at = now;
                packet.flow = Some(flow.id);
                self.metrics.record_origination(packet.id, flow.source, now);
                self.telemetry.on_origination(now);
                let idx = self.node_index(flow.source);
                self.dispatch(idx, now, |p, ctx| p.originate(ctx, packet));
                self.scheduler
                    .schedule_after(self.scenario.packet_interval, Event::FlowSend(flow_idx));
            }
            Event::PacketArrival {
                receiver,
                packet,
                intended,
            } => {
                let idx = self.node_index(receiver);
                // A frame arriving at a node whose radio a fault disabled is
                // silently lost: no reception, no neighbour refresh — the
                // protocol only ever observes the outage as missing frames
                // and expiring neighbour leases.
                if self.node_is_down(idx) {
                    self.telemetry.on_fault_drop(now, self.positions[idx]);
                    return;
                }
                // Every received frame refreshes the neighbour entry for its
                // transmitter (overhearing counts as neighbour awareness).
                if let (Some(pos), Some(vel)) = (packet.sender_position, packet.sender_velocity) {
                    let lifetime = self.beacon_config.lifetime;
                    let gained = self.neighbor_arena.observe(
                        &mut self.nodes[idx].neighbors,
                        packet.prev_hop,
                        pos,
                        vel,
                        now,
                        lifetime,
                    );
                    if gained {
                        self.telemetry.on_neighbor_gained(now);
                    }
                }
                self.telemetry.on_receive(now, self.positions[idx]);
                if packet.kind == PacketKind::Hello {
                    return;
                }
                self.dispatch(idx, now, |p, ctx| p.on_packet(ctx, &packet, !intended));
            }
            Event::BackboneArrival { receiver, packet } => {
                let idx = self.node_index(receiver);
                if self.node_is_down(idx) {
                    self.telemetry.on_fault_drop(now, self.positions[idx]);
                    return;
                }
                self.dispatch(idx, now, |p, ctx| p.on_packet(ctx, &packet, false));
            }
            Event::Fault(index) => {
                let (_, action) = self.fault_timeline[index];
                match action {
                    FaultAction::NodeDown(id) => {
                        self.node_down[id.index()] = true;
                        self.telemetry.on_outage(now, true);
                    }
                    FaultAction::NodeUp(id) => {
                        self.node_down[id.index()] = false;
                        self.telemetry.on_outage(now, false);
                    }
                    FaultAction::ZoneOn(slot) => {
                        self.medium.set_fault_zone_active(slot, true);
                        self.telemetry.on_outage(now, true);
                    }
                    FaultAction::ZoneOff(slot) => {
                        self.medium.set_fault_zone_active(slot, false);
                        self.telemetry.on_outage(now, false);
                    }
                    FaultAction::Poison => {
                        panic!(
                            "poison fault fired at {:.3}s in scenario '{}'",
                            now.as_secs(),
                            self.scenario.name
                        );
                    }
                }
            }
        }
    }

    /// Runs one protocol callback with the shared [`ActionSink`] in the
    /// context, then carries out whatever the callback queued.
    fn dispatch<F>(&mut self, idx: usize, now: SimTime, f: F)
    where
        F: FnOnce(&mut (dyn RoutingProtocol + Send), &mut ProtocolContext<'_>),
    {
        debug_assert!(self.sink.is_empty(), "sink drained after every callback");
        let range_m = self.scenario.radio_range_m;
        let node = &mut self.nodes[idx];
        let mut ctx = ProtocolContext {
            node: node.id,
            now,
            state: &self.states[idx],
            neighbors: self.neighbor_arena.view(&node.neighbors),
            range_m,
            rsu_ids: &self.rsu_ids,
            bus_ids: &self.bus_ids,
            location: &self.location,
            rng: &mut node.rng,
            packet_ids: &mut self.packet_ids,
            actions: &mut self.sink,
        };
        f(node.protocol.as_mut(), &mut ctx);
        self.process_actions(idx, now);
    }

    fn transmit(&mut self, sender_idx: usize, now: SimTime, packet: Packet) {
        // A down radio transmits nothing: the frame vanishes before it
        // reaches the metrics or the medium, exactly as if the hardware
        // were powered off.
        if self.node_is_down(sender_idx) {
            self.telemetry
                .on_fault_drop(now, self.positions[sender_idx]);
            return;
        }
        self.metrics.record_transmission(
            packet.kind.name(),
            packet.size_bytes(),
            packet.is_control(),
        );
        let sender_id = self.nodes[sender_idx].id;
        let sender_pos = self.positions[sender_idx];
        self.telemetry
            .on_transmit(now, sender_pos, packet.size_bytes(), packet.is_control());
        let mut deliveries = std::mem::take(&mut self.delivery_buf);
        self.medium.transmit_indexed_into(
            now,
            sender_id,
            sender_pos,
            &packet,
            &self.grid,
            &mut self.medium_rng,
            &mut deliveries,
        );
        if !deliveries.is_empty() {
            // One shared frame for every receiver: N refcount bumps, not N
            // deep clones.
            let shared = Arc::new(packet);
            for d in &deliveries {
                self.scheduler
                    .schedule_at(
                        d.arrival,
                        Event::PacketArrival {
                            receiver: d.receiver,
                            packet: Arc::clone(&shared),
                            intended: d.intended,
                        },
                    )
                    .expect("arrival is never in the past");
            }
        }
        deliveries.clear();
        self.delivery_buf = deliveries;
    }

    fn is_rsu(&self, id: NodeId) -> bool {
        // `rsu_ids` ascends by construction (vehicles are numbered before
        // RSUs and both in id order), so membership is a binary search.
        self.rsu_ids.binary_search(&id).is_ok()
    }

    /// Drains the sink (ping-ponging its buffer with `action_scratch`, so no
    /// allocation in steady state) and executes the queued actions.
    fn process_actions(&mut self, node_idx: usize, now: SimTime) {
        if self.sink.is_empty() {
            return;
        }
        let mut actions = std::mem::take(&mut self.action_scratch);
        self.sink.swap_into(&mut actions);
        for action in actions.drain(..) {
            match action {
                Action::Transmit(packet) => {
                    let mut packet = packet;
                    if packet.id == vanet_sim::PacketId(0) && packet.is_control() {
                        packet.id = self.packet_ids.allocate();
                    }
                    self.transmit(node_idx, now, packet);
                }
                Action::Deliver(packet) => {
                    self.metrics.record_delivery(packet.id, packet.hops, now);
                    let delay_s = (now - packet.created_at).as_secs();
                    self.telemetry.on_delivery(now, delay_s);
                }
                Action::Drop { reason, .. } => {
                    self.metrics.record_drop(reason);
                    self.telemetry
                        .on_drop(now, self.positions[node_idx], reason);
                }
                Action::Bundle { op, occupancy } => {
                    self.metrics.record_bundle(op, occupancy);
                    self.telemetry.on_bundle(now, op, occupancy);
                }
                Action::BackboneSend { to, packet } => {
                    let from = self.nodes[node_idx].id;
                    // A down RSU is detached from the wired backbone too, so
                    // the send fails through the protocol's normal no-route
                    // path (short-circuit: fault-free runs check nothing;
                    // the is_rsu checks run first so `to` is known valid
                    // before its outage flag is read).
                    let backbone_ok = self.is_rsu(from)
                        && self.is_rsu(to)
                        && !self.node_is_down(node_idx)
                        && !self.node_is_down(self.node_index(to));
                    if backbone_ok {
                        self.metrics
                            .record_transmission("ISYNC", packet.size_bytes(), true);
                        self.scheduler.schedule_after(
                            self.scenario.backbone_latency,
                            Event::BackboneArrival {
                                receiver: to,
                                packet: Arc::new(packet),
                            },
                        );
                    } else {
                        self.metrics.record_drop(vanet_routing::DropReason::NoRoute);
                        self.telemetry.on_drop(
                            now,
                            self.positions[node_idx],
                            vanet_routing::DropReason::NoRoute,
                        );
                    }
                }
            }
        }
        self.action_scratch = actions;
    }
}

/// Convenience: runs `kind` on `scenario` and returns the report.
#[must_use]
pub fn run_scenario(scenario: Scenario, kind: ProtocolKind) -> Report {
    Simulation::new(scenario, kind).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use vanet_sim::SimDuration;

    fn quick_scenario(vehicles: usize, seed: u64) -> Scenario {
        Scenario::highway(vehicles)
            .with_seed(seed)
            .with_flows(3)
            .with_duration(SimDuration::from_secs(30.0))
    }

    #[test]
    fn aodv_delivers_on_a_dense_highway() {
        let report = run_scenario(quick_scenario(50, 7), ProtocolKind::Aodv);
        assert!(report.data_sent > 0, "flows must generate traffic");
        assert!(
            report.delivery_ratio > 0.3,
            "AODV should deliver a reasonable share on a well-connected highway, got {}",
            report.delivery_ratio
        );
        assert!(report.control_packets > 0);
        assert_eq!(report.protocol, "AODV");
    }

    #[test]
    fn flooding_delivers_but_with_much_higher_overhead_than_greedy() {
        let flood = run_scenario(quick_scenario(60, 1), ProtocolKind::Flooding);
        let greedy = run_scenario(quick_scenario(60, 1), ProtocolKind::Greedy);
        assert!(flood.delivery_ratio > 0.3);
        assert!(greedy.delivery_ratio > 0.2);
        assert!(
            flood.transmissions_per_delivered > greedy.transmissions_per_delivered,
            "flooding must cost more transmissions per delivery ({} vs {})",
            flood.transmissions_per_delivered,
            greedy.transmissions_per_delivered
        );
    }

    #[test]
    fn deterministic_replay_with_same_seed() {
        let a = run_scenario(quick_scenario(30, 7), ProtocolKind::Aodv);
        let b = run_scenario(quick_scenario(30, 7), ProtocolKind::Aodv);
        assert_eq!(a, b, "same seed must give identical reports");
        let c = run_scenario(quick_scenario(30, 8), ProtocolKind::Aodv);
        assert_ne!(a, c, "different seeds must give different reports");
    }

    #[test]
    fn rsus_are_added_as_nodes() {
        let sim = Simulation::new(quick_scenario(20, 5).with_rsus(4), ProtocolKind::Drr);
        assert_eq!(sim.node_count(), 24);
        assert_eq!(sim.rsu_ids().len(), 4);
        assert_eq!(sim.flows().len(), 3);
    }

    #[test]
    fn beaconing_protocols_report_neighbor_counts() {
        let mut sim = Simulation::new(quick_scenario(30, 6), ProtocolKind::Greedy);
        let report = sim.run();
        assert!(
            report.avg_neighbors > 0.5,
            "beaconing should populate neighbour tables, got {}",
            report.avg_neighbors
        );
    }
}
