//! Deterministic fault plans: scheduled disruptions injected into a run.
//!
//! A [`FaultPlan`] describes *when* and *where* the scenario misbehaves —
//! vehicles going dark, road-side units failing, a spatial region being
//! jammed, or the whole channel suffering burst loss. Faults are part of the
//! [`Scenario`](crate::Scenario) and therefore part of its content hash: two
//! scenarios with different plans never share cached campaign results, while
//! an **empty plan leaves the hash (and the simulated run) byte-identical**
//! to an engine without fault support at all.
//!
//! Fault transitions ride the simulation's `(time, seq)` scheduler discipline
//! as first-class events, so a plan is deterministic across runs, workers and
//! shards. Protocols never see faults directly — only their consequences
//! (lost frames, expired neighbours), exactly like a real outage.

/// What a single fault disrupts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// A vehicle's radio is off: it neither transmits nor receives.
    NodeOutage {
        /// Vehicle index (0-based) within the scenario fleet.
        node: u32,
    },
    /// A road-side unit is down: radio off and detached from the backbone.
    RsuOutage {
        /// RSU index (0-based) in placement order.
        rsu: u32,
    },
    /// A rectangular grid region of the scenario area is jammed: receptions
    /// whose receiver stands inside the region are lost with probability
    /// `loss`.
    Jam {
        /// Row-major region index within the `regions_per_axis²` grid.
        region: u32,
        /// Extra loss probability applied inside the region, `0.0..=1.0`.
        loss: f64,
    },
    /// Scenario-wide burst packet loss: every reception is additionally lost
    /// with probability `loss` while the fault is active.
    BurstLoss {
        /// Extra loss probability, `0.0..=1.0`.
        loss: f64,
    },
    /// A chaos fault: the worker running the simulation panics the instant
    /// the fault activates (`start_s`; the end of the window is ignored).
    /// Deterministic — same scenario, same panic — so it exercises the
    /// campaign layer's crash isolation, quarantine and resume paths
    /// end-to-end through the normal scenario pipeline.
    Poison,
}

impl FaultKind {
    /// Human-readable description of the fault's target, used in validation
    /// messages ("node 10", "rsu 1", "jam region 3", "burst loss").
    #[must_use]
    pub fn target_desc(&self) -> String {
        match self {
            FaultKind::NodeOutage { node } => format!("node {node}"),
            FaultKind::RsuOutage { rsu } => format!("rsu {rsu}"),
            FaultKind::Jam { region, .. } => format!("jam region {region}"),
            FaultKind::BurstLoss { .. } => "burst loss".to_owned(),
            FaultKind::Poison => "poison".to_owned(),
        }
    }

    /// A key identifying the fault's target: two faults with the same key
    /// must not have overlapping active windows.
    fn target_key(&self) -> (u8, u32) {
        match self {
            FaultKind::NodeOutage { node } => (0, *node),
            FaultKind::RsuOutage { rsu } => (1, *rsu),
            FaultKind::Jam { region, .. } => (2, *region),
            FaultKind::BurstLoss { .. } => (3, 0),
            FaultKind::Poison => (4, 0),
        }
    }
}

/// One scheduled disruption: a [`FaultKind`] active over `start_s..end_s`
/// simulated seconds. `end_s` may be `f64::INFINITY` ("until the end of the
/// run").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// What is disrupted.
    pub kind: FaultKind,
    /// Activation time, simulated seconds from run start.
    pub start_s: f64,
    /// Recovery time, simulated seconds; `f64::INFINITY` = never recovers.
    pub end_s: f64,
}

impl Fault {
    fn window_desc(&self) -> String {
        if self.end_s.is_infinite() {
            format!("{}s..end", self.start_s)
        } else {
            format!("{}s..{}s", self.start_s, self.end_s)
        }
    }
}

/// A validation failure in a [`FaultPlan`], with a precise message naming
/// the offending fault and window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlanError {
    /// What is wrong, e.g. `"overlapping windows for node 10: 5s..15s and
    /// 10s..20s"`.
    pub message: String,
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for FaultPlanError {}

/// The complete, deterministic disruption schedule of one scenario.
///
/// The default plan is empty and invisible: it is omitted from the
/// scenario's `Debug` rendering (hence from its content hash) and schedules
/// no events, so an empty-plan run is byte-identical to a run on an engine
/// without fault support.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Side length of the jam-region grid: the scenario area is divided into
    /// `regions_per_axis × regions_per_axis` equal rectangles, indexed
    /// row-major (matching `WindowedTap`'s region aggregation).
    pub regions_per_axis: usize,
    /// The scheduled faults, in declaration order.
    pub faults: Vec<Fault>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            regions_per_axis: 4,
            faults: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// An empty plan (no disruptions).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the plan schedules no faults.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Sets the jam-region grid resolution.
    #[must_use]
    pub fn with_regions_per_axis(mut self, regions_per_axis: usize) -> Self {
        self.regions_per_axis = regions_per_axis;
        self
    }

    /// Adds a vehicle outage window.
    #[must_use]
    pub fn node_outage(mut self, node: u32, start_s: f64, end_s: f64) -> Self {
        self.faults.push(Fault {
            kind: FaultKind::NodeOutage { node },
            start_s,
            end_s,
        });
        self
    }

    /// Adds a road-side-unit outage window.
    #[must_use]
    pub fn rsu_outage(mut self, rsu: u32, start_s: f64, end_s: f64) -> Self {
        self.faults.push(Fault {
            kind: FaultKind::RsuOutage { rsu },
            start_s,
            end_s,
        });
        self
    }

    /// Adds a regional jamming window.
    #[must_use]
    pub fn jam(mut self, region: u32, loss: f64, start_s: f64, end_s: f64) -> Self {
        self.faults.push(Fault {
            kind: FaultKind::Jam { region, loss },
            start_s,
            end_s,
        });
        self
    }

    /// Adds a scenario-wide burst-loss window.
    #[must_use]
    pub fn burst_loss(mut self, loss: f64, start_s: f64, end_s: f64) -> Self {
        self.faults.push(Fault {
            kind: FaultKind::BurstLoss { loss },
            start_s,
            end_s,
        });
        self
    }

    /// Adds a chaos fault: the run panics at `at_s` simulated seconds.
    #[must_use]
    pub fn poison(mut self, at_s: f64) -> Self {
        self.faults.push(Fault {
            kind: FaultKind::Poison,
            start_s: at_s,
            end_s: f64::INFINITY,
        });
        self
    }

    /// Checks the plan for malformed or conflicting faults.
    ///
    /// Rejects non-finite or negative start times, inverted or empty windows
    /// (`end_s <= start_s`), loss probabilities outside `0.0..=1.0`, region
    /// indices outside the `regions_per_axis²` grid, and overlapping windows
    /// for the same target — each with a message naming the fault precisely.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        let err = |message: String| Err(FaultPlanError { message });
        if self.regions_per_axis == 0 {
            return err("fault plan regions_per_axis must be at least 1".to_owned());
        }
        let region_count = self.regions_per_axis * self.regions_per_axis;
        for fault in &self.faults {
            let target = fault.kind.target_desc();
            if !fault.start_s.is_finite() || fault.start_s < 0.0 {
                return err(format!(
                    "{target}: start time {}s must be finite and non-negative",
                    fault.start_s
                ));
            }
            if fault.end_s.is_nan() || fault.end_s <= fault.start_s {
                return err(format!(
                    "{target}: window {} is inverted or empty (end must be after start)",
                    fault.window_desc()
                ));
            }
            let loss = match fault.kind {
                FaultKind::Jam { loss, .. } | FaultKind::BurstLoss { loss } => Some(loss),
                _ => None,
            };
            if let Some(loss) = loss {
                if !(0.0..=1.0).contains(&loss) {
                    return err(format!(
                        "{target}: loss probability {loss} must be within 0..=1"
                    ));
                }
            }
            if let FaultKind::Jam { region, .. } = fault.kind {
                if region as usize >= region_count {
                    return err(format!(
                        "jam region {region} is outside the {rpa}x{rpa} grid \
                         (valid regions: 0..{region_count})",
                        rpa = self.regions_per_axis
                    ));
                }
            }
        }
        // Overlap check: quadratic over the (small) plan, per target.
        for (i, a) in self.faults.iter().enumerate() {
            for b in &self.faults[i + 1..] {
                if a.kind.target_key() == b.kind.target_key()
                    && a.start_s < b.end_s
                    && b.start_s < a.end_s
                {
                    return err(format!(
                        "overlapping windows for {}: {} and {}",
                        a.kind.target_desc(),
                        a.window_desc(),
                        b.window_desc()
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_default_and_valid() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert_eq!(plan, FaultPlan::new());
        plan.validate().expect("empty plan is valid");
    }

    #[test]
    fn builders_accumulate_faults() {
        let plan = FaultPlan::new()
            .node_outage(3, 5.0, 10.0)
            .rsu_outage(0, 2.0, f64::INFINITY)
            .jam(1, 0.8, 0.0, 4.0)
            .burst_loss(0.5, 12.0, 13.0);
        assert_eq!(plan.faults.len(), 4);
        assert!(!plan.is_empty());
        plan.validate().expect("plan is valid");
    }

    #[test]
    fn inverted_window_is_rejected_with_target() {
        let e = FaultPlan::new()
            .node_outage(7, 10.0, 5.0)
            .validate()
            .unwrap_err();
        assert!(e.message.contains("node 7"), "{}", e.message);
        assert!(e.message.contains("inverted"), "{}", e.message);
    }

    #[test]
    fn negative_start_is_rejected() {
        let e = FaultPlan::new()
            .rsu_outage(1, -1.0, 5.0)
            .validate()
            .unwrap_err();
        assert!(e.message.contains("rsu 1"), "{}", e.message);
    }

    #[test]
    fn out_of_range_loss_is_rejected() {
        let e = FaultPlan::new()
            .burst_loss(1.5, 0.0, 1.0)
            .validate()
            .unwrap_err();
        assert!(e.message.contains("loss probability 1.5"), "{}", e.message);
    }

    #[test]
    fn out_of_grid_region_is_rejected() {
        let e = FaultPlan::new()
            .with_regions_per_axis(2)
            .jam(4, 0.5, 0.0, 1.0)
            .validate()
            .unwrap_err();
        assert!(e.message.contains("jam region 4"), "{}", e.message);
        assert!(e.message.contains("2x2"), "{}", e.message);
    }

    #[test]
    fn overlapping_windows_same_target_are_rejected() {
        let e = FaultPlan::new()
            .node_outage(10, 5.0, 15.0)
            .node_outage(10, 10.0, 20.0)
            .validate()
            .unwrap_err();
        assert_eq!(
            e.message,
            "overlapping windows for node 10: 5s..15s and 10s..20s"
        );
    }

    #[test]
    fn overlapping_windows_different_targets_are_fine() {
        FaultPlan::new()
            .node_outage(10, 5.0, 15.0)
            .node_outage(11, 10.0, 20.0)
            .rsu_outage(10, 5.0, 15.0)
            .validate()
            .expect("different targets may overlap");
    }

    #[test]
    fn adjacent_windows_same_target_are_fine() {
        FaultPlan::new()
            .node_outage(4, 0.0, 5.0)
            .node_outage(4, 5.0, 10.0)
            .validate()
            .expect("touching windows do not overlap");
    }

    #[test]
    fn poison_builder_and_overlap() {
        let plan = FaultPlan::new().poison(5.0);
        plan.validate().expect("a single poison is valid");
        assert_eq!(plan.faults[0].kind.target_desc(), "poison");
        // Two poisons share the target key and the first never "recovers",
        // so a second one always overlaps.
        let e = FaultPlan::new()
            .poison(5.0)
            .poison(9.0)
            .validate()
            .unwrap_err();
        assert!(e.message.contains("poison"), "{}", e.message);
    }

    #[test]
    fn infinite_end_overlaps_everything_later() {
        let e = FaultPlan::new()
            .rsu_outage(0, 2.0, f64::INFINITY)
            .rsu_outage(0, 50.0, 60.0)
            .validate()
            .unwrap_err();
        assert!(e.message.contains("2s..end"), "{}", e.message);
    }
}
