//! Metrics collected by a simulation run and the report derived from them.

use std::collections::{BTreeMap, HashMap, HashSet};
use vanet_routing::{BundleOp, DropReason};
use vanet_sim::{Counter, NodeId, PacketId, RunningStats, SimTime};

/// Raw per-run metric accumulators (filled in by the simulation driver).
#[derive(Debug, Default, Clone)]
pub struct Metrics {
    /// Data packets handed to the routing layer by the application.
    pub data_originated: Counter,
    /// Unique data packets delivered to their destination.
    pub data_delivered: Counter,
    /// Additional (duplicate) deliveries of already-delivered packets.
    pub duplicate_deliveries: Counter,
    /// Control packets transmitted, by packet-kind name. A `BTreeMap` so
    /// every iteration (totals, exports, renders) is in kind-name order by
    /// type, not by caller discipline.
    pub control_packets: BTreeMap<&'static str, u64>,
    /// Total control bytes transmitted.
    pub control_bytes: Counter,
    /// Data-packet transmissions (including every forwarding hop).
    pub data_transmissions: Counter,
    /// Data bytes transmitted.
    pub data_bytes: Counter,
    /// Route-error packets transmitted (a proxy for route breaks).
    pub route_errors: Counter,
    /// Packet drops by reason. A `BTreeMap` so any breakdown iterates in
    /// [`DropReason`] declaration order deterministically.
    pub drops: BTreeMap<DropReason, u64>,
    /// End-to-end delay of delivered packets, seconds.
    pub delays: RunningStats,
    /// Hop counts of delivered packets.
    pub hops: RunningStats,
    /// Number of neighbours sampled over time and nodes.
    pub neighbor_counts: RunningStats,
    /// Bundles stored into DTN buffers (store-carry-forward protocols).
    pub bundles_stored: Counter,
    /// Bundle copies forwarded to contacted neighbours.
    pub bundles_forwarded: Counter,
    /// Bundles discarded because their TTL ran out.
    pub bundles_expired: Counter,
    /// Bundles evicted under buffer pressure.
    pub bundles_evicted: Counter,
    /// Custody hand-overs (custody released at the acknowledged node).
    pub custody_transfers: Counter,
    /// Highest bundle-buffer occupancy observed at any node.
    pub buffer_peak: usize,
    /// Send time and source of every originated packet (for delay/PDR).
    // lint: allow(D1) — lookup-only (`insert`/`get` by PacketId); never
    // iterated, so map order cannot reach a Report (metrics tests pin every
    // derived value).
    pub(crate) outstanding: HashMap<PacketId, (SimTime, NodeId)>,
    /// Packets already counted as delivered.
    // lint: allow(D1) — membership-only (`insert`/`contains`); never
    // iterated, so set order cannot reach a Report.
    pub(crate) delivered_ids: HashSet<PacketId>,
}

impl Metrics {
    /// Creates an empty metric set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the origination of a data packet.
    pub fn record_origination(&mut self, id: PacketId, source: NodeId, now: SimTime) {
        self.data_originated.incr();
        self.outstanding.insert(id, (now, source));
    }

    /// Records a delivery; duplicates are counted separately.
    pub fn record_delivery(&mut self, id: PacketId, hops: u32, now: SimTime) {
        if self.delivered_ids.contains(&id) {
            self.duplicate_deliveries.incr();
            return;
        }
        self.delivered_ids.insert(id);
        self.data_delivered.incr();
        self.hops.record(f64::from(hops));
        if let Some((sent, _)) = self.outstanding.get(&id) {
            self.delays.record(now.saturating_since(*sent).as_secs());
        }
    }

    /// Records the transmission of a packet (control or data).
    pub fn record_transmission(&mut self, kind_name: &'static str, bytes: usize, is_control: bool) {
        if is_control {
            *self.control_packets.entry(kind_name).or_insert(0) += 1;
            self.control_bytes.add(bytes as u64);
            if kind_name == "RERR" {
                self.route_errors.incr();
            }
        } else {
            self.data_transmissions.incr();
            self.data_bytes.add(bytes as u64);
        }
    }

    /// Records a drop.
    pub fn record_drop(&mut self, reason: DropReason) {
        *self.drops.entry(reason).or_insert(0) += 1;
    }

    /// Records a neighbour-count sample.
    pub fn record_neighbor_count(&mut self, count: usize) {
        self.neighbor_counts.record(count as f64);
    }

    /// Records a bundle-buffer lifecycle event (store-carry-forward
    /// protocols); `occupancy` is the reporting node's buffer fill after
    /// the event and feeds the fleet-wide occupancy peak.
    pub fn record_bundle(&mut self, op: BundleOp, occupancy: usize) {
        match op {
            BundleOp::Stored => self.bundles_stored.incr(),
            BundleOp::Forwarded => self.bundles_forwarded.incr(),
            BundleOp::Expired => self.bundles_expired.incr(),
            BundleOp::Evicted => self.bundles_evicted.incr(),
            BundleOp::Custody => self.custody_transfers.incr(),
        }
        self.buffer_peak = self.buffer_peak.max(occupancy);
    }

    /// Total control packets of all kinds.
    #[must_use]
    pub fn total_control_packets(&self) -> u64 {
        self.control_packets.values().sum()
    }

    /// Packet delivery ratio in `[0, 1]`.
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.data_originated.value() == 0 {
            0.0
        } else {
            self.data_delivered.value() as f64 / self.data_originated.value() as f64
        }
    }

    /// Produces the final report for a run of `protocol` on `scenario`.
    #[must_use]
    pub fn report(&self, protocol: impl Into<String>, scenario: impl Into<String>) -> Report {
        let delivered = self.data_delivered.value().max(1);
        Report {
            protocol: protocol.into(),
            scenario: scenario.into(),
            data_sent: self.data_originated.value(),
            data_delivered: self.data_delivered.value(),
            duplicate_deliveries: self.duplicate_deliveries.value(),
            delivery_ratio: self.delivery_ratio(),
            avg_delay_s: self.delays.mean(),
            max_delay_s: self.delays.max(),
            avg_hops: self.hops.mean(),
            control_packets: self.total_control_packets(),
            control_bytes: self.control_bytes.value(),
            data_transmissions: self.data_transmissions.value(),
            control_per_delivered: self.total_control_packets() as f64 / delivered as f64,
            transmissions_per_delivered: (self.total_control_packets()
                + self.data_transmissions.value()) as f64
                / delivered as f64,
            route_errors: self.route_errors.value(),
            drops: self.drops.values().sum(),
            avg_neighbors: self.neighbor_counts.mean(),
            bundles_stored: self.bundles_stored.value(),
            bundles_forwarded: self.bundles_forwarded.value(),
            bundles_expired: self.bundles_expired.value(),
            bundles_evicted: self.bundles_evicted.value(),
            custody_transfers: self.custody_transfers.value(),
            buffer_peak: self.buffer_peak as u64,
        }
    }
}

/// The summary report of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Protocol name.
    pub protocol: String,
    /// Scenario name.
    pub scenario: String,
    /// Data packets originated.
    pub data_sent: u64,
    /// Unique data packets delivered.
    pub data_delivered: u64,
    /// Duplicate deliveries (flooding redundancy).
    pub duplicate_deliveries: u64,
    /// Packet delivery ratio.
    pub delivery_ratio: f64,
    /// Mean end-to-end delay of delivered packets, seconds.
    pub avg_delay_s: f64,
    /// Maximum end-to-end delay, seconds.
    pub max_delay_s: f64,
    /// Mean hop count of delivered packets.
    pub avg_hops: f64,
    /// Control packets transmitted.
    pub control_packets: u64,
    /// Control bytes transmitted.
    pub control_bytes: u64,
    /// Data-packet transmissions (every hop).
    pub data_transmissions: u64,
    /// Control packets per delivered data packet (normalised overhead).
    pub control_per_delivered: f64,
    /// Total transmissions per delivered data packet.
    pub transmissions_per_delivered: f64,
    /// Route-error packets (route breaks observed).
    pub route_errors: u64,
    /// Total packet drops at the routing layer.
    pub drops: u64,
    /// Average neighbour count over nodes and time.
    pub avg_neighbors: f64,
    /// Bundles stored into DTN buffers (0 for connected-path protocols).
    pub bundles_stored: u64,
    /// Bundle copies forwarded on neighbour contact.
    pub bundles_forwarded: u64,
    /// Bundles whose TTL ran out in a buffer.
    pub bundles_expired: u64,
    /// Bundles evicted under buffer pressure.
    pub bundles_evicted: u64,
    /// Custody hand-overs observed.
    pub custody_transfers: u64,
    /// Peak bundle-buffer occupancy at any node.
    pub buffer_peak: u64,
}

impl Report {
    /// Header for a fixed-width table of reports.
    #[must_use]
    pub fn table_header() -> String {
        format!(
            "{:<12} {:<18} {:>6} {:>6} {:>6} {:>8} {:>9} {:>8} {:>10} {:>8}",
            "protocol",
            "scenario",
            "sent",
            "dlvd",
            "pdr",
            "delay_ms",
            "hops",
            "ctrl",
            "ctrl/dlvd",
            "rerr"
        )
    }

    /// One fixed-width table row.
    #[must_use]
    pub fn table_row(&self) -> String {
        format!(
            "{:<12} {:<18} {:>6} {:>6} {:>6.3} {:>8.1} {:>9.2} {:>8} {:>10.1} {:>8}",
            self.protocol,
            self.scenario,
            self.data_sent,
            self.data_delivered,
            self.delivery_ratio,
            self.avg_delay_s * 1_000.0,
            self.avg_hops,
            self.control_packets,
            self.control_per_delivered,
            self.route_errors
        )
    }

    /// CSV header matching [`Report::csv_row`].
    #[must_use]
    pub fn csv_header() -> String {
        "protocol,scenario,sent,delivered,duplicates,pdr,avg_delay_s,avg_hops,control_packets,control_bytes,data_transmissions,control_per_delivered,route_errors,drops,avg_neighbors,bundles_stored,bundles_forwarded,bundles_expired,bundles_evicted,custody_transfers,buffer_peak".to_owned()
    }

    /// One CSV row.
    #[must_use]
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{:.4},{:.4},{:.2},{},{},{},{:.2},{},{},{:.2},{},{},{},{},{},{}",
            self.protocol,
            self.scenario,
            self.data_sent,
            self.data_delivered,
            self.duplicate_deliveries,
            self.delivery_ratio,
            self.avg_delay_s,
            self.avg_hops,
            self.control_packets,
            self.control_bytes,
            self.data_transmissions,
            self.control_per_delivered,
            self.route_errors,
            self.drops,
            self.avg_neighbors,
            self.bundles_stored,
            self.bundles_forwarded,
            self.bundles_expired,
            self.bundles_evicted,
            self.custody_transfers,
            self.buffer_peak
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_and_duplicates() {
        let mut m = Metrics::new();
        m.record_origination(PacketId(1), NodeId(0), SimTime::ZERO);
        m.record_origination(PacketId(2), NodeId(0), SimTime::ZERO);
        m.record_delivery(PacketId(1), 3, SimTime::from_secs(0.5));
        m.record_delivery(PacketId(1), 3, SimTime::from_secs(0.6));
        assert_eq!(m.data_delivered.value(), 1);
        assert_eq!(m.duplicate_deliveries.value(), 1);
        assert!((m.delivery_ratio() - 0.5).abs() < 1e-12);
        assert!((m.delays.mean() - 0.5).abs() < 1e-12);
        assert_eq!(m.hops.mean(), 3.0);
    }

    #[test]
    fn transmissions_split_control_and_data() {
        let mut m = Metrics::new();
        m.record_transmission("RREQ", 24, true);
        m.record_transmission("RREQ", 24, true);
        m.record_transmission("RERR", 12, true);
        m.record_transmission("DATA", 532, false);
        assert_eq!(m.total_control_packets(), 3);
        assert_eq!(m.control_bytes.value(), 60);
        assert_eq!(m.data_transmissions.value(), 1);
        assert_eq!(m.route_errors.value(), 1);
    }

    #[test]
    fn report_normalisations() {
        let mut m = Metrics::new();
        for i in 0..10 {
            m.record_origination(PacketId(i), NodeId(0), SimTime::ZERO);
        }
        for i in 0..5 {
            m.record_delivery(PacketId(i), 2, SimTime::from_secs(0.2));
        }
        for _ in 0..20 {
            m.record_transmission("RREQ", 24, true);
        }
        m.record_drop(DropReason::NoRoute);
        m.record_neighbor_count(7);
        let r = m.report("AODV", "highway");
        assert_eq!(r.data_sent, 10);
        assert_eq!(r.data_delivered, 5);
        assert!((r.delivery_ratio - 0.5).abs() < 1e-12);
        assert!((r.control_per_delivered - 4.0).abs() < 1e-12);
        assert_eq!(r.drops, 1);
        assert_eq!(r.avg_neighbors, 7.0);
        // Rendering helpers produce non-empty, aligned output.
        assert!(!Report::table_header().is_empty());
        assert!(r.table_row().contains("AODV"));
        assert!(Report::csv_header().split(',').count() == r.csv_row().split(',').count());
    }

    #[test]
    fn bundle_events_accumulate_and_track_the_occupancy_peak() {
        let mut m = Metrics::new();
        m.record_bundle(BundleOp::Stored, 1);
        m.record_bundle(BundleOp::Stored, 2);
        m.record_bundle(BundleOp::Forwarded, 2);
        m.record_bundle(BundleOp::Evicted, 1);
        m.record_bundle(BundleOp::Expired, 0);
        m.record_bundle(BundleOp::Custody, 1);
        let r = m.report("Epidemic", "sparse");
        assert_eq!(r.bundles_stored, 2);
        assert_eq!(r.bundles_forwarded, 1);
        assert_eq!(r.bundles_evicted, 1);
        assert_eq!(r.bundles_expired, 1);
        assert_eq!(r.custody_transfers, 1);
        assert_eq!(r.buffer_peak, 2, "peak is the max occupancy, not the last");
    }

    #[test]
    fn empty_metrics_report_is_sane() {
        let m = Metrics::new();
        let r = m.report("X", "Y");
        assert_eq!(r.delivery_ratio, 0.0);
        assert_eq!(r.data_sent, 0);
        assert!(r.avg_delay_s.abs() < 1e-12);
    }
}
