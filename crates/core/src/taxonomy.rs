//! The programmatic version of the paper's Fig. 1: the taxonomy of VANET
//! routing techniques, mapping each category to the protocols implemented in
//! this workspace and providing constructors for all of them.

use vanet_routing::{
    abedi, aodv, car, greedy, gvgrid, pbr, rear, rover, taleb, Biswas, BusFerry, Category, Drr,
    Dsdv, DtnParams, Epidemic, Flooding, ProbFlood, Prophet, RoutingProtocol, SprayAndWait, Yan,
    YanConfig, Zone,
};

/// Every protocol implemented in the workspace, by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum ProtocolKind {
    Flooding,
    Biswas,
    Aodv,
    Dsdv,
    Pbr,
    Taleb,
    Abedi,
    Drr,
    Bus,
    Greedy,
    Zone,
    Rover,
    Yan,
    YanTbpss,
    Car,
    Rear,
    GvGrid,
    Epidemic,
    Prophet,
    SprayWait,
    ProbFlood,
}

impl ProtocolKind {
    /// All implemented protocols in taxonomy order.
    pub const ALL: [ProtocolKind; 21] = [
        ProtocolKind::Flooding,
        ProtocolKind::Biswas,
        ProtocolKind::Aodv,
        ProtocolKind::Dsdv,
        ProtocolKind::Pbr,
        ProtocolKind::Taleb,
        ProtocolKind::Abedi,
        ProtocolKind::Drr,
        ProtocolKind::Bus,
        ProtocolKind::Greedy,
        ProtocolKind::Zone,
        ProtocolKind::Rover,
        ProtocolKind::Yan,
        ProtocolKind::YanTbpss,
        ProtocolKind::Car,
        ProtocolKind::Rear,
        ProtocolKind::GvGrid,
        ProtocolKind::Epidemic,
        ProtocolKind::Prophet,
        ProtocolKind::SprayWait,
        ProtocolKind::ProbFlood,
    ];

    /// One representative protocol per category, used by the Table I
    /// comparison experiment.
    pub const REPRESENTATIVES: [ProtocolKind; 6] = [
        ProtocolKind::Aodv,
        ProtocolKind::Pbr,
        ProtocolKind::Drr,
        ProtocolKind::Greedy,
        ProtocolKind::Yan,
        ProtocolKind::Epidemic,
    ];

    /// The taxonomy category the protocol belongs to (Fig. 1).
    #[must_use]
    pub fn category(self) -> Category {
        match self {
            ProtocolKind::Flooding
            | ProtocolKind::Biswas
            | ProtocolKind::Aodv
            | ProtocolKind::Dsdv => Category::Connectivity,
            ProtocolKind::Pbr | ProtocolKind::Taleb | ProtocolKind::Abedi => Category::Mobility,
            ProtocolKind::Drr | ProtocolKind::Bus => Category::Infrastructure,
            ProtocolKind::Greedy | ProtocolKind::Zone | ProtocolKind::Rover => Category::Geographic,
            ProtocolKind::Yan
            | ProtocolKind::YanTbpss
            | ProtocolKind::Car
            | ProtocolKind::Rear
            | ProtocolKind::GvGrid => Category::Probability,
            ProtocolKind::Epidemic
            | ProtocolKind::Prophet
            | ProtocolKind::SprayWait
            | ProtocolKind::ProbFlood => Category::Dtn,
        }
    }

    /// The protocol's display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Flooding => "Flooding",
            ProtocolKind::Biswas => "Biswas",
            ProtocolKind::Aodv => "AODV",
            ProtocolKind::Dsdv => "DSDV",
            ProtocolKind::Pbr => "PBR",
            ProtocolKind::Taleb => "Taleb",
            ProtocolKind::Abedi => "Abedi",
            ProtocolKind::Drr => "DRR",
            ProtocolKind::Bus => "Bus",
            ProtocolKind::Greedy => "Greedy",
            ProtocolKind::Zone => "Zone",
            ProtocolKind::Rover => "ROVER",
            ProtocolKind::Yan => "Yan",
            ProtocolKind::YanTbpss => "Yan-TBPSS",
            ProtocolKind::Car => "CAR",
            ProtocolKind::Rear => "REAR",
            ProtocolKind::GvGrid => "GVGrid",
            ProtocolKind::Epidemic => "Epidemic",
            ProtocolKind::Prophet => "PRoPHET",
            ProtocolKind::SprayWait => "SprayWait",
            ProtocolKind::ProbFlood => "ProbFlood",
        }
    }

    /// Builds a fresh protocol instance of this kind with default DTN
    /// parameters (connected-path protocols ignore them entirely).
    #[must_use]
    pub fn build(self) -> Box<dyn RoutingProtocol + Send> {
        self.build_with(DtnParams::default())
    }

    /// Builds a fresh protocol instance of this kind, with the scenario's
    /// store-carry-forward knobs for the DTN family.
    #[must_use]
    pub fn build_with(self, dtn: DtnParams) -> Box<dyn RoutingProtocol + Send> {
        match self {
            ProtocolKind::Flooding => Box::new(Flooding::new()),
            ProtocolKind::Biswas => Box::new(Biswas::new()),
            ProtocolKind::Aodv => Box::new(aodv()),
            ProtocolKind::Dsdv => Box::new(Dsdv::new()),
            ProtocolKind::Pbr => Box::new(pbr()),
            ProtocolKind::Taleb => Box::new(taleb()),
            ProtocolKind::Abedi => Box::new(abedi()),
            ProtocolKind::Drr => Box::new(Drr::new()),
            ProtocolKind::Bus => Box::new(BusFerry::new()),
            ProtocolKind::Greedy => Box::new(greedy()),
            ProtocolKind::Zone => Box::new(Zone::new()),
            ProtocolKind::Rover => Box::new(rover()),
            ProtocolKind::Yan => Box::new(Yan::new()),
            ProtocolKind::YanTbpss => {
                Box::new(Yan::with_config(YanConfig::stability_constrained()))
            }
            ProtocolKind::Car => Box::new(car()),
            ProtocolKind::Rear => Box::new(rear()),
            ProtocolKind::GvGrid => Box::new(gvgrid()),
            ProtocolKind::Epidemic => Box::new(Epidemic::new(dtn)),
            ProtocolKind::Prophet => Box::new(Prophet::new(dtn)),
            ProtocolKind::SprayWait => Box::new(SprayAndWait::new(dtn)),
            ProtocolKind::ProbFlood => Box::new(ProbFlood::new(dtn)),
        }
    }

    /// A stable 64-bit content hash of the protocol identity, used as the
    /// protocol half of campaign-journal cache keys. Pinned FNV-1a over the
    /// display name, so it never varies across runs or platforms.
    #[must_use]
    pub fn content_hash(self) -> u64 {
        let mut hasher = vanet_sim::StableHasher::new();
        hasher.write_str("protocol/v1");
        hasher.write_str(self.name());
        hasher.finish()
    }

    /// All protocols belonging to `category`.
    #[must_use]
    pub fn in_category(category: Category) -> Vec<ProtocolKind> {
        Self::ALL
            .into_iter()
            .filter(|p| p.category() == category)
            .collect()
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Renders the taxonomy (Fig. 1) as lines of `category: protocol, protocol…`.
#[must_use]
pub fn taxonomy_lines() -> Vec<String> {
    Category::ALL
        .iter()
        .map(|&cat| {
            let names: Vec<&str> = ProtocolKind::in_category(cat)
                .into_iter()
                .map(ProtocolKind::name)
                .collect();
            format!("{cat}: {}", names.join(", "))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_category_has_protocols() {
        for cat in Category::ALL {
            assert!(
                !ProtocolKind::in_category(cat).is_empty(),
                "category {cat} has no protocols"
            );
        }
    }

    #[test]
    fn built_protocols_report_consistent_identity() {
        for kind in ProtocolKind::ALL {
            let proto = kind.build();
            assert_eq!(proto.name(), kind.name(), "name mismatch for {kind:?}");
            assert_eq!(
                proto.category(),
                kind.category(),
                "category mismatch for {kind:?}"
            );
        }
    }

    #[test]
    fn representatives_cover_all_six_categories() {
        let mut cats: Vec<Category> = ProtocolKind::REPRESENTATIVES
            .iter()
            .map(|p| p.category())
            .collect();
        cats.sort();
        cats.dedup();
        assert_eq!(cats.len(), 6);
    }

    #[test]
    fn taxonomy_rendering_mentions_every_protocol() {
        let lines = taxonomy_lines();
        assert_eq!(lines.len(), 6);
        let joined = lines.join("\n");
        for kind in ProtocolKind::ALL {
            assert!(joined.contains(kind.name()), "{} missing", kind.name());
        }
    }

    #[test]
    fn content_hashes_are_distinct_per_protocol() {
        let mut hashes: Vec<u64> = ProtocolKind::ALL
            .into_iter()
            .map(ProtocolKind::content_hash)
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), ProtocolKind::ALL.len());
        // Stable across calls (and, by construction, across runs).
        assert_eq!(
            ProtocolKind::Aodv.content_hash(),
            ProtocolKind::Aodv.content_hash()
        );
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(ProtocolKind::Aodv.to_string(), "AODV");
        assert_eq!(ProtocolKind::YanTbpss.to_string(), "Yan-TBPSS");
    }
}
