//! Experiment harness: parameter sweeps, multi-seed averaging and table
//! rendering used to regenerate the paper's figures and Table I.
//!
//! Since the `CampaignPlan` redesign this module is a thin shim: the sweeps
//! build a [`CampaignPlan`] cross product and execute its expanded job list
//! on the deterministic worker pool from `vanet_sim::pool`, so the cell
//! numbering and `base seed + replicate` seeding conventions are defined in
//! exactly one place (`crate::plan`) and shared with the full `vanet-runner`
//! engine. Every job's seed is fixed at expansion time and results are
//! reduced in job order, so the output is byte-identical no matter how many
//! workers run it. Richer per-cell statistics (std-dev, min/max, confidence
//! intervals), journals and adaptive replication live in `vanet-runner`.

use crate::metrics::Report;
use crate::plan::CampaignPlan;
use crate::scenario::Scenario;
use crate::simulation::run_scenario;
use crate::taxonomy::ProtocolKind;
use vanet_sim::pool::{available_workers, parallel_map_indexed};

/// A single experiment cell: one protocol on one scenario, averaged over a
/// number of seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentCell {
    /// The protocol evaluated.
    pub protocol: ProtocolKind,
    /// The scenario label (e.g. "sparse", "20 veh/km").
    pub label: String,
    /// The averaged report.
    pub report: Report,
    /// Number of seeds averaged.
    pub seeds: usize,
}

/// Averages a set of reports field by field (counts are averaged too, so the
/// result represents a typical run). Returns `None` for an empty slice.
#[must_use]
pub fn average_reports(reports: &[Report]) -> Option<Report> {
    let first = reports.first()?;
    let n = reports.len() as f64;
    let avg_u = |f: &dyn Fn(&Report) -> u64| -> u64 {
        (reports.iter().map(|r| f(r) as f64).sum::<f64>() / n).round() as u64
    };
    let avg_f = |f: &dyn Fn(&Report) -> f64| -> f64 { reports.iter().map(f).sum::<f64>() / n };
    Some(Report {
        protocol: first.protocol.clone(),
        scenario: first.scenario.clone(),
        data_sent: avg_u(&|r| r.data_sent),
        data_delivered: avg_u(&|r| r.data_delivered),
        duplicate_deliveries: avg_u(&|r| r.duplicate_deliveries),
        delivery_ratio: avg_f(&|r| r.delivery_ratio),
        avg_delay_s: avg_f(&|r| r.avg_delay_s),
        max_delay_s: avg_f(&|r| r.max_delay_s),
        avg_hops: avg_f(&|r| r.avg_hops),
        control_packets: avg_u(&|r| r.control_packets),
        control_bytes: avg_u(&|r| r.control_bytes),
        data_transmissions: avg_u(&|r| r.data_transmissions),
        control_per_delivered: avg_f(&|r| r.control_per_delivered),
        transmissions_per_delivered: avg_f(&|r| r.transmissions_per_delivered),
        route_errors: avg_u(&|r| r.route_errors),
        drops: avg_u(&|r| r.drops),
        avg_neighbors: avg_f(&|r| r.avg_neighbors),
        bundles_stored: avg_u(&|r| r.bundles_stored),
        bundles_forwarded: avg_u(&|r| r.bundles_forwarded),
        bundles_expired: avg_u(&|r| r.bundles_expired),
        bundles_evicted: avg_u(&|r| r.bundles_evicted),
        custody_transfers: avg_u(&|r| r.custody_transfers),
        buffer_peak: avg_u(&|r| r.buffer_peak),
    })
}

/// Runs `protocol` on `scenario` for `seeds` replications (seeds
/// `scenario.seed..scenario.seed + seeds`), in parallel, and averages.
#[must_use]
pub fn run_averaged(scenario: &Scenario, protocol: ProtocolKind, seeds: usize) -> Report {
    let plan = CampaignPlan::new("run-averaged").cell("cell", scenario.clone(), protocol);
    let seeds = seeds.max(1);
    let reports = parallel_map_indexed(seeds, available_workers(), |s| {
        let job = plan.job(0, s);
        run_scenario(job.scenario, job.protocol)
    });
    average_reports(&reports).expect("at least one replication ran")
}

/// Runs a sweep: every protocol on every scenario, `seeds` seeds each.
///
/// All (scenario × protocol × seed) jobs are flattened into one job list and
/// executed on the worker pool; cells are then reduced in sweep order, so the
/// result is identical to the serial nested loop.
#[must_use]
pub fn run_matrix(
    scenarios: &[(String, Scenario)],
    protocols: &[ProtocolKind],
    seeds: usize,
) -> Vec<ExperimentCell> {
    run_matrix_with_workers(scenarios, protocols, seeds, available_workers())
}

/// [`run_matrix`] with an explicit worker count (1 = serial).
#[must_use]
pub fn run_matrix_with_workers(
    scenarios: &[(String, Scenario)],
    protocols: &[ProtocolKind],
    seeds: usize,
    workers: usize,
) -> Vec<ExperimentCell> {
    let seeds = seeds.max(1);
    let plan = CampaignPlan::cross_product("run-matrix", scenarios, protocols, seeds);
    let jobs = plan.initial_jobs();
    let reports = parallel_map_indexed(jobs.len(), workers, |i| {
        let job = &jobs[i];
        run_scenario(job.scenario.clone(), job.protocol)
    });
    plan.cells
        .iter()
        .zip(reports.chunks(seeds))
        .map(|(cell, cell_reports)| ExperimentCell {
            protocol: cell.protocol,
            label: cell.label.clone(),
            report: average_reports(cell_reports).expect("seeds >= 1"),
            seeds,
        })
        .collect()
}

/// Renders a matrix of cells as a fixed-width text table, one row per cell.
#[must_use]
pub fn render_table(cells: &[ExperimentCell]) -> String {
    let mut out = String::new();
    out.push_str(&Report::table_header());
    out.push('\n');
    for cell in cells {
        out.push_str(&cell.report.table_row());
        out.push('\n');
    }
    out
}

/// Renders a matrix of cells as CSV.
#[must_use]
pub fn render_csv(cells: &[ExperimentCell]) -> String {
    let mut out = String::new();
    out.push_str(&Report::csv_header());
    out.push('\n');
    for cell in cells {
        out.push_str(&cell.report.csv_row());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanet_sim::SimDuration;

    fn tiny() -> Scenario {
        Scenario::highway(20)
            .with_flows(2)
            .with_duration(SimDuration::from_secs(15.0))
    }

    #[test]
    fn averaging_preserves_identity_for_single_report() {
        let r = run_averaged(&tiny(), ProtocolKind::Greedy, 1);
        let again = average_reports(std::slice::from_ref(&r)).unwrap();
        assert_eq!(r, again);
    }

    #[test]
    fn averaging_two_seeds_gives_intermediate_values() {
        let a = run_scenario(tiny().with_seed(1), ProtocolKind::Greedy);
        let b = run_scenario(tiny().with_seed(2), ProtocolKind::Greedy);
        let avg = average_reports(&[a.clone(), b.clone()]).unwrap();
        let lo = a.delivery_ratio.min(b.delivery_ratio);
        let hi = a.delivery_ratio.max(b.delivery_ratio);
        assert!(avg.delivery_ratio >= lo - 1e-12 && avg.delivery_ratio <= hi + 1e-12);
    }

    #[test]
    fn matrix_covers_all_combinations() {
        let scenarios = vec![
            ("a".to_owned(), tiny()),
            ("b".to_owned(), tiny().with_seed(5)),
        ];
        let protocols = [ProtocolKind::Greedy, ProtocolKind::Flooding];
        let cells = run_matrix(&scenarios, &protocols, 1);
        assert_eq!(cells.len(), 4);
        let table = render_table(&cells);
        assert!(table.contains("Greedy") && table.contains("Flooding"));
        let csv = render_csv(&cells);
        assert_eq!(csv.lines().count(), 5);
    }

    #[test]
    fn averaging_nothing_is_none() {
        assert_eq!(average_reports(&[]), None);
    }

    #[test]
    fn parallel_matrix_matches_serial() {
        let scenarios = vec![
            ("a".to_owned(), tiny()),
            ("b".to_owned(), tiny().with_seed(5)),
        ];
        let protocols = [ProtocolKind::Greedy, ProtocolKind::Flooding];
        let serial = run_matrix_with_workers(&scenarios, &protocols, 2, 1);
        let parallel = run_matrix_with_workers(&scenarios, &protocols, 2, 4);
        assert_eq!(serial, parallel);
    }
}
