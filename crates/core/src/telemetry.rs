//! Streaming telemetry taps: time-resolved observability for a run.
//!
//! A [`Report`](crate::Report) is one end-of-run aggregate; it answers "how
//! did the protocol do" but not "when did it degrade". The [`Telemetry`]
//! trait threads time-resolved hooks through the simulation driver's
//! dispatch path — originations, transmissions, receptions, deliveries,
//! drops by reason, neighbour churn and medium load — without costing the
//! zero-allocation hot path anything when disabled: the driver is generic
//! over its tap ([`Simulation<T: Telemetry>`](crate::Simulation)), every
//! hook has an empty inline default, and the [`NoTelemetry`] instantiation
//! monomorphises to exactly the pre-telemetry code. The golden reports for
//! all 21 protocols and the `--bench-gate` perf smoke pin that down.
//!
//! [`WindowedTap`] is the shipped implementation: it accumulates the hooks
//! into preallocated fixed-interval [`WindowRecord`] counters (sealed by a
//! [`WindowClock`] as simulated time passes each boundary) plus per-region
//! [`RegionRecord`] aggregates over an R×R bucketing of the scenario area
//! — the spatial-grid view of where traffic and drops concentrate. All
//! counters are integers (plus deterministic serial `f64` sums), so two
//! runs of the same seeded scenario produce byte-identical telemetry;
//! [`WindowedTap::content_hash`] is the stable fingerprint tests pin.

use vanet_mobility::Position;
use vanet_net::MediumStats;
use vanet_routing::{BundleOp, DropReason};
use vanet_sim::{SimDuration, SimTime, StableHasher, WindowClock};

/// Number of distinct [`DropReason`] variants a tap tracks.
pub const DROP_REASON_COUNT: usize = 8;

/// Column names for the per-reason drop counters, in
/// [`drop_reason_index`] order.
pub const DROP_REASON_NAMES: [&str; DROP_REASON_COUNT] = [
    "ttl_expired",
    "no_route",
    "local_maximum",
    "duplicate",
    "buffer_overflow",
    "expired",
    "out_of_zone",
    "not_for_me",
];

/// The fixed index of a drop reason in [`WindowRecord::drops`] (matches
/// [`DROP_REASON_NAMES`]).
#[must_use]
pub fn drop_reason_index(reason: DropReason) -> usize {
    match reason {
        DropReason::TtlExpired => 0,
        DropReason::NoRoute => 1,
        DropReason::LocalMaximum => 2,
        DropReason::Duplicate => 3,
        DropReason::BufferOverflow => 4,
        DropReason::Expired => 5,
        DropReason::OutOfZone => 6,
        DropReason::NotForMe => 7,
    }
}

/// Time-resolved observation hooks the simulation driver calls as it runs.
///
/// Every method has an empty `#[inline]` default, and the driver is generic
/// over its tap, so the disabled instantiation ([`NoTelemetry`])
/// monomorphises each call site to nothing — telemetry is strictly
/// zero-cost unless a real tap is attached.
pub trait Telemetry {
    /// Called once before the first event: the scenario's spatial bounds
    /// (for region bucketing) and simulated duration (for preallocation).
    #[inline]
    fn on_start(&mut self, bounds_min: Position, bounds_max: Position, duration: SimDuration) {
        let _ = (bounds_min, bounds_max, duration);
    }

    /// Called before each event is handled, with the event clock and the
    /// medium's cumulative statistics (window advancement hook).
    #[inline]
    fn on_event(&mut self, now: SimTime, medium: &MediumStats) {
        let _ = (now, medium);
    }

    /// A data packet was originated by an application flow.
    #[inline]
    fn on_origination(&mut self, now: SimTime) {
        let _ = now;
    }

    /// A frame was handed to the medium at `pos`.
    #[inline]
    fn on_transmit(&mut self, now: SimTime, pos: Position, bytes: usize, is_control: bool) {
        let _ = (now, pos, bytes, is_control);
    }

    /// A frame arrived at a node located at `pos`.
    #[inline]
    fn on_receive(&mut self, now: SimTime, pos: Position) {
        let _ = (now, pos);
    }

    /// A data packet reached its destination, `delay_s` after origination.
    #[inline]
    fn on_delivery(&mut self, now: SimTime, delay_s: f64) {
        let _ = (now, delay_s);
    }

    /// A packet was dropped at a node located at `pos`.
    #[inline]
    fn on_drop(&mut self, now: SimTime, pos: Position, reason: DropReason) {
        let _ = (now, pos, reason);
    }

    /// A frame or backbone message was discarded because a scheduled fault
    /// (node/RSU outage) made its sender or receiver unavailable; `pos` is
    /// where the discard happened.
    #[inline]
    fn on_fault_drop(&mut self, now: SimTime, pos: Position) {
        let _ = (now, pos);
    }

    /// A scheduled fault transition fired: a node went down (`down = true`)
    /// or recovered (`down = false`), or a jam/burst overlay toggled.
    #[inline]
    fn on_outage(&mut self, now: SimTime, down: bool) {
        let _ = (now, down);
    }

    /// `count` neighbour leases expired at a node's maintenance deadline.
    #[inline]
    fn on_neighbor_lost(&mut self, now: SimTime, count: usize) {
        let _ = (now, count);
    }

    /// A store-carry-forward protocol reported a bundle-buffer lifecycle
    /// event; `occupancy` is the reporting node's buffer fill afterwards.
    #[inline]
    fn on_bundle(&mut self, now: SimTime, op: BundleOp, occupancy: usize) {
        let _ = (now, op, occupancy);
    }

    /// A node inserted a previously unknown neighbour (a link came up).
    #[inline]
    fn on_neighbor_gained(&mut self, now: SimTime) {
        let _ = now;
    }

    /// Called once after the last event with the scenario end time and the
    /// final medium statistics; seals any still-open windows.
    #[inline]
    fn on_finish(&mut self, end: SimTime, medium: &MediumStats) {
        let _ = (end, medium);
    }
}

/// The disabled tap: every hook is an inline no-op, so
/// `Simulation<NoTelemetry>` compiles to exactly the pre-telemetry driver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoTelemetry;

impl Telemetry for NoTelemetry {}

/// One sealed fixed-interval window of counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowRecord {
    /// Data packets originated by flows in this window.
    pub originations: u64,
    /// `Deliver` actions executed (unique and duplicate deliveries).
    pub deliveries: u64,
    /// Sum of end-to-end delays of this window's deliveries, seconds
    /// (serial accumulation — deterministic).
    pub delay_sum_s: f64,
    /// Data frames handed to the medium.
    pub sent_data: u64,
    /// Control frames handed to the medium.
    pub sent_control: u64,
    /// Bytes handed to the medium (control + data).
    pub bytes_sent: u64,
    /// Frames that arrived at some node (every receiver counts).
    pub received: u64,
    /// Drops by reason, indexed by [`drop_reason_index`].
    pub drops: [u64; DROP_REASON_COUNT],
    /// Neighbour leases expired (links down).
    pub neighbors_lost: u64,
    /// Neighbours newly inserted (links up).
    pub neighbors_gained: u64,
    /// Frames/messages discarded because a scheduled fault disabled an
    /// endpoint (node or RSU outage).
    pub fault_drops: u64,
    /// Scheduled fault transitions into the failed state (outage onsets,
    /// jam/burst activations) in this window.
    pub outages: u64,
    /// Bundles stored into DTN buffers in this window.
    pub bundles_stored: u64,
    /// Bundle copies forwarded on neighbour contact.
    pub bundles_forwarded: u64,
    /// Bundles whose TTL ran out in a buffer.
    pub bundles_expired: u64,
    /// Bundles evicted under buffer pressure.
    pub bundles_evicted: u64,
    /// Custody hand-overs acknowledged.
    pub custody_transfers: u64,
    /// Peak bundle-buffer occupancy observed at any node in this window.
    pub buffer_peak: u64,
    /// Medium activity attributed to this window (stats delta between the
    /// window's boundary snapshots): the channel-load record.
    pub medium: MediumStats,
}

impl WindowRecord {
    /// Delivery ratio of the traffic originated in this window's span
    /// (deliveries over originations; 0 when nothing was originated).
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.originations == 0 {
            0.0
        } else {
            self.deliveries as f64 / self.originations as f64
        }
    }
}

/// Whole-run aggregates for one spatial region (an R×R bucket of the
/// scenario area).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionRecord {
    /// Frames transmitted from inside the region.
    pub sent: u64,
    /// Frames received by nodes inside the region.
    pub received: u64,
    /// Packets dropped by nodes inside the region.
    pub drops: u64,
}

/// A [`Telemetry`] implementation accumulating fixed-interval windows and
/// per-region aggregates into preallocated counters.
#[derive(Debug, Clone)]
pub struct WindowedTap {
    clock: WindowClock,
    regions_per_axis: usize,
    origin: Position,
    inv_cell_w: f64,
    inv_cell_h: f64,
    /// Sealed windows, index = window number (preallocated at `on_start`).
    windows: Vec<WindowRecord>,
    /// Counters for the currently open window.
    current: WindowRecord,
    /// Region aggregates, row-major (`y * R + x`), preallocated.
    regions: Vec<RegionRecord>,
    /// Medium snapshot at the last sealed boundary.
    last_medium: MediumStats,
}

impl WindowedTap {
    /// A tap with the given window width and `regions_per_axis`² spatial
    /// buckets.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `regions_per_axis` is zero.
    #[must_use]
    pub fn new(window: SimDuration, regions_per_axis: usize) -> Self {
        assert!(regions_per_axis > 0, "need at least one region per axis");
        WindowedTap {
            clock: WindowClock::new(window),
            regions_per_axis,
            origin: Position::new(0.0, 0.0),
            inv_cell_w: 0.0,
            inv_cell_h: 0.0,
            windows: Vec::new(),
            current: WindowRecord::default(),
            regions: Vec::new(),
            last_medium: MediumStats::default(),
        }
    }

    /// The window width in seconds.
    #[must_use]
    pub fn window_secs(&self) -> f64 {
        self.clock.width().as_secs()
    }

    /// Regions per axis (the tap tracks this² buckets).
    #[must_use]
    pub fn regions_per_axis(&self) -> usize {
        self.regions_per_axis
    }

    /// The sealed windows, in time order.
    #[must_use]
    pub fn windows(&self) -> &[WindowRecord] {
        &self.windows
    }

    /// The per-region aggregates, row-major (`y * regions_per_axis + x`).
    #[must_use]
    pub fn regions(&self) -> &[RegionRecord] {
        &self.regions
    }

    fn region_of(&self, pos: Position) -> usize {
        let r = self.regions_per_axis;
        let clamp = |v: f64| -> usize { (v.max(0.0) as usize).min(r - 1) };
        let x = clamp((pos.x - self.origin.x) * self.inv_cell_w);
        let y = clamp((pos.y - self.origin.y) * self.inv_cell_h);
        y * r + x
    }

    /// Seals the windows in `range`: the first receives the open counters
    /// and the medium delta since the previous boundary; any further ones
    /// (a gap with no events) are empty.
    fn seal(&mut self, range: std::ops::Range<usize>, medium: &MediumStats) {
        for index in range {
            debug_assert_eq!(index, self.windows.len(), "windows seal in order");
            let mut record = std::mem::take(&mut self.current);
            record.medium = medium.since(&self.last_medium);
            self.last_medium = medium.clone();
            self.windows.push(record);
        }
    }

    /// A stable fingerprint over every counter the tap accumulated — equal
    /// exactly when two runs produced identical telemetry.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        let mut hasher = StableHasher::new();
        hasher.write_str("telemetry/v1");
        hasher.write_u64(self.window_secs().to_bits());
        hasher.write_u64(self.regions_per_axis as u64);
        hasher.write_u64(self.windows.len() as u64);
        for w in &self.windows {
            hasher.write_u64(w.originations);
            hasher.write_u64(w.deliveries);
            hasher.write_u64(w.delay_sum_s.to_bits());
            hasher.write_u64(w.sent_data);
            hasher.write_u64(w.sent_control);
            hasher.write_u64(w.bytes_sent);
            hasher.write_u64(w.received);
            for &d in &w.drops {
                hasher.write_u64(d);
            }
            hasher.write_u64(w.neighbors_lost);
            hasher.write_u64(w.neighbors_gained);
            hasher.write_u64(w.fault_drops);
            hasher.write_u64(w.outages);
            hasher.write_u64(w.bundles_stored);
            hasher.write_u64(w.bundles_forwarded);
            hasher.write_u64(w.bundles_expired);
            hasher.write_u64(w.bundles_evicted);
            hasher.write_u64(w.custody_transfers);
            hasher.write_u64(w.buffer_peak);
            hasher.write_u64(w.medium.transmissions.value());
            hasher.write_u64(w.medium.deliveries.value());
            hasher.write_u64(w.medium.propagation_losses.value());
            hasher.write_u64(w.medium.collision_losses.value());
            hasher.write_u64(w.medium.fault_losses.value());
            hasher.write_u64(w.medium.bytes_transmitted.value());
        }
        for region in &self.regions {
            hasher.write_u64(region.sent);
            hasher.write_u64(region.received);
            hasher.write_u64(region.drops);
        }
        hasher.finish()
    }
}

impl Telemetry for WindowedTap {
    fn on_start(&mut self, bounds_min: Position, bounds_max: Position, duration: SimDuration) {
        let r = self.regions_per_axis as f64;
        let width = (bounds_max.x - bounds_min.x).max(f64::EPSILON);
        let height = (bounds_max.y - bounds_min.y).max(f64::EPSILON);
        self.origin = bounds_min;
        self.inv_cell_w = r / width;
        self.inv_cell_h = r / height;
        let expected = (duration.as_secs() / self.window_secs()).ceil() as usize + 1;
        self.windows.reserve(expected);
        self.regions = vec![RegionRecord::default(); self.regions_per_axis * self.regions_per_axis];
    }

    fn on_event(&mut self, now: SimTime, medium: &MediumStats) {
        let closed = self.clock.advance(now);
        if !closed.is_empty() {
            self.seal(closed, medium);
        }
    }

    fn on_origination(&mut self, now: SimTime) {
        let _ = now;
        self.current.originations += 1;
    }

    fn on_transmit(&mut self, now: SimTime, pos: Position, bytes: usize, is_control: bool) {
        let _ = now;
        if is_control {
            self.current.sent_control += 1;
        } else {
            self.current.sent_data += 1;
        }
        self.current.bytes_sent += bytes as u64;
        let region = self.region_of(pos);
        self.regions[region].sent += 1;
    }

    fn on_receive(&mut self, now: SimTime, pos: Position) {
        let _ = now;
        self.current.received += 1;
        let region = self.region_of(pos);
        self.regions[region].received += 1;
    }

    fn on_delivery(&mut self, now: SimTime, delay_s: f64) {
        let _ = now;
        self.current.deliveries += 1;
        self.current.delay_sum_s += delay_s;
    }

    fn on_drop(&mut self, now: SimTime, pos: Position, reason: DropReason) {
        let _ = now;
        self.current.drops[drop_reason_index(reason)] += 1;
        let region = self.region_of(pos);
        self.regions[region].drops += 1;
    }

    fn on_fault_drop(&mut self, now: SimTime, pos: Position) {
        let _ = now;
        self.current.fault_drops += 1;
        let region = self.region_of(pos);
        self.regions[region].drops += 1;
    }

    fn on_outage(&mut self, now: SimTime, down: bool) {
        let _ = now;
        if down {
            self.current.outages += 1;
        }
    }

    fn on_neighbor_lost(&mut self, now: SimTime, count: usize) {
        let _ = now;
        self.current.neighbors_lost += count as u64;
    }

    fn on_neighbor_gained(&mut self, now: SimTime) {
        let _ = now;
        self.current.neighbors_gained += 1;
    }

    fn on_bundle(&mut self, now: SimTime, op: BundleOp, occupancy: usize) {
        let _ = now;
        match op {
            BundleOp::Stored => self.current.bundles_stored += 1,
            BundleOp::Forwarded => self.current.bundles_forwarded += 1,
            BundleOp::Expired => self.current.bundles_expired += 1,
            BundleOp::Evicted => self.current.bundles_evicted += 1,
            BundleOp::Custody => self.current.custody_transfers += 1,
        }
        self.current.buffer_peak = self.current.buffer_peak.max(occupancy as u64);
    }

    fn on_finish(&mut self, end: SimTime, medium: &MediumStats) {
        let closed = self.clock.finish(end);
        if !closed.is_empty() {
            self.seal(closed, medium);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanet_routing::DropReason;

    #[test]
    fn drop_reason_indices_cover_every_variant_once() {
        let all = [
            DropReason::TtlExpired,
            DropReason::NoRoute,
            DropReason::LocalMaximum,
            DropReason::Duplicate,
            DropReason::BufferOverflow,
            DropReason::Expired,
            DropReason::OutOfZone,
            DropReason::NotForMe,
        ];
        let mut seen = [false; DROP_REASON_COUNT];
        for reason in all {
            let index = drop_reason_index(reason);
            assert!(!seen[index], "index {index} assigned twice");
            seen[index] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn windows_seal_in_order_with_medium_deltas() {
        let mut tap = WindowedTap::new(SimDuration::from_secs(1.0), 2);
        tap.on_start(
            Position::new(0.0, 0.0),
            Position::new(100.0, 100.0),
            SimDuration::from_secs(3.0),
        );
        let mut medium = MediumStats::default();
        tap.on_event(SimTime::from_secs(0.1), &medium);
        tap.on_origination(SimTime::from_secs(0.1));
        tap.on_transmit(
            SimTime::from_secs(0.1),
            Position::new(10.0, 10.0),
            64,
            false,
        );
        medium.transmissions.incr();
        medium.bytes_transmitted.add(64);
        // Crossing into window 2 seals windows 0 and 1 — all activity and
        // the whole medium delta land in window 0, window 1 is empty.
        tap.on_event(SimTime::from_secs(2.5), &medium);
        tap.on_drop(
            SimTime::from_secs(2.5),
            Position::new(90.0, 90.0),
            DropReason::NoRoute,
        );
        tap.on_finish(SimTime::from_secs(3.0), &medium);

        assert_eq!(tap.windows().len(), 4);
        assert_eq!(tap.windows()[0].originations, 1);
        assert_eq!(tap.windows()[0].sent_data, 1);
        assert_eq!(tap.windows()[0].medium.transmissions.value(), 1);
        assert_eq!(tap.windows()[1], WindowRecord::default());
        assert_eq!(
            tap.windows()[2].drops[drop_reason_index(DropReason::NoRoute)],
            1
        );
        // Region attribution: the transmit was in the lower-left bucket,
        // the drop in the upper-right.
        assert_eq!(tap.regions()[0].sent, 1);
        assert_eq!(tap.regions()[3].drops, 1);
    }

    #[test]
    fn bundle_hooks_accumulate_into_the_open_window() {
        let mut tap = WindowedTap::new(SimDuration::from_secs(1.0), 1);
        tap.on_start(
            Position::new(0.0, 0.0),
            Position::new(10.0, 10.0),
            SimDuration::from_secs(1.0),
        );
        tap.on_bundle(SimTime::ZERO, BundleOp::Stored, 3);
        tap.on_bundle(SimTime::ZERO, BundleOp::Forwarded, 3);
        tap.on_bundle(SimTime::ZERO, BundleOp::Custody, 2);
        tap.on_bundle(SimTime::ZERO, BundleOp::Expired, 1);
        tap.on_bundle(SimTime::ZERO, BundleOp::Evicted, 1);
        tap.on_finish(SimTime::from_secs(1.0), &MediumStats::default());
        let w = &tap.windows()[0];
        assert_eq!(w.bundles_stored, 1);
        assert_eq!(w.bundles_forwarded, 1);
        assert_eq!(w.custody_transfers, 1);
        assert_eq!(w.bundles_expired, 1);
        assert_eq!(w.bundles_evicted, 1);
        assert_eq!(w.buffer_peak, 3);
    }

    #[test]
    fn content_hash_tracks_counters() {
        let build = |drops: u64| {
            let mut tap = WindowedTap::new(SimDuration::from_secs(1.0), 2);
            tap.on_start(
                Position::new(0.0, 0.0),
                Position::new(10.0, 10.0),
                SimDuration::from_secs(2.0),
            );
            let medium = MediumStats::default();
            for _ in 0..drops {
                tap.on_drop(
                    SimTime::ZERO,
                    Position::new(1.0, 1.0),
                    DropReason::Duplicate,
                );
            }
            tap.on_finish(SimTime::from_secs(2.0), &medium);
            tap
        };
        assert_eq!(build(2).content_hash(), build(2).content_hash());
        assert_ne!(build(2).content_hash(), build(3).content_hash());
    }

    #[test]
    fn positions_outside_bounds_clamp_to_edge_regions() {
        let mut tap = WindowedTap::new(SimDuration::from_secs(1.0), 4);
        tap.on_start(
            Position::new(0.0, 0.0),
            Position::new(100.0, 100.0),
            SimDuration::from_secs(1.0),
        );
        tap.on_receive(SimTime::ZERO, Position::new(-50.0, -50.0));
        tap.on_receive(SimTime::ZERO, Position::new(500.0, 500.0));
        assert_eq!(tap.regions()[0].received, 1);
        assert_eq!(tap.regions()[15].received, 1);
    }
}
