//! Golden per-protocol reports pinned against the pre-`ActionSink` engine.
//!
//! The hot-path refactor (protocol `ActionSink` API, `Arc`-shared frames,
//! scratch delivery buffers, batched beacon wheel) must not change a single
//! simulated outcome: for a fixed seed, every protocol has to produce a
//! byte-identical [`Report`]. The pins below were captured from the engine
//! *before* the refactor; any diff here means the refactor altered RNG
//! consumption or event ordering somewhere.
//!
//! Regenerate (after an *intentional* behaviour change) with:
//!
//! ```text
//! cargo test -p vanet-core --test golden_reports -- --ignored --nocapture regenerate
//! ```

use vanet_core::{run_scenario, ProtocolKind, Report, Scenario};
use vanet_sim::SimDuration;

/// The fixed scenario every protocol is pinned on: a 30-vehicle highway with
/// RSUs (exercises DRR's backbone) and buses (exercises the bus ferry).
fn golden_scenario() -> Scenario {
    Scenario::highway(30)
        .with_seed(7)
        .with_rsus(2)
        .with_buses(2)
        .with_flows(3)
        .with_duration(SimDuration::from_secs(30.0))
}

/// A compact, lossless fingerprint of a report. Floats are rendered with
/// `Debug` (shortest round-trip representation), so two fingerprints are
/// equal iff the reports are bit-identical.
fn fingerprint(r: &Report) -> String {
    format!(
        "{}|sent={} dlvd={} dup={} pdr={:?} delay={:?} maxdelay={:?} hops={:?} \
         ctrl={} ctrlB={} dtx={} rerr={} drops={} nbr={:?}",
        r.protocol,
        r.data_sent,
        r.data_delivered,
        r.duplicate_deliveries,
        r.delivery_ratio,
        r.avg_delay_s,
        r.max_delay_s,
        r.avg_hops,
        r.control_packets,
        r.control_bytes,
        r.data_transmissions,
        r.route_errors,
        r.drops,
        r.avg_neighbors
    )
}

/// Pinned fingerprints, one per `ProtocolKind` in `ALL` order.
/// Captured from the pre-refactor engine at seed 7.
const PINS: &[&str] = &[
    "Flooding|sent=75 dlvd=6 dup=0 pdr=0.08 delay=0.01046353144706528 maxdelay=0.012677419095819431 hops=5.0 ctrl=0 ctrlB=0 dtx=627 rerr=0 drops=1280 nbr=2.168750000000002",
    "Biswas|sent=75 dlvd=11 dup=0 pdr=0.14666666666666667 delay=1.0337708339644407 maxdelay=4.566312094358889 hops=5.727272727272727 ctrl=0 ctrlB=0 dtx=922 rerr=0 drops=1757 nbr=2.233333333333333",
    "AODV|sent=75 dlvd=0 dup=0 pdr=0.0 delay=0.0 maxdelay=0.0 hops=0.0 ctrl=1320 ctrlB=43676 dtx=0 rerr=13 drops=635 nbr=3.813541666666667",
    "DSDV|sent=75 dlvd=3 dup=0 pdr=0.04 delay=0.008124698842881509 maxdelay=0.00848280756930464 hops=6.0 ctrl=480 ctrlB=61872 dtx=58 rerr=0 drops=65 nbr=3.214583333333332",
    "PBR|sent=75 dlvd=0 dup=0 pdr=0.0 delay=0.0 maxdelay=0.0 hops=0.0 ctrl=1331 ctrlB=44176 dtx=0 rerr=16 drops=627 nbr=3.8135416666666644",
    "Taleb|sent=75 dlvd=0 dup=0 pdr=0.0 delay=0.0 maxdelay=0.0 hops=0.0 ctrl=1071 ctrlB=34072 dtx=0 rerr=5 drops=257 nbr=3.809375000000001",
    "Abedi|sent=75 dlvd=0 dup=0 pdr=0.0 delay=0.0 maxdelay=0.0 hops=0.0 ctrl=1319 ctrlB=43608 dtx=0 rerr=14 drops=636 nbr=3.813541666666667",
    "DRR|sent=75 dlvd=15 dup=0 pdr=0.2 delay=10.50042384368885 maxdelay=19.757498930173277 hops=3.0 ctrl=982 ctrlB=42424 dtx=195 rerr=0 drops=0 nbr=3.8020833333333313",
    "Bus|sent=75 dlvd=0 dup=0 pdr=0.0 delay=0.0 maxdelay=0.0 hops=0.0 ctrl=960 ctrlB=30720 dtx=25 rerr=0 drops=0 nbr=3.802083333333331",
    "Greedy|sent=75 dlvd=4 dup=0 pdr=0.05333333333333334 delay=0.11262254551842908 maxdelay=0.4234308530027473 hops=6.0 ctrl=960 ctrlB=30720 dtx=251 rerr=0 drops=0 nbr=3.8031250000000014",
    "Zone|sent=75 dlvd=7 dup=0 pdr=0.09333333333333334 delay=0.011501307937278325 maxdelay=0.014028192284975205 hops=5.142857142857143 ctrl=960 ctrlB=30720 dtx=623 rerr=0 drops=1255 nbr=3.814583333333338",
    "ROVER|sent=75 dlvd=0 dup=0 pdr=0.0 delay=0.0 maxdelay=0.0 hops=0.0 ctrl=1320 ctrlB=43676 dtx=0 rerr=13 drops=635 nbr=3.813541666666667",
    "Yan|sent=75 dlvd=0 dup=0 pdr=0.0 delay=0.0 maxdelay=0.0 hops=0.0 ctrl=1139 ctrlB=37692 dtx=0 rerr=0 drops=95 nbr=3.8031250000000023",
    "Yan-TBPSS|sent=75 dlvd=0 dup=0 pdr=0.0 delay=0.0 maxdelay=0.0 hops=0.0 ctrl=1139 ctrlB=37704 dtx=0 rerr=0 drops=96 nbr=3.807291666666665",
    "CAR|sent=75 dlvd=4 dup=0 pdr=0.05333333333333334 delay=0.11262254551842908 maxdelay=0.4234308530027473 hops=6.0 ctrl=960 ctrlB=30720 dtx=250 rerr=0 drops=0 nbr=3.8031250000000014",
    "REAR|sent=75 dlvd=1 dup=0 pdr=0.013333333333333334 delay=0.010873164722845274 maxdelay=0.010873164722845274 hops=7.0 ctrl=960 ctrlB=30720 dtx=313 rerr=0 drops=0 nbr=3.805208333333331",
    "GVGrid|sent=75 dlvd=1 dup=0 pdr=0.013333333333333334 delay=0.015663958650240062 maxdelay=0.015663958650240062 hops=8.0 ctrl=960 ctrlB=30720 dtx=305 rerr=0 drops=0 nbr=3.805208333333332",
    "Epidemic|sent=75 dlvd=1 dup=0 pdr=0.013333333333333334 delay=13.42289873314268 maxdelay=13.42289873314268 hops=9.0 ctrl=2362 ctrlB=115852 dtx=1953 rerr=0 drops=66 nbr=3.8510416666666645",
    "PRoPHET|sent=75 dlvd=0 dup=0 pdr=0.0 delay=0.0 maxdelay=0.0 hops=0.0 ctrl=2008 ctrlB=181984 dtx=507 rerr=0 drops=6 nbr=3.8489583333333344",
    "SprayWait|sent=75 dlvd=0 dup=0 pdr=0.0 delay=0.0 maxdelay=0.0 hops=0.0 ctrl=2094 ctrlB=77628 dtx=330 rerr=0 drops=3 nbr=3.842708333333332",
    "ProbFlood|sent=75 dlvd=7 dup=0 pdr=0.09333333333333334 delay=3.668832132403559 maxdelay=17.10116248617009 hops=5.7142857142857135 ctrl=957 ctrlB=30624 dtx=1265 rerr=0 drops=1835 nbr=3.8187499999999943",
];

#[test]
fn every_protocol_matches_its_pinned_report() {
    assert_eq!(
        PINS.len(),
        ProtocolKind::ALL.len(),
        "pin list out of sync with ProtocolKind::ALL — regenerate"
    );
    let mut failures = Vec::new();
    for (kind, pin) in ProtocolKind::ALL.into_iter().zip(PINS) {
        let report = run_scenario(golden_scenario(), kind);
        let got = fingerprint(&report);
        if got != *pin {
            failures.push(format!("{kind:?}:\n  pinned: {pin}\n  got:    {got}"));
        }
    }
    assert!(
        failures.is_empty(),
        "golden reports diverged for {} protocol(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// An *empty* fault plan must be invisible: attaching `FaultPlan::new()`
/// explicitly schedules no events, draws no RNG, and changes no seq numbers,
/// so every protocol must still match its pre-fault-support pin exactly.
#[test]
fn empty_fault_plan_is_byte_identical_for_every_protocol() {
    let mut failures = Vec::new();
    for (kind, pin) in ProtocolKind::ALL.into_iter().zip(PINS) {
        let scenario = golden_scenario().with_faults(vanet_core::FaultPlan::new());
        let report = run_scenario(scenario, kind);
        let got = fingerprint(&report);
        if got != *pin {
            failures.push(format!("{kind:?}:\n  pinned: {pin}\n  got:    {got}"));
        }
    }
    assert!(
        failures.is_empty(),
        "an empty FaultPlan changed the engine for {} protocol(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// Prints the pin list for pasting into `PINS`. Run with `--ignored`.
#[test]
#[ignore = "generator, not a check"]
fn regenerate() {
    for kind in ProtocolKind::ALL {
        let report = run_scenario(golden_scenario(), kind);
        println!("    {:?},", fingerprint(&report));
    }
}
