//! Stress-tier checks for the zero-allocation event hot path: a 10k-vehicle
//! megacity smoke run (bounded wall-clock, pinned deterministic report) and
//! the determinism of the batched-beacon scheduler at scale.

use std::time::Instant;
use vanet_core::{ProtocolKind, Report, Scenario, Simulation};
use vanet_sim::SimDuration;

fn fingerprint(r: &Report) -> String {
    format!(
        "{}|sent={} dlvd={} dup={} pdr={:?} delay={:?} hops={:?} ctrl={} dtx={} drops={} nbr={:?}",
        r.protocol,
        r.data_sent,
        r.data_delivered,
        r.duplicate_deliveries,
        r.delivery_ratio,
        r.avg_delay_s,
        r.avg_hops,
        r.control_packets,
        r.data_transmissions,
        r.drops,
        r.avg_neighbors
    )
}

/// One simulated second of the full 10 000-vehicle megacity. The report pin
/// makes any nondeterminism (or behaviour change) in the hot path visible;
/// the wall-clock bound keeps the stress tier honest about throughput.
///
/// Regenerate the pin with:
/// `cargo test -p vanet-core --test hotpath -- --ignored --nocapture`
#[test]
fn megacity_10k_smoke_is_deterministic_and_bounded() {
    const PIN: &str = "Greedy|sent=14 dlvd=0 dup=0 pdr=0.0 delay=0.0 hops=0.0 ctrl=20025 dtx=56 drops=0 nbr=38.56545000000036";
    let started = Instant::now();
    let mut sim = Simulation::new(megacity_second(), ProtocolKind::Greedy);
    assert_eq!(sim.node_count(), 10_000);
    let report = sim.run();
    let wall = started.elapsed();
    assert!(
        sim.processed_events() > 100_000,
        "a megacity second must process serious event volume, got {}",
        sim.processed_events()
    );
    assert_eq!(
        fingerprint(&report),
        PIN,
        "10k-vehicle megacity report diverged from its pin"
    );
    // Generous bound (debug builds are ~10-20x slower than release); the
    // point is that the stress tier cannot silently become quadratic.
    assert!(
        wall.as_secs() < 300,
        "megacity smoke took {wall:?} — hot path has regressed badly"
    );
}

fn megacity_second() -> Scenario {
    let mut scenario = Scenario::megacity(10_000)
        .with_flows(8)
        .with_duration(SimDuration::from_secs(2.0));
    // Shrink the warm-up so application flows actually send within the
    // shortened horizon (the full megacity default is 2 s of warm-up).
    scenario.warmup = SimDuration::from_secs(0.5);
    scenario
}

#[test]
#[ignore = "generator, not a check"]
fn regenerate() {
    let report = Simulation::new(megacity_second(), ProtocolKind::Greedy).run();
    println!("PIN: {:?}", fingerprint(&report));
}
