//! Deterministic fault injection, observed end to end.
//!
//! Faults ride the `(time, seq)` scheduler as first-class events; protocols
//! never see them directly — only the usual loss and neighbour-expiry
//! channels. These tests pin the three contracts the subsystem makes:
//!
//! * **determinism** — the same seed and fault plan is byte-identical across
//!   repeated runs, for every protocol family the plan touches;
//! * **visibility** — disruptions actually disrupt (a total burst blackout
//!   delivers nothing; outages and jams register in telemetry);
//! * **additivity** — fault machinery is inert until a fault fires (pinned
//!   separately by the goldens in `golden_reports.rs`).

use vanet_core::{run_scenario, FaultPlan, ProtocolKind, Scenario, Simulation, WindowedTap};
use vanet_sim::SimDuration;

fn faulty_scenario() -> Scenario {
    Scenario::highway(24)
        .with_seed(11)
        .with_rsus(2)
        .with_flows(3)
        .with_duration(SimDuration::from_secs(20.0))
        .with_faults(
            FaultPlan::new()
                .node_outage(3, 2.0, 8.0)
                .rsu_outage(0, 5.0, 12.0)
                .jam(5, 0.8, 4.0, 16.0)
                .burst_loss(0.3, 10.0, 14.0),
        )
}

#[test]
fn same_seed_and_fault_plan_is_byte_identical_across_runs() {
    for kind in [
        ProtocolKind::Flooding,
        ProtocolKind::Aodv,
        ProtocolKind::Greedy,
        ProtocolKind::Drr,
        ProtocolKind::Epidemic,
    ] {
        let first = format!("{:?}", run_scenario(faulty_scenario(), kind));
        let second = format!("{:?}", run_scenario(faulty_scenario(), kind));
        assert_eq!(
            first, second,
            "{kind:?} diverged under an identical fault plan"
        );
    }
}

#[test]
fn fault_plan_participates_in_the_content_hash() {
    let plain = Scenario::highway(24).with_seed(11);
    let faulty = Scenario::highway(24)
        .with_seed(11)
        .with_faults(FaultPlan::new().burst_loss(0.5, 1.0, 2.0));
    assert_ne!(
        plain.content_hash(),
        faulty.content_hash(),
        "a non-empty fault plan must invalidate cached results"
    );
}

#[test]
fn total_burst_blackout_delivers_nothing() {
    let base = Scenario::highway(30)
        .with_seed(7)
        .with_rsus(2)
        .with_flows(3)
        .with_duration(SimDuration::from_secs(30.0));
    let healthy = run_scenario(base.clone(), ProtocolKind::Flooding);
    assert!(
        healthy.data_delivered > 0,
        "baseline must deliver something for the blackout to be observable"
    );
    let blacked_out = run_scenario(
        base.with_faults(FaultPlan::new().burst_loss(1.0, 0.0, f64::INFINITY)),
        ProtocolKind::Flooding,
    );
    assert_eq!(
        blacked_out.data_delivered, 0,
        "loss 1.0 for the whole run must black out every delivery"
    );
}

#[test]
fn outage_windows_degrade_but_do_not_crash_protocols() {
    // Every protocol family must survive a scenario where nodes and an RSU
    // die mid-run — failures arrive only via normal loss/expiry channels.
    for kind in ProtocolKind::ALL {
        let report = run_scenario(faulty_scenario(), kind);
        assert!(
            report.data_sent > 0,
            "{kind:?} originated nothing under faults"
        );
    }
}

#[test]
fn telemetry_observes_outages_and_fault_drops() {
    let tap = WindowedTap::new(SimDuration::from_secs(1.0), 4);
    let mut sim = Simulation::with_telemetry(faulty_scenario(), ProtocolKind::Flooding, tap);
    let _report = sim.run();
    let tap = sim.into_telemetry();
    let outages: u64 = tap.windows().iter().map(|w| w.outages).sum();
    // The plan schedules four disruption onsets: node outage, RSU outage,
    // jam activation and burst activation.
    assert_eq!(outages, 4, "every fault onset must register as an outage");
    let fault_losses: u64 = tap
        .windows()
        .iter()
        .map(|w| w.medium.fault_losses.value())
        .sum();
    assert!(
        fault_losses > 0,
        "a 0.8-loss jam plus a burst window must cost some frames"
    );
}
