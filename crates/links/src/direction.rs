//! Direction of mobility (Sec. IV-A.2, Fig. 4).
//!
//! The two velocity vectors are projected onto the *horizontal* axis — the
//! line through the two vehicles — and the *vertical* axis perpendicular to
//! it. Two vehicles are "on the same direction" when both pairs of projections
//! agree in sign, which is the predicate Taleb- and Abedi-style protocols use
//! to prefer long-lived links.

use serde::{Deserialize, Serialize};
use vanet_mobility::{Position, Vec2, Velocity};

/// The projections of both velocities onto the inter-vehicle axis (horizontal)
/// and its normal (vertical), as drawn in Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProjectedVelocities {
    /// Horizontal (along the a→b axis) projection of vehicle a's velocity.
    pub a_horizontal: f64,
    /// Vertical projection of vehicle a's velocity.
    pub a_vertical: f64,
    /// Horizontal projection of vehicle b's velocity.
    pub b_horizontal: f64,
    /// Vertical projection of vehicle b's velocity.
    pub b_vertical: f64,
}

impl ProjectedVelocities {
    /// The paper's same-direction test: both horizontal and vertical
    /// projection products are positive. Projections with magnitude below
    /// `tolerance` are treated as zero and ignored (a vehicle moving exactly
    /// along the axis has no meaningful vertical component).
    #[must_use]
    pub fn same_direction_with_tolerance(&self, tolerance: f64) -> bool {
        let horiz_ok =
            if self.a_horizontal.abs() <= tolerance || self.b_horizontal.abs() <= tolerance {
                true
            } else {
                self.a_horizontal * self.b_horizontal > 0.0
            };
        let vert_ok = if self.a_vertical.abs() <= tolerance || self.b_vertical.abs() <= tolerance {
            true
        } else {
            self.a_vertical * self.b_vertical > 0.0
        };
        horiz_ok && vert_ok
    }
}

/// Projects the velocities of two vehicles onto the axis joining them
/// (horizontal) and its perpendicular (vertical), per Fig. 4.
///
/// If the two positions coincide the x-axis is used as the horizontal axis.
#[must_use]
pub fn velocity_projection(
    pos_a: Position,
    vel_a: Velocity,
    pos_b: Position,
    vel_b: Velocity,
) -> ProjectedVelocities {
    let axis = {
        let d = pos_b - pos_a;
        if d.norm() == 0.0 {
            Vec2::new(1.0, 0.0)
        } else {
            d.normalized()
        }
    };
    let normal = axis.perpendicular();
    ProjectedVelocities {
        a_horizontal: vel_a.dot(axis),
        a_vertical: vel_a.dot(normal),
        b_horizontal: vel_b.dot(axis),
        b_vertical: vel_b.dot(normal),
    }
}

/// The paper's same-direction predicate for two vehicles given their
/// positions and velocities: `v_ah·v_bh > 0 ∧ v_av·v_bv > 0`, with
/// near-zero projections ignored.
#[must_use]
pub fn same_direction(pos_a: Position, vel_a: Velocity, pos_b: Position, vel_b: Velocity) -> bool {
    velocity_projection(pos_a, vel_a, pos_b, vel_b).same_direction_with_tolerance(1e-6)
}

/// Taleb-style velocity-vector grouping: vehicles are partitioned into four
/// groups according to the quadrant of their velocity vector; vehicles in the
/// same group are expected to keep their links longer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DirectionGroup {
    /// Velocity angle in `[−45°, 45°)` — roughly eastbound.
    East,
    /// Velocity angle in `[45°, 135°)` — roughly northbound.
    North,
    /// Velocity angle in `[135°, 225°)` — roughly westbound.
    West,
    /// Velocity angle in `[225°, 315°)` — roughly southbound.
    South,
}

impl DirectionGroup {
    /// Classifies a velocity vector into its group. Stationary vehicles are
    /// assigned to [`DirectionGroup::East`] by convention.
    #[must_use]
    pub fn of(velocity: Velocity) -> Self {
        if velocity.norm() == 0.0 {
            return DirectionGroup::East;
        }
        let deg = velocity.angle().to_degrees();
        if (-45.0..45.0).contains(&deg) {
            DirectionGroup::East
        } else if (45.0..135.0).contains(&deg) {
            DirectionGroup::North
        } else if !(-135.0..135.0).contains(&deg) {
            DirectionGroup::West
        } else {
            DirectionGroup::South
        }
    }

    /// Whether two velocities fall in the same group.
    #[must_use]
    pub fn same_group(a: Velocity, b: Velocity) -> bool {
        Self::of(a) == Self::of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_lane_same_direction() {
        // Two eastbound vehicles one behind the other.
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(100.0, 0.0);
        assert!(same_direction(
            a,
            Vec2::new(30.0, 0.0),
            b,
            Vec2::new(25.0, 0.0)
        ));
    }

    #[test]
    fn opposite_carriageways_differ() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(100.0, 4.0);
        assert!(!same_direction(
            a,
            Vec2::new(30.0, 0.0),
            b,
            Vec2::new(-30.0, 0.0)
        ));
    }

    #[test]
    fn perpendicular_streets_differ() {
        // A vehicle heading east and one heading north on a cross street,
        // positioned diagonally so both projections are non-degenerate.
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(100.0, 60.0);
        assert!(!same_direction(
            a,
            Vec2::new(10.0, 0.1),
            b,
            Vec2::new(-0.1, 10.0)
        ));
    }

    #[test]
    fn projection_values_match_geometry() {
        let p = velocity_projection(
            Vec2::new(0.0, 0.0),
            Vec2::new(3.0, 4.0),
            Vec2::new(10.0, 0.0),
            Vec2::new(-2.0, 1.0),
        );
        assert!((p.a_horizontal - 3.0).abs() < 1e-12);
        assert!((p.a_vertical - 4.0).abs() < 1e-12);
        assert!((p.b_horizontal + 2.0).abs() < 1e-12);
        assert!((p.b_vertical - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coincident_positions_use_x_axis() {
        let p = velocity_projection(
            Vec2::new(5.0, 5.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(5.0, 5.0),
            Vec2::new(1.0, 0.0),
        );
        assert_eq!(p.a_horizontal, 1.0);
        assert_eq!(p.b_horizontal, 1.0);
    }

    #[test]
    fn pure_axis_motion_ignores_vertical_component() {
        // Both vehicles move exactly along the joining axis: vertical
        // projections are zero and must not veto the same-direction verdict.
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(50.0, 0.0);
        assert!(same_direction(
            a,
            Vec2::new(20.0, 0.0),
            b,
            Vec2::new(22.0, 0.0)
        ));
    }

    #[test]
    fn direction_groups() {
        assert_eq!(
            DirectionGroup::of(Vec2::new(10.0, 1.0)),
            DirectionGroup::East
        );
        assert_eq!(
            DirectionGroup::of(Vec2::new(-10.0, 1.0)),
            DirectionGroup::West
        );
        assert_eq!(
            DirectionGroup::of(Vec2::new(1.0, 10.0)),
            DirectionGroup::North
        );
        assert_eq!(
            DirectionGroup::of(Vec2::new(1.0, -10.0)),
            DirectionGroup::South
        );
        assert_eq!(DirectionGroup::of(Vec2::ZERO), DirectionGroup::East);
        assert!(DirectionGroup::same_group(
            Vec2::new(10.0, 1.0),
            Vec2::new(8.0, -1.0)
        ));
        assert!(!DirectionGroup::same_group(
            Vec2::new(10.0, 0.0),
            Vec2::new(-10.0, 0.0)
        ));
    }

    #[test]
    fn group_boundaries() {
        // 45° exactly goes to North, 135° to West, -45° to East... check the
        // half-open interval convention.
        let at_45 = Vec2::from_angle(std::f64::consts::FRAC_PI_4);
        assert_eq!(DirectionGroup::of(at_45), DirectionGroup::North);
        let at_minus_45 = Vec2::from_angle(-std::f64::consts::FRAC_PI_4);
        assert_eq!(DirectionGroup::of(at_minus_45), DirectionGroup::East);
    }
}
