//! Link lifetime: Equations (1)–(4) of the paper.
//!
//! Two vehicles `i` (sender) and `j` (receiver) are connected while their
//! separation is at most the communication range `r`. With
//! `S(t) = ∫₀ᵗ v(x) dx` (Eq. 1) the signed separation evolves as
//! `d_t = S_i(t) − S_j(t) + d_0` (Eq. 2); the indicator `I(i,j)` (Eq. 3) tells
//! which vehicle is ahead when the link finally breaks, and the break itself
//! happens when `d_t = r · I(i,j)` (Eq. 4).
//!
//! Sign convention: `d_0 > 0` means vehicle `i` starts ahead of vehicle `j`
//! along the direction of travel; speeds and accelerations are signed scalars
//! along the same axis (the 1-D highway abstraction of Fig. 3).

use serde::{Deserialize, Serialize};

/// Which side of the range window the link breaks on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkBreakSide {
    /// The link breaks with vehicle `i` ahead of `j` (`d_t = +r`), i.e.
    /// `I(i,j) = 1`.
    Ahead,
    /// The link breaks with vehicle `i` behind `j` (`d_t = −r`), i.e.
    /// `I(i,j) = −1`.
    Behind,
    /// The link never breaks under the given motion model.
    Never,
}

impl LinkBreakSide {
    /// The paper's indicator function `I(i,j)`: `+1` when `i` ends up ahead,
    /// `−1` when it ends up behind, `0` when the link never breaks.
    #[must_use]
    pub fn indicator(self) -> i8 {
        match self {
            LinkBreakSide::Ahead => 1,
            LinkBreakSide::Behind => -1,
            LinkBreakSide::Never => 0,
        }
    }
}

/// The predicted lifetime of a communication link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkLifetime {
    /// Time until the link breaks, in seconds (`f64::INFINITY` if never).
    pub duration_s: f64,
    /// Which boundary the separation reaches.
    pub side: LinkBreakSide,
}

impl LinkLifetime {
    /// A link that never breaks.
    #[must_use]
    pub fn never() -> Self {
        LinkLifetime {
            duration_s: f64::INFINITY,
            side: LinkBreakSide::Never,
        }
    }

    /// Whether the link eventually breaks.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.duration_s.is_finite()
    }
}

fn validate_inputs(d0: f64, range: f64) {
    assert!(range > 0.0, "communication range must be positive");
    assert!(
        d0.abs() <= range,
        "vehicles must start within range (|d0| = {} > r = {})",
        d0.abs(),
        range
    );
}

/// Link lifetime for two vehicles travelling at constant speeds `vi` and `vj`
/// (Fig. 3 case (a)): `d_t = d_0 + (v_i − v_j)·t`, solved against `±r`.
///
/// # Panics
///
/// Panics if `range <= 0` or the vehicles do not start within range.
#[must_use]
pub fn link_lifetime_constant_speed(d0: f64, vi: f64, vj: f64, range: f64) -> LinkLifetime {
    validate_inputs(d0, range);
    let dv = vi - vj;
    if dv == 0.0 {
        return LinkLifetime::never();
    }
    if dv > 0.0 {
        LinkLifetime {
            duration_s: (range - d0) / dv,
            side: LinkBreakSide::Ahead,
        }
    } else {
        LinkLifetime {
            duration_s: (-range - d0) / dv,
            side: LinkBreakSide::Behind,
        }
    }
}

/// Smallest positive root of `a·t² + b·t + c = 0`, if any.
fn smallest_positive_root(a: f64, b: f64, c: f64) -> Option<f64> {
    const EPS: f64 = 1e-12;
    if a.abs() < EPS {
        if b.abs() < EPS {
            return None;
        }
        let t = -c / b;
        return if t > EPS { Some(t) } else { None };
    }
    let disc = b * b - 4.0 * a * c;
    if disc < 0.0 {
        return None;
    }
    let sq = disc.sqrt();
    let t1 = (-b - sq) / (2.0 * a);
    let t2 = (-b + sq) / (2.0 * a);
    let mut best: Option<f64> = None;
    for t in [t1, t2] {
        if t > EPS {
            best = Some(match best {
                Some(b) if b <= t => b,
                _ => t,
            });
        }
    }
    best
}

/// Link lifetime for constant accelerations `ai`, `aj` (Fig. 3 case (b)),
/// ignoring speed limits: `d_t = d_0 + Δv·t + ½·Δa·t²` solved against `±r`.
///
/// # Panics
///
/// Panics if `range <= 0` or the vehicles do not start within range.
#[must_use]
pub fn link_lifetime_constant_acceleration(
    d0: f64,
    vi: f64,
    vj: f64,
    ai: f64,
    aj: f64,
    range: f64,
) -> LinkLifetime {
    validate_inputs(d0, range);
    let dv = vi - vj;
    let da = ai - aj;
    if da == 0.0 {
        return link_lifetime_constant_speed(d0, vi, vj, range);
    }
    // d(t) - (+r) = 0  and  d(t) - (-r) = 0
    let ahead = smallest_positive_root(0.5 * da, dv, d0 - range);
    let behind = smallest_positive_root(0.5 * da, dv, d0 + range);
    match (ahead, behind) {
        (None, None) => LinkLifetime::never(),
        (Some(t), None) => LinkLifetime {
            duration_s: t,
            side: LinkBreakSide::Ahead,
        },
        (None, Some(t)) => LinkLifetime {
            duration_s: t,
            side: LinkBreakSide::Behind,
        },
        (Some(ta), Some(tb)) => {
            if ta <= tb {
                LinkLifetime {
                    duration_s: ta,
                    side: LinkBreakSide::Ahead,
                }
            } else {
                LinkLifetime {
                    duration_s: tb,
                    side: LinkBreakSide::Behind,
                }
            }
        }
    }
}

/// Link lifetime under constant acceleration *with the speed limit `v_m`*
/// (and a floor of 0 m/s): speeds saturate, after which the motion continues
/// at constant speed. Solved by exact piecewise integration of the three
/// phases (both accelerating, one saturated, both saturated).
///
/// # Panics
///
/// Panics if `range <= 0`, `vm <= 0`, or the vehicles do not start in range.
#[must_use]
pub fn link_lifetime_with_speed_limit(
    d0: f64,
    vi: f64,
    vj: f64,
    ai: f64,
    aj: f64,
    range: f64,
    vm: f64,
) -> LinkLifetime {
    validate_inputs(d0, range);
    assert!(vm > 0.0, "speed limit must be positive");
    let clamp = move |v: f64| v.clamp(0.0, vm);
    let vi0 = clamp(vi);
    let vj0 = clamp(vj);
    let speed_i = move |t: f64| clamp(vi0 + ai * t);
    let speed_j = move |t: f64| clamp(vj0 + aj * t);
    link_lifetime_numeric(d0, speed_i, speed_j, range, 0.01, 7_200.0)
}

/// Numeric link lifetime for arbitrary speed profiles `v_i(t)`, `v_j(t)`
/// (Eq. 1 integrated with the trapezoidal rule at step `dt_s`), searched up
/// to `t_max_s`.
///
/// Returns [`LinkLifetime::never`] if the link survives the whole horizon.
///
/// # Panics
///
/// Panics if `range <= 0`, the vehicles do not start within range, or
/// `dt_s <= 0`.
#[must_use]
pub fn link_lifetime_numeric<F, G>(
    d0: f64,
    speed_i: F,
    speed_j: G,
    range: f64,
    dt_s: f64,
    t_max_s: f64,
) -> LinkLifetime
where
    F: Fn(f64) -> f64,
    G: Fn(f64) -> f64,
{
    validate_inputs(d0, range);
    assert!(dt_s > 0.0, "integration step must be positive");
    let mut t = 0.0;
    let mut d = d0;
    let mut prev_rel = speed_i(0.0) - speed_j(0.0);
    while t < t_max_s {
        let next_t = t + dt_s;
        let rel = speed_i(next_t) - speed_j(next_t);
        let next_d = d + 0.5 * (prev_rel + rel) * dt_s;
        if next_d > range || next_d < -range {
            // Linear interpolation of the crossing instant inside the step.
            let boundary = if next_d > range { range } else { -range };
            let frac = if (next_d - d).abs() < 1e-15 {
                1.0
            } else {
                (boundary - d) / (next_d - d)
            };
            return LinkLifetime {
                duration_s: t + frac.clamp(0.0, 1.0) * dt_s,
                side: if next_d > range {
                    LinkBreakSide::Ahead
                } else {
                    LinkBreakSide::Behind
                },
            };
        }
        d = next_d;
        t = next_t;
        prev_rel = rel;
    }
    LinkLifetime::never()
}

/// The paper's Eq. (3) indicator evaluated directly from a separation value:
/// `1` if `d > 0` (vehicle `i` ahead), `−1` otherwise.
#[must_use]
pub fn indicator(separation: f64) -> i8 {
    if separation > 0.0 {
        1
    } else {
        -1
    }
}

/// Planar generalisation of the constant-speed lifetime: the time until two
/// vehicles at `pos_i`, `pos_j` moving with constant velocities `vel_i`,
/// `vel_j` are more than `range` metres apart, i.e. the positive root of
/// `|Δp + Δv·t| = r`.
///
/// Returns 0 if they are already out of range and [`LinkLifetime::never`] if
/// the relative velocity keeps them within range forever. The break side is
/// reported relative to the direction of relative motion (`Ahead` when the
/// separation is growing along the relative-velocity axis at break time).
#[must_use]
pub fn link_lifetime_planar(
    pos_i: vanet_mobility::Position,
    vel_i: vanet_mobility::Velocity,
    pos_j: vanet_mobility::Position,
    vel_j: vanet_mobility::Velocity,
    range: f64,
) -> LinkLifetime {
    assert!(range > 0.0, "communication range must be positive");
    let dp = pos_i - pos_j;
    let dv = vel_i - vel_j;
    if dp.norm() > range {
        return LinkLifetime {
            duration_s: 0.0,
            side: LinkBreakSide::Ahead,
        };
    }
    let a = dv.norm_sq();
    if a < 1e-12 {
        return LinkLifetime::never();
    }
    let b = 2.0 * dp.dot(dv);
    let c = dp.norm_sq() - range * range;
    let disc = b * b - 4.0 * a * c;
    if disc < 0.0 {
        return LinkLifetime::never();
    }
    let t = (-b + disc.sqrt()) / (2.0 * a);
    if t <= 0.0 {
        return LinkLifetime {
            duration_s: 0.0,
            side: LinkBreakSide::Ahead,
        };
    }
    // Ahead if vehicle i is moving away from j along the axis at break time.
    let future_dp = dp + dv * t;
    let side = if future_dp.dot(dv) > 0.0 {
        LinkBreakSide::Ahead
    } else {
        LinkBreakSide::Behind
    };
    LinkLifetime {
        duration_s: t,
        side,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: f64 = 250.0;

    #[test]
    fn equal_speeds_never_break() {
        let lt = link_lifetime_constant_speed(100.0, 30.0, 30.0, R);
        assert!(!lt.is_finite());
        assert_eq!(lt.side, LinkBreakSide::Never);
        assert_eq!(lt.side.indicator(), 0);
    }

    #[test]
    fn faster_follower_breaks_ahead() {
        // i starts 50 m behind j, closes at 5 m/s: travels 50+250 = 300 m
        // relative before the +r boundary.
        let lt = link_lifetime_constant_speed(-50.0, 30.0, 25.0, R);
        assert!((lt.duration_s - 60.0).abs() < 1e-9);
        assert_eq!(lt.side, LinkBreakSide::Ahead);
        assert_eq!(lt.side.indicator(), 1);
    }

    #[test]
    fn slower_follower_breaks_behind() {
        // i starts 50 m behind j and falls further behind at 5 m/s: 200 m to go.
        let lt = link_lifetime_constant_speed(-50.0, 25.0, 30.0, R);
        assert!((lt.duration_s - 40.0).abs() < 1e-9);
        assert_eq!(lt.side, LinkBreakSide::Behind);
        assert_eq!(lt.side.indicator(), -1);
    }

    #[test]
    fn opposite_directions_break_quickly() {
        // Head-on traffic: i eastbound 30 m/s, j westbound 30 m/s, i behind.
        let lt = link_lifetime_constant_speed(-100.0, 30.0, -30.0, R);
        assert!((lt.duration_s - (350.0 / 60.0)).abs() < 1e-9);
        // Same geometry but already past each other.
        let lt2 = link_lifetime_constant_speed(100.0, 30.0, -30.0, R);
        assert!((lt2.duration_s - (150.0 / 60.0)).abs() < 1e-9);
        assert!(lt2.duration_s < lt.duration_s);
    }

    #[test]
    fn lifetime_decreases_with_relative_speed() {
        let mut last = f64::INFINITY;
        for dv in [1.0, 2.0, 5.0, 10.0, 20.0] {
            let lt = link_lifetime_constant_speed(0.0, 30.0 + dv, 30.0, R);
            assert!(lt.duration_s < last);
            last = lt.duration_s;
        }
    }

    #[test]
    fn acceleration_case_matches_quadratic() {
        // i accelerates from equal speed: d(t) = 0.5*1*t^2, reaches 250 at t = sqrt(500).
        let lt = link_lifetime_constant_acceleration(0.0, 30.0, 30.0, 1.0, 0.0, R);
        assert!((lt.duration_s - 500.0_f64.sqrt()).abs() < 1e-9);
        assert_eq!(lt.side, LinkBreakSide::Ahead);
    }

    #[test]
    fn relative_deceleration_reverses_break_side() {
        // i closes at 10 m/s but decelerates relative to j at 1 m/s²: it never
        // reaches the +r boundary (only 50 m gained before the relative motion
        // reverses) and instead falls out of range behind j at
        // t = 10 + sqrt(100 + 500) ≈ 34.49 s.
        let lt = link_lifetime_constant_acceleration(0.0, 40.0, 30.0, -1.0, 0.0, R);
        assert_eq!(lt.side, LinkBreakSide::Behind);
        assert!((lt.duration_s - (10.0 + 600.0_f64.sqrt())).abs() < 1e-9);
    }

    #[test]
    fn acceleration_with_zero_da_falls_back_to_constant_speed() {
        let a = link_lifetime_constant_acceleration(-50.0, 30.0, 25.0, 0.5, 0.5, R);
        let b = link_lifetime_constant_speed(-50.0, 30.0, 25.0, R);
        assert!((a.duration_s - b.duration_s).abs() < 1e-9);
        assert_eq!(a.side, b.side);
    }

    #[test]
    fn numeric_matches_closed_form_constant_speed() {
        let closed = link_lifetime_constant_speed(-50.0, 30.0, 25.0, R);
        let numeric = link_lifetime_numeric(-50.0, |_| 30.0, |_| 25.0, R, 0.01, 1_000.0);
        assert!((closed.duration_s - numeric.duration_s).abs() < 0.02);
        assert_eq!(closed.side, numeric.side);
    }

    #[test]
    fn numeric_matches_closed_form_acceleration() {
        let closed = link_lifetime_constant_acceleration(0.0, 30.0, 30.0, 1.0, 0.0, R);
        let numeric = link_lifetime_numeric(0.0, |t| 30.0 + 1.0 * t, |_| 30.0, R, 0.005, 1_000.0);
        assert!((closed.duration_s - numeric.duration_s).abs() < 0.02);
    }

    #[test]
    fn numeric_horizon_returns_never() {
        let lt = link_lifetime_numeric(0.0, |_| 30.0, |_| 30.0, R, 0.1, 10.0);
        assert!(!lt.is_finite());
    }

    #[test]
    fn speed_limit_extends_lifetime() {
        // i accelerates hard but saturates at the speed limit, so the link
        // lives longer than the unclamped quadratic predicts.
        let unclamped = link_lifetime_constant_acceleration(0.0, 30.0, 30.0, 2.0, 0.0, R);
        let clamped = link_lifetime_with_speed_limit(0.0, 30.0, 30.0, 2.0, 0.0, R, 33.0);
        assert!(clamped.duration_s > unclamped.duration_s);
        // With saturation the relative speed ends up at 3 m/s, so the link
        // must still break eventually.
        assert!(clamped.is_finite());
    }

    #[test]
    fn speed_limit_equal_saturated_speeds_never_break() {
        // Both accelerate and both saturate at the limit: after saturation the
        // relative speed is zero and the link survives.
        let lt = link_lifetime_with_speed_limit(10.0, 30.0, 29.0, 2.0, 2.0, R, 33.0);
        assert!(!lt.is_finite());
    }

    #[test]
    fn indicator_function() {
        assert_eq!(indicator(5.0), 1);
        assert_eq!(indicator(-5.0), -1);
        assert_eq!(indicator(0.0), -1);
    }

    #[test]
    fn planar_matches_one_dimensional_case() {
        use vanet_mobility::Vec2;
        // Same-lane geometry: i 50 m behind j, closing at 5 m/s.
        let planar = link_lifetime_planar(
            Vec2::new(0.0, 0.0),
            Vec2::new(30.0, 0.0),
            Vec2::new(50.0, 0.0),
            Vec2::new(25.0, 0.0),
            R,
        );
        let linear = link_lifetime_constant_speed(-50.0, 30.0, 25.0, R);
        assert!((planar.duration_s - linear.duration_s).abs() < 1e-9);
        assert_eq!(planar.side, LinkBreakSide::Ahead);
    }

    #[test]
    fn planar_edge_cases() {
        use vanet_mobility::Vec2;
        // Already out of range.
        let out = link_lifetime_planar(
            Vec2::new(0.0, 0.0),
            Vec2::new(30.0, 0.0),
            Vec2::new(400.0, 0.0),
            Vec2::new(25.0, 0.0),
            R,
        );
        assert_eq!(out.duration_s, 0.0);
        // Identical velocities never break.
        let never = link_lifetime_planar(
            Vec2::new(0.0, 0.0),
            Vec2::new(30.0, 0.0),
            Vec2::new(100.0, 4.0),
            Vec2::new(30.0, 0.0),
            R,
        );
        assert!(!never.is_finite());
        // Opposite carriageways break fast.
        let opposite = link_lifetime_planar(
            Vec2::new(0.0, 0.0),
            Vec2::new(30.0, 0.0),
            Vec2::new(100.0, 4.0),
            Vec2::new(-30.0, 0.0),
            R,
        );
        assert!(opposite.is_finite());
        assert!(opposite.duration_s < 10.0);
    }

    #[test]
    #[should_panic(expected = "within range")]
    fn starting_out_of_range_is_rejected() {
        let _ = link_lifetime_constant_speed(300.0, 30.0, 25.0, R);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_range_is_rejected() {
        let _ = link_lifetime_constant_speed(0.0, 30.0, 25.0, 0.0);
    }
}
