//! # vanet-links — analytic link models
//!
//! This crate implements the analytical core of *Reliable Routing in Vehicular
//! Ad hoc Networks* (Yan, Mitton & Li, 2010):
//!
//! * **Link lifetime** (Sec. IV-A.1, Eqns. 1–4, Fig. 3): how long two vehicles
//!   stay within communication range `r` given their speeds, accelerations and
//!   initial separation — with closed forms for the constant-speed and
//!   constant-acceleration cases and a numeric integrator for arbitrary speed
//!   profiles and speed-limit clamping.
//! * **Direction of mobility** (Sec. IV-A.2, Fig. 4): decomposing the two
//!   velocity vectors along the inter-vehicle axis and its normal, the
//!   same-direction predicate and Taleb-style velocity-vector grouping.
//! * **Probability models** (Sec. VII): expected and mean link duration under
//!   normally distributed relative speed (Yan), link availability prediction
//!   (Jiang/Rao style, used by NiuDe and GVGrid), per-road-segment
//!   connectivity probability (CAR) and receipt probability from log-normal
//!   shadowing (REAR).
//! * **Path metrics**: the paper's rule that *the lifetime of a routing path
//!   is the minimum lifetime of all links involved*, plus reliability products
//!   and stability-constrained selection helpers.
//!
//! # Example
//!
//! ```
//! use vanet_links::lifetime::{link_lifetime_constant_speed, LinkBreakSide};
//!
//! // Vehicle i is 50 m behind j and closing at 5 m/s with a 250 m radio range:
//! // it first has to cover 250 − (−50)... in fact the link breaks when i is
//! // 250 m *ahead*, i.e. after travelling 300 m relative: 60 s.
//! let lt = link_lifetime_constant_speed(-50.0, 30.0, 25.0, 250.0);
//! assert!((lt.duration_s - 60.0).abs() < 1e-9);
//! assert_eq!(lt.side, LinkBreakSide::Ahead);
//! ```

#![warn(missing_docs)]

pub mod direction;
pub mod lifetime;
pub mod path;
pub mod probability;

pub use direction::{same_direction, velocity_projection, DirectionGroup, ProjectedVelocities};
pub use lifetime::{
    link_lifetime_constant_acceleration, link_lifetime_constant_speed, link_lifetime_numeric,
    link_lifetime_planar, link_lifetime_with_speed_limit, LinkBreakSide, LinkLifetime,
};
pub use path::{path_lifetime, path_reliability, PathMetrics};
pub use probability::{
    expected_link_duration, link_availability, mean_link_duration, receipt_probability,
    segment_connectivity_probability, LinkDurationModel,
};
