//! Path-level metrics.
//!
//! The paper's rule (Sec. IV-A.1): *"The lifetime of the routing path is the
//! minimum lifetime of the all links involved in the routing path."* For
//! probability metrics, the reliability of a path is the product of the
//! per-link reliabilities (links fail independently).

use serde::{Deserialize, Serialize};

/// Aggregated metrics of a candidate routing path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct PathMetrics {
    /// Number of hops (links) in the path.
    pub hops: usize,
    /// Predicted path lifetime: the minimum of the link lifetimes, seconds.
    pub lifetime_s: f64,
    /// Path reliability: the product of the link reliabilities.
    pub reliability: f64,
}

impl PathMetrics {
    /// Builds path metrics from per-link lifetimes and reliabilities.
    ///
    /// Either slice may be empty; an empty path has zero hops, infinite
    /// lifetime and reliability 1 (the degenerate "already at destination"
    /// path).
    #[must_use]
    pub fn from_links(link_lifetimes_s: &[f64], link_reliabilities: &[f64]) -> Self {
        PathMetrics {
            hops: link_lifetimes_s.len().max(link_reliabilities.len()),
            lifetime_s: path_lifetime(link_lifetimes_s),
            reliability: path_reliability(link_reliabilities),
        }
    }

    /// Whether this path dominates `other`: at least as good on both lifetime
    /// and reliability with no more hops.
    #[must_use]
    pub fn dominates(&self, other: &PathMetrics) -> bool {
        self.lifetime_s >= other.lifetime_s
            && self.reliability >= other.reliability
            && self.hops <= other.hops
    }
}

/// Path lifetime: the minimum of the link lifetimes (infinite for an empty
/// path). Negative inputs are treated as zero.
#[must_use]
pub fn path_lifetime(link_lifetimes_s: &[f64]) -> f64 {
    link_lifetimes_s
        .iter()
        .map(|&l| l.max(0.0))
        .fold(f64::INFINITY, f64::min)
}

/// Path reliability: the product of per-link reliabilities, each clamped to
/// `[0, 1]`. An empty path has reliability 1.
#[must_use]
pub fn path_reliability(link_reliabilities: &[f64]) -> f64 {
    link_reliabilities
        .iter()
        .map(|&p| p.clamp(0.0, 1.0))
        .product()
}

/// Selects the index of the best path among candidates, ranked primarily by
/// lifetime and secondarily by reliability (ties broken towards fewer hops).
/// Returns `None` for an empty candidate list.
#[must_use]
pub fn select_most_stable(candidates: &[PathMetrics]) -> Option<usize> {
    if candidates.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, c) in candidates.iter().enumerate().skip(1) {
        let b = &candidates[best];
        let better = match c.lifetime_s.partial_cmp(&b.lifetime_s) {
            Some(std::cmp::Ordering::Greater) => true,
            Some(std::cmp::Ordering::Less) => false,
            _ => match c.reliability.partial_cmp(&b.reliability) {
                Some(std::cmp::Ordering::Greater) => true,
                Some(std::cmp::Ordering::Less) => false,
                _ => c.hops < b.hops,
            },
        };
        if better {
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_lifetime_is_minimum() {
        assert_eq!(path_lifetime(&[30.0, 12.0, 55.0]), 12.0);
        assert_eq!(path_lifetime(&[]), f64::INFINITY);
        assert_eq!(path_lifetime(&[5.0, -3.0]), 0.0);
    }

    #[test]
    fn path_reliability_is_product() {
        assert!((path_reliability(&[0.9, 0.8, 0.5]) - 0.36).abs() < 1e-12);
        assert_eq!(path_reliability(&[]), 1.0);
        assert_eq!(path_reliability(&[1.5, 0.5]), 0.5, "values clamp to [0,1]");
        assert_eq!(path_reliability(&[0.9, -0.1]), 0.0);
    }

    #[test]
    fn longer_paths_are_less_reliable() {
        let short = path_reliability(&[0.95; 3]);
        let long = path_reliability(&[0.95; 10]);
        assert!(short > long);
    }

    #[test]
    fn metrics_from_links() {
        let m = PathMetrics::from_links(&[30.0, 12.0], &[0.9, 0.9]);
        assert_eq!(m.hops, 2);
        assert_eq!(m.lifetime_s, 12.0);
        assert!((m.reliability - 0.81).abs() < 1e-12);
    }

    #[test]
    fn domination() {
        let a = PathMetrics {
            hops: 3,
            lifetime_s: 40.0,
            reliability: 0.9,
        };
        let b = PathMetrics {
            hops: 4,
            lifetime_s: 30.0,
            reliability: 0.8,
        };
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(a.dominates(&a));
    }

    #[test]
    fn most_stable_selection() {
        let candidates = vec![
            PathMetrics {
                hops: 3,
                lifetime_s: 20.0,
                reliability: 0.9,
            },
            PathMetrics {
                hops: 5,
                lifetime_s: 45.0,
                reliability: 0.7,
            },
            PathMetrics {
                hops: 2,
                lifetime_s: 45.0,
                reliability: 0.8,
            },
        ];
        assert_eq!(select_most_stable(&candidates), Some(2));
        assert_eq!(select_most_stable(&[]), None);
        // Tie on lifetime and reliability: fewer hops wins.
        let tie = vec![
            PathMetrics {
                hops: 4,
                lifetime_s: 10.0,
                reliability: 0.5,
            },
            PathMetrics {
                hops: 2,
                lifetime_s: 10.0,
                reliability: 0.5,
            },
        ];
        assert_eq!(select_most_stable(&tie), Some(1));
    }
}
