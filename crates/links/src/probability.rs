//! Probability models for link reliability (Sec. VII).
//!
//! These are the models underlying the probability-model-based family:
//!
//! * [`expected_link_duration`] / [`mean_link_duration`] — Yan et al.'s ticket
//!   metric: the expected (and mean, i.e. "stability") duration of a link when
//!   the relative speed is normally distributed.
//! * [`link_availability`] — Jiang/Rao-style prediction: the probability that
//!   a link alive now is still alive after `t` seconds (used by NiuDe and
//!   GVGrid for QoS route selection).
//! * [`segment_connectivity_probability`] — CAR's per-road-segment model: the
//!   probability that consecutive vehicles on a segment are all within range,
//!   assuming exponential inter-vehicle spacing.
//! * [`receipt_probability`] — REAR's receipt probability from the log-normal
//!   shadowing signal-strength model.

use serde::{Deserialize, Serialize};
use vanet_mobility::distributions::{std_normal_cdf, Normal};

/// A probabilistic model of one link's remaining duration, built from the
/// mobility information a node has about a neighbour (relative speed mean and
/// standard deviation, current gap to the range boundary).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkDurationModel {
    /// Mean relative speed along the link axis, m/s (signed: positive means
    /// the vehicles are separating towards the break boundary).
    pub relative_speed_mean: f64,
    /// Standard deviation of the relative speed, m/s.
    pub relative_speed_std: f64,
    /// Current separation `d_0`, metres (signed, |d_0| ≤ range).
    pub separation: f64,
    /// Communication range `r`, metres.
    pub range: f64,
}

impl LinkDurationModel {
    /// Creates a model; the separation is clamped into `[-range, range]`.
    ///
    /// # Panics
    ///
    /// Panics if `range <= 0` or `relative_speed_std < 0`.
    #[must_use]
    pub fn new(
        relative_speed_mean: f64,
        relative_speed_std: f64,
        separation: f64,
        range: f64,
    ) -> Self {
        assert!(range > 0.0, "range must be positive");
        assert!(relative_speed_std >= 0.0, "std must be non-negative");
        LinkDurationModel {
            relative_speed_mean,
            relative_speed_std,
            separation: separation.clamp(-range, range),
            range,
        }
    }

    /// Expected link duration under this model (see [`expected_link_duration`]).
    #[must_use]
    pub fn expected_duration(&self) -> f64 {
        expected_link_duration(
            self.separation,
            self.relative_speed_mean,
            self.relative_speed_std,
            self.range,
        )
    }

    /// Probability the link is still alive after `t` seconds
    /// (see [`link_availability`]).
    #[must_use]
    pub fn availability(&self, t: f64) -> f64 {
        link_availability(
            self.separation,
            self.relative_speed_mean,
            self.relative_speed_std,
            self.range,
            t,
        )
    }
}

/// Expected link duration `E[T]` when the relative speed `V` is
/// `Normal(mean, std)`: for each realisation `v`, the deterministic
/// constant-speed lifetime is `(r − d₀)/v` when separating (`v > 0`) and
/// `(r + d₀)/|v|` when closing; the expectation is taken numerically over the
/// speed distribution (integrating the normal density on ±6σ), excluding a
/// small dead band around `v = 0` where the lifetime is effectively unbounded
/// and capped at `cap = 3600 s`.
///
/// Returns the cap when the relative speed is (almost) deterministically zero.
///
/// # Panics
///
/// Panics if `range <= 0` or `std < 0`.
#[must_use]
pub fn expected_link_duration(separation: f64, mean: f64, std: f64, range: f64) -> f64 {
    assert!(range > 0.0, "range must be positive");
    assert!(std >= 0.0, "std must be non-negative");
    const CAP: f64 = 3_600.0;
    let d0 = separation.clamp(-range, range);
    let lifetime = |v: f64| -> f64 {
        if v.abs() < 1e-3 {
            CAP
        } else if v > 0.0 {
            ((range - d0) / v).min(CAP)
        } else {
            ((range + d0) / -v).min(CAP)
        }
    };
    if std == 0.0 {
        return lifetime(mean);
    }
    let dist = Normal::new(mean, std);
    // Numerical expectation over ±6σ with Simpson-friendly uniform steps.
    let lo = mean - 6.0 * std;
    let hi = mean + 6.0 * std;
    let steps = 2_000;
    let h = (hi - lo) / steps as f64;
    let mut acc = 0.0;
    let mut weight = 0.0;
    for k in 0..=steps {
        let v = lo + k as f64 * h;
        let w = dist.pdf(v) * if k == 0 || k == steps { 0.5 } else { 1.0 };
        acc += w * lifetime(v);
        weight += w;
    }
    if weight <= 0.0 {
        CAP
    } else {
        acc / weight
    }
}

/// The *mean link duration* ("stability" in Yan et al.'s TBP-SS): the
/// deterministic lifetime evaluated at the mean relative speed. Cheaper than
/// the full expectation and the quantity the ticket-based probing algorithm
/// propagates as its routing metric.
///
/// # Panics
///
/// Panics if `range <= 0`.
#[must_use]
pub fn mean_link_duration(separation: f64, mean_relative_speed: f64, range: f64) -> f64 {
    assert!(range > 0.0, "range must be positive");
    const CAP: f64 = 3_600.0;
    let d0 = separation.clamp(-range, range);
    let v = mean_relative_speed;
    if v.abs() < 1e-3 {
        CAP
    } else if v > 0.0 {
        ((range - d0) / v).min(CAP)
    } else {
        ((range + d0) / -v).min(CAP)
    }
}

/// Link availability `L(t) = P(link alive at t | alive now)` under a
/// normally distributed relative speed: the link survives `t` seconds iff the
/// future separation `d₀ + V·t` is still within `[−r, r]`, so
/// `L(t) = Φ((r − d₀)/(σt)) − Φ((−r − d₀)/(σt))` shifted by the mean drift.
///
/// # Panics
///
/// Panics if `range <= 0`, `std < 0` or `t < 0`.
#[must_use]
pub fn link_availability(separation: f64, mean: f64, std: f64, range: f64, t: f64) -> f64 {
    assert!(range > 0.0, "range must be positive");
    assert!(std >= 0.0, "std must be non-negative");
    assert!(t >= 0.0, "prediction horizon must be non-negative");
    let d0 = separation.clamp(-range, range);
    if t == 0.0 {
        return 1.0;
    }
    let drift = d0 + mean * t;
    if std == 0.0 {
        return if (-range..=range).contains(&drift) {
            1.0
        } else {
            0.0
        };
    }
    let sigma_t = std * t;
    let upper = (range - drift) / sigma_t;
    let lower = (-range - drift) / sigma_t;
    (std_normal_cdf(upper) - std_normal_cdf(lower)).clamp(0.0, 1.0)
}

/// CAR-style road-segment connectivity probability: on a segment of
/// `length_m` metres carrying traffic of `density_per_m` vehicles per metre
/// with exponentially distributed inter-vehicle spacing, the probability that
/// every gap between consecutive vehicles (expected count
/// `n = density·length`) is at most `range_m`:
/// `P = (1 − e^{−λ·R})^{max(n−1, 0)}` with `λ = density`.
///
/// Returns 1.0 for segments shorter than the range (a single hop suffices).
///
/// # Panics
///
/// Panics if any argument is negative or `range_m == 0`.
#[must_use]
pub fn segment_connectivity_probability(density_per_m: f64, length_m: f64, range_m: f64) -> f64 {
    assert!(density_per_m >= 0.0, "density must be non-negative");
    assert!(length_m >= 0.0, "length must be non-negative");
    assert!(range_m > 0.0, "range must be positive");
    if length_m <= range_m {
        return 1.0;
    }
    let expected_vehicles = density_per_m * length_m;
    if expected_vehicles < 2.0 {
        // Fewer than two vehicles expected: the segment cannot be bridged.
        return 0.0;
    }
    let gap_within_range = 1.0 - (-density_per_m * range_m).exp();
    gap_within_range.powf(expected_vehicles - 1.0)
}

/// REAR-style receipt probability: probability that a frame transmitted over
/// `distance_m` metres is received, under log-normal shadowing with path-loss
/// exponent `alpha` and shadow-fading deviation `sigma_db`, where the
/// detection threshold corresponds to `nominal_range_m`.
///
/// This mirrors the channel model in `vanet-net` so protocols can *reason*
/// about the receipt probability without sampling the channel.
///
/// # Panics
///
/// Panics if `nominal_range_m <= 0`, `alpha <= 0` or `sigma_db < 0`.
#[must_use]
pub fn receipt_probability(
    distance_m: f64,
    nominal_range_m: f64,
    alpha: f64,
    sigma_db: f64,
) -> f64 {
    assert!(nominal_range_m > 0.0, "range must be positive");
    assert!(alpha > 0.0, "path-loss exponent must be positive");
    assert!(sigma_db >= 0.0, "sigma must be non-negative");
    let d = distance_m.max(1.0);
    let mean_margin_db = 10.0 * alpha * (nominal_range_m.log10() - d.log10());
    if sigma_db == 0.0 {
        return if mean_margin_db >= 0.0 { 1.0 } else { 0.0 };
    }
    std_normal_cdf(mean_margin_db / sigma_db)
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: f64 = 250.0;

    #[test]
    fn expected_duration_decreases_with_relative_speed() {
        let slow = expected_link_duration(0.0, 2.0, 1.0, R);
        let fast = expected_link_duration(0.0, 20.0, 1.0, R);
        assert!(slow > fast, "slow {slow} should exceed fast {fast}");
    }

    #[test]
    fn expected_duration_zero_std_matches_mean_duration() {
        let e = expected_link_duration(-50.0, 5.0, 0.0, R);
        let m = mean_link_duration(-50.0, 5.0, R);
        assert!((e - m).abs() < 1e-9);
        assert!((m - 60.0).abs() < 1e-9);
    }

    #[test]
    fn expected_duration_is_capped_for_zero_speed() {
        assert_eq!(mean_link_duration(0.0, 0.0, R), 3_600.0);
        let e = expected_link_duration(0.0, 0.0, 0.0, R);
        assert_eq!(e, 3_600.0);
    }

    #[test]
    fn mean_duration_direction_sign() {
        // Separating: only (r − d0) to cover; closing: (r + d0).
        let separating = mean_link_duration(100.0, 10.0, R);
        let closing = mean_link_duration(100.0, -10.0, R);
        assert!((separating - 15.0).abs() < 1e-9);
        assert!((closing - 35.0).abs() < 1e-9);
    }

    #[test]
    fn availability_at_zero_horizon_is_one() {
        assert_eq!(link_availability(0.0, 10.0, 3.0, R, 0.0), 1.0);
    }

    #[test]
    fn availability_decreases_with_horizon() {
        let mut last = 1.0;
        for t in [1.0, 5.0, 10.0, 20.0, 50.0, 100.0] {
            let a = link_availability(0.0, 5.0, 3.0, R, t);
            assert!(a <= last + 1e-12, "availability must not increase");
            assert!((0.0..=1.0).contains(&a));
            last = a;
        }
        assert!(last < 0.2, "long horizons should be unreliable, got {last}");
    }

    #[test]
    fn availability_deterministic_case() {
        // No variance: survives exactly while drift stays in range.
        assert_eq!(link_availability(0.0, 10.0, 0.0, R, 10.0), 1.0);
        assert_eq!(link_availability(0.0, 10.0, 0.0, R, 30.0), 0.0);
    }

    #[test]
    fn availability_higher_for_same_direction_traffic() {
        // Same direction ⇒ small relative speed mean; opposite ⇒ large.
        let same = link_availability(0.0, 2.0, 2.0, R, 30.0);
        let opposite = link_availability(0.0, 55.0, 2.0, R, 30.0);
        assert!(same > 0.9);
        assert!(opposite < 0.05);
    }

    #[test]
    fn segment_connectivity_increases_with_density() {
        let sparse = segment_connectivity_probability(0.002, 2_000.0, 250.0);
        let medium = segment_connectivity_probability(0.01, 2_000.0, 250.0);
        let dense = segment_connectivity_probability(0.05, 2_000.0, 250.0);
        assert!(sparse < medium && medium < dense);
        assert!(dense > 0.99);
        assert!((0.0..=1.0).contains(&sparse));
    }

    #[test]
    fn segment_connectivity_edge_cases() {
        assert_eq!(segment_connectivity_probability(0.01, 100.0, 250.0), 1.0);
        assert_eq!(segment_connectivity_probability(0.0, 2_000.0, 250.0), 0.0);
        // Expected vehicles < 2 cannot bridge the segment.
        assert_eq!(
            segment_connectivity_probability(0.0005, 2_000.0, 250.0),
            0.0
        );
    }

    #[test]
    fn receipt_probability_behaviour() {
        // Half at the nominal range, near-one close in, near-zero far out.
        let at_range = receipt_probability(250.0, 250.0, 2.7, 4.0);
        assert!((at_range - 0.5).abs() < 1e-3);
        assert!(receipt_probability(50.0, 250.0, 2.7, 4.0) > 0.99);
        assert!(receipt_probability(600.0, 250.0, 2.7, 4.0) < 0.05);
        // Deterministic when sigma = 0.
        assert_eq!(receipt_probability(200.0, 250.0, 2.7, 0.0), 1.0);
        assert_eq!(receipt_probability(300.0, 250.0, 2.7, 0.0), 0.0);
    }

    #[test]
    fn receipt_probability_monotone_in_distance() {
        let mut last = 1.1;
        for d in (1..30).map(|i| i as f64 * 25.0) {
            let p = receipt_probability(d, 250.0, 2.7, 6.0);
            assert!(p <= last + 1e-12);
            last = p;
        }
    }

    #[test]
    fn model_struct_wraps_functions() {
        let m = LinkDurationModel::new(5.0, 2.0, -50.0, R);
        assert!(m.expected_duration() > 0.0);
        assert!(m.availability(5.0) > m.availability(60.0));
        // Separation clamping.
        let clamped = LinkDurationModel::new(5.0, 2.0, 500.0, R);
        assert_eq!(clamped.separation, R);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_range_rejected() {
        let _ = mean_link_duration(0.0, 5.0, 0.0);
    }
}
