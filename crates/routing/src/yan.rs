//! Yan et al.'s ticket-based probing (the probability-model representative
//! the survey's last author co-proposed, Sec. VII-B).
//!
//! Instead of flooding route requests, the source issues a small number of
//! *tickets*. Each ticket is forwarded unicast to the most promising
//! neighbours — ranked by the probabilistic *expected link duration* (or, in
//! the TBP-SS variant, the *mean link duration*, called stability) — and the
//! ticket budget is split among them, bounding the probing cost. Tickets that
//! reach the destination return the discovered path; the source picks the
//! path whose bottleneck stability is highest and source-routes data along it.

use crate::common::{PendingBuffer, SeenCache};
use crate::protocol::{Category, DropReason, ProtocolContext, RoutingProtocol};
use std::collections::BTreeMap;
use vanet_links::probability::{expected_link_duration, mean_link_duration};
use vanet_mobility::geometry::distance;
use vanet_net::{NeighborInfo, Packet, PacketKind, RouteRecord};
use vanet_sim::{NodeId, SeqNo, SimDuration, SimTime};

/// Which stability metric the tickets optimise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TicketMetric {
    /// Expected link duration (full probabilistic expectation).
    ExpectedDuration,
    /// Mean link duration — the "stability" metric of TBP-SS.
    MeanDuration,
}

/// Configuration of the ticket-based probing protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YanConfig {
    /// Number of tickets issued per probing round.
    pub tickets: u32,
    /// Maximum number of neighbours a ticket is split across at each hop.
    pub max_branches: u32,
    /// Which stability metric is optimised.
    pub metric: TicketMetric,
    /// Standard deviation assumed for the relative-speed distribution (only
    /// used by the expected-duration metric).
    pub relative_speed_std: f64,
    /// How long a discovered source route stays valid.
    pub route_lifetime: SimDuration,
    /// Beacon interval (mobility awareness is required).
    pub beacon_interval: SimDuration,
    /// Minimum spacing between probing rounds for the same destination.
    pub probe_retry_interval: SimDuration,
}

impl Default for YanConfig {
    fn default() -> Self {
        YanConfig {
            tickets: 3,
            max_branches: 2,
            metric: TicketMetric::ExpectedDuration,
            relative_speed_std: 3.0,
            route_lifetime: SimDuration::from_secs(30.0),
            beacon_interval: SimDuration::from_secs(1.0),
            probe_retry_interval: SimDuration::from_secs(2.0),
        }
    }
}

impl YanConfig {
    /// The TBP-SS variant: stability (mean link duration) as the metric.
    #[must_use]
    pub fn stability_constrained() -> Self {
        YanConfig {
            metric: TicketMetric::MeanDuration,
            ..Self::default()
        }
    }
}

#[derive(Debug, Clone)]
struct CachedRoute {
    route: RouteRecord,
    metric: f64,
    expires_at: SimTime,
}

/// Yan's ticket-based probing protocol.
#[derive(Debug)]
pub struct Yan {
    config: YanConfig,
    routes: BTreeMap<NodeId, CachedRoute>,
    pending: PendingBuffer,
    probes_seen: SeenCache,
    next_probe_id: u64,
    last_probe: BTreeMap<NodeId, SimTime>,
    my_seq: SeqNo,
}

impl Yan {
    /// Creates a ticket-probing instance with default parameters.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(YanConfig::default())
    }

    /// Creates a ticket-probing instance with explicit configuration.
    #[must_use]
    pub fn with_config(config: YanConfig) -> Self {
        Yan {
            config,
            routes: BTreeMap::new(),
            pending: PendingBuffer::new(16, SimDuration::from_secs(8.0)),
            probes_seen: SeenCache::new(30.0),
            next_probe_id: 0,
            last_probe: BTreeMap::new(),
            my_seq: SeqNo(0),
        }
    }

    /// The number of cached source routes.
    #[must_use]
    pub fn cached_routes(&self) -> usize {
        self.routes.len()
    }

    /// Stability of the link between this node and a neighbour, under the
    /// configured metric. The separation is measured towards the range
    /// boundary in the direction of relative motion.
    fn link_stability(&self, ctx: &ProtocolContext<'_>, neighbor: &NeighborInfo) -> f64 {
        let separation = distance(ctx.position(), neighbor.position).min(ctx.range_m);
        let relative = (ctx.velocity() - neighbor.velocity).norm();
        match self.config.metric {
            TicketMetric::ExpectedDuration => expected_link_duration(
                separation,
                relative,
                self.config.relative_speed_std,
                ctx.range_m,
            ),
            TicketMetric::MeanDuration => mean_link_duration(separation, relative, ctx.range_m),
        }
    }

    /// Selects up to `max_branches` candidate next hops for a ticket heading
    /// to `dest`, ranked by link stability, excluding nodes already on the
    /// path. Candidates must make geographic progress when the destination's
    /// position is known (terminates the probe).
    fn candidates(
        &self,
        ctx: &ProtocolContext<'_>,
        dest: NodeId,
        path: &[NodeId],
    ) -> Vec<(NodeId, f64)> {
        let dest_pos = ctx.location.position_of(dest);
        let own_progress = dest_pos.map(|p| distance(ctx.position(), p));
        let mut scored: Vec<(NodeId, f64)> = ctx
            .neighbors
            .iter()
            .filter(|n| !path.contains(&n.id) && n.id != ctx.node)
            .filter(|n| match (dest_pos, own_progress) {
                (Some(p), Some(own)) => n.id == dest || distance(n.position, p) < own,
                _ => true,
            })
            .map(|n| (n.id, self.link_stability(ctx, n)))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        scored.truncate(self.config.max_branches as usize);
        scored
    }

    fn start_probe(&mut self, ctx: &mut ProtocolContext<'_>, dest: NodeId) {
        if let Some(last) = self.last_probe.get(&dest) {
            if ctx.now.saturating_since(*last) < self.config.probe_retry_interval {
                return;
            }
        }
        self.last_probe.insert(dest, ctx.now);
        let probe_id = self.next_probe_id;
        self.next_probe_id += 1;
        self.probes_seen
            .check_and_insert(ctx.node, probe_id, ctx.now);
        let path = vec![ctx.node];
        let candidates = self.candidates(ctx, dest, &path);
        if candidates.is_empty() {
            return;
        }
        let share = (self.config.tickets / candidates.len() as u32).max(1);
        for (next, stability) in candidates {
            let mut ticket = ctx.new_control_packet(PacketKind::Ticket {
                target: dest,
                probe_id,
                tickets: share,
                path: path.clone(),
                metric: stability,
            });
            ticket.destination = Some(dest);
            ticket.next_hop = Some(next);
            ctx.transmit(ticket);
        }
    }

    fn forward_data(&mut self, ctx: &mut ProtocolContext<'_>, mut packet: Packet) {
        let Some(dest) = packet.destination else {
            ctx.drop_packet(&packet, DropReason::NoRoute);
            return;
        };
        if dest == ctx.node {
            ctx.deliver(&packet);
            return;
        }
        if !packet.ttl_allows_forwarding() {
            ctx.drop_packet(&packet, DropReason::TtlExpired);
            return;
        }
        // Source routing: follow the embedded route if present.
        if let Some(route) = packet.source_route.clone() {
            if let Some(idx) = route.iter().position(|&n| n == ctx.node) {
                if idx + 1 < route.len() {
                    let next = route[idx + 1];
                    let fwd = ctx.stamp(packet.forwarded_by(ctx.node, Some(next)));
                    ctx.transmit(fwd);
                    return;
                }
            }
            ctx.drop_packet(&packet, DropReason::NoRoute);
            return;
        }
        // At the source: attach a cached route or probe for one.
        if let Some(cached) = self.routes.get(&dest) {
            if cached.expires_at >= ctx.now {
                packet.source_route = Some(cached.route.clone());
                self.forward_data(ctx, packet);
                return;
            }
            self.routes.remove(&dest);
        }
        self.pending.push(dest, packet, ctx.now);
        self.start_probe(ctx, dest);
    }

    fn handle_ticket(&mut self, ctx: &mut ProtocolContext<'_>, packet: &Packet) {
        let (target, probe_id, tickets, path, metric) = match &packet.kind {
            PacketKind::Ticket {
                target,
                probe_id,
                tickets,
                path,
                metric,
            } => (*target, *probe_id, *tickets, path.clone(), *metric),
            _ => unreachable!("handle_ticket called with a non-ticket packet"),
        };
        let origin = packet.source;
        let mut new_path = path.clone();
        new_path.push(ctx.node);
        if target == ctx.node {
            // Ticket arrived: reply with the discovered route and its
            // bottleneck stability.
            self.my_seq = self.my_seq.next();
            let mut reply = ctx.new_control_packet(PacketKind::RouteReply {
                target: ctx.node,
                route: new_path.clone(),
                metric,
                target_seq: self.my_seq,
            });
            reply.destination = Some(origin);
            reply.next_hop = Some(packet.prev_hop);
            reply.source_route = Some(new_path.into_iter().rev().collect());
            ctx.transmit(reply);
            return;
        }
        if self.probes_seen.check_and_insert(origin, probe_id, ctx.now) {
            ctx.drop_packet(packet, DropReason::Duplicate);
            return;
        }
        if !packet.ttl_allows_forwarding() || tickets == 0 {
            ctx.drop_packet(packet, DropReason::TtlExpired);
            return;
        }
        // Split the remaining tickets among the best candidate next hops.
        let candidates = self.candidates(ctx, target, &new_path);
        if candidates.is_empty() {
            ctx.drop_packet(packet, DropReason::NoRoute);
            return;
        }
        let branches = candidates.len().min(tickets as usize).max(1);
        let share = (tickets / branches as u32).max(1);
        for (next, stability) in candidates.into_iter().take(branches) {
            let mut fwd = packet.forwarded_by(ctx.node, Some(next));
            fwd.kind = PacketKind::Ticket {
                target,
                probe_id,
                tickets: share,
                path: new_path.clone(),
                metric: metric.min(stability),
            };
            let stamped = ctx.stamp(fwd);
            ctx.transmit(stamped);
        }
    }

    fn handle_reply(&mut self, ctx: &mut ProtocolContext<'_>, packet: &Packet) {
        let (target, route, metric) = match &packet.kind {
            PacketKind::RouteReply {
                target,
                route,
                metric,
                ..
            } => (*target, route.clone(), *metric),
            _ => unreachable!("handle_reply called with a non-reply packet"),
        };
        let Some(my_index) = route.iter().position(|&n| n == ctx.node) else {
            ctx.drop_packet(packet, DropReason::NotForMe);
            return;
        };
        if my_index == 0 {
            // We are the probing source: cache the best route.
            let better = match self.routes.get(&target) {
                Some(existing) => metric > existing.metric || existing.expires_at < ctx.now,
                None => true,
            };
            if better {
                self.routes.insert(
                    target,
                    CachedRoute {
                        route: route.clone(),
                        metric,
                        expires_at: ctx.now + self.config.route_lifetime,
                    },
                );
            }
            for pending in self.pending.take(target, ctx.now) {
                self.forward_data(ctx, pending);
            }
            return;
        }
        // Relay the reply towards the source along the recorded path.
        let previous = route[my_index - 1];
        let fwd = ctx.stamp(packet.forwarded_by(ctx.node, Some(previous)));
        ctx.transmit(fwd);
    }
}

impl Default for Yan {
    fn default() -> Self {
        Self::new()
    }
}

impl RoutingProtocol for Yan {
    fn name(&self) -> &'static str {
        match self.config.metric {
            TicketMetric::ExpectedDuration => "Yan",
            TicketMetric::MeanDuration => "Yan-TBPSS",
        }
    }

    fn category(&self) -> Category {
        Category::Probability
    }

    fn beacon_interval(&self) -> Option<SimDuration> {
        Some(self.config.beacon_interval)
    }

    fn originate(&mut self, ctx: &mut ProtocolContext<'_>, packet: Packet) {
        self.forward_data(ctx, packet);
    }

    fn on_packet(&mut self, ctx: &mut ProtocolContext<'_>, packet: &Packet, overheard: bool) {
        if overheard {
            return;
        }
        match &packet.kind {
            PacketKind::Data => self.forward_data(ctx, packet.clone()),
            PacketKind::Ticket { .. } => self.handle_ticket(ctx, packet),
            PacketKind::RouteReply { .. } => self.handle_reply(ctx, packet),
            _ => {}
        }
    }

    fn on_tick(&mut self, ctx: &mut ProtocolContext<'_>) {
        for packet in self.pending.expire(ctx.now) {
            ctx.drop_packet(&packet, DropReason::Expired);
        }
        for dest in self.pending.destinations() {
            self.start_probe(ctx, dest);
        }
    }

    fn on_neighbor_lost(&mut self, _ctx: &mut ProtocolContext<'_>, neighbor: NodeId) {
        // Invalidate cached routes that use the lost neighbour.
        self.routes
            .retain(|_, cached| !cached.route.contains(&neighbor));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Action, ActionSink, TableLocationService};
    use vanet_mobility::{Vec2, VehicleKind, VehicleState};
    use vanet_net::NeighborTable;
    use vanet_sim::{PacketIdAllocator, SimRng};

    struct Harness {
        state: VehicleState,
        neighbors: NeighborTable,
        location: TableLocationService,
        rng: SimRng,
        ids: PacketIdAllocator,
        sink: ActionSink,
    }

    impl Harness {
        fn new(id: u32, x: f64) -> Self {
            let mut state =
                VehicleState::stationary(NodeId(id), VehicleKind::Car, Vec2::new(x, 0.0));
            state.velocity = Vec2::new(25.0, 0.0);
            Harness {
                state,
                neighbors: NeighborTable::new(),
                location: TableLocationService::new(),
                rng: SimRng::new(1),
                ids: PacketIdAllocator::new(),
                sink: ActionSink::new(),
            }
        }

        fn add_neighbor(&mut self, id: u32, x: f64, vx: f64) {
            self.neighbors.observe(
                NodeId(id),
                Vec2::new(x, 0.0),
                Vec2::new(vx, 0.0),
                SimTime::ZERO,
                SimDuration::from_secs(10.0),
            );
        }

        fn ctx(&mut self, now: f64) -> ProtocolContext<'_> {
            ProtocolContext {
                node: self.state.id,
                now: SimTime::from_secs(now),
                state: &self.state,
                neighbors: (&self.neighbors).into(),
                range_m: 250.0,
                rsu_ids: &[],
                bus_ids: &[],
                location: &self.location,
                rng: &mut self.rng,
                packet_ids: &mut self.ids,
                actions: &mut self.sink,
            }
        }
    }

    #[test]
    fn probing_issues_tickets_to_stable_progressing_neighbors() {
        let mut h = Harness::new(0, 0.0);
        h.location
            .set(NodeId(9), Vec2::new(2_000.0, 0.0), Vec2::ZERO);
        h.add_neighbor(1, 150.0, 25.0); // stable, progressing
        h.add_neighbor(2, 150.0, -25.0); // unstable (opposite), progressing
        h.add_neighbor(3, -150.0, 25.0); // behind, filtered out
        let mut yan = Yan::new();
        let actions = {
            let mut ctx = h.ctx(1.0);
            yan.originate(&mut ctx, Packet::data(NodeId(0), NodeId(9), 64));
            ctx.take_actions()
        };
        // Two candidates → two tickets (max_branches = 2), both unicast.
        assert_eq!(actions.len(), 2);
        let mut next_hops: Vec<NodeId> = actions
            .iter()
            .map(|a| match a {
                Action::Transmit(p) => {
                    assert!(matches!(p.kind, PacketKind::Ticket { .. }));
                    p.next_hop.unwrap()
                }
                other => panic!("expected ticket transmit, got {other:?}"),
            })
            .collect();
        next_hops.sort();
        assert_eq!(next_hops, vec![NodeId(1), NodeId(2)]);
        // The stable neighbour's ticket carries the larger metric.
        let metric_of = |target: NodeId| {
            actions
                .iter()
                .find_map(|a| match a {
                    Action::Transmit(p) if p.next_hop == Some(target) => match &p.kind {
                        PacketKind::Ticket { metric, .. } => Some(*metric),
                        _ => None,
                    },
                    _ => None,
                })
                .unwrap()
        };
        assert!(metric_of(NodeId(1)) > metric_of(NodeId(2)));
    }

    #[test]
    fn destination_replies_and_source_caches_route() {
        // Destination node 9 receives a ticket and replies.
        let mut dest = Harness::new(9, 400.0);
        let mut yan_dest = Yan::new();
        let mut ticket = Packet::broadcast(
            NodeId(0),
            PacketKind::Ticket {
                target: NodeId(9),
                probe_id: 0,
                tickets: 1,
                path: vec![NodeId(0), NodeId(1)],
                metric: 42.0,
            },
            0,
        );
        ticket.destination = Some(NodeId(9));
        ticket.prev_hop = NodeId(1);
        ticket.next_hop = Some(NodeId(9));
        let reply_actions = {
            let mut ctx = dest.ctx(2.0);
            yan_dest.on_packet(&mut ctx, &ticket, false);
            ctx.take_actions()
        };
        let reply = match &reply_actions[0] {
            Action::Transmit(p) => {
                assert!(matches!(p.kind, PacketKind::RouteReply { .. }));
                assert_eq!(p.next_hop, Some(NodeId(1)));
                p.clone()
            }
            other => panic!("expected reply, got {other:?}"),
        };

        // The source receives the reply (after relaying) and caches the route.
        let mut src = Harness::new(0, 0.0);
        src.location
            .set(NodeId(9), Vec2::new(400.0, 0.0), Vec2::ZERO);
        src.add_neighbor(1, 150.0, 25.0);
        let mut yan_src = Yan::new();
        // Buffer a data packet first so the reply flushes it.
        {
            let mut ctx = src.ctx(1.0);
            yan_src.originate(&mut ctx, Packet::data(NodeId(0), NodeId(9), 64));
            ctx.take_actions();
        }
        let flushed = {
            let mut ctx = src.ctx(3.0);
            yan_src.on_packet(&mut ctx, &reply, false);
            ctx.take_actions()
        };
        assert_eq!(yan_src.cached_routes(), 1);
        assert!(flushed.iter().any(|a| matches!(
            a,
            Action::Transmit(p) if p.kind == PacketKind::Data && p.source_route.is_some()
        )));
    }

    #[test]
    fn data_follows_source_route_hop_by_hop() {
        let mut relay = Harness::new(1, 150.0);
        let mut yan = Yan::new();
        let mut data = Packet::data(NodeId(0), NodeId(9), 64);
        data.source_route = Some(vec![NodeId(0), NodeId(1), NodeId(2), NodeId(9)]);
        data.prev_hop = NodeId(0);
        data.next_hop = Some(NodeId(1));
        let actions = {
            let mut ctx = relay.ctx(2.0);
            yan.on_packet(&mut ctx, &data, false);
            ctx.take_actions()
        };
        assert!(matches!(&actions[0], Action::Transmit(p) if p.next_hop == Some(NodeId(2))));
    }

    #[test]
    fn lost_neighbor_invalidates_routes_through_it() {
        let mut h = Harness::new(0, 0.0);
        h.location.set(NodeId(9), Vec2::new(400.0, 0.0), Vec2::ZERO);
        let mut yan = Yan::new();
        yan.routes.insert(
            NodeId(9),
            CachedRoute {
                route: vec![NodeId(0), NodeId(1), NodeId(9)],
                metric: 10.0,
                expires_at: SimTime::from_secs(100.0),
            },
        );
        {
            let mut ctx = h.ctx(1.0);
            yan.on_neighbor_lost(&mut ctx, NodeId(1));
        }
        assert_eq!(yan.cached_routes(), 0);
    }

    #[test]
    fn tbpss_variant_uses_mean_duration_and_different_name() {
        let yan = Yan::with_config(YanConfig::stability_constrained());
        assert_eq!(yan.name(), "Yan-TBPSS");
        assert_eq!(Yan::new().name(), "Yan");
        assert_eq!(yan.category(), Category::Probability);
    }

    #[test]
    fn no_neighbors_means_no_probe() {
        let mut h = Harness::new(0, 0.0);
        h.location
            .set(NodeId(9), Vec2::new(2_000.0, 0.0), Vec2::ZERO);
        let mut yan = Yan::new();
        let actions = {
            let mut ctx = h.ctx(1.0);
            yan.originate(&mut ctx, Packet::data(NodeId(0), NodeId(9), 64));
            ctx.take_actions()
        };
        assert!(
            actions.is_empty(),
            "packet is buffered until probing succeeds"
        );
    }
}
