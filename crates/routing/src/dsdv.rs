//! DSDV: Destination-Sequenced Distance-Vector routing (Perkins & Bhagwat),
//! the proactive representative of the connectivity-based family.
//!
//! Every node periodically broadcasts its full routing table tagged with
//! destination sequence numbers; receivers merge entries, preferring fresher
//! sequence numbers and, for equal freshness, fewer hops. Data is forwarded
//! hop by hop along the resulting distance-vector routes.

use crate::common::{RouteEntry, RoutingTable};
use crate::protocol::{Category, DropReason, ProtocolContext, RoutingProtocol};
use vanet_net::{Packet, PacketKind};
use vanet_sim::{NodeId, SeqNo, SimDuration, SimTime};

/// Configuration of the DSDV protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DsdvConfig {
    /// Interval between periodic full-table broadcasts.
    pub update_interval: SimDuration,
    /// Lifetime of a learned route without refresh.
    pub route_lifetime: SimDuration,
}

impl Default for DsdvConfig {
    fn default() -> Self {
        DsdvConfig {
            update_interval: SimDuration::from_secs(2.0),
            route_lifetime: SimDuration::from_secs(6.0),
        }
    }
}

/// The DSDV protocol.
#[derive(Debug)]
pub struct Dsdv {
    config: DsdvConfig,
    table: RoutingTable,
    my_seq: SeqNo,
    last_update: Option<SimTime>,
}

impl Dsdv {
    /// Creates a DSDV instance with default parameters.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(DsdvConfig::default())
    }

    /// Creates a DSDV instance with explicit configuration.
    #[must_use]
    pub fn with_config(config: DsdvConfig) -> Self {
        Dsdv {
            config,
            table: RoutingTable::new(),
            my_seq: SeqNo(0),
            last_update: None,
        }
    }

    /// Read access to the routing table.
    #[must_use]
    pub fn routing_table(&self) -> &RoutingTable {
        &self.table
    }

    fn build_update(&mut self, ctx: &mut ProtocolContext<'_>) -> Packet {
        // Advertise ourselves with an even, monotonically increasing sequence
        // number plus every route we currently hold.
        self.my_seq = SeqNo(self.my_seq.0 + 2);
        let mut entries = vec![(ctx.node, 0u32, self.my_seq)];
        for e in self.table.iter() {
            if e.expires_at >= ctx.now {
                entries.push((e.destination, e.hops, e.seq));
            }
        }
        ctx.new_control_packet(PacketKind::TopologyUpdate { entries })
    }

    fn forward_data(&mut self, ctx: &mut ProtocolContext<'_>, packet: &Packet) {
        let Some(dest) = packet.destination else {
            ctx.drop_packet(packet, DropReason::NoRoute);
            return;
        };
        if !packet.ttl_allows_forwarding() {
            ctx.drop_packet(packet, DropReason::TtlExpired);
            return;
        }
        match self.table.route(dest, ctx.now) {
            Some(route) => {
                let next = route.next_hop;
                let fwd = ctx.stamp(packet.forwarded_by(ctx.node, Some(next)));
                ctx.transmit(fwd);
            }
            None => ctx.drop_packet(packet, DropReason::NoRoute),
        }
    }
}

impl Default for Dsdv {
    fn default() -> Self {
        Self::new()
    }
}

impl RoutingProtocol for Dsdv {
    fn name(&self) -> &'static str {
        "DSDV"
    }

    fn category(&self) -> Category {
        Category::Connectivity
    }

    fn originate(&mut self, ctx: &mut ProtocolContext<'_>, packet: Packet) {
        self.forward_data(ctx, &packet);
    }

    fn on_packet(&mut self, ctx: &mut ProtocolContext<'_>, packet: &Packet, overheard: bool) {
        match &packet.kind {
            PacketKind::Data => {
                if packet.destination == Some(ctx.node) {
                    ctx.deliver(packet);
                    return;
                }
                if overheard {
                    return;
                }
                self.forward_data(ctx, packet);
            }
            PacketKind::TopologyUpdate { entries } => {
                let from = packet.prev_hop;
                for &(dest, hops, seq) in entries {
                    if dest == ctx.node {
                        continue;
                    }
                    self.table.upsert(RouteEntry {
                        destination: dest,
                        next_hop: from,
                        hops: hops + 1,
                        seq,
                        metric: -f64::from(hops + 1),
                        expires_at: ctx.now + self.config.route_lifetime,
                    });
                }
            }
            _ => {}
        }
    }

    fn on_tick(&mut self, ctx: &mut ProtocolContext<'_>) {
        let due = match self.last_update {
            None => true,
            Some(t) => ctx.now.saturating_since(t) >= self.config.update_interval,
        };
        if !due {
            return;
        }
        self.last_update = Some(ctx.now);
        let update = self.build_update(ctx);
        ctx.transmit(update);
    }

    fn on_neighbor_lost(&mut self, _ctx: &mut ProtocolContext<'_>, neighbor: NodeId) {
        self.table.invalidate_next_hop(neighbor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Action, ActionSink, NoLocationService};
    use vanet_mobility::{Vec2, VehicleKind, VehicleState};
    use vanet_net::NeighborTable;
    use vanet_sim::{PacketIdAllocator, SimRng};

    struct Harness {
        state: VehicleState,
        neighbors: NeighborTable,
        rng: SimRng,
        ids: PacketIdAllocator,
        sink: ActionSink,
    }

    impl Harness {
        fn new(id: u32) -> Self {
            Harness {
                state: VehicleState::stationary(NodeId(id), VehicleKind::Car, Vec2::ZERO),
                neighbors: NeighborTable::new(),
                rng: SimRng::new(1),
                ids: PacketIdAllocator::new(),
                sink: ActionSink::new(),
            }
        }

        fn ctx(&mut self, now: f64) -> ProtocolContext<'_> {
            ProtocolContext {
                node: self.state.id,
                now: SimTime::from_secs(now),
                state: &self.state,
                neighbors: (&self.neighbors).into(),
                range_m: 250.0,
                rsu_ids: &[],
                bus_ids: &[],
                location: &NoLocationService,
                rng: &mut self.rng,
                packet_ids: &mut self.ids,
                actions: &mut self.sink,
            }
        }
    }

    #[test]
    fn periodic_updates_are_rate_limited() {
        let mut dsdv = Dsdv::new();
        let mut h = Harness::new(1);
        let first = {
            let mut ctx = h.ctx(0.0);
            dsdv.on_tick(&mut ctx);
            ctx.take_actions()
        };
        assert_eq!(first.len(), 1);
        assert!(
            matches!(&first[0], Action::Transmit(p) if matches!(p.kind, PacketKind::TopologyUpdate { .. }))
        );
        let too_soon = {
            let mut ctx = h.ctx(1.0);
            dsdv.on_tick(&mut ctx);
            ctx.take_actions()
        };
        assert!(too_soon.is_empty());
        let later = {
            let mut ctx = h.ctx(3.0);
            dsdv.on_tick(&mut ctx);
            ctx.take_actions()
        };
        assert_eq!(later.len(), 1);
    }

    #[test]
    fn updates_install_routes_via_sender() {
        let mut dsdv = Dsdv::new();
        let mut h = Harness::new(1);
        let mut update = Packet::broadcast(
            NodeId(2),
            PacketKind::TopologyUpdate {
                entries: vec![(NodeId(2), 0, SeqNo(2)), (NodeId(5), 2, SeqNo(4))],
            },
            0,
        );
        update.prev_hop = NodeId(2);
        dsdv.on_packet(&mut h.ctx(1.0), &update, false);
        let to_2 = dsdv
            .routing_table()
            .route(NodeId(2), SimTime::from_secs(1.0))
            .unwrap();
        assert_eq!(to_2.next_hop, NodeId(2));
        assert_eq!(to_2.hops, 1);
        let to_5 = dsdv
            .routing_table()
            .route(NodeId(5), SimTime::from_secs(1.0))
            .unwrap();
        assert_eq!(to_5.next_hop, NodeId(2));
        assert_eq!(to_5.hops, 3);
    }

    #[test]
    fn fresher_sequence_number_wins() {
        let mut dsdv = Dsdv::new();
        let mut h = Harness::new(1);
        let mut via_2 = Packet::broadcast(
            NodeId(2),
            PacketKind::TopologyUpdate {
                entries: vec![(NodeId(5), 1, SeqNo(2))],
            },
            0,
        );
        via_2.prev_hop = NodeId(2);
        dsdv.on_packet(&mut h.ctx(1.0), &via_2, false);
        // A stale advert through node 3 with an older sequence is ignored even
        // though it claims fewer hops.
        let mut via_3 = Packet::broadcast(
            NodeId(3),
            PacketKind::TopologyUpdate {
                entries: vec![(NodeId(5), 0, SeqNo(1))],
            },
            0,
        );
        via_3.prev_hop = NodeId(3);
        dsdv.on_packet(&mut h.ctx(1.1), &via_3, false);
        assert_eq!(
            dsdv.routing_table()
                .route(NodeId(5), SimTime::from_secs(1.2))
                .unwrap()
                .next_hop,
            NodeId(2)
        );
    }

    #[test]
    fn data_follows_table_or_is_dropped() {
        let mut dsdv = Dsdv::new();
        let mut h = Harness::new(1);
        let no_route = {
            let mut ctx = h.ctx(1.0);
            dsdv.originate(&mut ctx, Packet::data(NodeId(1), NodeId(9), 10));
            ctx.take_actions()
        };
        assert!(matches!(
            no_route[0],
            Action::Drop {
                reason: DropReason::NoRoute,
                ..
            }
        ));
        let mut update = Packet::broadcast(
            NodeId(4),
            PacketKind::TopologyUpdate {
                entries: vec![(NodeId(9), 1, SeqNo(2))],
            },
            0,
        );
        update.prev_hop = NodeId(4);
        dsdv.on_packet(&mut h.ctx(1.0), &update, false);
        let routed = {
            let mut ctx = h.ctx(1.5);
            dsdv.originate(&mut ctx, Packet::data(NodeId(1), NodeId(9), 10));
            ctx.take_actions()
        };
        assert!(matches!(&routed[0], Action::Transmit(p) if p.next_hop == Some(NodeId(4))));
        // Delivery at destination.
        let deliver = {
            let mut ctx = h.ctx(2.0);
            dsdv.on_packet(&mut ctx, &Packet::data(NodeId(7), NodeId(1), 10), false);
            ctx.take_actions()
        };
        assert!(matches!(deliver[0], Action::Deliver(_)));
    }

    #[test]
    fn neighbor_loss_invalidates_routes() {
        let mut dsdv = Dsdv::new();
        let mut h = Harness::new(1);
        let mut update = Packet::broadcast(
            NodeId(2),
            PacketKind::TopologyUpdate {
                entries: vec![(NodeId(5), 1, SeqNo(2))],
            },
            0,
        );
        update.prev_hop = NodeId(2);
        dsdv.on_packet(&mut h.ctx(1.0), &update, false);
        dsdv.on_neighbor_lost(&mut h.ctx(2.0), NodeId(2));
        assert!(dsdv
            .routing_table()
            .route(NodeId(5), SimTime::from_secs(2.0))
            .is_none());
    }

    #[test]
    fn identity() {
        let d = Dsdv::new();
        assert_eq!(d.name(), "DSDV");
        assert_eq!(d.category(), Category::Connectivity);
        assert!(d.beacon_interval().is_none());
    }
}
