//! Probabilistic flood with carry: a gossip variant of pure flooding that
//! rebroadcasts with fixed probability once a packet is a few hops from its
//! source, and additionally buffers every packet it relays so fresh
//! contacts discovered later (after a partition heals) get another chance
//! to hear it — flooding's reach with a fraction of its channel load, plus
//! DTN-style carrying.

use super::{DropPolicy, DtnCore, DtnParams};
use crate::common::SeenCache;
use crate::protocol::{BundleOp, Category, DropReason, ProtocolContext, RoutingProtocol};
use std::collections::BTreeSet;
use vanet_net::{Packet, PacketKind};
use vanet_sim::{NodeId, SimDuration};

/// Within this many hops of the source every node rebroadcasts; beyond it
/// the rebroadcast is probabilistic.
const MIN_HOPS: u32 = 2;
/// Rebroadcast probability once past [`MIN_HOPS`].
const REBROADCAST_PROB: f64 = 0.65;

/// Probabilistic flood store-carry-forward routing (protocol 21).
///
/// Unlike the custody protocols this one never unicasts: every relay is a
/// link-layer broadcast, deduplicated at the receivers. The bundle buffer
/// serves purely as a carry store — when the neighbour table gains a node
/// not seen last tick, every buffered bundle is offered through the same
/// hop-gated coin flip.
#[derive(Debug)]
pub struct ProbFlood {
    core: DtnCore,
    seen: SeenCache,
    /// Neighbour set at the previous tick, for contact detection.
    known_neighbors: BTreeSet<NodeId>,
    /// Scratch for the current neighbour set.
    current_neighbors: BTreeSet<NodeId>,
}

impl ProbFlood {
    /// Creates a probabilistic-flood instance with the given scenario knobs.
    #[must_use]
    pub fn new(params: DtnParams) -> Self {
        ProbFlood {
            core: DtnCore::new(params, DropPolicy::DropLargestHopCount),
            // The dedup window must outlive any bundle TTL the scenarios
            // use, or a carried rebroadcast could loop back in.
            seen: SeenCache::new(600.0),
            known_neighbors: BTreeSet::new(),
            current_neighbors: BTreeSet::new(),
        }
    }

    /// Buffered bundles (test/diagnostic accessor).
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.core.buffer.len()
    }

    /// The hop-gated coin flip: always rebroadcast near the source, with
    /// probability [`REBROADCAST_PROB`] after that.
    fn gate(hops: u32, ctx: &mut ProtocolContext<'_>) -> bool {
        hops < MIN_HOPS || ctx.rng.chance(REBROADCAST_PROB)
    }

    /// Whether the neighbour table contains a node not present last tick
    /// (swaps the tracked set as a side effect).
    fn fresh_contact(&mut self, ctx: &ProtocolContext<'_>) -> bool {
        self.current_neighbors.clear();
        for info in ctx.neighbors.iter() {
            self.current_neighbors.insert(info.id);
        }
        let fresh = self
            .current_neighbors
            .iter()
            .any(|id| !self.known_neighbors.contains(id));
        std::mem::swap(&mut self.known_neighbors, &mut self.current_neighbors);
        fresh
    }
}

impl Default for ProbFlood {
    fn default() -> Self {
        Self::new(DtnParams::default())
    }
}

impl RoutingProtocol for ProbFlood {
    fn name(&self) -> &'static str {
        "ProbFlood"
    }

    fn category(&self) -> Category {
        Category::Dtn
    }

    fn beacon_interval(&self) -> Option<SimDuration> {
        Some(SimDuration::from_secs(1.0))
    }

    fn originate(&mut self, ctx: &mut ProtocolContext<'_>, packet: Packet) {
        self.seen
            .check_and_insert(packet.source, packet.id.value(), ctx.now);
        // Broadcast immediately (hop 0 always passes the gate) and keep a
        // copy to re-offer at future contacts.
        let mut copy = ctx.stamp(packet.clone());
        copy.next_hop = None;
        ctx.transmit(copy);
        self.core.store(ctx, packet, false, 0);
    }

    fn on_packet(&mut self, ctx: &mut ProtocolContext<'_>, packet: &Packet, _overheard: bool) {
        if packet.kind != PacketKind::Data {
            return;
        }
        if self
            .seen
            .check_and_insert(packet.source, packet.id.value(), ctx.now)
        {
            ctx.drop_packet(packet, DropReason::Duplicate);
            return;
        }
        if packet.destination == Some(ctx.node) {
            ctx.deliver(packet);
            return;
        }
        if !packet.ttl_allows_forwarding() {
            ctx.drop_packet(packet, DropReason::TtlExpired);
            return;
        }
        if Self::gate(packet.hops, ctx) {
            let fwd = ctx.stamp(packet.forwarded_by(ctx.node, None));
            ctx.transmit(fwd);
        }
        // Carry regardless of the relay decision: a partition may heal.
        self.core.store(ctx, packet.clone(), false, 0);
    }

    fn on_tick(&mut self, ctx: &mut ProtocolContext<'_>) {
        self.core.expire(ctx);
        if !self.fresh_contact(ctx) {
            return;
        }
        // A node we had not seen before is in range: re-offer the carried
        // bundles through the same hop gate, drawing the coin flips in slot
        // order so the RNG stream is deterministic.
        let mut candidates: Vec<(u32, Packet)> = Vec::new();
        for bundle in self.core.buffer.iter() {
            if bundle.packet.ttl_allows_forwarding() {
                candidates.push((bundle.packet.hops, bundle.packet.clone()));
            }
        }
        let mut outgoing: Vec<Packet> = Vec::new();
        for (hops, packet) in candidates {
            if Self::gate(hops, ctx) {
                outgoing.push(ctx.stamp(packet.forwarded_by(ctx.node, None)));
            }
        }
        let occupancy = self.core.buffer.len();
        for packet in outgoing {
            ctx.transmit(packet);
            ctx.bundle_event(BundleOp::Forwarded, occupancy);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Action, ActionSink, NoLocationService};
    use vanet_mobility::{Vec2, VehicleKind, VehicleState};
    use vanet_net::NeighborTable;
    use vanet_sim::{PacketId, PacketIdAllocator, SimRng, SimTime};

    fn make_ctx_parts(
        node: u32,
    ) -> (
        VehicleState,
        NeighborTable,
        SimRng,
        PacketIdAllocator,
        ActionSink,
    ) {
        (
            VehicleState::stationary(NodeId(node), VehicleKind::Car, Vec2::ZERO),
            NeighborTable::new(),
            SimRng::new(1),
            PacketIdAllocator::new(),
            ActionSink::new(),
        )
    }

    macro_rules! ctx {
        ($node:expr, $state:expr, $nbrs:expr, $rng:expr, $ids:expr, $sink:expr) => {
            ProtocolContext {
                node: NodeId($node),
                now: SimTime::ZERO,
                state: &$state,
                neighbors: (&$nbrs).into(),
                range_m: 250.0,
                rsu_ids: &[],
                bus_ids: &[],
                location: &NoLocationService,
                rng: &mut $rng,
                packet_ids: &mut $ids,
                actions: &mut $sink,
            }
        };
    }

    fn data_packet(id: u64, src: u32, dst: u32) -> Packet {
        let mut p = Packet::data(NodeId(src), NodeId(dst), 100);
        p.id = PacketId(id);
        p
    }

    #[test]
    fn near_source_packets_always_rebroadcast_and_are_carried() {
        let mut proto = ProbFlood::default();
        let (state, nbrs, mut rng, mut ids, mut sink) = make_ctx_parts(2);
        let pkt = data_packet(1, 0, 9).forwarded_by(NodeId(0), None); // hops = 1 < MIN_HOPS
        let actions = {
            let mut ctx = ctx!(2, state, nbrs, rng, ids, sink);
            proto.on_packet(&mut ctx, &pkt, false);
            ctx.take_actions()
        };
        assert!(actions.iter().any(|a| matches!(a, Action::Transmit(_))));
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Bundle {
                op: BundleOp::Stored,
                ..
            }
        )));
        assert_eq!(proto.buffered(), 1);
    }

    #[test]
    fn far_packets_rebroadcast_probabilistically() {
        // Over many far packets, some must be relayed and some must not:
        // the 0.65 gate is a real coin flip, driven by the context RNG.
        let mut relayed = 0;
        let mut suppressed = 0;
        let mut proto = ProbFlood::default();
        let (state, nbrs, mut rng, mut ids, mut sink) = make_ctx_parts(2);
        for id in 0..200 {
            let mut pkt = data_packet(id, 0, 9);
            pkt.hops = 5;
            let mut ctx = ctx!(2, state, nbrs, rng, ids, sink);
            proto.on_packet(&mut ctx, &pkt, false);
            if ctx
                .take_actions()
                .iter()
                .any(|a| matches!(a, Action::Transmit(_)))
            {
                relayed += 1;
            } else {
                suppressed += 1;
            }
        }
        assert!(relayed > 80, "gate passes roughly 65%: {relayed}");
        assert!(suppressed > 30, "gate suppresses roughly 35%: {suppressed}");
    }

    #[test]
    fn duplicates_are_dropped_and_destination_delivers() {
        let mut proto = ProbFlood::default();
        let (state, nbrs, mut rng, mut ids, mut sink) = make_ctx_parts(9);
        let pkt = data_packet(1, 0, 9).forwarded_by(NodeId(0), None);
        let first = {
            let mut ctx = ctx!(9, state, nbrs, rng, ids, sink);
            proto.on_packet(&mut ctx, &pkt, false);
            ctx.take_actions()
        };
        assert!(first.iter().any(|a| matches!(a, Action::Deliver(_))));
        let second = {
            let mut ctx = ctx!(9, state, nbrs, rng, ids, sink);
            proto.on_packet(&mut ctx, &pkt, false);
            ctx.take_actions()
        };
        assert!(second.iter().any(|a| matches!(
            a,
            Action::Drop {
                reason: DropReason::Duplicate,
                ..
            }
        )));
    }

    #[test]
    fn fresh_contact_triggers_carried_rebroadcast() {
        let mut proto = ProbFlood::default();
        let (state, mut nbrs, mut rng, mut ids, mut sink) = make_ctx_parts(2);
        // Carry a near-source bundle (hops < MIN_HOPS: the contact
        // rebroadcast is then deterministic).
        let pkt = data_packet(1, 0, 9).forwarded_by(NodeId(0), None);
        {
            let mut ctx = ctx!(2, state, nbrs, rng, ids, sink);
            proto.on_packet(&mut ctx, &pkt, false);
            ctx.take_actions();
        }
        // No neighbours yet: a tick does nothing.
        let silent = {
            let mut ctx = ctx!(2, state, nbrs, rng, ids, sink);
            proto.on_tick(&mut ctx);
            ctx.take_actions()
        };
        assert!(silent.is_empty());
        // A new neighbour appears: the carried bundle is re-offered.
        nbrs.observe(
            NodeId(7),
            Vec2::new(10.0, 0.0),
            Vec2::ZERO,
            SimTime::ZERO,
            SimDuration::from_secs(10.0),
        );
        let actions = {
            let mut ctx = ctx!(2, state, nbrs, rng, ids, sink);
            proto.on_tick(&mut ctx);
            ctx.take_actions()
        };
        assert!(actions.iter().any(|a| matches!(a, Action::Transmit(_))));
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Bundle {
                op: BundleOp::Forwarded,
                ..
            }
        )));
        // The same neighbour next tick is not a fresh contact.
        let again = {
            let mut ctx = ctx!(2, state, nbrs, rng, ids, sink);
            proto.on_tick(&mut ctx);
            ctx.take_actions()
        };
        assert!(again.is_empty());
    }

    #[test]
    fn name_category_and_beacons() {
        let proto = ProbFlood::default();
        assert_eq!(proto.name(), "ProbFlood");
        assert_eq!(proto.category(), Category::Dtn);
        assert_eq!(proto.beacon_interval(), Some(SimDuration::from_secs(1.0)));
    }
}
