//! Bounded per-node bundle buffer for the store-carry-forward protocols.
//!
//! A [`BundleBuffer`] is fixed-capacity slot storage: every slot is
//! preallocated at construction and bundles move in and out of slots
//! without touching the allocator, consistent with the zero-alloc event
//! hot path. Capacity pressure is resolved by a pluggable [`DropPolicy`];
//! TTL expiry is checked lazily from the per-node maintenance deadline that
//! already rides the cancellable timer wheel (the same lazy-purge
//! discipline the neighbour tables use), so expiry needs no timers of its
//! own and fires at exactly the maintenance instants the `(time, seq)`
//! order defines.
//!
//! Every policy decision is a total order over `(SimTime, u32, bool,
//! BundleKey)` tuples — no float comparisons — so eviction is
//! deterministic for a deterministic call sequence.

// lint: hot-path

use vanet_net::Packet;
use vanet_sim::{NodeId, SimTime};

/// Fleet-unique identity of a bundle: the originating node plus the packet
/// id it allocated. Forwarded copies keep the originator's id, so every
/// replica of a bundle shares one key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BundleKey {
    /// The node that originated the bundle.
    pub origin: NodeId,
    /// The packet id at the originator.
    pub id: u64,
}

impl BundleKey {
    /// The key of `packet`.
    #[must_use]
    pub fn of(packet: &Packet) -> Self {
        BundleKey {
            origin: packet.source,
            id: packet.id.value(),
        }
    }
}

/// Which bundle gives way when the buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropPolicy {
    /// Evict the bundle that has been buffered longest.
    DropOldest,
    /// Evict the bundle that has travelled the most hops (it has had the
    /// most replication opportunities already).
    DropLargestHopCount,
    /// Evict non-custodial copies before custodial ones; oldest first
    /// within each class.
    NoCustodyFirst,
}

/// A buffered bundle: the stored packet plus its carry state.
#[derive(Debug, Clone, PartialEq)]
pub struct Bundle {
    /// The stored data packet (TTL/hops as last received).
    pub packet: Packet,
    /// When this node buffered it.
    pub stored_at: SimTime,
    /// When it must be discarded.
    pub expires_at: SimTime,
    /// Whether this node currently holds custody of the bundle.
    pub custody: bool,
    /// Remaining copy tickets (spray-and-wait); 0 when unbudgeted.
    pub copies: u32,
}

impl Bundle {
    /// The bundle's fleet-unique key.
    #[must_use]
    pub fn key(&self) -> BundleKey {
        BundleKey::of(&self.packet)
    }
}

/// What [`BundleBuffer::insert`] did with the offered bundle.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertOutcome {
    /// Stored in a free slot.
    Stored,
    /// Stored; the returned bundle was evicted to make room.
    Evicted(Bundle),
    /// Not stored: under the drop policy the offered bundle itself was the
    /// most evictable candidate.
    Rejected(Bundle),
    /// Not stored: a bundle with the same key is already buffered.
    Duplicate(Bundle),
}

/// Fixed-capacity slot storage for bundles with policy-driven eviction.
#[derive(Debug, Clone)]
pub struct BundleBuffer {
    /// Preallocated slots; `None` is a free slot. Capacities are small
    /// (tens of bundles), so scans stay within a few cache lines and no
    /// index structure is needed.
    slots: Vec<Option<Bundle>>,
    len: usize,
    policy: DropPolicy,
}

impl BundleBuffer {
    /// Creates a buffer with room for `capacity` bundles.
    #[must_use]
    pub fn new(capacity: usize, policy: DropPolicy) -> Self {
        // lint: allow(P1) — construction, once per node at simulation
        // start; every slot the buffer will ever use is allocated here.
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || None);
        BundleBuffer {
            slots,
            len: 0,
            policy,
        }
    }

    /// Maximum number of bundles the buffer can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Buffered bundles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bundles are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured drop policy.
    #[must_use]
    pub fn policy(&self) -> DropPolicy {
        self.policy
    }

    /// Whether a bundle with `key` is buffered.
    #[must_use]
    pub fn contains(&self, key: BundleKey) -> bool {
        self.get(key).is_some()
    }

    /// The buffered bundle with `key`, if any.
    #[must_use]
    pub fn get(&self, key: BundleKey) -> Option<&Bundle> {
        self.slots
            .iter()
            .flatten()
            .find(|bundle| bundle.key() == key)
    }

    /// Mutable access to the buffered bundle with `key`, if any.
    pub fn get_mut(&mut self, key: BundleKey) -> Option<&mut Bundle> {
        self.slots
            .iter_mut()
            .flatten()
            .find(|bundle| bundle.key() == key)
    }

    /// All buffered bundles, in slot order (deterministic for a
    /// deterministic call sequence).
    pub fn iter(&self) -> impl Iterator<Item = &Bundle> {
        self.slots.iter().flatten()
    }

    /// Mutable iteration over all buffered bundles, in slot order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Bundle> {
        self.slots.iter_mut().flatten()
    }

    /// Offers `bundle` to the buffer. With a free slot it is stored; at
    /// capacity the drop policy picks the most evictable of the stored
    /// bundles *and the offered one* — so an incoming bundle that ranks
    /// worst under the policy is rejected rather than displacing a better
    /// one.
    pub fn insert(&mut self, bundle: Bundle) -> InsertOutcome {
        if self.capacity() == 0 {
            return InsertOutcome::Rejected(bundle);
        }
        if self.contains(bundle.key()) {
            return InsertOutcome::Duplicate(bundle);
        }
        if self.len < self.capacity() {
            let slot = self
                .slots
                .iter_mut()
                .find(|slot| slot.is_none())
                .expect("len < capacity implies a free slot");
            *slot = Some(bundle);
            self.len += 1;
            return InsertOutcome::Stored;
        }
        // Full: find the most evictable stored bundle.
        let mut victim_slot = 0;
        for slot in 1..self.slots.len() {
            let candidate = self.slots[slot].as_ref().expect("buffer is full");
            let current = self.slots[victim_slot].as_ref().expect("buffer is full");
            if more_evictable(self.policy, candidate, current) {
                victim_slot = slot;
            }
        }
        let victim = self.slots[victim_slot].as_ref().expect("buffer is full");
        if more_evictable(self.policy, &bundle, victim) {
            return InsertOutcome::Rejected(bundle);
        }
        let evicted = self.slots[victim_slot]
            .replace(bundle)
            .expect("victim slot was occupied");
        InsertOutcome::Evicted(evicted)
    }

    /// Removes and returns the bundle with `key`, if buffered.
    pub fn remove(&mut self, key: BundleKey) -> Option<Bundle> {
        for slot in &mut self.slots {
            if slot.as_ref().is_some_and(|bundle| bundle.key() == key) {
                self.len -= 1;
                return slot.take();
            }
        }
        None
    }

    /// Moves every bundle whose `expires_at` has passed into `out`, in slot
    /// order. `out` is a caller-owned scratch buffer so steady-state expiry
    /// reuses its capacity.
    pub fn expire_due(&mut self, now: SimTime, out: &mut Vec<Bundle>) {
        for slot in &mut self.slots {
            if slot.as_ref().is_some_and(|bundle| bundle.expires_at <= now) {
                out.push(slot.take().expect("checked above"));
                self.len -= 1;
            }
        }
    }
}

/// Whether `a` should be evicted in preference to `b` under `policy`.
///
/// Every branch bottoms out in the total `(SimTime, u32, bool, BundleKey)`
/// orders, so the choice is unambiguous for any pair.
fn more_evictable(policy: DropPolicy, a: &Bundle, b: &Bundle) -> bool {
    use std::cmp::Ordering;
    let by_age = |a: &Bundle, b: &Bundle| {
        // Older (smaller stored_at) is more evictable; keys break ties.
        match a.stored_at.cmp(&b.stored_at) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => a.key() < b.key(),
        }
    };
    match policy {
        DropPolicy::DropOldest => by_age(a, b),
        DropPolicy::DropLargestHopCount => match a.packet.hops.cmp(&b.packet.hops) {
            Ordering::Greater => true,
            Ordering::Less => false,
            Ordering::Equal => by_age(a, b),
        },
        DropPolicy::NoCustodyFirst => match (a.custody, b.custody) {
            (false, true) => true,
            (true, false) => false,
            _ => by_age(a, b),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanet_sim::{PacketId, SimDuration, SimRng};

    fn bundle(origin: u32, id: u64, stored_s: f64, hops: u32, custody: bool) -> Bundle {
        let mut packet = Packet::data(NodeId(origin), NodeId(999), 64);
        packet.id = PacketId(id);
        packet.hops = hops;
        let stored_at = SimTime::from_secs(stored_s);
        Bundle {
            packet,
            stored_at,
            expires_at: stored_at + SimDuration::from_secs(30.0),
            custody,
            copies: 0,
        }
    }

    #[test]
    fn stores_until_capacity_then_applies_the_policy() {
        let mut buf = BundleBuffer::new(2, DropPolicy::DropOldest);
        assert!(matches!(
            buf.insert(bundle(1, 1, 1.0, 0, false)),
            InsertOutcome::Stored
        ));
        assert!(matches!(
            buf.insert(bundle(1, 2, 2.0, 0, false)),
            InsertOutcome::Stored
        ));
        assert_eq!(buf.len(), 2);
        // Full: the oldest (id 1) is evicted for the newcomer.
        match buf.insert(bundle(1, 3, 3.0, 0, false)) {
            InsertOutcome::Evicted(evicted) => assert_eq!(evicted.key().id, 1),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(buf.contains(BundleKey {
            origin: NodeId(1),
            id: 3
        }));
    }

    #[test]
    fn duplicate_keys_are_refused() {
        let mut buf = BundleBuffer::new(4, DropPolicy::DropOldest);
        buf.insert(bundle(1, 1, 1.0, 0, false));
        assert!(matches!(
            buf.insert(bundle(1, 1, 2.0, 5, true)),
            InsertOutcome::Duplicate(_)
        ));
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn largest_hop_count_policy_rejects_a_worse_newcomer() {
        let mut buf = BundleBuffer::new(1, DropPolicy::DropLargestHopCount);
        buf.insert(bundle(1, 1, 1.0, 2, false));
        // The newcomer has more hops than anything stored: it is the victim.
        match buf.insert(bundle(1, 2, 2.0, 9, false)) {
            InsertOutcome::Rejected(rejected) => assert_eq!(rejected.key().id, 2),
            other => panic!("expected rejection, got {other:?}"),
        }
        // A fresher newcomer displaces the stored one.
        match buf.insert(bundle(1, 3, 3.0, 1, false)) {
            InsertOutcome::Evicted(evicted) => assert_eq!(evicted.key().id, 1),
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn no_custody_first_prefers_non_custodial_victims() {
        let mut buf = BundleBuffer::new(2, DropPolicy::NoCustodyFirst);
        buf.insert(bundle(1, 1, 1.0, 0, true));
        buf.insert(bundle(1, 2, 2.0, 0, false));
        match buf.insert(bundle(1, 3, 3.0, 0, true)) {
            InsertOutcome::Evicted(evicted) => {
                assert_eq!(evicted.key().id, 2, "the non-custodial copy gives way");
            }
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn expiry_moves_due_bundles_out_in_slot_order() {
        let mut buf = BundleBuffer::new(4, DropPolicy::DropOldest);
        buf.insert(bundle(1, 1, 0.0, 0, false));
        buf.insert(bundle(1, 2, 20.0, 0, false));
        let mut out = Vec::new();
        buf.expire_due(SimTime::from_secs(31.0), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].key().id, 1);
        assert_eq!(buf.len(), 1);
        buf.expire_due(SimTime::from_secs(31.0), &mut out);
        assert_eq!(out.len(), 1, "expiry is idempotent");
    }

    #[test]
    fn remove_frees_the_slot() {
        let mut buf = BundleBuffer::new(2, DropPolicy::DropOldest);
        buf.insert(bundle(1, 1, 1.0, 0, false));
        let key = BundleKey {
            origin: NodeId(1),
            id: 1,
        };
        assert!(buf.remove(key).is_some());
        assert!(buf.remove(key).is_none());
        assert_eq!(buf.len(), 0);
        assert!(matches!(
            buf.insert(bundle(1, 2, 2.0, 0, false)),
            InsertOutcome::Stored
        ));
    }

    /// A naive reference model of the same policy semantics: an unordered
    /// bag that re-derives the victim by a full sort on every insert.
    struct ReferenceModel {
        bundles: Vec<Bundle>,
        capacity: usize,
        policy: DropPolicy,
    }

    impl ReferenceModel {
        fn insert(&mut self, bundle: Bundle) -> Option<BundleKey> {
            if self.capacity == 0 {
                return Some(bundle.key());
            }
            if self.bundles.iter().any(|b| b.key() == bundle.key()) {
                return None; // duplicate: refused, nothing evicted
            }
            if self.bundles.len() < self.capacity {
                self.bundles.push(bundle);
                return None;
            }
            // Rank every candidate (stored + incoming) by evictability and
            // drop the worst.
            self.bundles.push(bundle);
            let mut worst = 0;
            for i in 1..self.bundles.len() {
                if more_evictable(self.policy, &self.bundles[i], &self.bundles[worst]) {
                    worst = i;
                }
            }
            Some(self.bundles.remove(worst).key())
        }

        fn expire(&mut self, now: SimTime) -> Vec<BundleKey> {
            let mut expired: Vec<BundleKey> = self
                .bundles
                .iter()
                .filter(|b| b.expires_at <= now)
                .map(Bundle::key)
                .collect();
            self.bundles.retain(|b| b.expires_at > now);
            expired.sort();
            expired
        }

        fn keys(&self) -> Vec<BundleKey> {
            let mut keys: Vec<BundleKey> = self.bundles.iter().map(Bundle::key).collect();
            keys.sort();
            keys
        }
    }

    /// Property: under randomized churn (inserts with colliding keys,
    /// removals, expiry sweeps) the slot buffer holds exactly the bundles
    /// the naive model holds and makes identical eviction choices, for
    /// every policy.
    #[test]
    fn eviction_matches_the_naive_reference_model_under_churn() {
        for policy in [
            DropPolicy::DropOldest,
            DropPolicy::DropLargestHopCount,
            DropPolicy::NoCustodyFirst,
        ] {
            for seed in 0..8_u64 {
                let mut rng = SimRng::new(9000 + seed);
                let capacity = 1 + (rng.next_u64() % 8) as usize;
                let mut buf = BundleBuffer::new(capacity, policy);
                let mut model = ReferenceModel {
                    bundles: Vec::new(),
                    capacity,
                    policy,
                };
                let mut clock = 0.0_f64;
                let mut scratch = Vec::new();
                for step in 0..400_u64 {
                    clock += rng.uniform();
                    let now = SimTime::from_secs(clock);
                    match rng.next_u64() % 10 {
                        // Mostly inserts, with a small key space so
                        // duplicates actually occur.
                        0..=6 => {
                            let origin = (rng.next_u64() % 4) as u32;
                            let id = rng.next_u64() % 32;
                            let hops = (rng.next_u64() % 6) as u32;
                            let custody = rng.next_u64() % 2 == 0;
                            let mut b = bundle(origin, id, clock, hops, custody);
                            b.expires_at = now + SimDuration::from_secs(1.0 + rng.uniform() * 10.0);
                            let model_evicted = model.insert(b.clone());
                            let outcome = buf.insert(b);
                            let buf_evicted = match outcome {
                                InsertOutcome::Stored | InsertOutcome::Duplicate(_) => None,
                                InsertOutcome::Evicted(e) => Some(e.key()),
                                InsertOutcome::Rejected(r) => Some(r.key()),
                            };
                            assert_eq!(
                                buf_evicted, model_evicted,
                                "{policy:?} seed {seed} step {step}: eviction diverged"
                            );
                        }
                        7 => {
                            let origin = (rng.next_u64() % 4) as u32;
                            let id = rng.next_u64() % 32;
                            let key = BundleKey {
                                origin: NodeId(origin),
                                id,
                            };
                            let model_had = model.bundles.iter().any(|b| b.key() == key);
                            if model_had {
                                model.bundles.retain(|b| b.key() != key);
                            }
                            assert_eq!(
                                buf.remove(key).is_some(),
                                model_had,
                                "{policy:?} seed {seed} step {step}: removal diverged"
                            );
                        }
                        _ => {
                            scratch.clear();
                            buf.expire_due(now, &mut scratch);
                            let mut expired: Vec<BundleKey> =
                                scratch.iter().map(Bundle::key).collect();
                            expired.sort();
                            assert_eq!(
                                expired,
                                model.expire(now),
                                "{policy:?} seed {seed} step {step}: expiry diverged"
                            );
                        }
                    }
                    let mut keys: Vec<BundleKey> = buf.iter().map(Bundle::key).collect();
                    keys.sort();
                    assert_eq!(
                        keys,
                        model.keys(),
                        "{policy:?} seed {seed} step {step}: contents diverged"
                    );
                    assert_eq!(buf.len(), model.bundles.len());
                    assert!(buf.len() <= buf.capacity());
                }
            }
        }
    }
}
