//! Delay-tolerant store-carry-forward routing (the sixth family).
//!
//! The five connected-path families of the paper's taxonomy all assume a
//! contemporaneous route exists when a packet is sent. In sparse or
//! disrupted VANETs — night-time highways, rural roads, fault-injected
//! outages — that assumption fails and their delivery ratios collapse. The
//! protocols in this module instead *buffer* data as bundles, *carry* them
//! through partitions and *forward* opportunistically on neighbour contact:
//!
//! | # | Protocol | Replication strategy |
//! |---|----------|----------------------|
//! | 18 | [`Epidemic`] | summary-vector anti-entropy: copy everything the peer lacks |
//! | 19 | [`Prophet`] | delivery predictabilities with aging + transitive decay |
//! | 20 | [`SprayAndWait`] | binary copy-ticket splitting, then direct-only wait |
//! | 21 | [`ProbFlood`] | hop-gated probabilistic rebroadcast, plus carry |
//!
//! All four are built on the same substrate: a bounded, preallocated
//! [`BundleBuffer`] with a pluggable [`DropPolicy`], lazy TTL expiry checked
//! from the per-node maintenance deadline already riding the cancellable
//! timer wheel, and a custody handshake ([`vanet_net::PacketKind::CustodyAck`])
//! that lets a node release responsibility for a bundle once a downstream
//! node has taken it — releasing it for `NoCustodyFirst` eviction.
//!
//! ## Determinism contract
//!
//! Contact discovery rides the deterministic beacon/neighbour machinery
//! (all four protocols request HELLO beacons); summary vectors are sorted
//! before transmission; eviction and expiry decide by total orders over
//! `(SimTime, hops, custody, BundleKey)` — never by float comparison or
//! iteration over unordered containers. Given the same `(time, seq)` event
//! sequence every buffer ends every run in the same state, byte for byte.

pub mod buffer;

mod epidemic;
mod probflood;
mod prophet;
mod spray;

pub use buffer::{Bundle, BundleBuffer, BundleKey, DropPolicy, InsertOutcome};
pub use epidemic::Epidemic;
pub use probflood::ProbFlood;
pub use prophet::Prophet;
pub use spray::SprayAndWait;

use crate::protocol::{BundleOp, DropReason, ProtocolContext};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use vanet_net::{Packet, PacketKind};
use vanet_sim::{NodeId, SimDuration};

/// Tunable knobs of the store-carry-forward layer, carried by the scenario
/// (`buffer=` / `ttl=` / `copies=` in a scenario spec).
///
/// The default values leave the 17 connected-path protocols untouched: a
/// protocol that never buffers a bundle never reads them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DtnParams {
    /// Per-node bundle-buffer capacity.
    pub buffer_capacity: usize,
    /// Bundle lifetime, measured from the bundle's creation time.
    pub bundle_ttl: SimDuration,
    /// Initial copy-ticket budget for spray-and-wait.
    pub copies: u32,
}

impl Default for DtnParams {
    fn default() -> Self {
        DtnParams {
            buffer_capacity: 32,
            bundle_ttl: SimDuration::from_secs(30.0),
            copies: 8,
        }
    }
}

impl DtnParams {
    /// Whether these are exactly the default parameters (used by the
    /// scenario's `Debug`/content-hash rendering to omit the field, keeping
    /// every pre-DTN scenario hash stable).
    #[must_use]
    pub fn is_default(&self) -> bool {
        *self == DtnParams::default()
    }
}

/// What [`DtnCore::receive_data`] did with an incoming data packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Receive {
    /// The packet reached its destination here and was delivered.
    Delivered,
    /// The packet was stored for carrying.
    Stored,
    /// The packet was a duplicate or could not be stored.
    Refused,
}

/// The buffer-and-custody machinery shared by [`Epidemic`], [`Prophet`] and
/// [`SprayAndWait`] (and, minus the custody handshake, [`ProbFlood`]).
#[derive(Debug)]
pub struct DtnCore {
    /// The bounded bundle store.
    pub buffer: BundleBuffer,
    /// Bundle lifetime from creation.
    ttl: SimDuration,
    /// Keys of bundles this node has seen to their final destination
    /// (delivered here, or confirmed delivered by a destination custody
    /// ack). Advertised in summary vectors so peers stop offering them.
    delivered: BTreeSet<BundleKey>,
    /// Scratch for TTL expiry; reused so steady-state expiry keeps its
    /// capacity.
    expiry_scratch: Vec<Bundle>,
}

impl DtnCore {
    /// Creates the core with the given scenario knobs and eviction policy.
    #[must_use]
    pub fn new(params: DtnParams, policy: DropPolicy) -> Self {
        DtnCore {
            buffer: BundleBuffer::new(params.buffer_capacity, policy),
            ttl: params.bundle_ttl,
            delivered: BTreeSet::new(),
            expiry_scratch: Vec::new(),
        }
    }

    /// Whether `key` is known to have reached its destination.
    #[must_use]
    pub fn is_delivered(&self, key: BundleKey) -> bool {
        self.delivered.contains(&key)
    }

    /// Buffers `packet` as a bundle, resolving capacity pressure through the
    /// drop policy and reporting every lifecycle event. Returns `true` when
    /// the packet is now buffered.
    pub fn store(
        &mut self,
        ctx: &mut ProtocolContext<'_>,
        packet: Packet,
        custody: bool,
        copies: u32,
    ) -> bool {
        let expires_at = packet.created_at + self.ttl;
        if expires_at <= ctx.now {
            ctx.drop_packet(&packet, DropReason::Expired);
            return false;
        }
        let bundle = Bundle {
            packet,
            stored_at: ctx.now,
            expires_at,
            custody,
            copies,
        };
        match self.buffer.insert(bundle) {
            InsertOutcome::Stored => {
                ctx.bundle_event(BundleOp::Stored, self.buffer.len());
                true
            }
            InsertOutcome::Evicted(evicted) => {
                ctx.drop_packet(&evicted.packet, DropReason::BufferOverflow);
                ctx.bundle_event(BundleOp::Evicted, self.buffer.len());
                ctx.bundle_event(BundleOp::Stored, self.buffer.len());
                true
            }
            InsertOutcome::Rejected(rejected) => {
                ctx.drop_packet(&rejected.packet, DropReason::BufferOverflow);
                false
            }
            InsertOutcome::Duplicate(duplicate) => {
                ctx.drop_packet(&duplicate.packet, DropReason::Duplicate);
                false
            }
        }
    }

    /// Discards every bundle whose TTL has run out (called from the
    /// maintenance tick, i.e. lazily at the deadlines the timer wheel
    /// already schedules).
    pub fn expire(&mut self, ctx: &mut ProtocolContext<'_>) {
        self.expiry_scratch.clear();
        self.buffer.expire_due(ctx.now, &mut self.expiry_scratch);
        let occupancy = self.buffer.len();
        for bundle in self.expiry_scratch.drain(..) {
            ctx.drop_packet(&bundle.packet, DropReason::Expired);
            ctx.bundle_event(BundleOp::Expired, occupancy);
        }
    }

    /// Broadcasts this node's summary vector: the sorted `(origin, id)` keys
    /// of every bundle it holds or knows delivered, plus the caller's
    /// delivery predictabilities (PRoPHET; empty otherwise). Peers answer by
    /// transferring only the difference.
    pub fn broadcast_summary(
        &self,
        ctx: &mut ProtocolContext<'_>,
        predictabilities: Vec<(NodeId, f64)>,
    ) {
        let mut have: Vec<(NodeId, u64)> = self
            .buffer
            .iter()
            .map(|bundle| {
                let key = bundle.key();
                (key.origin, key.id)
            })
            .collect();
        have.extend(self.delivered.iter().map(|key| (key.origin, key.id)));
        have.sort_unstable();
        have.dedup();
        let packet = ctx.new_control_packet(PacketKind::SummaryVector {
            have,
            predictabilities,
        });
        ctx.transmit(packet);
    }

    /// Handles an incoming data packet for the custody-based protocols:
    /// delivers it at the destination (acking so the sender learns of the
    /// delivery), otherwise takes custody by storing it and acking the
    /// previous hop.
    pub fn receive_data(
        &mut self,
        ctx: &mut ProtocolContext<'_>,
        packet: &Packet,
        copies: u32,
    ) -> Receive {
        let key = BundleKey::of(packet);
        if packet.destination == Some(ctx.node) {
            if self.delivered.insert(key) {
                ctx.deliver(packet);
            } else {
                ctx.drop_packet(packet, DropReason::Duplicate);
            }
            // Ack in both cases: the sender either releases custody or
            // learns (again) that the bundle is done.
            self.send_custody_ack(ctx, key, packet.prev_hop);
            return Receive::Delivered;
        }
        if self.delivered.contains(&key) || self.buffer.contains(key) {
            ctx.drop_packet(packet, DropReason::Duplicate);
            return Receive::Refused;
        }
        if self.store(ctx, packet.clone(), true, copies) {
            self.send_custody_ack(ctx, key, packet.prev_hop);
            Receive::Stored
        } else {
            Receive::Refused
        }
    }

    /// Unicasts a custody acknowledgement for `key` to `to`.
    pub fn send_custody_ack(&self, ctx: &mut ProtocolContext<'_>, key: BundleKey, to: NodeId) {
        let mut ack = ctx.new_control_packet(PacketKind::CustodyAck {
            origin: key.origin,
            bundle_id: key.id,
        });
        ack.next_hop = Some(to);
        ctx.transmit(ack);
    }

    /// Handles a custody ack from `from`: releases this node's custody of
    /// the bundle (one [`BundleOp::Custody`] per hand-over, at the releasing
    /// node), and if the ack came from the bundle's *destination* the bundle
    /// is done — record it delivered and free the slot.
    pub fn handle_custody_ack(
        &mut self,
        ctx: &mut ProtocolContext<'_>,
        from: NodeId,
        origin: NodeId,
        bundle_id: u64,
    ) {
        let key = BundleKey {
            origin,
            id: bundle_id,
        };
        let occupancy = self.buffer.len();
        let mut custody_released = false;
        let mut reached_destination = false;
        if let Some(bundle) = self.buffer.get_mut(key) {
            if bundle.custody {
                bundle.custody = false;
                custody_released = true;
            }
            reached_destination = bundle.packet.destination == Some(from);
        }
        if custody_released {
            ctx.bundle_event(BundleOp::Custody, occupancy);
        }
        if reached_destination {
            self.delivered.insert(key);
            self.buffer.remove(key);
        }
    }
}

/// Whether a sorted summary vector contains `key`.
///
/// Summary vectors are sorted by [`DtnCore::broadcast_summary`] before
/// transmission, so membership is a binary search.
#[must_use]
pub fn summary_contains(have: &[(NodeId, u64)], key: BundleKey) -> bool {
    have.binary_search(&(key.origin, key.id)).is_ok()
}
