//! Binary Spray-and-Wait (Spyropoulos, Psounis & Raghavendra): the
//! originator budgets `L` copy tickets per bundle; every hand-over gives
//! half of the remaining tickets away. A node holding a single ticket is in
//! the *wait* phase and transfers only to the destination itself — bounding
//! epidemic's replication at `L` copies while keeping its multi-path reach.

use super::{summary_contains, DropPolicy, DtnCore, DtnParams};
use crate::protocol::{BundleOp, Category, ProtocolContext, RoutingProtocol};
use vanet_net::{Packet, PacketKind};
use vanet_sim::{NodeId, SimDuration};

/// Spray-and-Wait store-carry-forward routing (protocol 20).
///
/// Copy tickets travel in [`Packet::copies`]; the summary-vector exchange
/// is the same anti-entropy handshake as [`super::Epidemic`]'s, but a
/// bundle is offered only while it has tickets to split (or directly to
/// its destination).
#[derive(Debug)]
pub struct SprayAndWait {
    core: DtnCore,
    /// Initial ticket budget `L` for originated bundles.
    initial_copies: u32,
}

impl SprayAndWait {
    /// Creates a spray-and-wait instance with the given scenario knobs.
    #[must_use]
    pub fn new(params: DtnParams) -> Self {
        SprayAndWait {
            core: DtnCore::new(params, DropPolicy::DropOldest),
            initial_copies: params.copies.max(1),
        }
    }

    /// Buffered bundles (test/diagnostic accessor).
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.core.buffer.len()
    }

    /// Remaining copy tickets for the bundle keyed `(origin, id)`, if held.
    #[must_use]
    pub fn tickets(&self, origin: NodeId, id: u64) -> Option<u32> {
        self.core
            .buffer
            .get(super::BundleKey { origin, id })
            .map(|bundle| bundle.copies)
    }

    /// Answers a peer's summary vector: direct delivery to the destination
    /// regardless of tickets, binary ticket splitting otherwise.
    fn answer_summary(
        &mut self,
        ctx: &mut ProtocolContext<'_>,
        from: NodeId,
        have: &[(NodeId, u64)],
    ) {
        let mut outgoing: Vec<Packet> = Vec::new();
        for bundle in self.core.buffer.iter_mut() {
            if summary_contains(have, bundle.key()) {
                continue;
            }
            if !bundle.packet.ttl_allows_forwarding() {
                continue;
            }
            if bundle.packet.destination == Some(from) {
                // Direct transmission: delivery never costs a ticket.
                let mut copy = bundle.packet.forwarded_by(ctx.node, Some(from));
                copy.copies = 1;
                outgoing.push(copy);
            } else if bundle.copies > 1 {
                // Spray phase: hand over half of the remaining tickets.
                let give = bundle.copies / 2;
                bundle.copies -= give;
                let mut copy = bundle.packet.forwarded_by(ctx.node, Some(from));
                copy.copies = give;
                outgoing.push(copy);
            }
            // Wait phase (copies == 1): hold for the destination.
        }
        let occupancy = self.core.buffer.len();
        for packet in outgoing {
            let stamped = ctx.stamp(packet);
            ctx.transmit(stamped);
            ctx.bundle_event(BundleOp::Forwarded, occupancy);
        }
    }
}

impl Default for SprayAndWait {
    fn default() -> Self {
        Self::new(DtnParams::default())
    }
}

impl RoutingProtocol for SprayAndWait {
    fn name(&self) -> &'static str {
        "SprayWait"
    }

    fn category(&self) -> Category {
        Category::Dtn
    }

    fn beacon_interval(&self) -> Option<SimDuration> {
        Some(SimDuration::from_secs(1.0))
    }

    fn originate(&mut self, ctx: &mut ProtocolContext<'_>, packet: Packet) {
        let copies = self.initial_copies;
        self.core.store(ctx, packet, true, copies);
    }

    fn on_packet(&mut self, ctx: &mut ProtocolContext<'_>, packet: &Packet, overheard: bool) {
        if overheard {
            return;
        }
        match &packet.kind {
            PacketKind::Data => {
                // The tickets granted by the sender arrive on the packet.
                self.core.receive_data(ctx, packet, packet.copies.max(1));
            }
            PacketKind::SummaryVector { have, .. } => {
                self.answer_summary(ctx, packet.source, have);
            }
            PacketKind::CustodyAck { origin, bundle_id } => {
                self.core
                    .handle_custody_ack(ctx, packet.source, *origin, *bundle_id);
            }
            _ => {}
        }
    }

    fn on_tick(&mut self, ctx: &mut ProtocolContext<'_>) {
        self.core.expire(ctx);
        if !ctx.neighbors.is_empty() {
            self.core.broadcast_summary(ctx, Vec::new());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Action, ActionSink, NoLocationService};
    use vanet_mobility::{Vec2, VehicleKind, VehicleState};
    use vanet_net::NeighborTable;
    use vanet_sim::{PacketId, PacketIdAllocator, SimRng, SimTime};

    fn make_ctx_parts(
        node: u32,
    ) -> (
        VehicleState,
        NeighborTable,
        SimRng,
        PacketIdAllocator,
        ActionSink,
    ) {
        (
            VehicleState::stationary(NodeId(node), VehicleKind::Car, Vec2::ZERO),
            NeighborTable::new(),
            SimRng::new(1),
            PacketIdAllocator::new(),
            ActionSink::new(),
        )
    }

    macro_rules! ctx {
        ($node:expr, $state:expr, $nbrs:expr, $rng:expr, $ids:expr, $sink:expr) => {
            ProtocolContext {
                node: NodeId($node),
                now: SimTime::ZERO,
                state: &$state,
                neighbors: (&$nbrs).into(),
                range_m: 250.0,
                rsu_ids: &[],
                bus_ids: &[],
                location: &NoLocationService,
                rng: &mut $rng,
                packet_ids: &mut $ids,
                actions: &mut $sink,
            }
        };
    }

    fn data_packet(id: u64, src: u32, dst: u32) -> Packet {
        let mut p = Packet::data(NodeId(src), NodeId(dst), 100);
        p.id = PacketId(id);
        p
    }

    fn empty_sv(from: u32, id: u64) -> Packet {
        let mut sv = Packet::broadcast(
            NodeId(from),
            PacketKind::SummaryVector {
                have: vec![],
                predictabilities: vec![],
            },
            0,
        );
        sv.id = PacketId(id);
        sv
    }

    #[test]
    fn binary_splitting_halves_tickets_until_wait_phase() {
        let mut proto = SprayAndWait::default(); // L = 8
        let (state, nbrs, mut rng, mut ids, mut sink) = make_ctx_parts(0);
        {
            let mut ctx = ctx!(0, state, nbrs, rng, ids, sink);
            proto.originate(&mut ctx, data_packet(1, 0, 9));
            ctx.take_actions();
        }
        assert_eq!(proto.tickets(NodeId(0), 1), Some(8));
        // Three relays in sequence: 8 → 4 → 2 → 1.
        for (peer, expect_give, expect_keep) in [(5, 4, 4), (6, 2, 2), (7, 1, 1)] {
            let actions = {
                let mut ctx = ctx!(0, state, nbrs, rng, ids, sink);
                proto.on_packet(&mut ctx, &empty_sv(peer, 50 + u64::from(peer)), false);
                ctx.take_actions()
            };
            let fwd = actions
                .iter()
                .find_map(|a| match a {
                    Action::Transmit(p) => Some(p),
                    _ => None,
                })
                .expect("spray-phase transfer");
            assert_eq!(fwd.copies, expect_give);
            assert_eq!(fwd.next_hop, Some(NodeId(peer)));
            assert_eq!(proto.tickets(NodeId(0), 1), Some(expect_keep));
        }
        // Wait phase: a further relay contact gets nothing.
        let none = {
            let mut ctx = ctx!(0, state, nbrs, rng, ids, sink);
            proto.on_packet(&mut ctx, &empty_sv(8, 60), false);
            ctx.take_actions()
        };
        assert!(none.iter().all(|a| !matches!(a, Action::Transmit(_))));
    }

    #[test]
    fn wait_phase_still_delivers_directly_to_the_destination() {
        let mut proto = SprayAndWait::default();
        let (state, nbrs, mut rng, mut ids, mut sink) = make_ctx_parts(4);
        // Receive a wait-phase copy (1 ticket).
        let mut incoming = data_packet(3, 0, 9).forwarded_by(NodeId(0), Some(NodeId(4)));
        incoming.copies = 1;
        {
            let mut ctx = ctx!(4, state, nbrs, rng, ids, sink);
            proto.on_packet(&mut ctx, &incoming, false);
            ctx.take_actions();
        }
        assert_eq!(proto.tickets(NodeId(0), 3), Some(1));
        // A relay's summary vector gets nothing...
        let none = {
            let mut ctx = ctx!(4, state, nbrs, rng, ids, sink);
            proto.on_packet(&mut ctx, &empty_sv(6, 61), false);
            ctx.take_actions()
        };
        assert!(none.iter().all(|a| !matches!(a, Action::Transmit(_))));
        // ...but the destination's summary vector gets the bundle.
        let actions = {
            let mut ctx = ctx!(4, state, nbrs, rng, ids, sink);
            proto.on_packet(&mut ctx, &empty_sv(9, 62), false);
            ctx.take_actions()
        };
        let fwd = actions
            .iter()
            .find_map(|a| match a {
                Action::Transmit(p) => Some(p),
                _ => None,
            })
            .expect("direct delivery to destination");
        assert_eq!(fwd.next_hop, Some(NodeId(9)));
    }

    #[test]
    fn received_tickets_arrive_on_the_packet() {
        let mut proto = SprayAndWait::default();
        let (state, nbrs, mut rng, mut ids, mut sink) = make_ctx_parts(4);
        let mut incoming = data_packet(3, 0, 9).forwarded_by(NodeId(0), Some(NodeId(4)));
        incoming.copies = 4;
        {
            let mut ctx = ctx!(4, state, nbrs, rng, ids, sink);
            proto.on_packet(&mut ctx, &incoming, false);
            ctx.take_actions();
        }
        assert_eq!(proto.tickets(NodeId(0), 3), Some(4));
    }

    #[test]
    fn name_category_and_beacons() {
        let proto = SprayAndWait::default();
        assert_eq!(proto.name(), "SprayWait");
        assert_eq!(proto.category(), Category::Dtn);
        assert_eq!(proto.beacon_interval(), Some(SimDuration::from_secs(1.0)));
    }
}
