//! PRoPHET: Probabilistic Routing Protocol using History of Encounters and
//! Transitivity (Lindgren, Doria & Schelén). Each node maintains a delivery
//! predictability `P(self, d)` per destination, grown on encounter, aged
//! over time and propagated transitively — bundles are handed only to peers
//! with a better predictability for their destination, trading epidemic's
//! blanket replication for directed copies.

use super::{summary_contains, DropPolicy, DtnCore, DtnParams};
use crate::protocol::{BundleOp, Category, ProtocolContext, RoutingProtocol};
use std::collections::{BTreeMap, BTreeSet};
use vanet_net::{Packet, PacketKind};
use vanet_sim::{NodeId, SimDuration, SimTime};

/// Predictability gained on a direct encounter.
const P_INIT: f64 = 0.75;
/// Per-second aging factor applied to every predictability.
const GAMMA: f64 = 0.98;
/// Transitivity damping: how much of a peer's predictability carries over.
const BETA: f64 = 0.25;
/// Entries below this are pruned (fully aged out).
const MIN_PREDICTABILITY: f64 = 1e-3;

/// PRoPHET store-carry-forward routing (protocol 19).
///
/// Summary vectors piggyback the sender's predictability table, so one
/// broadcast serves both anti-entropy and metric exchange. All state lives
/// in `BTreeMap`s keyed by [`NodeId`] and all forwarding decisions are plain
/// `>` comparisons on finite predictabilities (every update keeps them in
/// `[0, 1]`), so iteration order and outcomes are deterministic.
#[derive(Debug)]
pub struct Prophet {
    core: DtnCore,
    /// Delivery predictabilities `P(self, d)`.
    preds: BTreeMap<NodeId, f64>,
    /// When `preds` was last aged.
    last_aged: SimTime,
    /// Neighbour set at the previous tick, for encounter detection.
    known_neighbors: BTreeSet<NodeId>,
    /// Scratch for the current neighbour set (swapped with
    /// `known_neighbors` each tick).
    current_neighbors: BTreeSet<NodeId>,
}

impl Prophet {
    /// Creates a PRoPHET instance with the given scenario knobs.
    #[must_use]
    pub fn new(params: DtnParams) -> Self {
        Prophet {
            core: DtnCore::new(params, DropPolicy::NoCustodyFirst),
            preds: BTreeMap::new(),
            last_aged: SimTime::ZERO,
            known_neighbors: BTreeSet::new(),
            current_neighbors: BTreeSet::new(),
        }
    }

    /// Buffered bundles (test/diagnostic accessor).
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.core.buffer.len()
    }

    /// This node's delivery predictability for `destination`.
    #[must_use]
    pub fn predictability(&self, destination: NodeId) -> f64 {
        self.preds.get(&destination).copied().unwrap_or(0.0)
    }

    /// Ages every predictability by `GAMMA^elapsed_seconds` and prunes the
    /// fully aged-out entries.
    fn age_predictabilities(&mut self, now: SimTime) {
        let elapsed = now.saturating_since(self.last_aged).as_secs();
        self.last_aged = now;
        if elapsed <= 0.0 || self.preds.is_empty() {
            return;
        }
        let factor = GAMMA.powf(elapsed);
        for p in self.preds.values_mut() {
            *p *= factor;
        }
        self.preds.retain(|_, p| *p >= MIN_PREDICTABILITY);
    }

    /// Detects new encounters by diffing the neighbour table against the
    /// previous tick's, and applies the direct-encounter update
    /// `P(b) += (1 - P(b)) * P_INIT` for each.
    fn update_encounters(&mut self, ctx: &ProtocolContext<'_>) {
        self.current_neighbors.clear();
        for info in ctx.neighbors.iter() {
            self.current_neighbors.insert(info.id);
        }
        for &id in &self.current_neighbors {
            if !self.known_neighbors.contains(&id) {
                let p = self.preds.entry(id).or_insert(0.0);
                *p += (1.0 - *p) * P_INIT;
            }
        }
        std::mem::swap(&mut self.known_neighbors, &mut self.current_neighbors);
    }

    /// Applies the transitive update from `from`'s predictability table and
    /// forwards every bundle `from` is a strictly better carrier for.
    fn handle_summary(
        &mut self,
        ctx: &mut ProtocolContext<'_>,
        from: NodeId,
        have: &[(NodeId, u64)],
        peer_preds: &[(NodeId, f64)],
    ) {
        // Transitive update: P(c) = max(P(c), P(from) * P_from(c) * BETA).
        let p_from = self.predictability(from);
        for &(c, p_fc) in peer_preds {
            if c == ctx.node {
                continue;
            }
            let transitive = p_from * p_fc * BETA;
            if transitive >= MIN_PREDICTABILITY {
                let p = self.preds.entry(c).or_insert(0.0);
                if transitive > *p {
                    *p = transitive;
                }
            }
        }
        // Forward bundles the peer lacks and is a better carrier for. The
        // peer's predictability for a destination comes from the same
        // (sorted) piggybacked table.
        let mut outgoing: Vec<Packet> = Vec::new();
        for bundle in self.core.buffer.iter() {
            if summary_contains(have, bundle.key()) {
                continue;
            }
            if !bundle.packet.ttl_allows_forwarding() {
                continue;
            }
            let Some(destination) = bundle.packet.destination else {
                continue;
            };
            let peer_p = peer_preds
                .binary_search_by(|(c, _)| c.cmp(&destination))
                .map(|at| peer_preds[at].1)
                .unwrap_or(0.0);
            let own_p = self.predictability(destination);
            if destination == from || peer_p > own_p {
                outgoing.push(ctx.stamp(bundle.packet.forwarded_by(ctx.node, Some(from))));
            }
        }
        let occupancy = self.core.buffer.len();
        for packet in outgoing {
            ctx.transmit(packet);
            ctx.bundle_event(BundleOp::Forwarded, occupancy);
        }
    }

    /// The predictability table in the sorted `(destination, P)` form the
    /// summary vector carries.
    fn exported_preds(&self) -> Vec<(NodeId, f64)> {
        self.preds.iter().map(|(&c, &p)| (c, p)).collect()
    }
}

impl Default for Prophet {
    fn default() -> Self {
        Self::new(DtnParams::default())
    }
}

impl RoutingProtocol for Prophet {
    fn name(&self) -> &'static str {
        "PRoPHET"
    }

    fn category(&self) -> Category {
        Category::Dtn
    }

    fn beacon_interval(&self) -> Option<SimDuration> {
        Some(SimDuration::from_secs(1.0))
    }

    fn originate(&mut self, ctx: &mut ProtocolContext<'_>, packet: Packet) {
        self.core.store(ctx, packet, true, 0);
    }

    fn on_packet(&mut self, ctx: &mut ProtocolContext<'_>, packet: &Packet, overheard: bool) {
        if overheard {
            return;
        }
        match &packet.kind {
            PacketKind::Data => {
                self.core.receive_data(ctx, packet, 0);
            }
            PacketKind::SummaryVector {
                have,
                predictabilities,
            } => {
                self.handle_summary(ctx, packet.source, have, predictabilities);
            }
            PacketKind::CustodyAck { origin, bundle_id } => {
                self.core
                    .handle_custody_ack(ctx, packet.source, *origin, *bundle_id);
            }
            _ => {}
        }
    }

    fn on_tick(&mut self, ctx: &mut ProtocolContext<'_>) {
        self.age_predictabilities(ctx.now);
        self.update_encounters(ctx);
        self.core.expire(ctx);
        if !ctx.neighbors.is_empty() {
            let preds = self.exported_preds();
            self.core.broadcast_summary(ctx, preds);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Action, ActionSink, NoLocationService};
    use vanet_mobility::{Vec2, VehicleKind, VehicleState};
    use vanet_net::NeighborTable;
    use vanet_sim::{PacketId, PacketIdAllocator, SimRng};

    fn make_ctx_parts(
        node: u32,
    ) -> (
        VehicleState,
        NeighborTable,
        SimRng,
        PacketIdAllocator,
        ActionSink,
    ) {
        (
            VehicleState::stationary(NodeId(node), VehicleKind::Car, Vec2::ZERO),
            NeighborTable::new(),
            SimRng::new(1),
            PacketIdAllocator::new(),
            ActionSink::new(),
        )
    }

    macro_rules! ctx {
        ($node:expr, $state:expr, $nbrs:expr, $rng:expr, $ids:expr, $sink:expr) => {
            ProtocolContext {
                node: NodeId($node),
                now: SimTime::ZERO,
                state: &$state,
                neighbors: (&$nbrs).into(),
                range_m: 250.0,
                rsu_ids: &[],
                bus_ids: &[],
                location: &NoLocationService,
                rng: &mut $rng,
                packet_ids: &mut $ids,
                actions: &mut $sink,
            }
        };
    }

    fn data_packet(id: u64, src: u32, dst: u32) -> Packet {
        let mut p = Packet::data(NodeId(src), NodeId(dst), 100);
        p.id = PacketId(id);
        p
    }

    fn observe(nbrs: &mut NeighborTable, id: u32) {
        nbrs.observe(
            NodeId(id),
            Vec2::new(10.0, 0.0),
            Vec2::ZERO,
            SimTime::ZERO,
            SimDuration::from_secs(10.0),
        );
    }

    #[test]
    fn encounters_grow_predictability_and_aging_shrinks_it() {
        let mut proto = Prophet::default();
        let (state, mut nbrs, mut rng, mut ids, mut sink) = make_ctx_parts(0);
        observe(&mut nbrs, 5);
        {
            let mut ctx = ctx!(0, state, nbrs, rng, ids, sink);
            proto.on_tick(&mut ctx);
            ctx.take_actions();
        }
        let after_meet = proto.predictability(NodeId(5));
        assert!((after_meet - P_INIT).abs() < 1e-12);
        // Still in contact next tick: no re-encounter bump, just aging.
        {
            let mut ctx = ctx!(0, state, nbrs, rng, ids, sink);
            ctx.now = SimTime::from_secs(10.0);
            proto.on_tick(&mut ctx);
            ctx.take_actions();
        }
        let aged = proto.predictability(NodeId(5));
        assert!(aged < after_meet, "aging must shrink predictability");
        assert!((aged - after_meet * GAMMA.powf(10.0)).abs() < 1e-12);
    }

    #[test]
    fn transitive_update_learns_through_a_relay() {
        let mut proto = Prophet::default();
        let (state, mut nbrs, mut rng, mut ids, mut sink) = make_ctx_parts(0);
        observe(&mut nbrs, 5);
        {
            let mut ctx = ctx!(0, state, nbrs, rng, ids, sink);
            proto.on_tick(&mut ctx); // meet node 5: P(5) = 0.75
            ctx.take_actions();
        }
        // Node 5 reports a strong predictability for node 9.
        let mut sv = Packet::broadcast(
            NodeId(5),
            PacketKind::SummaryVector {
                have: vec![],
                predictabilities: vec![(NodeId(9), 0.8)],
            },
            0,
        );
        sv.id = PacketId(50);
        {
            let mut ctx = ctx!(0, state, nbrs, rng, ids, sink);
            proto.on_packet(&mut ctx, &sv, false);
            ctx.take_actions();
        }
        let p9 = proto.predictability(NodeId(9));
        assert!((p9 - 0.75 * 0.8 * BETA).abs() < 1e-12);
    }

    #[test]
    fn forwards_only_to_better_carriers() {
        let mut proto = Prophet::default();
        let (state, nbrs, mut rng, mut ids, mut sink) = make_ctx_parts(0);
        {
            let mut ctx = ctx!(0, state, nbrs, rng, ids, sink);
            proto.originate(&mut ctx, data_packet(1, 0, 9));
            ctx.take_actions();
        }
        // Peer 5 has no predictability for destination 9: no transfer.
        let mut weak = Packet::broadcast(
            NodeId(5),
            PacketKind::SummaryVector {
                have: vec![],
                predictabilities: vec![],
            },
            0,
        );
        weak.id = PacketId(50);
        let none = {
            let mut ctx = ctx!(0, state, nbrs, rng, ids, sink);
            proto.on_packet(&mut ctx, &weak, false);
            ctx.take_actions()
        };
        assert!(
            none.iter().all(|a| !matches!(a, Action::Transmit(_))),
            "no better carrier, no transfer"
        );
        // Peer 6 is a strictly better carrier for 9: the bundle moves.
        let mut strong = Packet::broadcast(
            NodeId(6),
            PacketKind::SummaryVector {
                have: vec![],
                predictabilities: vec![(NodeId(9), 0.9)],
            },
            0,
        );
        strong.id = PacketId(51);
        let actions = {
            let mut ctx = ctx!(0, state, nbrs, rng, ids, sink);
            proto.on_packet(&mut ctx, &strong, false);
            ctx.take_actions()
        };
        let fwd = actions
            .iter()
            .find_map(|a| match a {
                Action::Transmit(p) => Some(p),
                _ => None,
            })
            .expect("bundle forwarded to the better carrier");
        assert_eq!(fwd.next_hop, Some(NodeId(6)));
    }

    #[test]
    fn destination_contact_always_receives_the_bundle() {
        let mut proto = Prophet::default();
        let (state, nbrs, mut rng, mut ids, mut sink) = make_ctx_parts(0);
        {
            let mut ctx = ctx!(0, state, nbrs, rng, ids, sink);
            proto.originate(&mut ctx, data_packet(1, 0, 9));
            ctx.take_actions();
        }
        // The destination itself advertises; even with zero predictability
        // entries the bundle must be handed over.
        let mut sv = Packet::broadcast(
            NodeId(9),
            PacketKind::SummaryVector {
                have: vec![],
                predictabilities: vec![],
            },
            0,
        );
        sv.id = PacketId(52);
        let actions = {
            let mut ctx = ctx!(0, state, nbrs, rng, ids, sink);
            proto.on_packet(&mut ctx, &sv, false);
            ctx.take_actions()
        };
        let fwd = actions
            .iter()
            .find_map(|a| match a {
                Action::Transmit(p) => Some(p),
                _ => None,
            })
            .expect("bundle handed to its destination");
        assert_eq!(fwd.next_hop, Some(NodeId(9)));
    }

    #[test]
    fn summary_vector_piggybacks_sorted_predictabilities() {
        let mut proto = Prophet::default();
        let (state, mut nbrs, mut rng, mut ids, mut sink) = make_ctx_parts(0);
        observe(&mut nbrs, 7);
        observe(&mut nbrs, 3);
        let actions = {
            let mut ctx = ctx!(0, state, nbrs, rng, ids, sink);
            proto.on_tick(&mut ctx);
            ctx.take_actions()
        };
        let sv = actions
            .iter()
            .find_map(|a| match a {
                Action::Transmit(p) => Some(p),
                _ => None,
            })
            .expect("summary vector broadcast");
        match &sv.kind {
            PacketKind::SummaryVector {
                predictabilities, ..
            } => {
                let ids: Vec<NodeId> = predictabilities.iter().map(|&(c, _)| c).collect();
                assert_eq!(ids, vec![NodeId(3), NodeId(7)], "sorted by destination");
            }
            other => panic!("expected summary vector, got {other:?}"),
        }
    }

    #[test]
    fn name_category_and_beacons() {
        let proto = Prophet::default();
        assert_eq!(proto.name(), "PRoPHET");
        assert_eq!(proto.category(), Category::Dtn);
        assert_eq!(proto.beacon_interval(), Some(SimDuration::from_secs(1.0)));
    }
}
