//! Epidemic routing: summary-vector anti-entropy on neighbour contact
//! (Vahdat & Becker). Every pair of nodes in contact exchanges the bundles
//! the other lacks, so data spreads like an infection and delivery is
//! maximised at the cost of buffer and channel occupancy — the DTN
//! baseline the smarter protocols are measured against.

use super::{summary_contains, DropPolicy, DtnCore, DtnParams};
use crate::protocol::{BundleOp, Category, ProtocolContext, RoutingProtocol};
use vanet_net::{Packet, PacketKind};
use vanet_sim::{NodeId, SimDuration};

/// Epidemic store-carry-forward routing (protocol 18).
///
/// Once per maintenance tick, a node with neighbours broadcasts its summary
/// vector (the sorted keys of bundles it holds or knows delivered). A peer
/// receiving the vector answers by unicasting every bundle the sender
/// lacks; the receiver takes custody and acks, releasing the sender's
/// custody flag so its copy is first in line for `NoCustodyFirst` eviction.
#[derive(Debug)]
pub struct Epidemic {
    core: DtnCore,
}

impl Epidemic {
    /// Creates an epidemic instance with the given scenario knobs.
    #[must_use]
    pub fn new(params: DtnParams) -> Self {
        Epidemic {
            core: DtnCore::new(params, DropPolicy::NoCustodyFirst),
        }
    }

    /// Buffered bundles (test/diagnostic accessor).
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.core.buffer.len()
    }

    /// Unicasts every bundle `from`'s summary vector lacks back to `from`.
    fn answer_summary(
        &mut self,
        ctx: &mut ProtocolContext<'_>,
        from: NodeId,
        have: &[(NodeId, u64)],
    ) {
        let mut outgoing: Vec<Packet> = Vec::new();
        for bundle in self.core.buffer.iter() {
            if summary_contains(have, bundle.key()) {
                continue;
            }
            if !bundle.packet.ttl_allows_forwarding() {
                continue;
            }
            outgoing.push(ctx.stamp(bundle.packet.forwarded_by(ctx.node, Some(from))));
        }
        let occupancy = self.core.buffer.len();
        for packet in outgoing {
            ctx.transmit(packet);
            ctx.bundle_event(BundleOp::Forwarded, occupancy);
        }
    }
}

impl Default for Epidemic {
    fn default() -> Self {
        Self::new(DtnParams::default())
    }
}

impl RoutingProtocol for Epidemic {
    fn name(&self) -> &'static str {
        "Epidemic"
    }

    fn category(&self) -> Category {
        Category::Dtn
    }

    fn beacon_interval(&self) -> Option<SimDuration> {
        // Contact discovery rides the deterministic beacon/neighbour
        // machinery; without beacons a DTN node would never meet anyone.
        Some(SimDuration::from_secs(1.0))
    }

    fn originate(&mut self, ctx: &mut ProtocolContext<'_>, packet: Packet) {
        // Store-and-carry: the bundle waits in the buffer until the next
        // summary-vector exchange offers it to a contact.
        self.core.store(ctx, packet, true, 0);
    }

    fn on_packet(&mut self, ctx: &mut ProtocolContext<'_>, packet: &Packet, overheard: bool) {
        if overheard {
            return;
        }
        match &packet.kind {
            PacketKind::Data => {
                self.core.receive_data(ctx, packet, 0);
            }
            PacketKind::SummaryVector { have, .. } => {
                self.answer_summary(ctx, packet.source, have);
            }
            PacketKind::CustodyAck { origin, bundle_id } => {
                self.core
                    .handle_custody_ack(ctx, packet.source, *origin, *bundle_id);
            }
            _ => {}
        }
    }

    fn on_tick(&mut self, ctx: &mut ProtocolContext<'_>) {
        self.core.expire(ctx);
        if !ctx.neighbors.is_empty() {
            self.core.broadcast_summary(ctx, Vec::new());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Action, ActionSink, DropReason, NoLocationService};
    use vanet_mobility::{VehicleKind, VehicleState};
    use vanet_net::NeighborTable;
    use vanet_sim::{PacketId, PacketIdAllocator, SimRng, SimTime};

    fn make_ctx_parts(
        node: u32,
    ) -> (
        VehicleState,
        NeighborTable,
        SimRng,
        PacketIdAllocator,
        ActionSink,
    ) {
        (
            VehicleState::stationary(NodeId(node), VehicleKind::Car, vanet_mobility::Vec2::ZERO),
            NeighborTable::new(),
            SimRng::new(1),
            PacketIdAllocator::new(),
            ActionSink::new(),
        )
    }

    macro_rules! ctx {
        ($node:expr, $state:expr, $nbrs:expr, $rng:expr, $ids:expr, $sink:expr) => {
            ProtocolContext {
                node: NodeId($node),
                now: SimTime::ZERO,
                state: &$state,
                neighbors: (&$nbrs).into(),
                range_m: 250.0,
                rsu_ids: &[],
                bus_ids: &[],
                location: &NoLocationService,
                rng: &mut $rng,
                packet_ids: &mut $ids,
                actions: &mut $sink,
            }
        };
    }

    fn data_packet(id: u64, src: u32, dst: u32) -> Packet {
        let mut p = Packet::data(NodeId(src), NodeId(dst), 100);
        p.id = PacketId(id);
        p
    }

    #[test]
    fn originate_stores_instead_of_transmitting() {
        let mut proto = Epidemic::default();
        let (state, nbrs, mut rng, mut ids, mut sink) = make_ctx_parts(0);
        let mut ctx = ctx!(0, state, nbrs, rng, ids, sink);
        proto.originate(&mut ctx, data_packet(1, 0, 9));
        let actions = ctx.take_actions();
        assert!(actions.iter().all(|a| !matches!(a, Action::Transmit(_))));
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Bundle {
                op: BundleOp::Stored,
                occupancy: 1
            }
        )));
        assert_eq!(proto.buffered(), 1);
    }

    #[test]
    fn summary_vector_triggers_transfer_of_missing_bundles() {
        let mut proto = Epidemic::default();
        let (state, nbrs, mut rng, mut ids, mut sink) = make_ctx_parts(0);
        {
            let mut ctx = ctx!(0, state, nbrs, rng, ids, sink);
            proto.originate(&mut ctx, data_packet(1, 0, 9));
            ctx.take_actions();
        }
        // Peer 5 advertises an empty vector: it lacks our bundle.
        let mut sv = Packet::broadcast(
            NodeId(5),
            PacketKind::SummaryVector {
                have: vec![],
                predictabilities: vec![],
            },
            0,
        );
        sv.id = PacketId(50);
        let actions = {
            let mut ctx = ctx!(0, state, nbrs, rng, ids, sink);
            proto.on_packet(&mut ctx, &sv, false);
            ctx.take_actions()
        };
        let transmitted: Vec<&Packet> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Transmit(p) => Some(p),
                _ => None,
            })
            .collect();
        assert_eq!(transmitted.len(), 1);
        assert_eq!(transmitted[0].next_hop, Some(NodeId(5)));
        assert_eq!(transmitted[0].kind, PacketKind::Data);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Bundle {
                op: BundleOp::Forwarded,
                ..
            }
        )));
        // A peer that already has the bundle gets nothing.
        let mut sv_full = sv.clone();
        sv_full.kind = PacketKind::SummaryVector {
            have: vec![(NodeId(0), 1)],
            predictabilities: vec![],
        };
        let none = {
            let mut ctx = ctx!(0, state, nbrs, rng, ids, sink);
            proto.on_packet(&mut ctx, &sv_full, false);
            ctx.take_actions()
        };
        assert!(none.is_empty());
    }

    #[test]
    fn receiver_takes_custody_and_acks_then_destination_ack_retires_the_bundle() {
        let mut proto = Epidemic::default();
        let (state, nbrs, mut rng, mut ids, mut sink) = make_ctx_parts(4);
        let incoming = data_packet(7, 0, 9).forwarded_by(NodeId(0), Some(NodeId(4)));
        let actions = {
            let mut ctx = ctx!(4, state, nbrs, rng, ids, sink);
            proto.on_packet(&mut ctx, &incoming, false);
            ctx.take_actions()
        };
        assert_eq!(proto.buffered(), 1);
        let ack = actions
            .iter()
            .find_map(|a| match a {
                Action::Transmit(p) => Some(p),
                _ => None,
            })
            .expect("custody ack transmitted");
        assert!(matches!(ack.kind, PacketKind::CustodyAck { .. }));
        assert_eq!(
            ack.next_hop,
            Some(NodeId(0)),
            "ack goes to the previous hop"
        );

        // A custody ack from the *destination* retires the bundle entirely.
        let mut dest_ack = Packet::broadcast(
            NodeId(9),
            PacketKind::CustodyAck {
                origin: NodeId(0),
                bundle_id: 7,
            },
            0,
        );
        dest_ack.id = PacketId(90);
        dest_ack.next_hop = Some(NodeId(4));
        let retire = {
            let mut ctx = ctx!(4, state, nbrs, rng, ids, sink);
            proto.on_packet(&mut ctx, &dest_ack, false);
            ctx.take_actions()
        };
        assert!(retire.iter().any(|a| matches!(
            a,
            Action::Bundle {
                op: BundleOp::Custody,
                ..
            }
        )));
        assert_eq!(proto.buffered(), 0);
    }

    #[test]
    fn delivery_at_destination_is_deduplicated() {
        let mut proto = Epidemic::default();
        let (state, nbrs, mut rng, mut ids, mut sink) = make_ctx_parts(9);
        let incoming = data_packet(3, 0, 9).forwarded_by(NodeId(2), Some(NodeId(9)));
        let first = {
            let mut ctx = ctx!(9, state, nbrs, rng, ids, sink);
            proto.on_packet(&mut ctx, &incoming, false);
            ctx.take_actions()
        };
        assert!(first.iter().any(|a| matches!(a, Action::Deliver(_))));
        let second = {
            let mut ctx = ctx!(9, state, nbrs, rng, ids, sink);
            proto.on_packet(&mut ctx, &incoming, false);
            ctx.take_actions()
        };
        assert!(second.iter().all(|a| !matches!(a, Action::Deliver(_))));
        assert!(second.iter().any(|a| matches!(
            a,
            Action::Drop {
                reason: DropReason::Duplicate,
                ..
            }
        )));
    }

    #[test]
    fn expired_bundles_are_discarded_on_tick() {
        let mut proto = Epidemic::default();
        let (state, nbrs, mut rng, mut ids, mut sink) = make_ctx_parts(0);
        {
            let mut ctx = ctx!(0, state, nbrs, rng, ids, sink);
            proto.originate(&mut ctx, data_packet(1, 0, 9));
            ctx.take_actions();
        }
        let actions = {
            let mut ctx = ctx!(0, state, nbrs, rng, ids, sink);
            ctx.now = SimTime::from_secs(31.0); // default TTL is 30 s
            proto.on_tick(&mut ctx);
            ctx.take_actions()
        };
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Bundle {
                op: BundleOp::Expired,
                occupancy: 0
            }
        )));
        assert_eq!(proto.buffered(), 0);
    }

    #[test]
    fn ticks_broadcast_summary_only_with_neighbors() {
        let mut proto = Epidemic::default();
        let (state, mut nbrs, mut rng, mut ids, mut sink) = make_ctx_parts(0);
        let silent = {
            let mut ctx = ctx!(0, state, nbrs, rng, ids, sink);
            proto.on_tick(&mut ctx);
            ctx.take_actions()
        };
        assert!(silent.is_empty(), "no neighbours, no summary");
        nbrs.observe(
            NodeId(5),
            vanet_mobility::Vec2::new(10.0, 0.0),
            vanet_mobility::Vec2::ZERO,
            SimTime::ZERO,
            SimDuration::from_secs(10.0),
        );
        let actions = {
            let mut ctx = ctx!(0, state, nbrs, rng, ids, sink);
            proto.on_tick(&mut ctx);
            ctx.take_actions()
        };
        let sv = actions
            .iter()
            .find_map(|a| match a {
                Action::Transmit(p) => Some(p),
                _ => None,
            })
            .expect("summary vector broadcast");
        assert!(matches!(sv.kind, PacketKind::SummaryVector { .. }));
        assert!(sv.is_link_broadcast());
    }

    #[test]
    fn name_category_and_beacons() {
        let proto = Epidemic::default();
        assert_eq!(proto.name(), "Epidemic");
        assert_eq!(proto.category(), Category::Dtn);
        assert_eq!(proto.beacon_interval(), Some(SimDuration::from_secs(1.0)));
    }
}
