//! Generic on-demand (RREQ/RREP/RERR) route discovery.
//!
//! AODV and the mobility-based protocols surveyed in Sec. IV share the same
//! skeleton: flood a route request, let the destination pick one of the
//! discovered paths, return a route reply along it, then forward data hop by
//! hop and repair on link breakage. They differ only in *which paths they
//! prefer* and *which nodes take part in the flood*. [`OnDemandRouting`]
//! implements the skeleton once; a [`DiscoveryPolicy`] supplies the
//! differences (per-link metric, metric combination, forwarding filter and
//! route lifetime).

use crate::common::{PendingBuffer, RouteEntry, RoutingTable, SeenCache};
use crate::protocol::{Category, DropReason, ProtocolContext, RoutingProtocol};
use std::collections::BTreeMap;
use std::fmt::Debug;
use vanet_net::{GeoAddress, Packet, PacketKind};
use vanet_sim::{NodeId, SeqNo, SimDuration, SimTime};

/// The protocol-specific part of an on-demand protocol.
pub trait DiscoveryPolicy: Debug + Send {
    /// Protocol name shown in metrics and the taxonomy.
    fn name(&self) -> &'static str;

    /// Taxonomy category.
    fn category(&self) -> Category;

    /// Beacon interval required by the policy (position/velocity awareness),
    /// or `None` when the protocol does not need beacons.
    fn beacon_interval(&self) -> Option<SimDuration> {
        None
    }

    /// Quality of the link over which this RREQ just arrived: from the
    /// transmitting node (position/velocity piggybacked in the packet) to the
    /// current node. Higher is better.
    fn link_metric(&self, ctx: &ProtocolContext<'_>, packet: &Packet) -> f64;

    /// Combines the path metric accumulated so far with a new link's metric
    /// (default: bottleneck/minimum, the paper's path-lifetime rule).
    fn combine(&self, path_metric: f64, link_metric: f64) -> f64 {
        path_metric.min(link_metric)
    }

    /// The metric an empty path starts with (default: `+∞` for
    /// minimum-combining).
    fn initial_metric(&self) -> f64 {
        f64::INFINITY
    }

    /// Whether `a` is a strictly better path metric than `b`.
    fn better(&self, a: f64, b: f64) -> bool {
        a > b
    }

    /// Whether this node should take part in forwarding the request
    /// (directional / zonal filters). The default forwards everywhere.
    fn should_forward_request(&self, _ctx: &ProtocolContext<'_>, _packet: &Packet) -> bool {
        true
    }

    /// Lifetime granted to a route whose path metric is `metric`.
    fn route_lifetime(&self, metric: f64) -> SimDuration;

    /// Whether the source should proactively re-discover shortly before the
    /// route expires (PBR-style preemptive rebuild).
    fn preemptive_rebuild(&self) -> bool {
        false
    }
}

/// Configuration knobs common to all on-demand protocols.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnDemandConfig {
    /// Minimum spacing between route discoveries for the same destination.
    pub discovery_retry_interval: SimDuration,
    /// How many packets may wait per destination during discovery.
    pub pending_capacity: usize,
    /// Maximum queueing age of a pending packet.
    pub pending_max_age: SimDuration,
    /// TTL given to route requests.
    pub rreq_ttl: u8,
    /// Horizon for remembering seen RREQ ids.
    pub seen_horizon_s: f64,
    /// How long before route expiry a preemptive rebuild is triggered.
    pub preemptive_margin: SimDuration,
    /// Minimum spacing between RERRs this node originates about the same
    /// unreachable destination. Under dense-fleet churn every data packet
    /// crossing a stale route used to re-originate a RERR, and the resulting
    /// storm of route teardowns made recovery seed-sensitive.
    pub rerr_interval: SimDuration,
    /// Horizon for remembering relayed RERR ids. A RERR that cannot be
    /// routed towards its source falls back to link broadcast, and without
    /// duplicate suppression a dense fleet relays the same error in an
    /// exponential broadcast storm (bounded only by the packet TTL). Each
    /// node relays a given RERR at most once within this horizon.
    pub rerr_seen_horizon_s: f64,
}

impl Default for OnDemandConfig {
    fn default() -> Self {
        OnDemandConfig {
            discovery_retry_interval: SimDuration::from_secs(2.0),
            pending_capacity: 16,
            pending_max_age: SimDuration::from_secs(8.0),
            rreq_ttl: 16,
            seen_horizon_s: 30.0,
            preemptive_margin: SimDuration::from_secs(2.0),
            rerr_interval: SimDuration::from_secs(5.0),
            rerr_seen_horizon_s: 30.0,
        }
    }
}

/// The generic on-demand routing protocol, parameterised by a policy.
#[derive(Debug)]
pub struct OnDemandRouting<P: DiscoveryPolicy> {
    policy: P,
    config: OnDemandConfig,
    table: RoutingTable,
    rreq_seen: SeenCache,
    rerr_seen: SeenCache,
    pending: PendingBuffer,
    my_seq: SeqNo,
    next_request_id: u64,
    /// Per-destination time of the last discovery we initiated.
    last_discovery: BTreeMap<NodeId, SimTime>,
    /// Best metric replied per (origin, request id) — destination side.
    replied: BTreeMap<(NodeId, u64), f64>,
    /// Destinations with recent application traffic (for preemptive rebuild).
    active_destinations: BTreeMap<NodeId, SimTime>,
    /// Time of the last RERR this node originated per unreachable
    /// destination (the re-origination rate limit).
    last_rerr: BTreeMap<NodeId, SimTime>,
}

impl<P: DiscoveryPolicy> OnDemandRouting<P> {
    /// Creates an on-demand protocol driven by `policy` with default knobs.
    #[must_use]
    pub fn new(policy: P) -> Self {
        Self::with_config(policy, OnDemandConfig::default())
    }

    /// Creates an on-demand protocol with explicit configuration.
    #[must_use]
    pub fn with_config(policy: P, config: OnDemandConfig) -> Self {
        OnDemandRouting {
            policy,
            config,
            table: RoutingTable::new(),
            rreq_seen: SeenCache::new(config.seen_horizon_s),
            rerr_seen: SeenCache::new(config.rerr_seen_horizon_s),
            pending: PendingBuffer::new(config.pending_capacity, config.pending_max_age),
            my_seq: SeqNo(0),
            next_request_id: 0,
            last_discovery: BTreeMap::new(),
            replied: BTreeMap::new(),
            active_destinations: BTreeMap::new(),
            last_rerr: BTreeMap::new(),
        }
    }

    /// Read access to the routing table (for tests and diagnostics).
    #[must_use]
    pub fn routing_table(&self) -> &RoutingTable {
        &self.table
    }

    /// The policy driving this instance.
    #[must_use]
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Whether this node may originate a RERR about `dest` now; claims the
    /// rate-limit slot when it may. Forwarded RERRs are never gated — only
    /// fresh originations, so an error still propagates to its source.
    fn may_originate_rerr(&mut self, dest: NodeId, now: SimTime) -> bool {
        if let Some(last) = self.last_rerr.get(&dest) {
            if now.saturating_since(*last) < self.config.rerr_interval {
                return false;
            }
        }
        self.last_rerr.insert(dest, now);
        true
    }

    fn start_discovery(&mut self, ctx: &mut ProtocolContext<'_>, dest: NodeId) {
        if let Some(last) = self.last_discovery.get(&dest) {
            if ctx.now.saturating_since(*last) < self.config.discovery_retry_interval {
                return;
            }
        }
        self.last_discovery.insert(dest, ctx.now);
        self.my_seq = self.my_seq.next();
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        let mut rreq = ctx.new_control_packet(PacketKind::RouteRequest {
            target: dest,
            request_id,
            hop_count: 0,
            path: vec![ctx.node],
            metric: self.policy.initial_metric(),
        });
        rreq.destination = Some(dest);
        rreq.ttl = self.config.rreq_ttl;
        if let Some(pos) = ctx.location.position_of(dest) {
            rreq.geo = Some(GeoAddress {
                position: pos,
                zone_radius: ctx.range_m,
            });
        }
        // Remember our own request so we do not re-flood it.
        self.rreq_seen
            .check_and_insert(ctx.node, request_id, ctx.now);
        ctx.transmit(rreq);
    }

    fn forward_data(&mut self, ctx: &mut ProtocolContext<'_>, packet: Packet) {
        let dest = match packet.destination {
            Some(d) => d,
            None => {
                ctx.drop_packet(&packet, DropReason::NoRoute);
                return;
            }
        };
        if !packet.ttl_allows_forwarding() {
            ctx.drop_packet(&packet, DropReason::TtlExpired);
            return;
        }
        if let Some(route) = self.table.route(dest, ctx.now) {
            let next = route.next_hop;
            let fwd = ctx.stamp(packet.forwarded_by(ctx.node, Some(next)));
            ctx.transmit(fwd);
            return;
        }
        // No route: the source buffers and discovers; intermediate nodes
        // report the error back to the source.
        if packet.source == ctx.node {
            if let Some(evicted) = self.pending.push(dest, packet, ctx.now) {
                self.start_discovery(ctx, dest);
                ctx.drop_packet(&evicted, DropReason::BufferOverflow);
                return;
            }
            self.start_discovery(ctx, dest);
            return;
        }
        if self.may_originate_rerr(dest, ctx.now) {
            let mut rerr = ctx.new_control_packet(PacketKind::RouteError {
                unreachable: vec![dest],
                broken_link_from: ctx.node,
                broken_link_to: dest,
            });
            rerr.destination = Some(packet.source);
            ctx.transmit(rerr);
        }
        ctx.drop_packet(&packet, DropReason::NoRoute);
    }

    fn handle_rreq(&mut self, ctx: &mut ProtocolContext<'_>, packet: &Packet) {
        let (target, request_id, hop_count, path, metric) = match &packet.kind {
            PacketKind::RouteRequest {
                target,
                request_id,
                hop_count,
                path,
                metric,
            } => (*target, *request_id, *hop_count, path.clone(), *metric),
            _ => unreachable!("handle_rreq called with a non-RREQ packet"),
        };
        let origin = packet.source;
        if origin == ctx.node {
            // Our own request echoed back.
            return;
        }
        let link_metric = self.policy.link_metric(ctx, packet);
        let new_metric = self.policy.combine(metric, link_metric);

        // Install / refresh the reverse route towards the origin.
        let reverse = RouteEntry {
            destination: origin,
            next_hop: packet.prev_hop,
            hops: hop_count + 1,
            seq: packet.seq,
            metric: new_metric,
            expires_at: ctx.now + self.policy.route_lifetime(new_metric),
        };
        self.table.upsert(reverse);

        if target == ctx.node {
            // Destination: reply to the first request of a probing round and
            // to any later copy that arrived over a strictly better path.
            let key = (origin, request_id);
            let should_reply = match self.replied.get(&key) {
                None => true,
                Some(prev) => self.policy.better(new_metric, *prev),
            };
            if !should_reply {
                return;
            }
            self.replied.insert(key, new_metric);
            self.my_seq = self.my_seq.next();
            let mut route = path.clone();
            route.push(ctx.node);
            let mut rrep = ctx.new_control_packet(PacketKind::RouteReply {
                target: ctx.node,
                route: route.clone(),
                metric: new_metric,
                target_seq: self.my_seq,
            });
            rrep.destination = Some(origin);
            // Unicast back along the recorded path.
            rrep.next_hop = Some(packet.prev_hop);
            rrep.source_route = Some(route.into_iter().rev().collect());
            ctx.transmit(rrep);
            return;
        }

        // Intermediate node: duplicate suppression, policy filter, TTL.
        if self.rreq_seen.check_and_insert(origin, request_id, ctx.now) {
            ctx.drop_packet(packet, DropReason::Duplicate);
            return;
        }
        if path.contains(&ctx.node) {
            ctx.drop_packet(packet, DropReason::Duplicate);
            return;
        }
        if !packet.ttl_allows_forwarding() {
            ctx.drop_packet(packet, DropReason::TtlExpired);
            return;
        }
        if !self.policy.should_forward_request(ctx, packet) {
            ctx.drop_packet(packet, DropReason::OutOfZone);
            return;
        }
        let mut new_path = path;
        new_path.push(ctx.node);
        let mut fwd = packet.forwarded_by(ctx.node, None);
        fwd.kind = PacketKind::RouteRequest {
            target,
            request_id,
            hop_count: hop_count + 1,
            path: new_path,
            metric: new_metric,
        };
        let stamped = ctx.stamp(fwd);
        ctx.transmit(stamped);
    }

    fn handle_rrep(&mut self, ctx: &mut ProtocolContext<'_>, packet: &Packet) {
        let (target, route, metric, target_seq) = match &packet.kind {
            PacketKind::RouteReply {
                target,
                route,
                metric,
                target_seq,
            } => (*target, route.clone(), *metric, *target_seq),
            _ => unreachable!("handle_rrep called with a non-RREP packet"),
        };
        // Where am I on the reverse path?
        let my_index = match route.iter().position(|&n| n == ctx.node) {
            Some(i) => i,
            None => {
                ctx.drop_packet(packet, DropReason::NotForMe);
                return;
            }
        };
        // Forward route towards the target: next node after me in the route.
        if my_index + 1 < route.len() {
            let next_towards_target = route[my_index + 1];
            let hops = (route.len() - 1 - my_index) as u32;
            self.table.upsert(RouteEntry {
                destination: target,
                next_hop: next_towards_target,
                hops,
                seq: target_seq,
                metric,
                expires_at: ctx.now + self.policy.route_lifetime(metric),
            });
        }
        let origin = route[0];
        if ctx.node == origin {
            // Route established: flush pending data.
            for pending in self.pending.take(target, ctx.now) {
                self.forward_data(ctx, pending);
            }
            return;
        }
        // Keep unicasting the RREP towards the origin (previous node on the path).
        if my_index == 0 {
            return;
        }
        let previous = route[my_index - 1];
        let fwd = ctx.stamp(packet.forwarded_by(ctx.node, Some(previous)));
        ctx.transmit(fwd);
    }

    fn handle_rerr(&mut self, ctx: &mut ProtocolContext<'_>, packet: &Packet) {
        let unreachable = match &packet.kind {
            PacketKind::RouteError { unreachable, .. } => unreachable.clone(),
            _ => unreachable!("handle_rerr called with a non-RERR packet"),
        };
        for dest in &unreachable {
            self.table.remove(*dest);
        }
        // If the error was addressed to us (we are the source), trigger a
        // fresh discovery for destinations we still care about.
        if packet.destination == Some(ctx.node) {
            for dest in unreachable {
                if self.active_destinations.contains_key(&dest) || self.pending.has_pending(dest) {
                    self.start_discovery(ctx, dest);
                }
            }
            return;
        }
        // Otherwise propagate the error one more hop towards the source —
        // but each distinct RERR at most once per node: the no-route relay
        // below falls back to link broadcast, and without this cache a dense
        // fleet amplifies one error into a TTL-bounded broadcast storm.
        if self
            .rerr_seen
            .check_and_insert(packet.source, packet.id.0, ctx.now)
        {
            return;
        }
        if let (true, Some(dest)) = (packet.ttl_allows_forwarding(), packet.destination) {
            if let Some(route) = self.table.route(dest, ctx.now) {
                let next = route.next_hop;
                let fwd = ctx.stamp(packet.forwarded_by(ctx.node, Some(next)));
                ctx.transmit(fwd);
                return;
            }
            let fwd = ctx.stamp(packet.forwarded_by(ctx.node, None));
            ctx.transmit(fwd);
        }
    }
}

impl<P: DiscoveryPolicy> RoutingProtocol for OnDemandRouting<P> {
    fn name(&self) -> &'static str {
        self.policy.name()
    }

    fn category(&self) -> Category {
        self.policy.category()
    }

    fn beacon_interval(&self) -> Option<SimDuration> {
        self.policy.beacon_interval()
    }

    fn originate(&mut self, ctx: &mut ProtocolContext<'_>, packet: Packet) {
        if let Some(dest) = packet.destination {
            self.active_destinations.insert(dest, ctx.now);
        }
        self.forward_data(ctx, packet);
    }

    fn on_packet(&mut self, ctx: &mut ProtocolContext<'_>, packet: &Packet, overheard: bool) {
        match &packet.kind {
            PacketKind::Data => {
                if packet.destination == Some(ctx.node) {
                    ctx.deliver(packet);
                    return;
                }
                if overheard {
                    return;
                }
                self.forward_data(ctx, packet.clone());
            }
            PacketKind::RouteRequest { .. } => self.handle_rreq(ctx, packet),
            PacketKind::RouteReply { .. } => {
                if overheard {
                    return;
                }
                self.handle_rrep(ctx, packet);
            }
            PacketKind::RouteError { .. } => self.handle_rerr(ctx, packet),
            _ => {}
        }
    }

    fn on_tick(&mut self, ctx: &mut ProtocolContext<'_>) {
        for packet in self.pending.expire(ctx.now) {
            ctx.drop_packet(&packet, DropReason::Expired);
        }
        // Retry discovery for destinations that still have packets waiting.
        for dest in self.pending.destinations() {
            self.start_discovery(ctx, dest);
        }
        // Preemptive rebuild of soon-to-expire active routes (PBR).
        if self.policy.preemptive_rebuild() {
            let margin = self.config.preemptive_margin;
            let active: Vec<NodeId> = self
                .active_destinations
                .iter()
                .filter(|(_, &t)| ctx.now.saturating_since(t).as_secs() < 30.0)
                .map(|(d, _)| *d)
                .collect();
            for dest in active {
                let expiring = match self.table.route_even_expired(dest) {
                    Some(e) => e.expires_at.saturating_since(ctx.now) <= margin,
                    None => false,
                };
                if expiring {
                    self.start_discovery(ctx, dest);
                }
            }
        }
    }

    fn on_neighbor_lost(&mut self, ctx: &mut ProtocolContext<'_>, neighbor: NodeId) {
        let affected = self.table.invalidate_next_hop(neighbor);
        if affected.is_empty() {
            return;
        }
        // Announce only the destinations whose rate-limit slot is free; the
        // routes are invalidated locally either way.
        let now = ctx.now;
        let announce: Vec<NodeId> = affected
            .into_iter()
            .filter(|dest| self.may_originate_rerr(*dest, now))
            .collect();
        if announce.is_empty() {
            return;
        }
        let mut rerr = ctx.new_control_packet(PacketKind::RouteError {
            unreachable: announce,
            broken_link_from: ctx.node,
            broken_link_to: neighbor,
        });
        rerr.destination = None;
        ctx.transmit(rerr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aodv::{Aodv, AodvPolicy};
    use crate::protocol::{Action, ActionSink, NoLocationService};
    use vanet_mobility::{Vec2, VehicleKind, VehicleState};
    use vanet_net::NeighborTable;
    use vanet_sim::{PacketIdAllocator, SimRng};

    /// Environment for one simulated node; the protocol instance lives in a
    /// separate vector so the context borrow and the protocol borrow stay
    /// disjoint.
    struct Env {
        state: VehicleState,
        neighbors: NeighborTable,
        rng: SimRng,
        ids: PacketIdAllocator,
        sink: ActionSink,
    }

    impl Env {
        fn new(id: u32, x: f64) -> Self {
            Env {
                state: VehicleState::stationary(NodeId(id), VehicleKind::Car, Vec2::new(x, 0.0)),
                neighbors: NeighborTable::new(),
                rng: SimRng::new(u64::from(id) + 1),
                ids: PacketIdAllocator::new(),
                sink: ActionSink::new(),
            }
        }

        fn ctx(&mut self, now: SimTime) -> ProtocolContext<'_> {
            ProtocolContext {
                node: self.state.id,
                now,
                state: &self.state,
                neighbors: (&self.neighbors).into(),
                range_m: 250.0,
                rsu_ids: &[],
                bus_ids: &[],
                location: &NoLocationService,
                rng: &mut self.rng,
                packet_ids: &mut self.ids,
                actions: &mut self.sink,
            }
        }
    }

    fn line_network(xs: &[f64]) -> (Vec<Env>, Vec<Aodv>) {
        let envs: Vec<Env> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| Env::new(i as u32, x))
            .collect();
        let protos: Vec<Aodv> = xs
            .iter()
            .map(|_| Aodv::new(AodvPolicy::default()))
            .collect();
        (envs, protos)
    }

    /// Drives a hand-made topology: every Transmit is delivered to the nodes
    /// within 250 m of the sender.
    fn run_exchange(
        envs: &mut [Env],
        protos: &mut [Aodv],
        mut in_flight: Vec<(usize, Packet)>,
    ) -> Vec<Packet> {
        let mut delivered = Vec::new();
        let now = SimTime::from_secs(1.0);
        let mut rounds = 0;
        while !in_flight.is_empty() && rounds < 50 {
            rounds += 1;
            let mut next_round = Vec::new();
            for (sender_idx, packet) in in_flight.drain(..) {
                let sender_pos = envs[sender_idx].state.position;
                for r in 0..envs.len() {
                    if r == sender_idx {
                        continue;
                    }
                    let dist = (envs[r].state.position - sender_pos).norm();
                    if dist > 250.0 {
                        continue;
                    }
                    let intended =
                        packet.next_hop.is_none() || packet.next_hop == Some(envs[r].state.id);
                    let actions = {
                        let mut ctx = envs[r].ctx(now);
                        protos[r].on_packet(&mut ctx, &packet, !intended);
                        ctx.take_actions()
                    };
                    for a in actions {
                        match a {
                            Action::Transmit(p) => next_round.push((r, p)),
                            Action::Deliver(p) => delivered.push(p),
                            _ => {}
                        }
                    }
                }
            }
            in_flight = next_round;
        }
        delivered
    }

    #[test]
    fn aodv_discovers_a_two_hop_route_and_delivers() {
        // Nodes at 0, 200, 400 m: 0 and 2 are out of range of each other.
        let (mut envs, mut protos) = line_network(&[0.0, 200.0, 400.0]);
        let data = {
            let mut p = Packet::data(NodeId(0), NodeId(2), 256);
            p.id = vanet_sim::PacketId(1000);
            p
        };
        // Originate on node 0: no route yet, so it buffers and emits a RREQ.
        let actions = {
            let mut ctx = envs[0].ctx(SimTime::from_secs(1.0));
            protos[0].originate(&mut ctx, data);
            ctx.take_actions()
        };
        assert_eq!(actions.len(), 1);
        let rreq = match &actions[0] {
            Action::Transmit(p) => {
                assert!(matches!(p.kind, PacketKind::RouteRequest { .. }));
                p.clone()
            }
            other => panic!("expected RREQ transmit, got {other:?}"),
        };
        let delivered = run_exchange(&mut envs, &mut protos, vec![(0, rreq)]);
        assert_eq!(delivered.len(), 1, "the buffered data packet must arrive");
        assert_eq!(delivered[0].destination, Some(NodeId(2)));
        assert_eq!(delivered[0].source, NodeId(0));
        // Node 0 now has a route to 2 via 1; node 1 has a route back to 0.
        let route = protos[0]
            .routing_table()
            .route(NodeId(2), SimTime::from_secs(1.0))
            .copied()
            .expect("route installed at source");
        assert_eq!(route.next_hop, NodeId(1));
        assert!(protos[1]
            .routing_table()
            .route(NodeId(0), SimTime::from_secs(1.0))
            .is_some());
    }

    #[test]
    fn data_with_known_route_is_unicast_immediately() {
        let mut env = Env::new(0, 0.0);
        let mut proto = Aodv::new(AodvPolicy::default());
        // Learn a reverse route to node 2 from an RREQ it originated.
        let mut rreq_from_dest = Packet::broadcast(
            NodeId(2),
            PacketKind::RouteRequest {
                target: NodeId(0),
                request_id: 7,
                hop_count: 0,
                path: vec![NodeId(2)],
                metric: 0.0,
            },
            0,
        );
        rreq_from_dest.id = vanet_sim::PacketId(55);
        rreq_from_dest.prev_hop = NodeId(2);
        {
            let mut ctx = env.ctx(SimTime::from_secs(1.0));
            proto.on_packet(&mut ctx, &rreq_from_dest, false);
            ctx.take_actions();
        }
        // The reverse route to 2 now exists, so data goes straight out unicast.
        let data = Packet::data(NodeId(0), NodeId(2), 100);
        let actions = {
            let mut ctx = env.ctx(SimTime::from_secs(1.5));
            proto.originate(&mut ctx, data);
            ctx.take_actions()
        };
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            Action::Transmit(p) => {
                assert_eq!(p.next_hop, Some(NodeId(2)));
                assert_eq!(p.kind, PacketKind::Data);
            }
            other => panic!("expected unicast data, got {other:?}"),
        }
    }

    #[test]
    fn neighbor_loss_invalidates_routes_and_emits_rerr() {
        let mut env = Env::new(1, 0.0);
        let mut proto = Aodv::new(AodvPolicy::default());
        // Learn a route to 5 via 3 from an RREQ originated by 5.
        let mut rreq = Packet::broadcast(
            NodeId(5),
            PacketKind::RouteRequest {
                target: NodeId(9),
                request_id: 1,
                hop_count: 1,
                path: vec![NodeId(5), NodeId(3)],
                metric: 0.0,
            },
            0,
        );
        rreq.prev_hop = NodeId(3);
        rreq.id = vanet_sim::PacketId(77);
        {
            let mut ctx = env.ctx(SimTime::from_secs(1.0));
            proto.on_packet(&mut ctx, &rreq, false);
            ctx.take_actions();
        }
        assert!(proto
            .routing_table()
            .route(NodeId(5), SimTime::from_secs(1.0))
            .is_some());
        let actions = {
            let mut ctx = env.ctx(SimTime::from_secs(2.0));
            proto.on_neighbor_lost(&mut ctx, NodeId(3));
            ctx.take_actions()
        };
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            Action::Transmit(p) => match &p.kind {
                PacketKind::RouteError { unreachable, .. } => {
                    assert!(unreachable.contains(&NodeId(5)));
                }
                other => panic!("expected RERR, got {other:?}"),
            },
            other => panic!("expected transmit, got {other:?}"),
        }
        assert!(proto
            .routing_table()
            .route(NodeId(5), SimTime::from_secs(2.0))
            .is_none());
    }

    #[test]
    fn discovery_is_rate_limited() {
        let mut env = Env::new(0, 0.0);
        let mut proto = Aodv::new(AodvPolicy::default());
        let d1 = Packet::data(NodeId(0), NodeId(7), 10);
        let d2 = Packet::data(NodeId(0), NodeId(7), 10);
        let a1 = {
            let mut ctx = env.ctx(SimTime::from_secs(1.0));
            proto.originate(&mut ctx, d1);
            ctx.take_actions()
        };
        let a2 = {
            let mut ctx = env.ctx(SimTime::from_secs(1.5));
            proto.originate(&mut ctx, d2);
            ctx.take_actions()
        };
        assert_eq!(a1.len(), 1, "first send triggers a discovery");
        assert!(
            a2.is_empty(),
            "second send within the retry interval does not"
        );
    }

    #[test]
    fn rerr_origination_is_rate_limited_per_destination() {
        let mut env = Env::new(1, 0.0);
        let mut proto = Aodv::new(AodvPolicy::default());
        // An intermediate node with no route: forwarding data it cannot
        // route re-originates a RERR — but only once per destination per
        // rate-limit interval.
        let incoming = |id: u64| {
            let mut p = Packet::data(NodeId(0), NodeId(7), 10).forwarded_by(NodeId(0), None);
            p.id = vanet_sim::PacketId(id);
            p
        };
        let count_rerrs = |actions: &[Action]| {
            actions
                .iter()
                .filter(|a| {
                    matches!(a, Action::Transmit(p) if matches!(p.kind, PacketKind::RouteError { .. }))
                })
                .count()
        };
        let first = {
            let mut ctx = env.ctx(SimTime::from_secs(1.0));
            proto.on_packet(&mut ctx, &incoming(1), false);
            ctx.take_actions()
        };
        assert_eq!(count_rerrs(&first), 1, "first failure reports the error");
        let second = {
            let mut ctx = env.ctx(SimTime::from_secs(1.2));
            proto.on_packet(&mut ctx, &incoming(2), false);
            ctx.take_actions()
        };
        assert_eq!(count_rerrs(&second), 0, "within the interval: suppressed");
        assert!(
            second.iter().any(|a| matches!(
                a,
                Action::Drop {
                    reason: DropReason::NoRoute,
                    ..
                }
            )),
            "the packet itself is still dropped"
        );
        let third = {
            let mut ctx = env.ctx(SimTime::from_secs(6.5));
            proto.on_packet(&mut ctx, &incoming(3), false);
            ctx.take_actions()
        };
        assert_eq!(count_rerrs(&third), 1, "a fresh interval reports again");
    }

    #[test]
    fn pending_packets_expire_on_tick() {
        let mut env = Env::new(0, 0.0);
        let mut proto = Aodv::new(AodvPolicy::default());
        let data = Packet::data(NodeId(0), NodeId(7), 10);
        {
            let mut ctx = env.ctx(SimTime::from_secs(1.0));
            proto.originate(&mut ctx, data);
            ctx.take_actions();
        }
        let actions = {
            let mut ctx = env.ctx(SimTime::from_secs(60.0));
            proto.on_tick(&mut ctx);
            ctx.take_actions()
        };
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Drop {
                reason: DropReason::Expired,
                ..
            }
        )));
    }

    #[test]
    fn rerr_at_source_triggers_rediscovery() {
        let mut env = Env::new(0, 0.0);
        let mut proto = Aodv::new(AodvPolicy::default());
        // Originate data (starts a discovery and buffers the packet).
        {
            let mut ctx = env.ctx(SimTime::from_secs(1.0));
            proto.originate(&mut ctx, Packet::data(NodeId(0), NodeId(7), 10));
            ctx.take_actions();
        }
        // A RERR addressed to us about destination 7 arrives later.
        let mut rerr = Packet::broadcast(
            NodeId(3),
            PacketKind::RouteError {
                unreachable: vec![NodeId(7)],
                broken_link_from: NodeId(3),
                broken_link_to: NodeId(7),
            },
            0,
        );
        rerr.destination = Some(NodeId(0));
        rerr.prev_hop = NodeId(3);
        let actions = {
            let mut ctx = env.ctx(SimTime::from_secs(5.0));
            proto.on_packet(&mut ctx, &rerr, false);
            ctx.take_actions()
        };
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, Action::Transmit(p) if matches!(p.kind, PacketKind::RouteRequest { .. }))),
            "the source should re-discover after a route error"
        );
    }
}
