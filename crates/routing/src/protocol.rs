//! The routing-protocol abstraction.
//!
//! Every protocol in the five families implements [`RoutingProtocol`]: a
//! purely event-driven state machine that reacts to received packets,
//! periodic ticks and neighbour-loss notifications by returning a list of
//! [`Action`]s for the simulation driver to carry out. Protocols never touch
//! the medium or the clock directly, which keeps them deterministic and
//! individually unit-testable.

use std::fmt;
use vanet_mobility::{Position, VehicleState, Velocity};
use vanet_net::{NeighborTable, Packet};
use vanet_sim::{NodeId, PacketIdAllocator, SimDuration, SimRng, SimTime};

/// The five routing families of the paper's taxonomy (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Connectivity-based (flooding-derived) routing.
    Connectivity,
    /// Mobility-based routing (link-lifetime / direction prediction).
    Mobility,
    /// Infrastructure-based routing (RSUs, buses).
    Infrastructure,
    /// Geographic-location-based routing.
    Geographic,
    /// Probability-model-based routing.
    Probability,
}

impl Category {
    /// All categories in taxonomy order.
    pub const ALL: [Category; 5] = [
        Category::Connectivity,
        Category::Mobility,
        Category::Infrastructure,
        Category::Geographic,
        Category::Probability,
    ];
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Category::Connectivity => "connectivity",
            Category::Mobility => "mobility",
            Category::Infrastructure => "infrastructure",
            Category::Geographic => "geographic",
            Category::Probability => "probability",
        };
        f.write_str(name)
    }
}

/// Why a protocol dropped a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// The TTL reached zero.
    TtlExpired,
    /// No route / no suitable next hop was available.
    NoRoute,
    /// Greedy forwarding reached a local maximum.
    LocalMaximum,
    /// The packet was a duplicate of one already handled.
    Duplicate,
    /// An internal buffer overflowed.
    BufferOverflow,
    /// The packet waited too long in a buffer.
    Expired,
    /// The packet was outside the protocol's forwarding zone.
    OutOfZone,
    /// The packet was not addressed to this node.
    NotForMe,
}

/// What a protocol asks the simulation driver to do.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Transmit a frame on the wireless medium (unicast when
    /// `packet.next_hop` is set, link-layer broadcast otherwise).
    Transmit(Packet),
    /// Deliver a data packet to the local application (it reached its
    /// destination).
    Deliver(Packet),
    /// Drop a packet, recording the reason in the metrics.
    Drop {
        /// The dropped packet.
        packet: Packet,
        /// Why it was dropped.
        reason: DropReason,
    },
    /// Send a packet over the wired infrastructure backbone to another
    /// road-side unit. Only meaningful when both this node and `to` are RSUs;
    /// the driver applies a fixed backbone latency and no radio cost.
    BackboneSend {
        /// The receiving road-side unit.
        to: NodeId,
        /// The packet to hand over.
        packet: Packet,
    },
}

/// An idealised location service (the "GPS + digital map" assumption the
/// geographic and probability protocols make): returns the current position
/// and velocity of any node.
pub trait LocationService {
    /// Current position of `node`, if known.
    fn position_of(&self, node: NodeId) -> Option<Position>;

    /// Current velocity of `node`, if known.
    fn velocity_of(&self, node: NodeId) -> Option<Velocity>;
}

/// A location service that knows nothing (used by protocols that do not rely
/// on positions, and in unit tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoLocationService;

impl LocationService for NoLocationService {
    fn position_of(&self, _node: NodeId) -> Option<Position> {
        None
    }

    fn velocity_of(&self, _node: NodeId) -> Option<Velocity> {
        None
    }
}

/// A location service backed by a static table of positions/velocities.
#[derive(Debug, Clone, Default)]
pub struct TableLocationService {
    entries: std::collections::BTreeMap<NodeId, (Position, Velocity)>,
}

impl TableLocationService {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the position and velocity of a node.
    pub fn set(&mut self, node: NodeId, position: Position, velocity: Velocity) {
        self.entries.insert(node, (position, velocity));
    }
}

impl LocationService for TableLocationService {
    fn position_of(&self, node: NodeId) -> Option<Position> {
        self.entries.get(&node).map(|e| e.0)
    }

    fn velocity_of(&self, node: NodeId) -> Option<Velocity> {
        self.entries.get(&node).map(|e| e.1)
    }
}

/// Everything a protocol may consult when reacting to an event.
pub struct ProtocolContext<'a> {
    /// The node this protocol instance runs on.
    pub node: NodeId,
    /// Current simulation time.
    pub now: SimTime,
    /// The node's own kinematic state.
    pub state: &'a VehicleState,
    /// The node's neighbour table (maintained by the beaconing service).
    pub neighbors: &'a NeighborTable,
    /// Nominal radio range in metres.
    pub range_m: f64,
    /// Ids of the road-side units deployed in the scenario.
    pub rsu_ids: &'a [NodeId],
    /// Ids of the bus (message-ferry) nodes in the scenario.
    pub bus_ids: &'a [NodeId],
    /// The location service (ideal GPS / digital map).
    pub location: &'a dyn LocationService,
    /// Deterministic randomness for jitter and tie-breaking.
    pub rng: &'a mut SimRng,
    /// Allocator for fresh packet ids (control packets created by protocols).
    pub packet_ids: &'a mut PacketIdAllocator,
}

impl<'a> ProtocolContext<'a> {
    /// Own current position.
    #[must_use]
    pub fn position(&self) -> Position {
        self.state.position
    }

    /// Own current velocity.
    #[must_use]
    pub fn velocity(&self) -> Velocity {
        self.state.velocity
    }

    /// Whether this node is a road-side unit.
    #[must_use]
    pub fn is_rsu(&self) -> bool {
        self.rsu_ids.contains(&self.node)
    }

    /// Whether this node is a bus (message ferry).
    #[must_use]
    pub fn is_bus(&self) -> bool {
        self.bus_ids.contains(&self.node)
    }

    /// Creates a fresh control packet stamped with this node as source and
    /// the current time.
    #[must_use]
    pub fn new_control_packet(&mut self, kind: vanet_net::PacketKind) -> Packet {
        let mut p = Packet::broadcast(self.node, kind, 0);
        p.id = self.packet_ids.allocate();
        p.created_at = self.now;
        p.sender_position = Some(self.state.position);
        p.sender_velocity = Some(self.state.velocity);
        p
    }

    /// Stamps an outgoing copy of `packet` with this node's current position
    /// and velocity (the piggybacked mobility information every transmitted
    /// frame carries).
    #[must_use]
    pub fn stamp(&self, mut packet: Packet) -> Packet {
        packet.sender_position = Some(self.state.position);
        packet.sender_velocity = Some(self.state.velocity);
        packet
    }
}

/// A VANET routing protocol instance (one per node).
pub trait RoutingProtocol: fmt::Debug {
    /// Human-readable protocol name (e.g. `"AODV"`).
    fn name(&self) -> &'static str;

    /// Which family of the taxonomy the protocol belongs to.
    fn category(&self) -> Category;

    /// Interval at which this protocol needs HELLO position beacons, if any.
    /// Protocols that return `None` incur no beaconing overhead.
    fn beacon_interval(&self) -> Option<SimDuration> {
        None
    }

    /// The local application wants to send `packet` (a data packet with
    /// `destination` set). The protocol may transmit it immediately, buffer
    /// it while a route is discovered, or drop it.
    fn originate(&mut self, ctx: &mut ProtocolContext<'_>, packet: Packet) -> Vec<Action>;

    /// A frame addressed to (or overheard by, when `overheard`) this node
    /// arrived.
    fn on_packet(
        &mut self,
        ctx: &mut ProtocolContext<'_>,
        packet: Packet,
        overheard: bool,
    ) -> Vec<Action>;

    /// Periodic maintenance tick (roughly once per second).
    fn on_tick(&mut self, ctx: &mut ProtocolContext<'_>) -> Vec<Action>;

    /// A neighbour's beacon lease expired (link break detected).
    fn on_neighbor_lost(
        &mut self,
        _ctx: &mut ProtocolContext<'_>,
        _neighbor: NodeId,
    ) -> Vec<Action> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_display_and_order() {
        assert_eq!(Category::ALL.len(), 5);
        assert_eq!(Category::Connectivity.to_string(), "connectivity");
        assert_eq!(Category::Probability.to_string(), "probability");
        let mut sorted = Category::ALL;
        sorted.sort();
        assert_eq!(sorted, Category::ALL);
    }

    #[test]
    fn table_location_service() {
        let mut svc = TableLocationService::new();
        assert!(svc.position_of(NodeId(1)).is_none());
        svc.set(NodeId(1), Position::new(10.0, 0.0), Velocity::new(1.0, 0.0));
        assert_eq!(svc.position_of(NodeId(1)).unwrap().x, 10.0);
        assert_eq!(svc.velocity_of(NodeId(1)).unwrap().x, 1.0);
        assert!(NoLocationService.position_of(NodeId(1)).is_none());
        assert!(NoLocationService.velocity_of(NodeId(1)).is_none());
    }
}
