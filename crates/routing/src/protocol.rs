//! The routing-protocol abstraction.
//!
//! Every protocol in the five families implements [`RoutingProtocol`]: a
//! purely event-driven state machine that reacts to received packets,
//! periodic ticks and neighbour-loss notifications by pushing [`Action`]s
//! into the reusable [`ActionSink`] carried by its [`ProtocolContext`], for
//! the simulation driver to carry out. Protocols never touch the medium or
//! the clock directly, which keeps them deterministic and individually
//! unit-testable — and because the sink is owned by the driver and recycled
//! across callbacks, a protocol reaction allocates nothing in steady state.

use std::fmt;
use vanet_mobility::{Position, VehicleState, Velocity};
use vanet_net::{NeighborView, Packet};
use vanet_sim::{NodeId, PacketId, PacketIdAllocator, SimDuration, SimRng, SimTime};

/// The five routing families of the paper's taxonomy (Fig. 1), plus the
/// delay-tolerant store-carry-forward family that picks up where the
/// connected-path families break down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Connectivity-based (flooding-derived) routing.
    Connectivity,
    /// Mobility-based routing (link-lifetime / direction prediction).
    Mobility,
    /// Infrastructure-based routing (RSUs, buses).
    Infrastructure,
    /// Geographic-location-based routing.
    Geographic,
    /// Probability-model-based routing.
    Probability,
    /// Delay-tolerant store-carry-forward routing (bundle buffers, custody).
    Dtn,
}

impl Category {
    /// All categories in taxonomy order.
    pub const ALL: [Category; 6] = [
        Category::Connectivity,
        Category::Mobility,
        Category::Infrastructure,
        Category::Geographic,
        Category::Probability,
        Category::Dtn,
    ];
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Category::Connectivity => "connectivity",
            Category::Mobility => "mobility",
            Category::Infrastructure => "infrastructure",
            Category::Geographic => "geographic",
            Category::Probability => "probability",
            Category::Dtn => "store-carry-forward",
        };
        f.write_str(name)
    }
}

/// Why a protocol dropped a packet.
///
/// `Ord` follows declaration order; metrics key drop counters by reason in a
/// `BTreeMap`, so every rendered or exported breakdown lists reasons in this
/// fixed order regardless of the order drops happened in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DropReason {
    /// The TTL reached zero.
    TtlExpired,
    /// No route / no suitable next hop was available.
    NoRoute,
    /// Greedy forwarding reached a local maximum.
    LocalMaximum,
    /// The packet was a duplicate of one already handled.
    Duplicate,
    /// An internal buffer overflowed.
    BufferOverflow,
    /// The packet waited too long in a buffer.
    Expired,
    /// The packet was outside the protocol's forwarding zone.
    OutOfZone,
    /// The packet was not addressed to this node.
    NotForMe,
}

/// A bundle-buffer lifecycle event reported by a store-carry-forward
/// protocol, for the driver to fold into the DTN metrics and telemetry.
///
/// `Ord` follows declaration order so any per-op breakdown keyed by a
/// `BTreeMap` iterates deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BundleOp {
    /// A bundle entered this node's buffer.
    Stored,
    /// A buffered bundle was copied to a contacted neighbour.
    Forwarded,
    /// A buffered bundle's TTL ran out and it was discarded.
    Expired,
    /// A buffered bundle was evicted to make room under the drop policy.
    Evicted,
    /// Custody of a bundle was handed over (the acknowledged custodian
    /// released its custody flag).
    Custody,
}

/// What a protocol asks the simulation driver to do.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Transmit a frame on the wireless medium (unicast when
    /// `packet.next_hop` is set, link-layer broadcast otherwise).
    Transmit(Packet),
    /// Deliver a data packet to the local application (it reached its
    /// destination).
    Deliver(Packet),
    /// Drop a packet, recording the reason in the metrics. Carries only the
    /// packet id — drops are the hottest action in flooding protocols and
    /// the driver needs nothing but the reason.
    Drop {
        /// Id of the dropped packet.
        id: PacketId,
        /// Why it was dropped.
        reason: DropReason,
    },
    /// Send a packet over the wired infrastructure backbone to another
    /// road-side unit. Only meaningful when both this node and `to` are RSUs;
    /// the driver applies a fixed backbone latency and no radio cost.
    BackboneSend {
        /// The receiving road-side unit.
        to: NodeId,
        /// The packet to hand over.
        packet: Packet,
    },
    /// Report a bundle-buffer lifecycle event (store-carry-forward
    /// protocols only). Carries the buffer occupancy *after* the event so
    /// the driver can track the occupancy peak without reaching into
    /// protocol state.
    Bundle {
        /// What happened to the bundle.
        op: BundleOp,
        /// Buffered bundles at this node after the event.
        occupancy: usize,
    },
}

/// The reusable buffer protocol callbacks push their [`Action`]s into.
///
/// The simulation driver owns one sink per simulation, hands it to every
/// callback through [`ProtocolContext`], drains it (keeping capacity) and
/// hands it to the next callback — so the per-event `Vec<Action>` allocation
/// of the old `-> Vec<Action>` API disappears entirely. The driver drains the
/// sink after *every* callback; actions never leak from one callback into
/// the next.
#[derive(Debug, Default)]
pub struct ActionSink {
    actions: Vec<Action>,
}

impl ActionSink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty sink with room for `capacity` queued actions, so the
    /// first callbacks of a fleet-scale run don't grow the buffer while the
    /// caches are cold.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            actions: Vec::with_capacity(capacity),
        }
    }

    /// Queues a frame for transmission on the wireless medium.
    pub fn transmit(&mut self, packet: Packet) {
        self.actions.push(Action::Transmit(packet));
    }

    /// Queues delivery of `packet` to the local application.
    pub fn deliver(&mut self, packet: &Packet) {
        self.actions.push(Action::Deliver(packet.clone()));
    }

    /// Records that `packet` was dropped for `reason`.
    pub fn drop_packet(&mut self, packet: &Packet, reason: DropReason) {
        self.actions.push(Action::Drop {
            id: packet.id,
            reason,
        });
    }

    /// Queues a backbone hand-over of `packet` to road-side unit `to`.
    pub fn backbone_send(&mut self, to: NodeId, packet: Packet) {
        self.actions.push(Action::BackboneSend { to, packet });
    }

    /// Reports a bundle-buffer lifecycle event (store-carry-forward
    /// protocols).
    pub fn bundle(&mut self, op: BundleOp, occupancy: usize) {
        self.actions.push(Action::Bundle { op, occupancy });
    }

    /// Number of queued actions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether no actions are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Capacity of the underlying buffer (for reuse diagnostics/tests).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.actions.capacity()
    }

    /// The queued actions, in push order.
    #[must_use]
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Removes and returns all queued actions (convenient in tests; drivers
    /// on the hot path should prefer [`ActionSink::swap_into`]).
    pub fn take_all(&mut self) -> Vec<Action> {
        std::mem::take(&mut self.actions)
    }

    /// Swaps the queued actions into `scratch` (which must be empty), leaving
    /// the sink holding `scratch`'s capacity. Ping-ponging two buffers this
    /// way drains the sink with zero allocation in steady state.
    pub fn swap_into(&mut self, scratch: &mut Vec<Action>) {
        debug_assert!(scratch.is_empty(), "drain target must be empty");
        std::mem::swap(&mut self.actions, scratch);
    }
}

/// An idealised location service (the "GPS + digital map" assumption the
/// geographic and probability protocols make): returns the current position
/// and velocity of any node.
pub trait LocationService {
    /// Current position of `node`, if known.
    fn position_of(&self, node: NodeId) -> Option<Position>;

    /// Current velocity of `node`, if known.
    fn velocity_of(&self, node: NodeId) -> Option<Velocity>;
}

/// A location service that knows nothing (used by protocols that do not rely
/// on positions, and in unit tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoLocationService;

impl LocationService for NoLocationService {
    fn position_of(&self, _node: NodeId) -> Option<Position> {
        None
    }

    fn velocity_of(&self, _node: NodeId) -> Option<Velocity> {
        None
    }
}

/// A location service backed by a static table of positions/velocities.
#[derive(Debug, Clone, Default)]
pub struct TableLocationService {
    /// Dense storage indexed by [`NodeId::index`]: node ids are allocated
    /// contiguously from zero, and the driver refreshes every node's entry
    /// each mobility step — an O(1) slot write instead of a descent through
    /// a fleet-sized ordered map.
    entries: Vec<Option<(Position, Velocity)>>,
}

impl TableLocationService {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the position and velocity of a node.
    pub fn set(&mut self, node: NodeId, position: Position, velocity: Velocity) {
        let at = node.index();
        if at >= self.entries.len() {
            self.entries.resize(at + 1, None);
        }
        self.entries[at] = Some((position, velocity));
    }
}

impl LocationService for TableLocationService {
    fn position_of(&self, node: NodeId) -> Option<Position> {
        self.entries
            .get(node.index())
            .copied()
            .flatten()
            .map(|e| e.0)
    }

    fn velocity_of(&self, node: NodeId) -> Option<Velocity> {
        self.entries
            .get(node.index())
            .copied()
            .flatten()
            .map(|e| e.1)
    }
}

/// Everything a protocol may consult when reacting to an event.
pub struct ProtocolContext<'a> {
    /// The node this protocol instance runs on.
    pub node: NodeId,
    /// Current simulation time.
    pub now: SimTime,
    /// The node's own kinematic state.
    pub state: &'a VehicleState,
    /// The node's neighbour table (maintained by the beaconing service):
    /// a read-only view over either the reference [`vanet_net::NeighborTable`]
    /// or the fleet-shared [`vanet_net::NeighborArena`].
    pub neighbors: NeighborView<'a>,
    /// Nominal radio range in metres.
    pub range_m: f64,
    /// Ids of the road-side units deployed in the scenario, sorted ascending
    /// (membership checks binary-search this slice).
    pub rsu_ids: &'a [NodeId],
    /// Ids of the bus (message-ferry) nodes, sorted ascending.
    pub bus_ids: &'a [NodeId],
    /// The location service (ideal GPS / digital map).
    pub location: &'a dyn LocationService,
    /// Deterministic randomness for jitter and tie-breaking.
    pub rng: &'a mut SimRng,
    /// Allocator for fresh packet ids (control packets created by protocols).
    pub packet_ids: &'a mut PacketIdAllocator,
    /// The driver-owned sink this callback's actions go into.
    pub actions: &'a mut ActionSink,
}

impl<'a> ProtocolContext<'a> {
    /// Own current position.
    #[must_use]
    pub fn position(&self) -> Position {
        self.state.position
    }

    /// Own current velocity.
    #[must_use]
    pub fn velocity(&self) -> Velocity {
        self.state.velocity
    }

    /// Whether this node is a road-side unit (`rsu_ids` is id-sorted by
    /// construction, so membership is a binary search).
    #[must_use]
    pub fn is_rsu(&self) -> bool {
        self.rsu_ids.binary_search(&self.node).is_ok()
    }

    /// Whether this node is a bus (message ferry).
    #[must_use]
    pub fn is_bus(&self) -> bool {
        self.bus_ids.binary_search(&self.node).is_ok()
    }

    /// Queues a frame for transmission (shorthand for `actions.transmit`).
    pub fn transmit(&mut self, packet: Packet) {
        self.actions.transmit(packet);
    }

    /// Queues delivery of `packet` to the local application.
    pub fn deliver(&mut self, packet: &Packet) {
        self.actions.deliver(packet);
    }

    /// Records that `packet` was dropped for `reason`.
    pub fn drop_packet(&mut self, packet: &Packet, reason: DropReason) {
        self.actions.drop_packet(packet, reason);
    }

    /// Queues a backbone hand-over of `packet` to road-side unit `to`.
    pub fn backbone_send(&mut self, to: NodeId, packet: Packet) {
        self.actions.backbone_send(to, packet);
    }

    /// Reports a bundle-buffer lifecycle event (shorthand for
    /// `actions.bundle`).
    pub fn bundle_event(&mut self, op: BundleOp, occupancy: usize) {
        self.actions.bundle(op, occupancy);
    }

    /// Removes and returns the actions queued so far (test convenience).
    pub fn take_actions(&mut self) -> Vec<Action> {
        self.actions.take_all()
    }

    /// Creates a fresh control packet stamped with this node as source and
    /// the current time.
    #[must_use]
    pub fn new_control_packet(&mut self, kind: vanet_net::PacketKind) -> Packet {
        let mut p = Packet::broadcast(self.node, kind, 0);
        p.id = self.packet_ids.allocate();
        p.created_at = self.now;
        p.sender_position = Some(self.state.position);
        p.sender_velocity = Some(self.state.velocity);
        p
    }

    /// Stamps an outgoing copy of `packet` with this node's current position
    /// and velocity (the piggybacked mobility information every transmitted
    /// frame carries).
    #[must_use]
    pub fn stamp(&self, mut packet: Packet) -> Packet {
        packet.sender_position = Some(self.state.position);
        packet.sender_velocity = Some(self.state.velocity);
        packet
    }
}

/// A VANET routing protocol instance (one per node).
///
/// Callbacks react by pushing [`Action`]s into `ctx.actions` (directly or
/// via the [`ProtocolContext`] shorthands); the driver drains the sink after
/// each callback. Received frames arrive by reference — the driver shares
/// one frame among all receivers of a broadcast, and a protocol clones only
/// what it actually stores or forwards.
pub trait RoutingProtocol: fmt::Debug {
    /// Human-readable protocol name (e.g. `"AODV"`).
    fn name(&self) -> &'static str;

    /// Which family of the taxonomy the protocol belongs to.
    fn category(&self) -> Category;

    /// Interval at which this protocol needs HELLO position beacons, if any.
    /// Protocols that return `None` incur no beaconing overhead.
    fn beacon_interval(&self) -> Option<SimDuration> {
        None
    }

    /// The local application wants to send `packet` (a data packet with
    /// `destination` set). The protocol may transmit it immediately, buffer
    /// it while a route is discovered, or drop it.
    fn originate(&mut self, ctx: &mut ProtocolContext<'_>, packet: Packet);

    /// A frame addressed to (or overheard by, when `overheard`) this node
    /// arrived.
    fn on_packet(&mut self, ctx: &mut ProtocolContext<'_>, packet: &Packet, overheard: bool);

    /// Periodic maintenance tick (roughly once per second).
    fn on_tick(&mut self, ctx: &mut ProtocolContext<'_>);

    /// A neighbour's beacon lease expired (link break detected).
    fn on_neighbor_lost(&mut self, _ctx: &mut ProtocolContext<'_>, _neighbor: NodeId) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanet_net::NeighborTable;

    #[test]
    fn category_display_and_order() {
        assert_eq!(Category::ALL.len(), 6);
        assert_eq!(Category::Connectivity.to_string(), "connectivity");
        assert_eq!(Category::Probability.to_string(), "probability");
        assert_eq!(Category::Dtn.to_string(), "store-carry-forward");
        let mut sorted = Category::ALL;
        sorted.sort();
        assert_eq!(sorted, Category::ALL);
    }

    #[test]
    fn action_sink_drains_completely_and_reuses_capacity() {
        let mut sink = ActionSink::new();
        let mut scratch: Vec<Action> = Vec::new();
        let mut peak_capacity = 0;
        for round in 0..4 {
            // A "callback" pushes a mixed batch of actions.
            let packet = Packet::data(NodeId(1), NodeId(9), 64);
            sink.transmit(packet.clone());
            sink.drop_packet(&packet, DropReason::Duplicate);
            if round % 2 == 0 {
                sink.deliver(&packet);
            }
            let expected = if round % 2 == 0 { 3 } else { 2 };
            assert_eq!(sink.len(), expected);

            // The driver drains it: everything comes out, nothing survives
            // into the next callback (no cross-callback leakage).
            sink.swap_into(&mut scratch);
            assert!(sink.is_empty(), "drain must empty the sink");
            assert_eq!(scratch.len(), expected);
            assert!(matches!(scratch[0], Action::Transmit(_)));
            assert!(matches!(
                scratch[1],
                Action::Drop {
                    reason: DropReason::Duplicate,
                    ..
                }
            ));
            scratch.clear();

            // After the first round the two buffers ping-pong: capacity is
            // retained, so steady-state rounds allocate nothing.
            if round >= 2 {
                assert!(
                    sink.capacity() >= 2 && scratch.capacity() >= 2,
                    "buffer capacity must be recycled across rounds"
                );
            }
            peak_capacity = peak_capacity.max(sink.capacity().max(scratch.capacity()));
        }
        assert!(
            peak_capacity <= 8,
            "ping-ponged buffers must not grow unboundedly, got {peak_capacity}"
        );
    }

    #[test]
    fn take_actions_returns_only_the_current_callbacks_actions() {
        let state = VehicleState::stationary(
            NodeId(3),
            vanet_mobility::VehicleKind::Car,
            Position::new(0.0, 0.0),
        );
        let neighbors = NeighborTable::new();
        let mut rng = SimRng::new(1);
        let mut ids = PacketIdAllocator::new();
        let mut sink = ActionSink::new();
        let mut ctx = ProtocolContext {
            node: NodeId(3),
            now: SimTime::ZERO,
            state: &state,
            neighbors: (&neighbors).into(),
            range_m: 250.0,
            rsu_ids: &[],
            bus_ids: &[],
            location: &NoLocationService,
            rng: &mut rng,
            packet_ids: &mut ids,
            actions: &mut sink,
        };
        let mut proto = crate::flooding::Flooding::new();
        let pkt = {
            let mut p = Packet::data(NodeId(0), NodeId(9), 32);
            p.id = vanet_sim::PacketId(77);
            p
        };
        proto.on_packet(&mut ctx, &pkt, false);
        let first = ctx.take_actions();
        assert_eq!(first.len(), 1, "fresh packet → exactly one rebroadcast");
        // The same packet again is a duplicate; the drain above must not
        // leave the earlier Transmit behind to be double-counted.
        proto.on_packet(&mut ctx, &pkt, false);
        let second = ctx.take_actions();
        assert_eq!(second.len(), 1);
        assert!(matches!(
            second[0],
            Action::Drop {
                reason: DropReason::Duplicate,
                ..
            }
        ));
    }

    #[test]
    fn table_location_service() {
        let mut svc = TableLocationService::new();
        assert!(svc.position_of(NodeId(1)).is_none());
        svc.set(NodeId(1), Position::new(10.0, 0.0), Velocity::new(1.0, 0.0));
        assert_eq!(svc.position_of(NodeId(1)).unwrap().x, 10.0);
        assert_eq!(svc.velocity_of(NodeId(1)).unwrap().x, 1.0);
        assert!(NoLocationService.position_of(NodeId(1)).is_none());
        assert!(NoLocationService.velocity_of(NodeId(1)).is_none());
    }
}
