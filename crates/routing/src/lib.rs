//! # vanet-routing — the five routing families, plus store-carry-forward
//!
//! Implementations of representative protocols from every category of the
//! paper's taxonomy (Fig. 1), extended with the delay-tolerant
//! store-carry-forward family that takes over where connected-path routing
//! breaks down:
//!
//! | Category | Protocols |
//! |---|---|
//! | Connectivity-based | [`Flooding`], [`Biswas`], [`Aodv`], [`Dsdv`] |
//! | Mobility-based | [`Pbr`], [`Taleb`], [`Abedi`] |
//! | Infrastructure-based | [`Drr`], [`BusFerry`] |
//! | Geographic-location-based | [`Greedy`], [`Zone`], [`Rover`] |
//! | Probability-model-based | [`Yan`], [`Car`], [`Rear`], [`GvGrid`] |
//! | Store-carry-forward (DTN) | [`Epidemic`], [`Prophet`], [`SprayAndWait`], [`ProbFlood`] |
//!
//! Every protocol implements the event-driven [`RoutingProtocol`] trait and is
//! driven by the simulation layer in `vanet-core`.
//!
//! # Example
//!
//! ```
//! use vanet_routing::{aodv, RoutingProtocol, Category};
//!
//! let protocol = aodv();
//! assert_eq!(protocol.name(), "AODV");
//! assert_eq!(protocol.category(), Category::Connectivity);
//! ```

#![warn(missing_docs)]

pub mod aodv;
pub mod common;
pub mod dsdv;
pub mod dtn;
pub mod flooding;
pub mod geographic;
pub mod infrastructure;
pub mod mobility_protocols;
pub mod ondemand;
pub mod protocol;
pub mod yan;
pub mod zone;

pub use aodv::{aodv, Aodv, AodvPolicy};
pub use common::{PendingBuffer, RouteEntry, RoutingTable, SeenCache};
pub use dsdv::{Dsdv, DsdvConfig};
pub use dtn::{
    Bundle, BundleBuffer, BundleKey, DropPolicy, DtnParams, Epidemic, InsertOutcome, ProbFlood,
    Prophet, SprayAndWait,
};
pub use flooding::{Biswas, Flooding};
pub use geographic::{
    car, greedy, gvgrid, rear, Car, CarScorer, GeoConfig, GeoRouting, Greedy, GreedyScorer, GvGrid,
    GvGridScorer, NextHopScorer, Rear, RearScorer,
};
pub use infrastructure::{BusFerry, BusFerryConfig, Drr, DrrConfig};
pub use mobility_protocols::{
    abedi, pbr, taleb, Abedi, AbediPolicy, Pbr, PbrPolicy, Taleb, TalebPolicy,
};
pub use ondemand::{DiscoveryPolicy, OnDemandConfig, OnDemandRouting};
pub use protocol::{
    Action, ActionSink, BundleOp, Category, DropReason, LocationService, NoLocationService,
    ProtocolContext, RoutingProtocol, TableLocationService,
};
pub use yan::{TicketMetric, Yan, YanConfig};
pub use zone::{in_corridor, rover, Rover, RoverPolicy, Zone};
