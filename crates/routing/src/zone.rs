//! Zone-based geographic routing (Sec. VI): zone-restricted flooding
//! (Bronsted & Kristensen) and ROVER-style zone-scoped discovery.
//!
//! Both use the destination's geographic zone to bound where packets are
//! relayed: `Zone` floods data but only within a corridor between the source
//! and the destination zone, `Rover` runs the on-demand discovery skeleton
//! with the same corridor as its forwarding filter (control packets are
//! broadcast inside the zone, data is then unicast along the found route).

use crate::common::SeenCache;
use crate::ondemand::{DiscoveryPolicy, OnDemandRouting};
use crate::protocol::{Category, DropReason, ProtocolContext, RoutingProtocol};
use vanet_mobility::geometry::distance;
use vanet_mobility::Position;
use vanet_net::{GeoAddress, Packet, PacketKind};
use vanet_sim::SimDuration;

/// Whether `candidate` lies inside the forwarding corridor between `from` and
/// the destination zone centred at `dest` with radius `zone_radius`: the
/// corridor is the set of points whose detour over the straight line is at
/// most `margin` metres (an ellipse with foci `from` and `dest`).
#[must_use]
pub fn in_corridor(
    candidate: Position,
    from: Position,
    dest: Position,
    zone_radius: f64,
    margin: f64,
) -> bool {
    let direct = distance(from, dest);
    let detour = distance(from, candidate) + distance(candidate, dest);
    detour <= direct + margin + zone_radius
}

/// Zone-restricted flooding.
#[derive(Debug)]
pub struct Zone {
    seen: SeenCache,
    /// Extra corridor width allowed around the straight source→destination
    /// line, metres.
    corridor_margin_m: f64,
    beacon_interval: SimDuration,
}

impl Zone {
    /// Creates a zone-flooding instance with a 500 m corridor margin.
    #[must_use]
    pub fn new() -> Self {
        Self::with_margin(500.0)
    }

    /// Creates a zone-flooding instance with an explicit corridor margin.
    #[must_use]
    pub fn with_margin(corridor_margin_m: f64) -> Self {
        Zone {
            seen: SeenCache::new(60.0),
            corridor_margin_m,
            beacon_interval: SimDuration::from_secs(1.0),
        }
    }
}

impl Default for Zone {
    fn default() -> Self {
        Self::new()
    }
}

impl RoutingProtocol for Zone {
    fn name(&self) -> &'static str {
        "Zone"
    }

    fn category(&self) -> Category {
        Category::Geographic
    }

    fn beacon_interval(&self) -> Option<SimDuration> {
        Some(self.beacon_interval)
    }

    fn originate(&mut self, ctx: &mut ProtocolContext<'_>, mut packet: Packet) {
        let Some(dest) = packet.destination else {
            ctx.drop_packet(&packet, DropReason::NoRoute);
            return;
        };
        let Some(dest_pos) = ctx.location.position_of(dest) else {
            ctx.drop_packet(&packet, DropReason::NoRoute);
            return;
        };
        packet.geo = Some(GeoAddress {
            position: dest_pos,
            zone_radius: ctx.range_m,
        });
        self.seen
            .check_and_insert(packet.source, packet.id.value(), ctx.now);
        let mut copy = ctx.stamp(packet);
        copy.next_hop = None;
        ctx.transmit(copy);
    }

    fn on_packet(&mut self, ctx: &mut ProtocolContext<'_>, packet: &Packet, _overheard: bool) {
        if packet.kind != PacketKind::Data {
            return;
        }
        if self
            .seen
            .check_and_insert(packet.source, packet.id.value(), ctx.now)
        {
            ctx.drop_packet(packet, DropReason::Duplicate);
            return;
        }
        if packet.destination == Some(ctx.node) {
            ctx.deliver(packet);
            return;
        }
        if !packet.ttl_allows_forwarding() {
            ctx.drop_packet(packet, DropReason::TtlExpired);
            return;
        }
        // Only nodes inside the corridor towards the destination zone relay.
        let inside = match (packet.geo, packet.sender_position) {
            (Some(geo), Some(sender)) => in_corridor(
                ctx.position(),
                sender,
                geo.position,
                geo.zone_radius,
                self.corridor_margin_m,
            ),
            (Some(geo), None) => distance(ctx.position(), geo.position) <= geo.zone_radius * 4.0,
            _ => true,
        };
        if !inside {
            ctx.drop_packet(packet, DropReason::OutOfZone);
            return;
        }
        let fwd = ctx.stamp(packet.forwarded_by(ctx.node, None));
        ctx.transmit(fwd);
    }

    fn on_tick(&mut self, _ctx: &mut ProtocolContext<'_>) {}
}

/// The ROVER discovery policy: hop-count metric (like AODV) but route
/// requests are relayed only inside the zone/corridor towards the destination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoverPolicy {
    /// Route lifetime.
    pub route_lifetime: SimDuration,
    /// Corridor margin around the straight line, metres.
    pub corridor_margin_m: f64,
    /// Beacon interval.
    pub beacon_interval: SimDuration,
}

impl Default for RoverPolicy {
    fn default() -> Self {
        RoverPolicy {
            route_lifetime: SimDuration::from_secs(10.0),
            corridor_margin_m: 500.0,
            beacon_interval: SimDuration::from_secs(1.0),
        }
    }
}

impl DiscoveryPolicy for RoverPolicy {
    fn name(&self) -> &'static str {
        "ROVER"
    }

    fn category(&self) -> Category {
        Category::Geographic
    }

    fn beacon_interval(&self) -> Option<SimDuration> {
        Some(self.beacon_interval)
    }

    fn link_metric(&self, _ctx: &ProtocolContext<'_>, _packet: &Packet) -> f64 {
        -1.0
    }

    fn combine(&self, path_metric: f64, link_metric: f64) -> f64 {
        path_metric + link_metric
    }

    fn initial_metric(&self) -> f64 {
        0.0
    }

    fn should_forward_request(&self, ctx: &ProtocolContext<'_>, packet: &Packet) -> bool {
        match (packet.geo, packet.sender_position) {
            (Some(geo), Some(sender)) => in_corridor(
                ctx.position(),
                sender,
                geo.position,
                geo.zone_radius,
                self.corridor_margin_m,
            ),
            // Without a known destination zone ROVER degenerates to AODV.
            _ => true,
        }
    }

    fn route_lifetime(&self, _metric: f64) -> SimDuration {
        self.route_lifetime
    }
}

/// The ROVER protocol type.
pub type Rover = OnDemandRouting<RoverPolicy>;

/// Creates a ROVER instance with default parameters.
#[must_use]
pub fn rover() -> Rover {
    Rover::new(RoverPolicy::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Action, ActionSink, TableLocationService};
    use vanet_mobility::{Vec2, VehicleKind, VehicleState};
    use vanet_net::NeighborTable;
    use vanet_sim::{NodeId, PacketIdAllocator, SimRng, SimTime};

    struct Harness {
        state: VehicleState,
        neighbors: NeighborTable,
        location: TableLocationService,
        rng: SimRng,
        ids: PacketIdAllocator,
        sink: ActionSink,
    }

    impl Harness {
        fn new(id: u32, pos: Vec2) -> Self {
            Harness {
                state: VehicleState::stationary(NodeId(id), VehicleKind::Car, pos),
                neighbors: NeighborTable::new(),
                location: TableLocationService::new(),
                rng: SimRng::new(1),
                ids: PacketIdAllocator::new(),
                sink: ActionSink::new(),
            }
        }

        fn ctx(&mut self, now: f64) -> ProtocolContext<'_> {
            ProtocolContext {
                node: self.state.id,
                now: SimTime::from_secs(now),
                state: &self.state,
                neighbors: (&self.neighbors).into(),
                range_m: 250.0,
                rsu_ids: &[],
                bus_ids: &[],
                location: &self.location,
                rng: &mut self.rng,
                packet_ids: &mut self.ids,
                actions: &mut self.sink,
            }
        }
    }

    #[test]
    fn corridor_membership() {
        let from = Vec2::new(0.0, 0.0);
        let dest = Vec2::new(2_000.0, 0.0);
        assert!(in_corridor(
            Vec2::new(1_000.0, 0.0),
            from,
            dest,
            250.0,
            500.0
        ));
        assert!(in_corridor(
            Vec2::new(1_000.0, 300.0),
            from,
            dest,
            250.0,
            500.0
        ));
        assert!(!in_corridor(
            Vec2::new(1_000.0, 2_000.0),
            from,
            dest,
            250.0,
            500.0
        ));
        assert!(!in_corridor(
            Vec2::new(-1_500.0, 0.0),
            from,
            dest,
            250.0,
            500.0
        ));
    }

    #[test]
    fn zone_originate_attaches_destination_zone() {
        let mut h = Harness::new(0, Vec2::ZERO);
        h.location
            .set(NodeId(9), Vec2::new(1_500.0, 0.0), Vec2::ZERO);
        let mut proto = Zone::new();
        let actions = {
            let mut ctx = h.ctx(1.0);
            proto.originate(&mut ctx, Packet::data(NodeId(0), NodeId(9), 64));
            ctx.take_actions()
        };
        match &actions[0] {
            Action::Transmit(p) => {
                assert!(p.geo.is_some());
                assert!(p.is_link_broadcast());
            }
            other => panic!("expected transmit, got {other:?}"),
        }
    }

    #[test]
    fn zone_nodes_outside_corridor_do_not_relay() {
        let dest_pos = Vec2::new(2_000.0, 0.0);
        let mut packet = Packet::data(NodeId(0), NodeId(9), 64);
        packet.geo = Some(GeoAddress {
            position: dest_pos,
            zone_radius: 250.0,
        });
        packet.sender_position = Some(Vec2::ZERO);

        // A node on the corridor relays.
        let mut on_path = Harness::new(3, Vec2::new(800.0, 100.0));
        let mut proto_a = Zone::new();
        let relayed = {
            let mut ctx = on_path.ctx(1.0);
            proto_a.on_packet(&mut ctx, &packet, false);
            ctx.take_actions()
        };
        assert!(matches!(relayed[0], Action::Transmit(_)));

        // A node far off the corridor drops.
        let mut off_path = Harness::new(4, Vec2::new(800.0, 3_000.0));
        let mut proto_b = Zone::new();
        let dropped = {
            let mut ctx = off_path.ctx(1.0);
            proto_b.on_packet(&mut ctx, &packet, false);
            ctx.take_actions()
        };
        assert!(matches!(
            dropped[0],
            Action::Drop {
                reason: DropReason::OutOfZone,
                ..
            }
        ));
    }

    #[test]
    fn zone_delivers_and_deduplicates() {
        let mut h = Harness::new(9, Vec2::new(2_000.0, 0.0));
        let mut proto = Zone::new();
        let mut packet = Packet::data(NodeId(0), NodeId(9), 64);
        packet.geo = Some(GeoAddress {
            position: Vec2::new(2_000.0, 0.0),
            zone_radius: 250.0,
        });
        packet.sender_position = Some(Vec2::new(1_800.0, 0.0));
        let first = {
            let mut ctx = h.ctx(1.0);
            proto.on_packet(&mut ctx, &packet, false);
            ctx.take_actions()
        };
        assert!(matches!(first[0], Action::Deliver(_)));
        let dup = {
            let mut ctx = h.ctx(1.1);
            proto.on_packet(&mut ctx, &packet, false);
            ctx.take_actions()
        };
        assert!(matches!(
            dup[0],
            Action::Drop {
                reason: DropReason::Duplicate,
                ..
            }
        ));
    }

    #[test]
    fn rover_policy_filters_by_corridor() {
        let policy = RoverPolicy::default();
        let mut inside = Harness::new(1, Vec2::new(900.0, 100.0));
        let mut rreq = Packet::broadcast(
            NodeId(0),
            PacketKind::RouteRequest {
                target: NodeId(9),
                request_id: 1,
                hop_count: 0,
                path: vec![NodeId(0)],
                metric: 0.0,
            },
            0,
        );
        rreq.geo = Some(GeoAddress {
            position: Vec2::new(2_000.0, 0.0),
            zone_radius: 250.0,
        });
        rreq.sender_position = Some(Vec2::ZERO);
        {
            let ctx = inside.ctx(1.0);
            assert!(policy.should_forward_request(&ctx, &rreq));
        }
        let mut outside = Harness::new(2, Vec2::new(900.0, 4_000.0));
        {
            let ctx = outside.ctx(1.0);
            assert!(!policy.should_forward_request(&ctx, &rreq));
        }
        // Without zone information ROVER behaves like AODV.
        rreq.geo = None;
        {
            let ctx = outside.ctx(1.0);
            assert!(policy.should_forward_request(&ctx, &rreq));
        }
    }

    #[test]
    fn identities() {
        assert_eq!(Zone::new().name(), "Zone");
        assert_eq!(Zone::new().category(), Category::Geographic);
        assert_eq!(rover().name(), "ROVER");
        assert_eq!(rover().category(), Category::Geographic);
    }
}
