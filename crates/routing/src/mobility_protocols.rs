//! Mobility-based routing protocols (Sec. IV): PBR, Taleb and Abedi.
//!
//! All three reuse the on-demand discovery skeleton; what changes is the path
//! metric and the forwarding filter:
//!
//! * **PBR** (Namboodiri & Gao): each link is scored by its *predicted
//!   lifetime* (the paper's Eq. 1–4 model evaluated on the piggybacked
//!   position/velocity of the transmitter); the path metric is the minimum
//!   link lifetime; the route's validity period equals its predicted lifetime
//!   and the source preemptively re-discovers shortly before expiry.
//! * **Taleb** et al.: vehicles are grouped by their velocity vectors; route
//!   requests are only relayed over links whose endpoints belong to the same
//!   velocity group (links between groups are assumed short-lived), and the
//!   most stable (longest-minimum-lifetime) path is selected.
//! * **Abedi** et al.: AODV enhanced with mobility parameters — next hops are
//!   scored by direction first, position second and speed third.

use crate::ondemand::{DiscoveryPolicy, OnDemandRouting};
use crate::protocol::{Category, ProtocolContext};
use vanet_links::direction::DirectionGroup;
use vanet_links::lifetime::link_lifetime_planar;
use vanet_mobility::geometry::distance;
use vanet_net::Packet;
use vanet_sim::SimDuration;

/// Predicted lifetime (seconds) of the link from the node that transmitted
/// `packet` to the node described by `ctx`, using the constant-velocity
/// planar model. Falls back to a pessimistic 1 s when the packet carries no
/// mobility information.
fn predicted_link_lifetime(ctx: &ProtocolContext<'_>, packet: &Packet) -> f64 {
    match (packet.sender_position, packet.sender_velocity) {
        (Some(pos), Some(vel)) => {
            let lt = link_lifetime_planar(ctx.position(), ctx.velocity(), pos, vel, ctx.range_m);
            if lt.is_finite() {
                lt.duration_s
            } else {
                3_600.0
            }
        }
        _ => 1.0,
    }
}

/// PBR: prediction-based routing on predicted link lifetimes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PbrPolicy {
    /// Cap applied to predicted route lifetimes (routes are refreshed at
    /// least this often even if the prediction says "forever").
    pub max_route_lifetime: SimDuration,
    /// Beacon interval for neighbour mobility awareness.
    pub beacon_interval: SimDuration,
}

impl Default for PbrPolicy {
    fn default() -> Self {
        PbrPolicy {
            max_route_lifetime: SimDuration::from_secs(60.0),
            beacon_interval: SimDuration::from_secs(1.0),
        }
    }
}

impl DiscoveryPolicy for PbrPolicy {
    fn name(&self) -> &'static str {
        "PBR"
    }

    fn category(&self) -> Category {
        Category::Mobility
    }

    fn beacon_interval(&self) -> Option<SimDuration> {
        Some(self.beacon_interval)
    }

    fn link_metric(&self, ctx: &ProtocolContext<'_>, packet: &Packet) -> f64 {
        predicted_link_lifetime(ctx, packet)
    }

    fn route_lifetime(&self, metric: f64) -> SimDuration {
        // The route is valid for its predicted path lifetime (bounded).
        SimDuration::from_secs_saturating(metric).min(self.max_route_lifetime)
    }

    fn preemptive_rebuild(&self) -> bool {
        true
    }
}

/// The PBR protocol type.
pub type Pbr = OnDemandRouting<PbrPolicy>;

/// Creates a PBR instance with default parameters.
#[must_use]
pub fn pbr() -> Pbr {
    Pbr::new(PbrPolicy::default())
}

/// Taleb et al.: velocity-vector grouping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TalebPolicy {
    /// Route lifetime cap.
    pub max_route_lifetime: SimDuration,
    /// Beacon interval.
    pub beacon_interval: SimDuration,
    /// Whether cross-group relaying is permitted when unavoidable
    /// (`false` reproduces the strict grouping of the original proposal).
    pub allow_cross_group: bool,
}

impl Default for TalebPolicy {
    fn default() -> Self {
        TalebPolicy {
            max_route_lifetime: SimDuration::from_secs(30.0),
            beacon_interval: SimDuration::from_secs(1.0),
            allow_cross_group: false,
        }
    }
}

impl DiscoveryPolicy for TalebPolicy {
    fn name(&self) -> &'static str {
        "Taleb"
    }

    fn category(&self) -> Category {
        Category::Mobility
    }

    fn beacon_interval(&self) -> Option<SimDuration> {
        Some(self.beacon_interval)
    }

    fn link_metric(&self, ctx: &ProtocolContext<'_>, packet: &Packet) -> f64 {
        let lifetime = predicted_link_lifetime(ctx, packet);
        let same_group = packet
            .sender_velocity
            .map(|v| DirectionGroup::same_group(v, ctx.velocity()))
            .unwrap_or(false);
        // Links within the same velocity group are trusted at face value;
        // cross-group links are heavily discounted (they are the ones that
        // break when traffic motions diverge).
        if same_group {
            lifetime
        } else {
            lifetime * 0.2
        }
    }

    fn should_forward_request(&self, ctx: &ProtocolContext<'_>, packet: &Packet) -> bool {
        if self.allow_cross_group {
            return true;
        }
        match packet.sender_velocity {
            Some(v) => DirectionGroup::same_group(v, ctx.velocity()),
            None => true,
        }
    }

    fn route_lifetime(&self, metric: f64) -> SimDuration {
        SimDuration::from_secs_saturating(metric).min(self.max_route_lifetime)
    }

    fn preemptive_rebuild(&self) -> bool {
        true
    }
}

/// The Taleb protocol type.
pub type Taleb = OnDemandRouting<TalebPolicy>;

/// Creates a Taleb instance with default parameters.
#[must_use]
pub fn taleb() -> Taleb {
    Taleb::new(TalebPolicy::default())
}

/// Abedi et al.: AODV with mobility-parameter next-hop scoring
/// (direction > position > speed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbediPolicy {
    /// Fixed route lifetime (as in AODV).
    pub route_lifetime: SimDuration,
    /// Beacon interval.
    pub beacon_interval: SimDuration,
    /// Weight of the direction term.
    pub direction_weight: f64,
    /// Weight of the position (progress) term.
    pub position_weight: f64,
    /// Weight of the speed-similarity term.
    pub speed_weight: f64,
}

impl Default for AbediPolicy {
    fn default() -> Self {
        AbediPolicy {
            route_lifetime: SimDuration::from_secs(10.0),
            beacon_interval: SimDuration::from_secs(1.0),
            direction_weight: 100.0,
            position_weight: 10.0,
            speed_weight: 1.0,
        }
    }
}

impl DiscoveryPolicy for AbediPolicy {
    fn name(&self) -> &'static str {
        "Abedi"
    }

    fn category(&self) -> Category {
        Category::Mobility
    }

    fn beacon_interval(&self) -> Option<SimDuration> {
        Some(self.beacon_interval)
    }

    fn link_metric(&self, ctx: &ProtocolContext<'_>, packet: &Packet) -> f64 {
        let mut score = 0.0;
        if let Some(v) = packet.sender_velocity {
            // Direction: most important — same direction as this node.
            if v.dot(ctx.velocity()) > 0.0 || v.norm() == 0.0 || ctx.state.speed() == 0.0 {
                score += self.direction_weight;
            }
            // Speed similarity: small relative speed is better.
            let rel = (v - ctx.velocity()).norm();
            score += self.speed_weight * (30.0 - rel).max(0.0) / 30.0;
        }
        // Position: progress towards the destination zone if known.
        if let (Some(sender_pos), Some(geo)) = (packet.sender_position, packet.geo) {
            let before = distance(sender_pos, geo.position);
            let after = distance(ctx.position(), geo.position);
            if after < before {
                score += self.position_weight * ((before - after) / ctx.range_m).clamp(0.0, 1.0);
            }
        }
        score
    }

    fn route_lifetime(&self, _metric: f64) -> SimDuration {
        self.route_lifetime
    }
}

/// The Abedi protocol type.
pub type Abedi = OnDemandRouting<AbediPolicy>;

/// Creates an Abedi instance with default parameters.
#[must_use]
pub fn abedi() -> Abedi {
    Abedi::new(AbediPolicy::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{NoLocationService, RoutingProtocol};
    use vanet_mobility::{Vec2, VehicleKind, VehicleState};
    use vanet_net::{GeoAddress, NeighborTable, PacketKind};
    use vanet_sim::{NodeId, PacketIdAllocator, SimRng, SimTime};

    fn moving_state(id: u32, x: f64, vx: f64) -> VehicleState {
        let mut s = VehicleState::stationary(NodeId(id), VehicleKind::Car, Vec2::new(x, 0.0));
        s.velocity = Vec2::new(vx, 0.0);
        s.desired_speed = vx.abs();
        s
    }

    fn rreq_with_mobility(from: u32, pos: Vec2, vel: Vec2) -> Packet {
        let mut p = Packet::broadcast(
            NodeId(from),
            PacketKind::RouteRequest {
                target: NodeId(99),
                request_id: 1,
                hop_count: 0,
                path: vec![NodeId(from)],
                metric: f64::INFINITY,
            },
            0,
        );
        p.sender_position = Some(pos);
        p.sender_velocity = Some(vel);
        p
    }

    fn ctx_for<'a>(
        state: &'a VehicleState,
        neighbors: &'a NeighborTable,
        rng: &'a mut SimRng,
        ids: &'a mut PacketIdAllocator,
        sink: &'a mut crate::protocol::ActionSink,
    ) -> ProtocolContext<'a> {
        ProtocolContext {
            node: state.id,
            now: SimTime::from_secs(1.0),
            state,
            neighbors: neighbors.into(),
            range_m: 250.0,
            rsu_ids: &[],
            bus_ids: &[],
            location: &NoLocationService,
            rng,
            packet_ids: ids,
            actions: sink,
        }
    }

    #[test]
    fn pbr_scores_stable_links_higher() {
        let policy = PbrPolicy::default();
        let state = moving_state(1, 100.0, 30.0);
        let neighbors = NeighborTable::new();
        let mut rng = SimRng::new(1);
        let mut ids = PacketIdAllocator::new();
        let mut sink = crate::protocol::ActionSink::new();
        let ctx = ctx_for(&state, &neighbors, &mut rng, &mut ids, &mut sink);
        // Same-direction neighbour just behind: long lifetime.
        let same = rreq_with_mobility(2, Vec2::new(50.0, 0.0), Vec2::new(29.0, 0.0));
        // Opposite-direction neighbour: short lifetime.
        let opposite = rreq_with_mobility(3, Vec2::new(50.0, 4.0), Vec2::new(-30.0, 0.0));
        let m_same = policy.link_metric(&ctx, &same);
        let m_opp = policy.link_metric(&ctx, &opposite);
        assert!(
            m_same > 10.0 * m_opp,
            "same-direction link must score much higher"
        );
        // Route lifetime follows the metric but is capped.
        assert_eq!(policy.route_lifetime(1_000.0), SimDuration::from_secs(60.0));
        assert!(policy.route_lifetime(5.0) < SimDuration::from_secs(6.0));
        assert!(policy.preemptive_rebuild());
    }

    #[test]
    fn pbr_without_mobility_information_is_pessimistic() {
        let policy = PbrPolicy::default();
        let state = moving_state(1, 100.0, 30.0);
        let neighbors = NeighborTable::new();
        let mut rng = SimRng::new(1);
        let mut ids = PacketIdAllocator::new();
        let mut sink = crate::protocol::ActionSink::new();
        let ctx = ctx_for(&state, &neighbors, &mut rng, &mut ids, &mut sink);
        let mut bare = rreq_with_mobility(2, Vec2::ZERO, Vec2::ZERO);
        bare.sender_position = None;
        bare.sender_velocity = None;
        assert_eq!(policy.link_metric(&ctx, &bare), 1.0);
    }

    #[test]
    fn taleb_filters_cross_group_forwarding() {
        let policy = TalebPolicy::default();
        let state = moving_state(1, 100.0, 30.0);
        let neighbors = NeighborTable::new();
        let mut rng = SimRng::new(1);
        let mut ids = PacketIdAllocator::new();
        let mut sink = crate::protocol::ActionSink::new();
        let ctx = ctx_for(&state, &neighbors, &mut rng, &mut ids, &mut sink);
        let same_group = rreq_with_mobility(2, Vec2::new(50.0, 0.0), Vec2::new(25.0, 0.0));
        let other_group = rreq_with_mobility(3, Vec2::new(50.0, 4.0), Vec2::new(-25.0, 0.0));
        assert!(policy.should_forward_request(&ctx, &same_group));
        assert!(!policy.should_forward_request(&ctx, &other_group));
        // Cross-group links are discounted even when relayed.
        assert!(policy.link_metric(&ctx, &same_group) > policy.link_metric(&ctx, &other_group));
        // Permissive variant forwards everything.
        let permissive = TalebPolicy {
            allow_cross_group: true,
            ..TalebPolicy::default()
        };
        assert!(permissive.should_forward_request(&ctx, &other_group));
    }

    #[test]
    fn abedi_weights_direction_over_position_over_speed() {
        let policy = AbediPolicy::default();
        let state = moving_state(1, 100.0, 30.0);
        let neighbors = NeighborTable::new();
        let mut rng = SimRng::new(1);
        let mut ids = PacketIdAllocator::new();
        let mut sink = crate::protocol::ActionSink::new();
        let ctx = ctx_for(&state, &neighbors, &mut rng, &mut ids, &mut sink);

        let mut same_dir = rreq_with_mobility(2, Vec2::new(200.0, 0.0), Vec2::new(28.0, 0.0));
        same_dir.geo = Some(GeoAddress {
            position: Vec2::new(1_000.0, 0.0),
            zone_radius: 250.0,
        });
        let mut opposite = rreq_with_mobility(3, Vec2::new(200.0, 0.0), Vec2::new(-28.0, 0.0));
        opposite.geo = same_dir.geo;

        let s_same = policy.link_metric(&ctx, &same_dir);
        let s_opp = policy.link_metric(&ctx, &opposite);
        assert!(
            s_same - s_opp >= policy.direction_weight * 0.9,
            "direction term must dominate: {s_same} vs {s_opp}"
        );
    }

    #[test]
    fn protocol_identities() {
        assert_eq!(pbr().name(), "PBR");
        assert_eq!(pbr().category(), Category::Mobility);
        assert_eq!(taleb().name(), "Taleb");
        assert_eq!(taleb().category(), Category::Mobility);
        assert_eq!(abedi().name(), "Abedi");
        assert_eq!(abedi().category(), Category::Mobility);
        assert!(pbr().beacon_interval().is_some());
        assert!(taleb().beacon_interval().is_some());
        assert!(abedi().beacon_interval().is_some());
    }
}
