//! Connectivity-based routing: pure flooding and Biswas-style flooding with
//! implicit acknowledgements (Sec. III).

use crate::common::SeenCache;
use crate::protocol::{Category, DropReason, ProtocolContext, RoutingProtocol};
use std::collections::BTreeMap;
use vanet_net::Packet;
use vanet_sim::{PacketId, SimDuration, SimTime};

/// Pure flooding: every node rebroadcasts every packet it has not seen before
/// until the destination is reached (or every node holds a copy).
///
/// Simple and — in low-density, fast-changing topologies — surprisingly
/// reliable, but it floods the channel: the broadcast-storm behaviour measured
/// in the Fig. 2 / Table I experiments.
#[derive(Debug)]
pub struct Flooding {
    seen: SeenCache,
}

impl Flooding {
    /// Creates a flooding protocol instance.
    #[must_use]
    pub fn new() -> Self {
        Flooding {
            seen: SeenCache::new(60.0),
        }
    }
}

impl Default for Flooding {
    fn default() -> Self {
        Self::new()
    }
}

impl RoutingProtocol for Flooding {
    fn name(&self) -> &'static str {
        "Flooding"
    }

    fn category(&self) -> Category {
        Category::Connectivity
    }

    fn originate(&mut self, ctx: &mut ProtocolContext<'_>, packet: Packet) {
        self.seen
            .check_and_insert(packet.source, packet.id.value(), ctx.now);
        let mut copy = ctx.stamp(packet);
        copy.next_hop = None;
        ctx.transmit(copy);
    }

    fn on_packet(&mut self, ctx: &mut ProtocolContext<'_>, packet: &Packet, _overheard: bool) {
        if self
            .seen
            .check_and_insert(packet.source, packet.id.value(), ctx.now)
        {
            ctx.drop_packet(packet, DropReason::Duplicate);
            return;
        }
        if packet.destination == Some(ctx.node) {
            ctx.deliver(packet);
            return;
        }
        if !packet.ttl_allows_forwarding() {
            ctx.drop_packet(packet, DropReason::TtlExpired);
            return;
        }
        let fwd = ctx.stamp(packet.forwarded_by(ctx.node, None));
        ctx.transmit(fwd);
    }

    fn on_tick(&mut self, _ctx: &mut ProtocolContext<'_>) {}
}

/// Biswas-style flooding with implicit acknowledgements: after rebroadcasting
/// a packet the vehicle listens for the same packet from a vehicle *behind*
/// it; hearing it counts as an acknowledgement that the flood is progressing.
/// If no acknowledgement is overheard the packet is rebroadcast periodically,
/// up to a retry limit.
#[derive(Debug)]
pub struct Biswas {
    seen: SeenCache,
    /// Packets awaiting implicit acknowledgement: id → (packet, deadline, retries left).
    awaiting_ack: BTreeMap<PacketId, (Packet, SimTime, u8)>,
    retry_interval: SimDuration,
    max_retries: u8,
}

impl Biswas {
    /// Creates a Biswas flooding instance with the default retry policy
    /// (1 s retry interval, 3 retries).
    #[must_use]
    pub fn new() -> Self {
        Biswas {
            seen: SeenCache::new(60.0),
            awaiting_ack: BTreeMap::new(),
            retry_interval: SimDuration::from_secs(1.0),
            max_retries: 3,
        }
    }

    /// Number of packets currently awaiting an implicit acknowledgement.
    #[must_use]
    pub fn pending_acks(&self) -> usize {
        self.awaiting_ack.len()
    }

    fn rebroadcast_and_track(&mut self, ctx: &mut ProtocolContext<'_>, packet: &Packet) {
        let fwd = ctx.stamp(packet.forwarded_by(ctx.node, None));
        self.awaiting_ack.insert(
            fwd.id,
            (fwd.clone(), ctx.now + self.retry_interval, self.max_retries),
        );
        ctx.transmit(fwd);
    }
}

impl Default for Biswas {
    fn default() -> Self {
        Self::new()
    }
}

impl RoutingProtocol for Biswas {
    fn name(&self) -> &'static str {
        "Biswas"
    }

    fn category(&self) -> Category {
        Category::Connectivity
    }

    fn originate(&mut self, ctx: &mut ProtocolContext<'_>, packet: Packet) {
        self.seen
            .check_and_insert(packet.source, packet.id.value(), ctx.now);
        let mut copy = ctx.stamp(packet);
        copy.next_hop = None;
        self.awaiting_ack.insert(
            copy.id,
            (
                copy.clone(),
                ctx.now + self.retry_interval,
                self.max_retries,
            ),
        );
        ctx.transmit(copy);
    }

    fn on_packet(&mut self, ctx: &mut ProtocolContext<'_>, packet: &Packet, _overheard: bool) {
        // Hearing any copy of a packet we are tracking counts as the implicit
        // acknowledgement that somebody downstream got it.
        if packet.prev_hop != ctx.node {
            self.awaiting_ack.remove(&packet.id);
        }
        if self
            .seen
            .check_and_insert(packet.source, packet.id.value(), ctx.now)
        {
            ctx.drop_packet(packet, DropReason::Duplicate);
            return;
        }
        if packet.destination == Some(ctx.node) {
            ctx.deliver(packet);
            return;
        }
        if !packet.ttl_allows_forwarding() {
            ctx.drop_packet(packet, DropReason::TtlExpired);
            return;
        }
        self.rebroadcast_and_track(ctx, packet);
    }

    fn on_tick(&mut self, ctx: &mut ProtocolContext<'_>) {
        let now = ctx.now;
        let retry_interval = self.retry_interval;
        let mut to_retry = Vec::new();
        let mut to_drop = Vec::new();
        for (id, (packet, deadline, retries)) in &mut self.awaiting_ack {
            if *deadline <= now {
                if *retries == 0 {
                    to_drop.push(*id);
                } else {
                    *retries -= 1;
                    *deadline = now + retry_interval;
                    to_retry.push(packet.clone());
                }
            }
        }
        for id in to_drop {
            self.awaiting_ack.remove(&id);
        }
        for packet in to_retry {
            let stamped = ctx.stamp(packet);
            ctx.transmit(stamped);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Action, ActionSink, NoLocationService};
    use vanet_mobility::{VehicleKind, VehicleState};
    use vanet_net::{NeighborTable, PacketKind};
    use vanet_sim::NodeId;
    use vanet_sim::{PacketIdAllocator, SimRng};

    fn make_ctx_parts(
        node: u32,
    ) -> (
        VehicleState,
        NeighborTable,
        SimRng,
        PacketIdAllocator,
        ActionSink,
    ) {
        (
            VehicleState::stationary(NodeId(node), VehicleKind::Car, vanet_mobility::Vec2::ZERO),
            NeighborTable::new(),
            SimRng::new(1),
            PacketIdAllocator::new(),
            ActionSink::new(),
        )
    }

    macro_rules! ctx {
        ($node:expr, $state:expr, $nbrs:expr, $rng:expr, $ids:expr, $sink:expr) => {
            ProtocolContext {
                node: NodeId($node),
                now: SimTime::ZERO,
                state: &$state,
                neighbors: (&$nbrs).into(),
                range_m: 250.0,
                rsu_ids: &[],
                bus_ids: &[],
                location: &NoLocationService,
                rng: &mut $rng,
                packet_ids: &mut $ids,
                actions: &mut $sink,
            }
        };
    }

    fn data_packet(id: u64, src: u32, dst: u32) -> Packet {
        let mut p = Packet::data(NodeId(src), NodeId(dst), 100);
        p.id = PacketId(id);
        p
    }

    #[test]
    fn flooding_rebroadcasts_new_packets_once() {
        let mut proto = Flooding::new();
        let (state, nbrs, mut rng, mut ids, mut sink) = make_ctx_parts(2);
        let mut ctx = ctx!(2, state, nbrs, rng, ids, sink);
        let pkt = data_packet(1, 0, 9);
        proto.on_packet(&mut ctx, &pkt, false);
        let first = ctx.take_actions();
        assert!(matches!(first[0], Action::Transmit(_)));
        proto.on_packet(&mut ctx, &pkt, false);
        let second = ctx.take_actions();
        assert!(matches!(
            second[0],
            Action::Drop {
                reason: DropReason::Duplicate,
                ..
            }
        ));
    }

    #[test]
    fn flooding_delivers_at_destination() {
        let mut proto = Flooding::new();
        let (state, nbrs, mut rng, mut ids, mut sink) = make_ctx_parts(9);
        let mut ctx = ctx!(9, state, nbrs, rng, ids, sink);
        proto.on_packet(&mut ctx, &data_packet(1, 0, 9), false);
        let actions = ctx.take_actions();
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0], Action::Deliver(_)));
    }

    #[test]
    fn flooding_respects_ttl() {
        let mut proto = Flooding::new();
        let (state, nbrs, mut rng, mut ids, mut sink) = make_ctx_parts(2);
        let mut ctx = ctx!(2, state, nbrs, rng, ids, sink);
        let mut pkt = data_packet(1, 0, 9);
        pkt.ttl = 0;
        proto.on_packet(&mut ctx, &pkt, false);
        let actions = ctx.take_actions();
        assert!(matches!(
            actions[0],
            Action::Drop {
                reason: DropReason::TtlExpired,
                ..
            }
        ));
    }

    #[test]
    fn flooding_originate_broadcasts() {
        let mut proto = Flooding::new();
        let (state, nbrs, mut rng, mut ids, mut sink) = make_ctx_parts(0);
        let mut ctx = ctx!(0, state, nbrs, rng, ids, sink);
        proto.originate(&mut ctx, data_packet(1, 0, 9));
        let actions = ctx.take_actions();
        match &actions[0] {
            Action::Transmit(p) => {
                assert!(p.is_link_broadcast());
                assert_eq!(p.kind, PacketKind::Data);
            }
            other => panic!("expected transmit, got {other:?}"),
        }
    }

    #[test]
    fn biswas_retries_until_ack_overheard() {
        let mut proto = Biswas::new();
        let (state, nbrs, mut rng, mut ids, mut sink) = make_ctx_parts(2);
        let pkt = data_packet(1, 0, 9);
        let actions = {
            let mut ctx = ctx!(2, state, nbrs, rng, ids, sink);
            proto.on_packet(&mut ctx, &pkt, false);
            ctx.take_actions()
        };
        assert!(matches!(actions[0], Action::Transmit(_)));
        assert_eq!(proto.pending_acks(), 1);

        // Tick before the deadline: nothing happens.
        let none = {
            let mut ctx = ctx!(2, state, nbrs, rng, ids, sink);
            proto.on_tick(&mut ctx);
            ctx.take_actions()
        };
        assert!(none.is_empty());

        // Tick after the deadline: the packet is retransmitted.
        let retries = {
            let mut later = ctx!(2, state, nbrs, rng, ids, sink);
            later.now = SimTime::from_secs(2.0);
            proto.on_tick(&mut later);
            later.take_actions()
        };
        assert_eq!(retries.len(), 1);
        assert!(matches!(retries[0], Action::Transmit(_)));

        // Overhearing a copy from another node clears the pending entry.
        let mut overheard_copy = pkt.forwarded_by(NodeId(3), None);
        overheard_copy.id = actions
            .iter()
            .find_map(|a| match a {
                Action::Transmit(p) => Some(p.id),
                _ => None,
            })
            .unwrap();
        let mut again = ctx!(2, state, nbrs, rng, ids, sink);
        again.now = SimTime::from_secs(2.5);
        proto.on_packet(&mut again, &overheard_copy, true);
        assert_eq!(proto.pending_acks(), 0);
    }

    #[test]
    fn biswas_gives_up_after_max_retries() {
        let mut proto = Biswas::new();
        let (state, nbrs, mut rng, mut ids, mut sink) = make_ctx_parts(0);
        {
            let mut ctx = ctx!(0, state, nbrs, rng, ids, sink);
            proto.originate(&mut ctx, data_packet(1, 0, 9));
            ctx.take_actions();
        }
        assert_eq!(proto.pending_acks(), 1);
        let mut transmissions = 0;
        for i in 1..12 {
            let mut ctx = ctx!(0, state, nbrs, rng, ids, sink);
            ctx.now = SimTime::from_secs(i as f64 * 1.5);
            proto.on_tick(&mut ctx);
            transmissions += ctx.take_actions().len();
        }
        assert_eq!(transmissions, 3, "exactly max_retries retransmissions");
        assert_eq!(proto.pending_acks(), 0);
    }

    #[test]
    fn names_and_categories() {
        assert_eq!(Flooding::new().name(), "Flooding");
        assert_eq!(Flooding::new().category(), Category::Connectivity);
        assert_eq!(Biswas::new().name(), "Biswas");
        assert_eq!(Biswas::new().category(), Category::Connectivity);
        assert!(Flooding::new().beacon_interval().is_none());
    }
}
