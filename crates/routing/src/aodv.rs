//! AODV: Ad hoc On-demand Distance Vector routing (Perkins et al., RFC 3561),
//! the canonical connectivity-based protocol the paper uses as the baseline
//! that Abedi and DisjLi extend.
//!
//! Implemented as an [`OnDemandRouting`] instance whose policy ranks paths by
//! hop count alone and grants every discovered route a fixed active-route
//! timeout.

use crate::ondemand::{DiscoveryPolicy, OnDemandRouting};
use crate::protocol::{Category, ProtocolContext};
use vanet_net::Packet;
use vanet_sim::SimDuration;

/// The AODV discovery policy: shortest path (fewest hops), fixed route
/// lifetime, HELLO-based link sensing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AodvPolicy {
    /// Active-route timeout.
    pub route_lifetime: SimDuration,
    /// HELLO interval used for link sensing.
    pub hello_interval: SimDuration,
}

impl Default for AodvPolicy {
    fn default() -> Self {
        AodvPolicy {
            route_lifetime: SimDuration::from_secs(10.0),
            hello_interval: SimDuration::from_secs(1.0),
        }
    }
}

impl DiscoveryPolicy for AodvPolicy {
    fn name(&self) -> &'static str {
        "AODV"
    }

    fn category(&self) -> Category {
        Category::Connectivity
    }

    fn beacon_interval(&self) -> Option<SimDuration> {
        Some(self.hello_interval)
    }

    fn link_metric(&self, _ctx: &ProtocolContext<'_>, _packet: &Packet) -> f64 {
        // Every link costs one hop; the path metric is the negated hop count
        // so that "higher is better" holds.
        -1.0
    }

    fn combine(&self, path_metric: f64, link_metric: f64) -> f64 {
        path_metric + link_metric
    }

    fn initial_metric(&self) -> f64 {
        0.0
    }

    fn route_lifetime(&self, _metric: f64) -> SimDuration {
        self.route_lifetime
    }
}

/// The AODV protocol type.
pub type Aodv = OnDemandRouting<AodvPolicy>;

/// Creates an AODV instance with default parameters.
#[must_use]
pub fn aodv() -> Aodv {
    Aodv::new(AodvPolicy::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::RoutingProtocol;

    #[test]
    fn policy_prefers_fewer_hops() {
        let p = AodvPolicy::default();
        let two_hops = p.combine(p.combine(p.initial_metric(), -1.0), -1.0);
        let three_hops = p.combine(two_hops, -1.0);
        assert!(p.better(two_hops, three_hops));
        assert!(!p.better(three_hops, two_hops));
    }

    #[test]
    fn protocol_identity() {
        let proto = aodv();
        assert_eq!(proto.name(), "AODV");
        assert_eq!(proto.category(), Category::Connectivity);
        assert_eq!(proto.beacon_interval(), Some(SimDuration::from_secs(1.0)));
    }

    #[test]
    fn route_lifetime_is_fixed() {
        let p = AodvPolicy::default();
        assert_eq!(p.route_lifetime(-3.0), SimDuration::from_secs(10.0));
        assert_eq!(p.route_lifetime(-30.0), SimDuration::from_secs(10.0));
        assert!(!p.preemptive_rebuild());
    }
}
