//! Machinery shared by several protocols: routing tables, duplicate caches
//! and pending-packet buffers.

use std::collections::{BTreeMap, VecDeque};
use vanet_net::Packet;
use vanet_sim::{NodeId, SeqNo, SimDuration, SimTime};

/// One routing-table entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteEntry {
    /// The destination this entry routes to.
    pub destination: NodeId,
    /// The neighbour to forward to.
    pub next_hop: NodeId,
    /// Number of hops to the destination.
    pub hops: u32,
    /// Destination sequence number (freshness).
    pub seq: SeqNo,
    /// Protocol-specific route quality (higher is better).
    pub metric: f64,
    /// When the entry stops being valid.
    pub expires_at: SimTime,
}

/// A destination-indexed routing table with expiry.
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    entries: BTreeMap<NodeId, RouteEntry>,
}

impl RoutingTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the valid (non-expired) route to `dest`, if any.
    #[must_use]
    pub fn route(&self, dest: NodeId, now: SimTime) -> Option<&RouteEntry> {
        self.entries.get(&dest).filter(|e| e.expires_at >= now)
    }

    /// Returns the route regardless of expiry.
    #[must_use]
    pub fn route_even_expired(&self, dest: NodeId) -> Option<&RouteEntry> {
        self.entries.get(&dest)
    }

    /// Inserts `entry` if it is fresher (higher seq) or equally fresh with a
    /// better metric / fewer hops than the existing one. Returns whether the
    /// table changed.
    pub fn upsert(&mut self, entry: RouteEntry) -> bool {
        match self.entries.get(&entry.destination) {
            Some(existing) => {
                let fresher = entry.seq.is_fresher_than(existing.seq);
                let same_seq_better = entry.seq == existing.seq
                    && (entry.metric > existing.metric
                        || (entry.metric == existing.metric && entry.hops < existing.hops));
                let expired =
                    existing.expires_at < entry.expires_at && existing.expires_at == SimTime::ZERO;
                if fresher || same_seq_better || expired {
                    self.entries.insert(entry.destination, entry);
                    true
                } else {
                    false
                }
            }
            None => {
                self.entries.insert(entry.destination, entry);
                true
            }
        }
    }

    /// Unconditionally replaces the entry for its destination.
    pub fn force_insert(&mut self, entry: RouteEntry) {
        self.entries.insert(entry.destination, entry);
    }

    /// Removes the route to `dest`.
    pub fn remove(&mut self, dest: NodeId) -> Option<RouteEntry> {
        self.entries.remove(&dest)
    }

    /// Removes every route whose next hop is `neighbor`, returning the
    /// affected destinations (for RERR generation).
    pub fn invalidate_next_hop(&mut self, neighbor: NodeId) -> Vec<NodeId> {
        let affected: Vec<NodeId> = self
            .entries
            .values()
            .filter(|e| e.next_hop == neighbor)
            .map(|e| e.destination)
            .collect();
        for d in &affected {
            self.entries.remove(d);
        }
        affected
    }

    /// Number of entries (including expired ones not yet purged).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = &RouteEntry> {
        self.entries.values()
    }
}

/// A duplicate-suppression cache keyed by `(originator, identifier)` pairs,
/// with time-based eviction. Used for RREQ ids, flooded packet ids and probe
/// ids.
#[derive(Debug, Clone, Default)]
pub struct SeenCache {
    seen: BTreeMap<(NodeId, u64), SimTime>,
    horizon: f64,
}

impl SeenCache {
    /// Creates a cache that remembers entries for `horizon_s` seconds.
    #[must_use]
    pub fn new(horizon_s: f64) -> Self {
        SeenCache {
            seen: BTreeMap::new(),
            horizon: horizon_s.max(0.0),
        }
    }

    /// Records `(origin, id)` at `now`; returns `true` if it was *already*
    /// present (i.e. the packet is a duplicate).
    pub fn check_and_insert(&mut self, origin: NodeId, id: u64, now: SimTime) -> bool {
        self.evict(now);
        self.seen.insert((origin, id), now).is_some()
    }

    /// Whether `(origin, id)` has been seen (without inserting).
    #[must_use]
    pub fn contains(&self, origin: NodeId, id: u64) -> bool {
        self.seen.contains_key(&(origin, id))
    }

    fn evict(&mut self, now: SimTime) {
        let horizon = self.horizon;
        self.seen
            .retain(|_, t| now.saturating_since(*t).as_secs() <= horizon);
    }

    /// Number of remembered entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

/// Packets buffered while a route is being discovered, per destination.
#[derive(Debug, Clone, Default)]
pub struct PendingBuffer {
    queues: BTreeMap<NodeId, VecDeque<(SimTime, Packet)>>,
    capacity_per_destination: usize,
    max_age: SimDuration,
}

impl PendingBuffer {
    /// Creates a buffer holding at most `capacity` packets per destination,
    /// each for at most `max_age`.
    #[must_use]
    pub fn new(capacity: usize, max_age: SimDuration) -> Self {
        PendingBuffer {
            queues: BTreeMap::new(),
            capacity_per_destination: capacity.max(1),
            max_age,
        }
    }

    /// Buffers a packet for `dest`. Returns the packet that had to be evicted
    /// if the queue was full (the oldest one).
    pub fn push(&mut self, dest: NodeId, packet: Packet, now: SimTime) -> Option<Packet> {
        let q = self.queues.entry(dest).or_default();
        q.push_back((now, packet));
        if q.len() > self.capacity_per_destination {
            q.pop_front().map(|(_, p)| p)
        } else {
            None
        }
    }

    /// Removes and returns every buffered packet for `dest` that has not
    /// exceeded its maximum age.
    pub fn take(&mut self, dest: NodeId, now: SimTime) -> Vec<Packet> {
        let Some(q) = self.queues.remove(&dest) else {
            return Vec::new();
        };
        q.into_iter()
            .filter(|(t, _)| now.saturating_since(*t) <= self.max_age)
            .map(|(_, p)| p)
            .collect()
    }

    /// Removes and returns the packets for `dest` that are too old, leaving
    /// fresh ones buffered.
    pub fn expire(&mut self, now: SimTime) -> Vec<Packet> {
        let max_age = self.max_age;
        let mut expired = Vec::new();
        for q in self.queues.values_mut() {
            while let Some((t, _)) = q.front() {
                if now.saturating_since(*t) > max_age {
                    expired.push(q.pop_front().expect("front checked").1);
                } else {
                    break;
                }
            }
        }
        self.queues.retain(|_, q| !q.is_empty());
        expired
    }

    /// Whether packets are waiting for `dest`.
    #[must_use]
    pub fn has_pending(&self, dest: NodeId) -> bool {
        self.queues.get(&dest).is_some_and(|q| !q.is_empty())
    }

    /// Total number of buffered packets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }

    /// Whether nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Destinations that currently have buffered packets.
    #[must_use]
    pub fn destinations(&self) -> Vec<NodeId> {
        self.queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(d, _)| *d)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(dest: u32, next: u32, hops: u32, seq: u64, metric: f64, exp: f64) -> RouteEntry {
        RouteEntry {
            destination: NodeId(dest),
            next_hop: NodeId(next),
            hops,
            seq: SeqNo(seq),
            metric,
            expires_at: SimTime::from_secs(exp),
        }
    }

    #[test]
    fn routing_table_upsert_prefers_fresher_seq() {
        let mut t = RoutingTable::new();
        assert!(t.upsert(entry(5, 1, 3, 1, 0.0, 10.0)));
        assert!(
            !t.upsert(entry(5, 2, 2, 1, 0.0, 10.0))
                || t.route_even_expired(NodeId(5)).unwrap().hops == 2
        );
        assert!(
            t.upsert(entry(5, 3, 7, 2, 0.0, 10.0)),
            "fresher seq always wins"
        );
        assert_eq!(t.route_even_expired(NodeId(5)).unwrap().next_hop, NodeId(3));
    }

    #[test]
    fn routing_table_same_seq_prefers_better_metric_or_fewer_hops() {
        let mut t = RoutingTable::new();
        t.upsert(entry(5, 1, 4, 1, 10.0, 10.0));
        assert!(
            t.upsert(entry(5, 2, 4, 1, 20.0, 10.0)),
            "better metric replaces"
        );
        assert!(
            t.upsert(entry(5, 3, 2, 1, 20.0, 10.0)),
            "fewer hops replaces"
        );
        assert!(!t.upsert(entry(5, 4, 5, 1, 20.0, 10.0)), "worse does not");
        assert_eq!(t.route_even_expired(NodeId(5)).unwrap().next_hop, NodeId(3));
    }

    #[test]
    fn routing_table_expiry() {
        let mut t = RoutingTable::new();
        t.upsert(entry(5, 1, 3, 1, 0.0, 10.0));
        assert!(t.route(NodeId(5), SimTime::from_secs(5.0)).is_some());
        assert!(t.route(NodeId(5), SimTime::from_secs(15.0)).is_none());
        assert!(t.route_even_expired(NodeId(5)).is_some());
    }

    #[test]
    fn invalidate_next_hop_returns_affected_destinations() {
        let mut t = RoutingTable::new();
        t.upsert(entry(5, 1, 3, 1, 0.0, 10.0));
        t.upsert(entry(6, 1, 2, 1, 0.0, 10.0));
        t.upsert(entry(7, 2, 2, 1, 0.0, 10.0));
        let mut affected = t.invalidate_next_hop(NodeId(1));
        affected.sort();
        assert_eq!(affected, vec![NodeId(5), NodeId(6)]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn seen_cache_detects_duplicates_and_evicts() {
        let mut c = SeenCache::new(5.0);
        assert!(!c.check_and_insert(NodeId(1), 10, SimTime::ZERO));
        assert!(c.check_and_insert(NodeId(1), 10, SimTime::from_secs(1.0)));
        assert!(c.contains(NodeId(1), 10));
        assert!(!c.contains(NodeId(2), 10));
        // After the horizon the entry is forgotten.
        assert!(!c.check_and_insert(NodeId(1), 11, SimTime::from_secs(20.0)));
        assert!(!c.contains(NodeId(1), 10));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn pending_buffer_round_trip() {
        let mut b = PendingBuffer::new(2, SimDuration::from_secs(10.0));
        let dest = NodeId(9);
        assert!(b.is_empty());
        assert!(b
            .push(dest, Packet::data(NodeId(1), dest, 10), SimTime::ZERO)
            .is_none());
        assert!(b
            .push(dest, Packet::data(NodeId(1), dest, 20), SimTime::ZERO)
            .is_none());
        // Third push evicts the oldest.
        let evicted = b.push(dest, Packet::data(NodeId(1), dest, 30), SimTime::ZERO);
        assert_eq!(evicted.unwrap().payload_bytes, 10);
        assert!(b.has_pending(dest));
        assert_eq!(b.destinations(), vec![dest]);
        let taken = b.take(dest, SimTime::from_secs(1.0));
        assert_eq!(taken.len(), 2);
        assert!(!b.has_pending(dest));
    }

    #[test]
    fn pending_buffer_age_limit() {
        let mut b = PendingBuffer::new(8, SimDuration::from_secs(5.0));
        let dest = NodeId(9);
        b.push(dest, Packet::data(NodeId(1), dest, 10), SimTime::ZERO);
        b.push(
            dest,
            Packet::data(NodeId(1), dest, 20),
            SimTime::from_secs(4.0),
        );
        // take at t=7: the first packet (age 7) is dropped, the second kept.
        let taken = b.take(dest, SimTime::from_secs(7.0));
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].payload_bytes, 20);
    }

    #[test]
    fn pending_buffer_expire() {
        let mut b = PendingBuffer::new(8, SimDuration::from_secs(5.0));
        b.push(
            NodeId(9),
            Packet::data(NodeId(1), NodeId(9), 10),
            SimTime::ZERO,
        );
        b.push(
            NodeId(8),
            Packet::data(NodeId(1), NodeId(8), 20),
            SimTime::from_secs(8.0),
        );
        let expired = b.expire(SimTime::from_secs(9.0));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].payload_bytes, 10);
        assert_eq!(b.len(), 1);
    }
}
