//! Position-based next-hop forwarding: the geographic family (Sec. VI) and
//! the probability-model protocols that select next hops by a per-link score
//! (Sec. VII: REAR, CAR, GVGrid).
//!
//! All of them share the same forwarding skeleton — look up the destination's
//! position, pick the best-scoring neighbour, hand the packet over, carry it
//! briefly when no neighbour qualifies (local maximum) — and differ only in
//! the scoring function, captured by [`NextHopScorer`].

use crate::protocol::{Category, DropReason, ProtocolContext, RoutingProtocol};
use std::collections::VecDeque;
use std::fmt::Debug;
use vanet_links::probability::{
    link_availability, receipt_probability, segment_connectivity_probability,
};
use vanet_mobility::geometry::distance;
use vanet_mobility::Position;
use vanet_net::{GeoAddress, NeighborInfo, Packet, PacketKind};
use vanet_sim::{SimDuration, SimTime};

/// Scores candidate next hops for position-based forwarding.
pub trait NextHopScorer: Debug + Send {
    /// Protocol name.
    fn name(&self) -> &'static str;

    /// Taxonomy category ([`Category::Geographic`] or [`Category::Probability`]).
    fn category(&self) -> Category;

    /// Score of forwarding via `neighbor` towards `dest_pos`; `None` marks the
    /// neighbour ineligible. Higher scores are better.
    fn score(
        &self,
        ctx: &ProtocolContext<'_>,
        neighbor: &NeighborInfo,
        dest_pos: Position,
    ) -> Option<f64>;
}

/// Configuration shared by all position-based protocols.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoConfig {
    /// Beacon interval (position awareness is mandatory for this family).
    pub beacon_interval: SimDuration,
    /// How long a packet may be carried at a local maximum before it is
    /// dropped (store–carry–forward grace period).
    pub carry_timeout: SimDuration,
    /// Maximum number of packets carried while waiting for a neighbour.
    pub carry_capacity: usize,
}

impl Default for GeoConfig {
    fn default() -> Self {
        GeoConfig {
            beacon_interval: SimDuration::from_secs(1.0),
            carry_timeout: SimDuration::from_secs(5.0),
            carry_capacity: 32,
        }
    }
}

/// Generic position-based forwarding protocol, parameterised by the scorer.
#[derive(Debug)]
pub struct GeoRouting<S: NextHopScorer> {
    scorer: S,
    config: GeoConfig,
    carried: VecDeque<(SimTime, Packet)>,
}

impl<S: NextHopScorer> GeoRouting<S> {
    /// Creates a position-based protocol around `scorer`.
    #[must_use]
    pub fn new(scorer: S) -> Self {
        Self::with_config(scorer, GeoConfig::default())
    }

    /// Creates a position-based protocol with explicit configuration.
    #[must_use]
    pub fn with_config(scorer: S, config: GeoConfig) -> Self {
        GeoRouting {
            scorer,
            config,
            carried: VecDeque::new(),
        }
    }

    /// The scorer in use.
    #[must_use]
    pub fn scorer(&self) -> &S {
        &self.scorer
    }

    /// Number of packets currently carried while waiting for a next hop.
    #[must_use]
    pub fn carried_packets(&self) -> usize {
        self.carried.len()
    }

    fn destination_position(&self, ctx: &ProtocolContext<'_>, packet: &Packet) -> Option<Position> {
        packet
            .destination
            .and_then(|d| ctx.location.position_of(d))
            .or(packet.geo.map(|g| g.position))
    }

    fn forward(&mut self, ctx: &mut ProtocolContext<'_>, mut packet: Packet) {
        let Some(dest) = packet.destination else {
            ctx.drop_packet(&packet, DropReason::NoRoute);
            return;
        };
        if dest == ctx.node {
            ctx.deliver(&packet);
            return;
        }
        if !packet.ttl_allows_forwarding() {
            ctx.drop_packet(&packet, DropReason::TtlExpired);
            return;
        }
        let Some(dest_pos) = self.destination_position(ctx, &packet) else {
            ctx.drop_packet(&packet, DropReason::NoRoute);
            return;
        };
        packet.geo = Some(GeoAddress {
            position: dest_pos,
            zone_radius: ctx.range_m,
        });
        // If the destination itself is a fresh neighbour, hand over directly.
        if ctx.neighbors.contains(dest) {
            let fwd = ctx.stamp(packet.forwarded_by(ctx.node, Some(dest)));
            ctx.transmit(fwd);
            return;
        }
        // Otherwise pick the best-scoring neighbour.
        let mut best: Option<(f64, vanet_sim::NodeId)> = None;
        for n in ctx.neighbors.iter() {
            if n.id == packet.prev_hop {
                continue;
            }
            if let Some(score) = self.scorer.score(ctx, n, dest_pos) {
                match best {
                    Some((s, _)) if s >= score => {}
                    _ => best = Some((score, n.id)),
                }
            }
        }
        match best {
            Some((_, next)) => {
                let fwd = ctx.stamp(packet.forwarded_by(ctx.node, Some(next)));
                ctx.transmit(fwd);
            }
            None => {
                // Local maximum: carry the packet briefly.
                if self.carried.len() >= self.config.carry_capacity {
                    ctx.drop_packet(&packet, DropReason::BufferOverflow);
                    return;
                }
                self.carried.push_back((ctx.now, packet));
            }
        }
    }
}

impl<S: NextHopScorer> RoutingProtocol for GeoRouting<S> {
    fn name(&self) -> &'static str {
        self.scorer.name()
    }

    fn category(&self) -> Category {
        self.scorer.category()
    }

    fn beacon_interval(&self) -> Option<SimDuration> {
        Some(self.config.beacon_interval)
    }

    fn originate(&mut self, ctx: &mut ProtocolContext<'_>, packet: Packet) {
        self.forward(ctx, packet);
    }

    fn on_packet(&mut self, ctx: &mut ProtocolContext<'_>, packet: &Packet, overheard: bool) {
        if packet.kind != PacketKind::Data {
            return;
        }
        if packet.destination == Some(ctx.node) {
            ctx.deliver(packet);
            return;
        }
        if overheard {
            return;
        }
        self.forward(ctx, packet.clone());
    }

    fn on_tick(&mut self, ctx: &mut ProtocolContext<'_>) {
        if self.carried.is_empty() {
            return;
        }
        let carried: Vec<(SimTime, Packet)> = self.carried.drain(..).collect();
        for (since, packet) in carried {
            if ctx.now.saturating_since(since) > self.config.carry_timeout {
                ctx.drop_packet(&packet, DropReason::LocalMaximum);
            } else {
                // `forward` may re-buffer the packet; whatever actions
                // (transmit/deliver/drop) it pushes stay in the sink.
                self.forward(ctx, packet);
            }
        }
    }
}

/// Predictive directional greedy forwarding (Gong et al. / Lochert et al.):
/// forward to the neighbour closest to the destination among those that make
/// progress, with a bonus for neighbours moving *towards* the destination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GreedyScorer {
    /// Bonus weight for neighbours whose velocity points at the destination.
    pub direction_bonus: f64,
}

impl Default for GreedyScorer {
    fn default() -> Self {
        GreedyScorer {
            direction_bonus: 0.2,
        }
    }
}

impl NextHopScorer for GreedyScorer {
    fn name(&self) -> &'static str {
        "Greedy"
    }

    fn category(&self) -> Category {
        Category::Geographic
    }

    fn score(
        &self,
        ctx: &ProtocolContext<'_>,
        neighbor: &NeighborInfo,
        dest_pos: Position,
    ) -> Option<f64> {
        let own = distance(ctx.position(), dest_pos);
        let theirs = distance(neighbor.position, dest_pos);
        if theirs >= own {
            return None;
        }
        let progress = (own - theirs) / ctx.range_m;
        let towards = {
            let to_dest = dest_pos - neighbor.position;
            if to_dest.norm() == 0.0 || neighbor.velocity.norm() == 0.0 {
                0.0
            } else if neighbor.velocity.dot(to_dest) > 0.0 {
                self.direction_bonus
            } else {
                0.0
            }
        };
        Some(progress + towards)
    }
}

/// REAR: the next hop is the progressing neighbour with the highest *receipt
/// probability*, computed from the log-normal shadowing signal-strength model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RearScorer {
    /// Path-loss exponent assumed by the receipt-probability model.
    pub path_loss_exponent: f64,
    /// Shadow-fading standard deviation in dB.
    pub shadowing_sigma_db: f64,
}

impl Default for RearScorer {
    fn default() -> Self {
        RearScorer {
            path_loss_exponent: 2.7,
            shadowing_sigma_db: 4.0,
        }
    }
}

impl NextHopScorer for RearScorer {
    fn name(&self) -> &'static str {
        "REAR"
    }

    fn category(&self) -> Category {
        Category::Probability
    }

    fn score(
        &self,
        ctx: &ProtocolContext<'_>,
        neighbor: &NeighborInfo,
        dest_pos: Position,
    ) -> Option<f64> {
        let own = distance(ctx.position(), dest_pos);
        let theirs = distance(neighbor.position, dest_pos);
        if theirs >= own {
            return None;
        }
        let link_distance = distance(ctx.position(), neighbor.position);
        let receipt = receipt_probability(
            link_distance,
            ctx.range_m,
            self.path_loss_exponent,
            self.shadowing_sigma_db,
        );
        // Weight the receipt probability by the (normalised) progress so that
        // among equally reliable neighbours the one closer to the target wins.
        Some(receipt * (1.0 + (own - theirs) / ctx.range_m))
    }
}

/// CAR: connectivity-aware scoring — progress weighted by the probability
/// that the road ahead (towards the destination) is actually connected,
/// estimated from the locally observed vehicle density.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CarScorer {
    /// Length of the road stretch whose connectivity is evaluated, metres.
    pub lookahead_m: f64,
}

impl Default for CarScorer {
    fn default() -> Self {
        CarScorer {
            lookahead_m: 1_000.0,
        }
    }
}

impl NextHopScorer for CarScorer {
    fn name(&self) -> &'static str {
        "CAR"
    }

    fn category(&self) -> Category {
        Category::Probability
    }

    fn score(
        &self,
        ctx: &ProtocolContext<'_>,
        neighbor: &NeighborInfo,
        dest_pos: Position,
    ) -> Option<f64> {
        let own = distance(ctx.position(), dest_pos);
        let theirs = distance(neighbor.position, dest_pos);
        if theirs >= own {
            return None;
        }
        // Local density estimate: neighbours per metre of road covered by the
        // radio range (a 2r stretch of road is observable).
        let density_per_m = (ctx.neighbors.len() as f64 + 1.0) / (2.0 * ctx.range_m);
        let remaining = theirs.min(self.lookahead_m);
        let connectivity =
            segment_connectivity_probability(density_per_m, remaining.max(1.0), ctx.range_m);
        let progress = (own - theirs) / ctx.range_m;
        Some(connectivity * (0.1 + progress))
    }
}

/// GVGrid: the area is partitioned into grid cells of roughly one radio range;
/// next hops are preferred when they sit in the next cell towards the
/// destination and their link is predicted to stay available for the time the
/// packet needs to cross a cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GvGridScorer {
    /// Grid cell edge length, metres (defaults to 250 m, the radio range).
    pub cell_m: f64,
    /// Relative-speed standard deviation assumed by the availability model.
    pub speed_std: f64,
    /// Horizon (seconds) over which the link must stay available.
    pub horizon_s: f64,
}

impl Default for GvGridScorer {
    fn default() -> Self {
        GvGridScorer {
            cell_m: 250.0,
            speed_std: 5.0,
            horizon_s: 5.0,
        }
    }
}

impl GvGridScorer {
    fn cell_of(&self, p: Position) -> (i64, i64) {
        (
            (p.x / self.cell_m).floor() as i64,
            (p.y / self.cell_m).floor() as i64,
        )
    }
}

impl NextHopScorer for GvGridScorer {
    fn name(&self) -> &'static str {
        "GVGrid"
    }

    fn category(&self) -> Category {
        Category::Probability
    }

    fn score(
        &self,
        ctx: &ProtocolContext<'_>,
        neighbor: &NeighborInfo,
        dest_pos: Position,
    ) -> Option<f64> {
        let own = distance(ctx.position(), dest_pos);
        let theirs = distance(neighbor.position, dest_pos);
        if theirs >= own {
            return None;
        }
        let separation = distance(ctx.position(), neighbor.position);
        let relative_speed = (ctx.velocity() - neighbor.velocity).norm();
        let availability = link_availability(
            separation.min(ctx.range_m),
            relative_speed,
            self.speed_std,
            ctx.range_m,
            self.horizon_s,
        );
        let my_cell = self.cell_of(ctx.position());
        let their_cell = self.cell_of(neighbor.position);
        let cell_bonus = if their_cell != my_cell { 0.5 } else { 0.0 };
        let progress = (own - theirs) / ctx.range_m;
        Some(availability * (progress + cell_bonus))
    }
}

/// The Greedy geographic protocol type.
pub type Greedy = GeoRouting<GreedyScorer>;
/// The REAR protocol type.
pub type Rear = GeoRouting<RearScorer>;
/// The CAR protocol type.
pub type Car = GeoRouting<CarScorer>;
/// The GVGrid protocol type.
pub type GvGrid = GeoRouting<GvGridScorer>;

/// Creates a Greedy (predictive directional greedy) instance.
#[must_use]
pub fn greedy() -> Greedy {
    Greedy::new(GreedyScorer::default())
}

/// Creates a REAR instance.
#[must_use]
pub fn rear() -> Rear {
    Rear::new(RearScorer::default())
}

/// Creates a CAR instance.
#[must_use]
pub fn car() -> Car {
    Car::new(CarScorer::default())
}

/// Creates a GVGrid instance.
#[must_use]
pub fn gvgrid() -> GvGrid {
    GvGrid::new(GvGridScorer::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Action, ActionSink, TableLocationService};
    use vanet_mobility::{Vec2, VehicleKind, VehicleState};
    use vanet_net::NeighborTable;
    use vanet_sim::{NodeId, PacketIdAllocator, SimRng};

    struct Harness {
        state: VehicleState,
        neighbors: NeighborTable,
        location: TableLocationService,
        rng: SimRng,
        ids: PacketIdAllocator,
        sink: ActionSink,
    }

    impl Harness {
        fn new(id: u32, x: f64) -> Self {
            let mut state =
                VehicleState::stationary(NodeId(id), VehicleKind::Car, Vec2::new(x, 0.0));
            state.velocity = Vec2::new(20.0, 0.0);
            Harness {
                state,
                neighbors: NeighborTable::new(),
                location: TableLocationService::new(),
                rng: SimRng::new(1),
                ids: PacketIdAllocator::new(),
                sink: ActionSink::new(),
            }
        }

        fn add_neighbor(&mut self, id: u32, x: f64, vx: f64) {
            self.neighbors.observe(
                NodeId(id),
                Vec2::new(x, 0.0),
                Vec2::new(vx, 0.0),
                SimTime::ZERO,
                SimDuration::from_secs(10.0),
            );
        }

        fn ctx(&mut self, now: f64) -> ProtocolContext<'_> {
            ProtocolContext {
                node: self.state.id,
                now: SimTime::from_secs(now),
                state: &self.state,
                neighbors: (&self.neighbors).into(),
                range_m: 250.0,
                rsu_ids: &[],
                bus_ids: &[],
                location: &self.location,
                rng: &mut self.rng,
                packet_ids: &mut self.ids,
                actions: &mut self.sink,
            }
        }
    }

    #[test]
    fn greedy_forwards_to_closest_progressing_neighbor() {
        let mut h = Harness::new(0, 0.0);
        h.location
            .set(NodeId(9), Vec2::new(1_000.0, 0.0), Vec2::ZERO);
        h.add_neighbor(1, 100.0, 20.0);
        h.add_neighbor(2, 200.0, 20.0);
        h.add_neighbor(3, -100.0, 20.0); // backwards, never chosen
        let mut proto = greedy();
        let actions = {
            let mut ctx = h.ctx(1.0);
            proto.originate(&mut ctx, Packet::data(NodeId(0), NodeId(9), 100));
            ctx.take_actions()
        };
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            Action::Transmit(p) => assert_eq!(p.next_hop, Some(NodeId(2))),
            other => panic!("expected transmit, got {other:?}"),
        }
    }

    #[test]
    fn greedy_prefers_neighbors_moving_towards_destination_on_ties() {
        let mut h = Harness::new(0, 0.0);
        h.location
            .set(NodeId(9), Vec2::new(1_000.0, 0.0), Vec2::ZERO);
        // Two neighbours at the same progress; one drives towards the
        // destination, the other away.
        h.add_neighbor(1, 150.0, -20.0);
        h.add_neighbor(2, 150.0, 20.0);
        let mut proto = greedy();
        let actions = {
            let mut ctx = h.ctx(1.0);
            proto.originate(&mut ctx, Packet::data(NodeId(0), NodeId(9), 100));
            ctx.take_actions()
        };
        match &actions[0] {
            Action::Transmit(p) => assert_eq!(p.next_hop, Some(NodeId(2))),
            other => panic!("expected transmit, got {other:?}"),
        }
    }

    #[test]
    fn local_maximum_carries_then_drops() {
        let mut h = Harness::new(0, 0.0);
        h.location
            .set(NodeId(9), Vec2::new(1_000.0, 0.0), Vec2::ZERO);
        h.add_neighbor(3, -100.0, 20.0); // only a backwards neighbour
        let mut proto = greedy();
        let actions = {
            let mut ctx = h.ctx(1.0);
            proto.originate(&mut ctx, Packet::data(NodeId(0), NodeId(9), 100));
            ctx.take_actions()
        };
        assert!(actions.is_empty(), "packet is carried, not dropped yet");
        assert_eq!(proto.carried_packets(), 1);
        // Within the carry window the packet is retried (and re-carried).
        let retry = {
            let mut ctx = h.ctx(3.0);
            proto.on_tick(&mut ctx);
            ctx.take_actions()
        };
        assert!(retry.is_empty());
        assert_eq!(proto.carried_packets(), 1);
        // After the timeout it is dropped as a local maximum.
        let expired = {
            let mut ctx = h.ctx(10.0);
            proto.on_tick(&mut ctx);
            ctx.take_actions()
        };
        assert!(matches!(
            expired[0],
            Action::Drop {
                reason: DropReason::LocalMaximum,
                ..
            }
        ));
        assert_eq!(proto.carried_packets(), 0);
    }

    #[test]
    fn carried_packet_is_sent_when_a_neighbor_appears() {
        let mut h = Harness::new(0, 0.0);
        h.location
            .set(NodeId(9), Vec2::new(1_000.0, 0.0), Vec2::ZERO);
        let mut proto = greedy();
        {
            let mut ctx = h.ctx(1.0);
            proto.originate(&mut ctx, Packet::data(NodeId(0), NodeId(9), 100));
        }
        assert_eq!(proto.carried_packets(), 1);
        h.add_neighbor(4, 180.0, 20.0);
        let actions = {
            let mut ctx = h.ctx(2.0);
            proto.on_tick(&mut ctx);
            ctx.take_actions()
        };
        assert!(matches!(&actions[0], Action::Transmit(p) if p.next_hop == Some(NodeId(4))));
        assert_eq!(proto.carried_packets(), 0);
    }

    #[test]
    fn direct_delivery_to_neighbor_destination() {
        let mut h = Harness::new(0, 0.0);
        h.location.set(NodeId(9), Vec2::new(150.0, 0.0), Vec2::ZERO);
        h.add_neighbor(9, 150.0, 20.0);
        let mut proto = greedy();
        let actions = {
            let mut ctx = h.ctx(1.0);
            proto.originate(&mut ctx, Packet::data(NodeId(0), NodeId(9), 100));
            ctx.take_actions()
        };
        assert!(matches!(&actions[0], Action::Transmit(p) if p.next_hop == Some(NodeId(9))));
    }

    #[test]
    fn unknown_destination_position_is_a_drop() {
        let mut h = Harness::new(0, 0.0);
        let mut proto = greedy();
        let actions = {
            let mut ctx = h.ctx(1.0);
            proto.originate(&mut ctx, Packet::data(NodeId(0), NodeId(9), 100));
            ctx.take_actions()
        };
        assert!(matches!(
            actions[0],
            Action::Drop {
                reason: DropReason::NoRoute,
                ..
            }
        ));
    }

    #[test]
    fn rear_prefers_reliable_links() {
        let h_state = |x: f64| {
            let mut s = VehicleState::stationary(NodeId(0), VehicleKind::Car, Vec2::new(x, 0.0));
            s.velocity = Vec2::new(20.0, 0.0);
            s
        };
        let mut h = Harness::new(0, 0.0);
        h.state = h_state(0.0);
        h.location
            .set(NodeId(9), Vec2::new(2_000.0, 0.0), Vec2::ZERO);
        // A close reliable neighbour and a distant marginal one.
        h.add_neighbor(1, 120.0, 20.0);
        h.add_neighbor(2, 245.0, 20.0);
        let scorer = RearScorer::default();
        let (s1, s2) = {
            let ctx = h.ctx(1.0);
            let n1 = *ctx.neighbors.get(NodeId(1)).unwrap();
            let n2 = *ctx.neighbors.get(NodeId(2)).unwrap();
            (
                scorer.score(&ctx, &n1, Vec2::new(2_000.0, 0.0)).unwrap(),
                scorer.score(&ctx, &n2, Vec2::new(2_000.0, 0.0)).unwrap(),
            )
        };
        assert!(
            s1 > s2,
            "the reliable 120 m link should beat the marginal 245 m link ({s1} vs {s2})"
        );
    }

    #[test]
    fn car_score_grows_with_density() {
        let scorer = CarScorer::default();
        let dest = Vec2::new(3_000.0, 0.0);
        // Sparse neighbourhood.
        let mut sparse = Harness::new(0, 0.0);
        sparse.location.set(NodeId(9), dest, Vec2::ZERO);
        sparse.add_neighbor(1, 200.0, 20.0);
        let sparse_score = {
            let ctx = sparse.ctx(1.0);
            let n = *ctx.neighbors.get(NodeId(1)).unwrap();
            scorer.score(&ctx, &n, dest).unwrap()
        };
        // Dense neighbourhood.
        let mut dense = Harness::new(0, 0.0);
        dense.location.set(NodeId(9), dest, Vec2::ZERO);
        for i in 1..30 {
            dense.add_neighbor(i, 10.0 * i as f64, 20.0);
        }
        let dense_score = {
            let ctx = dense.ctx(1.0);
            let n = *ctx.neighbors.get(NodeId(20)).unwrap();
            scorer.score(&ctx, &n, dest).unwrap()
        };
        assert!(
            dense_score > sparse_score,
            "denser traffic means better connectivity: {dense_score} vs {sparse_score}"
        );
    }

    #[test]
    fn gvgrid_penalises_unstable_links() {
        let scorer = GvGridScorer::default();
        let dest = Vec2::new(3_000.0, 0.0);
        let mut h = Harness::new(0, 0.0);
        h.location.set(NodeId(9), dest, Vec2::ZERO);
        h.add_neighbor(1, 200.0, 20.0); // same direction as us (20 m/s)
        h.add_neighbor(2, 200.0, -20.0); // opposite direction
        let (stable, unstable) = {
            let ctx = h.ctx(1.0);
            let n1 = *ctx.neighbors.get(NodeId(1)).unwrap();
            let n2 = *ctx.neighbors.get(NodeId(2)).unwrap();
            (
                scorer.score(&ctx, &n1, dest).unwrap(),
                scorer.score(&ctx, &n2, dest).unwrap(),
            )
        };
        assert!(
            stable > unstable,
            "same-direction neighbour should score higher: {stable} vs {unstable}"
        );
    }

    #[test]
    fn protocol_identities() {
        assert_eq!(greedy().name(), "Greedy");
        assert_eq!(greedy().category(), Category::Geographic);
        assert_eq!(rear().name(), "REAR");
        assert_eq!(rear().category(), Category::Probability);
        assert_eq!(car().name(), "CAR");
        assert_eq!(car().category(), Category::Probability);
        assert_eq!(gvgrid().name(), "GVGrid");
        assert_eq!(gvgrid().category(), Category::Probability);
        assert!(greedy().beacon_interval().is_some());
    }
}
