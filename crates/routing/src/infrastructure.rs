//! Infrastructure-based routing (Sec. V): DRR-style RSU-assisted relaying and
//! bus message ferries.
//!
//! * **DRR** (He et al.): road-side units act as *virtual equivalent nodes*
//!   connected by a wired backbone. Vehicles hand packets to the nearest RSU
//!   when direct multi-hop delivery is not possible; the RSU ships the packet
//!   over the backbone to the RSU closest to the destination, which delivers
//!   it by radio (buffering it until the destination drives into range).
//! * **Bus** (Kitani et al.): buses on regular routes carry packets across
//!   connectivity gaps (store–carry–forward) thanks to their large storage.

use crate::protocol::{Category, DropReason, ProtocolContext, RoutingProtocol};
use std::collections::VecDeque;
use vanet_mobility::geometry::distance;
use vanet_net::{Packet, PacketKind};
use vanet_sim::{NodeId, SimDuration, SimTime};

/// Configuration for the DRR protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrrConfig {
    /// Beacon interval (vehicles must know which RSUs/neighbours are around).
    pub beacon_interval: SimDuration,
    /// How long an RSU buffers a packet waiting for its destination.
    pub rsu_buffer_timeout: SimDuration,
    /// RSU buffer capacity (packets).
    pub rsu_buffer_capacity: usize,
}

impl Default for DrrConfig {
    fn default() -> Self {
        DrrConfig {
            beacon_interval: SimDuration::from_secs(1.0),
            rsu_buffer_timeout: SimDuration::from_secs(60.0),
            rsu_buffer_capacity: 256,
        }
    }
}

/// DRR: differentiated reliable routing over road-side units.
#[derive(Debug)]
pub struct Drr {
    config: DrrConfig,
    /// Packets buffered at this node (used on RSUs as the VEN buffer and on
    /// vehicles while waiting to meet an RSU).
    buffer: VecDeque<(SimTime, Packet)>,
}

impl Drr {
    /// Creates a DRR instance with default parameters.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(DrrConfig::default())
    }

    /// Creates a DRR instance with explicit configuration.
    #[must_use]
    pub fn with_config(config: DrrConfig) -> Self {
        Drr {
            config,
            buffer: VecDeque::new(),
        }
    }

    /// Number of packets currently buffered at this node.
    #[must_use]
    pub fn buffered_packets(&self) -> usize {
        self.buffer.len()
    }

    /// The RSU (other than this node) whose current position is closest to
    /// `target`, if any.
    fn closest_rsu_to(
        ctx: &ProtocolContext<'_>,
        target: vanet_mobility::Position,
    ) -> Option<NodeId> {
        ctx.rsu_ids
            .iter()
            .filter(|&&r| r != ctx.node)
            .filter_map(|&r| {
                ctx.location
                    .position_of(r)
                    .map(|p| (r, distance(p, target)))
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(r, _)| r)
    }

    /// An RSU currently within radio range of this node, if any.
    fn rsu_in_range(ctx: &ProtocolContext<'_>) -> Option<NodeId> {
        ctx.rsu_ids
            .iter()
            .filter(|&&r| r != ctx.node)
            .filter_map(|&r| {
                ctx.location
                    .position_of(r)
                    .map(|p| (r, distance(p, ctx.position())))
            })
            .filter(|(_, d)| *d <= ctx.range_m)
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(r, _)| r)
    }

    fn handle_as_rsu(&mut self, ctx: &mut ProtocolContext<'_>, packet: &Packet) {
        let Some(dest) = packet.destination else {
            ctx.drop_packet(packet, DropReason::NoRoute);
            return;
        };
        // Deliver directly if the destination is in radio range of this RSU.
        if let Some(dest_pos) = ctx.location.position_of(dest) {
            if distance(dest_pos, ctx.position()) <= ctx.range_m {
                let fwd = ctx.stamp(packet.forwarded_by(ctx.node, Some(dest)));
                ctx.transmit(fwd);
                return;
            }
            // Otherwise ship it over the backbone to the RSU nearest the
            // destination (if that is not us).
            if let Some(better_rsu) = Self::closest_rsu_to(ctx, dest_pos) {
                let own_distance = distance(ctx.position(), dest_pos);
                let their_distance = ctx
                    .location
                    .position_of(better_rsu)
                    .map_or(f64::INFINITY, |p| distance(p, dest_pos));
                if their_distance + 1.0 < own_distance {
                    ctx.backbone_send(better_rsu, packet.clone());
                    return;
                }
            }
        }
        // We are the best-placed RSU but the destination is out of range:
        // buffer and retry on subsequent ticks (the VEN behaviour).
        if self.buffer.len() >= self.config.rsu_buffer_capacity {
            ctx.drop_packet(packet, DropReason::BufferOverflow);
            return;
        }
        self.buffer.push_back((ctx.now, packet.clone()));
    }

    fn handle_as_vehicle(&mut self, ctx: &mut ProtocolContext<'_>, packet: &Packet) {
        let Some(dest) = packet.destination else {
            ctx.drop_packet(packet, DropReason::NoRoute);
            return;
        };
        // Direct neighbour? Hand it over.
        if ctx.neighbors.contains(dest) {
            let fwd = ctx.stamp(packet.forwarded_by(ctx.node, Some(dest)));
            ctx.transmit(fwd);
            return;
        }
        // RSU in range? Give the packet to the infrastructure.
        if let Some(rsu) = Self::rsu_in_range(ctx) {
            let fwd = ctx.stamp(packet.forwarded_by(ctx.node, Some(rsu)));
            ctx.transmit(fwd);
            return;
        }
        // Otherwise forward greedily towards the nearest RSU.
        if let Some(rsu) = Self::closest_rsu_to(ctx, ctx.position()) {
            if let Some(rsu_pos) = ctx.location.position_of(rsu) {
                let own = distance(ctx.position(), rsu_pos);
                if let Some(next) = ctx.neighbors.greedy_next_hop(rsu_pos, own) {
                    let next_id = next.id;
                    let fwd = ctx.stamp(packet.forwarded_by(ctx.node, Some(next_id)));
                    ctx.transmit(fwd);
                    return;
                }
            }
        }
        // Nobody to hand the packet to: carry it for a while.
        if self.buffer.len() >= self.config.rsu_buffer_capacity {
            ctx.drop_packet(packet, DropReason::BufferOverflow);
            return;
        }
        self.buffer.push_back((ctx.now, packet.clone()));
    }

    fn process(&mut self, ctx: &mut ProtocolContext<'_>, packet: &Packet) {
        if packet.destination == Some(ctx.node) {
            ctx.deliver(packet);
            return;
        }
        if !packet.ttl_allows_forwarding() {
            ctx.drop_packet(packet, DropReason::TtlExpired);
            return;
        }
        if ctx.is_rsu() {
            self.handle_as_rsu(ctx, packet);
        } else {
            self.handle_as_vehicle(ctx, packet);
        }
    }
}

impl Default for Drr {
    fn default() -> Self {
        Self::new()
    }
}

impl RoutingProtocol for Drr {
    fn name(&self) -> &'static str {
        "DRR"
    }

    fn category(&self) -> Category {
        Category::Infrastructure
    }

    fn beacon_interval(&self) -> Option<SimDuration> {
        Some(self.config.beacon_interval)
    }

    fn originate(&mut self, ctx: &mut ProtocolContext<'_>, packet: Packet) {
        self.process(ctx, &packet);
    }

    fn on_packet(&mut self, ctx: &mut ProtocolContext<'_>, packet: &Packet, overheard: bool) {
        if packet.kind != PacketKind::Data {
            return;
        }
        if packet.destination == Some(ctx.node) {
            ctx.deliver(packet);
            return;
        }
        if overheard {
            return;
        }
        self.process(ctx, packet);
    }

    fn on_tick(&mut self, ctx: &mut ProtocolContext<'_>) {
        if self.buffer.is_empty() {
            return;
        }
        let buffered: Vec<(SimTime, Packet)> = self.buffer.drain(..).collect();
        for (since, packet) in buffered {
            if ctx.now.saturating_since(since) > self.config.rsu_buffer_timeout {
                ctx.drop_packet(&packet, DropReason::Expired);
            } else {
                self.process(ctx, &packet);
            }
        }
    }
}

/// Configuration for the bus-ferry protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusFerryConfig {
    /// Beacon interval.
    pub beacon_interval: SimDuration,
    /// Bus buffer timeout (buses have large storage, so this is generous).
    pub bus_buffer_timeout: SimDuration,
    /// Buffer capacity on buses.
    pub bus_buffer_capacity: usize,
    /// Buffer capacity on ordinary cars waiting to meet a bus.
    pub car_buffer_capacity: usize,
}

impl Default for BusFerryConfig {
    fn default() -> Self {
        BusFerryConfig {
            beacon_interval: SimDuration::from_secs(1.0),
            bus_buffer_timeout: SimDuration::from_secs(300.0),
            bus_buffer_capacity: 4_096,
            car_buffer_capacity: 32,
        }
    }
}

/// Bus message ferrying: store–carry–forward over buses on regular routes.
#[derive(Debug)]
pub struct BusFerry {
    config: BusFerryConfig,
    buffer: VecDeque<(SimTime, Packet)>,
}

impl BusFerry {
    /// Creates a bus-ferry instance with default parameters.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(BusFerryConfig::default())
    }

    /// Creates a bus-ferry instance with explicit configuration.
    #[must_use]
    pub fn with_config(config: BusFerryConfig) -> Self {
        BusFerry {
            config,
            buffer: VecDeque::new(),
        }
    }

    /// Number of packets currently carried by this node.
    #[must_use]
    pub fn buffered_packets(&self) -> usize {
        self.buffer.len()
    }

    fn capacity(&self, ctx: &ProtocolContext<'_>) -> usize {
        if ctx.is_bus() {
            self.config.bus_buffer_capacity
        } else {
            self.config.car_buffer_capacity
        }
    }

    fn process(&mut self, ctx: &mut ProtocolContext<'_>, packet: &Packet) {
        if packet.destination == Some(ctx.node) {
            ctx.deliver(packet);
            return;
        }
        if !packet.ttl_allows_forwarding() {
            ctx.drop_packet(packet, DropReason::TtlExpired);
            return;
        }
        let Some(dest) = packet.destination else {
            ctx.drop_packet(packet, DropReason::NoRoute);
            return;
        };
        // Destination in range: hand over.
        if ctx.neighbors.contains(dest) {
            let fwd = ctx.stamp(packet.forwarded_by(ctx.node, Some(dest)));
            ctx.transmit(fwd);
            return;
        }
        // A bus in range (and we are not a bus ourselves): hand the packet to
        // the ferry.
        if !ctx.is_bus() {
            let bus_in_range = ctx
                .bus_ids
                .iter()
                .find(|&&b| b != ctx.node && ctx.neighbors.contains(b))
                .copied();
            if let Some(bus) = bus_in_range {
                let fwd = ctx.stamp(packet.forwarded_by(ctx.node, Some(bus)));
                ctx.transmit(fwd);
                return;
            }
        }
        // Otherwise carry.
        if self.buffer.len() >= self.capacity(ctx) {
            ctx.drop_packet(packet, DropReason::BufferOverflow);
            return;
        }
        self.buffer.push_back((ctx.now, packet.clone()));
    }
}

impl Default for BusFerry {
    fn default() -> Self {
        Self::new()
    }
}

impl RoutingProtocol for BusFerry {
    fn name(&self) -> &'static str {
        "Bus"
    }

    fn category(&self) -> Category {
        Category::Infrastructure
    }

    fn beacon_interval(&self) -> Option<SimDuration> {
        Some(self.config.beacon_interval)
    }

    fn originate(&mut self, ctx: &mut ProtocolContext<'_>, packet: Packet) {
        self.process(ctx, &packet);
    }

    fn on_packet(&mut self, ctx: &mut ProtocolContext<'_>, packet: &Packet, overheard: bool) {
        if packet.kind != PacketKind::Data {
            return;
        }
        if packet.destination == Some(ctx.node) {
            ctx.deliver(packet);
            return;
        }
        if overheard {
            return;
        }
        self.process(ctx, packet);
    }

    fn on_tick(&mut self, ctx: &mut ProtocolContext<'_>) {
        if self.buffer.is_empty() {
            return;
        }
        let buffered: Vec<(SimTime, Packet)> = self.buffer.drain(..).collect();
        for (since, packet) in buffered {
            if ctx.now.saturating_since(since) > self.config.bus_buffer_timeout {
                ctx.drop_packet(&packet, DropReason::Expired);
            } else {
                self.process(ctx, &packet);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Action, ActionSink, TableLocationService};
    use vanet_mobility::{Vec2, VehicleKind, VehicleState};
    use vanet_net::NeighborTable;
    use vanet_sim::{PacketIdAllocator, SimRng};

    struct Harness {
        state: VehicleState,
        neighbors: NeighborTable,
        location: TableLocationService,
        rsus: Vec<NodeId>,
        buses: Vec<NodeId>,
        rng: SimRng,
        ids: PacketIdAllocator,
        sink: ActionSink,
    }

    impl Harness {
        fn new(id: u32, pos: Vec2, kind: VehicleKind) -> Self {
            Harness {
                state: VehicleState::stationary(NodeId(id), kind, pos),
                neighbors: NeighborTable::new(),
                location: TableLocationService::new(),
                rsus: Vec::new(),
                buses: Vec::new(),
                rng: SimRng::new(1),
                ids: PacketIdAllocator::new(),
                sink: ActionSink::new(),
            }
        }

        fn ctx(&mut self, now: f64) -> ProtocolContext<'_> {
            ProtocolContext {
                node: self.state.id,
                now: SimTime::from_secs(now),
                state: &self.state,
                neighbors: (&self.neighbors).into(),
                range_m: 250.0,
                rsu_ids: &self.rsus,
                bus_ids: &self.buses,
                location: &self.location,
                rng: &mut self.rng,
                packet_ids: &mut self.ids,
                actions: &mut self.sink,
            }
        }
    }

    #[test]
    fn vehicle_hands_packets_to_rsu_in_range() {
        let mut h = Harness::new(0, Vec2::ZERO, VehicleKind::Car);
        h.rsus = vec![NodeId(100)];
        h.location
            .set(NodeId(100), Vec2::new(150.0, 0.0), Vec2::ZERO);
        h.location
            .set(NodeId(9), Vec2::new(5_000.0, 0.0), Vec2::ZERO);
        let mut drr = Drr::new();
        let actions = {
            let mut ctx = h.ctx(1.0);
            drr.originate(&mut ctx, Packet::data(NodeId(0), NodeId(9), 64));
            ctx.take_actions()
        };
        assert!(matches!(&actions[0], Action::Transmit(p) if p.next_hop == Some(NodeId(100))));
    }

    #[test]
    fn rsu_ships_packets_over_backbone_to_rsu_near_destination() {
        let mut h = Harness::new(100, Vec2::ZERO, VehicleKind::RoadSideUnit);
        h.rsus = vec![NodeId(100), NodeId(101)];
        h.location
            .set(NodeId(101), Vec2::new(5_000.0, 0.0), Vec2::ZERO);
        h.location
            .set(NodeId(9), Vec2::new(5_100.0, 0.0), Vec2::ZERO);
        let mut drr = Drr::new();
        let actions = {
            let mut ctx = h.ctx(1.0);
            drr.on_packet(&mut ctx, &Packet::data(NodeId(0), NodeId(9), 64), false);
            ctx.take_actions()
        };
        assert!(matches!(
            &actions[0],
            Action::BackboneSend { to, .. } if *to == NodeId(101)
        ));
    }

    #[test]
    fn rsu_delivers_directly_or_buffers_until_destination_arrives() {
        let mut h = Harness::new(100, Vec2::ZERO, VehicleKind::RoadSideUnit);
        h.rsus = vec![NodeId(100)];
        // Destination far away: the RSU buffers.
        h.location
            .set(NodeId(9), Vec2::new(5_000.0, 0.0), Vec2::ZERO);
        let mut drr = Drr::new();
        let buffered = {
            let mut ctx = h.ctx(1.0);
            drr.on_packet(&mut ctx, &Packet::data(NodeId(0), NodeId(9), 64), false);
            ctx.take_actions()
        };
        assert!(buffered.is_empty());
        assert_eq!(drr.buffered_packets(), 1);
        // The destination drives into range: the next tick delivers it.
        h.location.set(NodeId(9), Vec2::new(100.0, 0.0), Vec2::ZERO);
        let actions = {
            let mut ctx = h.ctx(5.0);
            drr.on_tick(&mut ctx);
            ctx.take_actions()
        };
        assert!(matches!(&actions[0], Action::Transmit(p) if p.next_hop == Some(NodeId(9))));
        assert_eq!(drr.buffered_packets(), 0);
    }

    #[test]
    fn rsu_buffer_expires_packets() {
        let mut h = Harness::new(100, Vec2::ZERO, VehicleKind::RoadSideUnit);
        h.rsus = vec![NodeId(100)];
        h.location
            .set(NodeId(9), Vec2::new(5_000.0, 0.0), Vec2::ZERO);
        let mut drr = Drr::new();
        {
            let mut ctx = h.ctx(1.0);
            drr.on_packet(&mut ctx, &Packet::data(NodeId(0), NodeId(9), 64), false);
        }
        let actions = {
            let mut ctx = h.ctx(500.0);
            drr.on_tick(&mut ctx);
            ctx.take_actions()
        };
        assert!(matches!(
            actions[0],
            Action::Drop {
                reason: DropReason::Expired,
                ..
            }
        ));
    }

    #[test]
    fn car_hands_packets_to_a_bus_and_bus_delivers() {
        // The car sees a bus but not the destination.
        let mut car = Harness::new(0, Vec2::ZERO, VehicleKind::Car);
        car.buses = vec![NodeId(50)];
        car.neighbors.observe(
            NodeId(50),
            Vec2::new(100.0, 0.0),
            Vec2::new(10.0, 0.0),
            SimTime::ZERO,
            SimDuration::from_secs(10.0),
        );
        let mut proto_car = BusFerry::new();
        let handed = {
            let mut ctx = car.ctx(1.0);
            proto_car.originate(&mut ctx, Packet::data(NodeId(0), NodeId(9), 64));
            ctx.take_actions()
        };
        assert!(matches!(&handed[0], Action::Transmit(p) if p.next_hop == Some(NodeId(50))));

        // The bus carries the packet until the destination shows up.
        let mut bus = Harness::new(50, Vec2::new(100.0, 0.0), VehicleKind::Bus);
        bus.buses = vec![NodeId(50)];
        let mut proto_bus = BusFerry::new();
        let carried = {
            let mut ctx = bus.ctx(2.0);
            proto_bus.on_packet(&mut ctx, &Packet::data(NodeId(0), NodeId(9), 64), false);
            ctx.take_actions()
        };
        assert!(carried.is_empty());
        assert_eq!(proto_bus.buffered_packets(), 1);
        // Destination appears as a neighbour.
        bus.neighbors.observe(
            NodeId(9),
            Vec2::new(150.0, 0.0),
            Vec2::ZERO,
            SimTime::from_secs(100.0),
            SimDuration::from_secs(10.0),
        );
        let delivered = {
            let mut ctx = bus.ctx(101.0);
            proto_bus.on_tick(&mut ctx);
            ctx.take_actions()
        };
        assert!(matches!(&delivered[0], Action::Transmit(p) if p.next_hop == Some(NodeId(9))));
    }

    #[test]
    fn car_without_bus_carries_up_to_capacity() {
        let mut car = Harness::new(0, Vec2::ZERO, VehicleKind::Car);
        let mut proto = BusFerry::with_config(BusFerryConfig {
            car_buffer_capacity: 2,
            ..BusFerryConfig::default()
        });
        for i in 0..3 {
            let mut ctx = car.ctx(1.0 + f64::from(i));
            proto.originate(&mut ctx, Packet::data(NodeId(0), NodeId(9), 64));
            let actions = ctx.take_actions();
            if i < 2 {
                assert!(actions.is_empty());
            } else {
                assert!(matches!(
                    actions[0],
                    Action::Drop {
                        reason: DropReason::BufferOverflow,
                        ..
                    }
                ));
            }
        }
        assert_eq!(proto.buffered_packets(), 2);
    }

    #[test]
    fn identities() {
        assert_eq!(Drr::new().name(), "DRR");
        assert_eq!(Drr::new().category(), Category::Infrastructure);
        assert_eq!(BusFerry::new().name(), "Bus");
        assert_eq!(BusFerry::new().category(), Category::Infrastructure);
        assert!(Drr::new().beacon_interval().is_some());
        assert!(BusFerry::new().beacon_interval().is_some());
    }
}
