//! Statistics collection used by the metric system.
//!
//! The simulation records many per-packet and per-route observations; these
//! helpers compute numerically stable summaries (Welford running statistics),
//! fixed-bin histograms with percentile queries, time-weighted averages for
//! sampled quantities (e.g. neighbour count over time) and plain counters.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Numerically stable running mean / variance / min / max (Welford).
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn record(&mut self, x: f64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            if x < self.min {
                self.min = x;
            }
            if x > self.max {
                self.max = x;
            }
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 if no observations.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 for fewer than two observations.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation, or 0 if empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observation, or 0 if empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Whether no observations were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// A monotone event counter.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }
}

/// A histogram with uniform bins over `[low, high)` plus under/overflow bins.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Histogram {
    low: f64,
    high: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    values: RunningStats,
}

impl Histogram {
    /// Creates a histogram over `[low, high)` with `bins` uniform bins.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high` or `bins == 0`.
    #[must_use]
    pub fn new(low: f64, high: f64, bins: usize) -> Self {
        assert!(low < high, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            low,
            high,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            values: RunningStats::new(),
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.values.record(x);
        if x < self.low {
            self.underflow += 1;
        } else if x >= self.high {
            self.overflow += 1;
        } else {
            let width = (self.high - self.low) / self.bins.len() as f64;
            let idx = ((x - self.low) / width) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total number of observations (including under/overflow).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.values.count()
    }

    /// Summary statistics of the raw observations.
    #[must_use]
    pub fn stats(&self) -> &RunningStats {
        &self.values
    }

    /// Approximate `q`-quantile (0 ≤ q ≤ 1) from the binned data.
    ///
    /// Returns 0 for an empty histogram. Under/overflow observations are
    /// treated as lying at the range edges.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut cum = self.underflow;
        if cum >= target {
            return self.low;
        }
        let width = (self.high - self.low) / self.bins.len() as f64;
        for (i, b) in self.bins.iter().enumerate() {
            cum += b;
            if cum >= target {
                return self.low + (i as f64 + 0.5) * width;
            }
        }
        self.high
    }

    /// Per-bin counts (excluding under/overflow).
    #[must_use]
    pub fn bin_counts(&self) -> &[u64] {
        &self.bins
    }

    /// Count of observations below the histogram range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at or above the histogram range.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }
}

/// Time-weighted average of a piecewise-constant sampled quantity.
///
/// Used for metrics like "average neighbour count": each call to
/// [`TimeWeightedAverage::update`] closes the previous interval at its value.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct TimeWeightedAverage {
    last_time: Option<SimTime>,
    last_value: f64,
    weighted_sum: f64,
    total_time: f64,
}

impl Default for TimeWeightedAverage {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeightedAverage {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        TimeWeightedAverage {
            last_time: None,
            last_value: 0.0,
            weighted_sum: 0.0,
            total_time: 0.0,
        }
    }

    /// Records that the quantity takes value `value` from time `now` onward.
    pub fn update(&mut self, now: SimTime, value: f64) {
        if let Some(prev) = self.last_time {
            let dt = now.saturating_since(prev).as_secs();
            self.weighted_sum += self.last_value * dt;
            self.total_time += dt;
        }
        self.last_time = Some(now);
        self.last_value = value;
    }

    /// Closes the observation window at `now` and returns the average.
    #[must_use]
    pub fn finish(mut self, now: SimTime) -> f64 {
        self.update(now, self.last_value);
        self.average()
    }

    /// The time-weighted average over the closed intervals so far.
    #[must_use]
    pub fn average(&self) -> f64 {
        if self.total_time == 0.0 {
            self.last_value
        } else {
            self.weighted_sum / self.total_time
        }
    }
}

/// Computes the exact quantile of a slice (sorted copy, nearest-rank method).
///
/// Returns 0 for an empty slice.
#[must_use]
pub fn exact_quantile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basic() {
        let mut s = RunningStats::new();
        assert!(s.is_empty());
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn merge_matches_single_pass() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let mut whole = RunningStats::new();
        for &x in &data {
            whole.record(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &data[..37] {
            a.record(x);
        }
        for &x in &data[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = RunningStats::new();
        a.record(1.0);
        let b = RunningStats::new();
        let mut a2 = a.clone();
        a2.merge(&b);
        assert_eq!(a2, a);
        let mut empty = RunningStats::new();
        empty.merge(&a);
        assert_eq!(empty.mean(), 1.0);
    }

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.value(), 5);
    }

    #[test]
    fn histogram_bins_and_quantiles() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.record(i as f64 / 10.0);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.bin_counts().iter().sum::<u64>(), 100);
        let median = h.quantile(0.5);
        assert!((median - 5.0).abs() < 1.0, "median {median} not near 5");
        assert!(h.quantile(0.0) <= h.quantile(1.0));
    }

    #[test]
    fn histogram_overflow_underflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-1.0);
        h.record(2.0);
        h.record(0.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn time_weighted_average() {
        let mut twa = TimeWeightedAverage::new();
        twa.update(SimTime::from_secs(0.0), 10.0);
        twa.update(SimTime::from_secs(1.0), 20.0);
        // 10 for 1s, 20 for 3s => (10 + 60) / 4 = 17.5
        let avg = twa.finish(SimTime::from_secs(4.0));
        assert!((avg - 17.5).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_average_single_sample() {
        let mut twa = TimeWeightedAverage::new();
        twa.update(SimTime::from_secs(1.0), 3.0);
        assert_eq!(twa.average(), 3.0);
    }

    #[test]
    fn exact_quantile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(exact_quantile(&v, 0.0), 1.0);
        assert_eq!(exact_quantile(&v, 0.5), 3.0);
        assert_eq!(exact_quantile(&v, 1.0), 5.0);
        assert_eq!(exact_quantile(&[], 0.5), 0.0);
    }
}
