//! Stable content hashing for cache keys and journals.
//!
//! `std::hash` makes no stability promises across Rust versions, platforms or
//! processes (and `std`'s default hasher is randomly keyed), so anything that
//! persists a hash — the campaign journal, result caches — needs its own
//! hash with a pinned algorithm. [`StableHasher`] is FNV-1a 64: tiny, fully
//! specified, and byte-order independent because every input is folded in as
//! explicit little-endian bytes. The same inputs produce the same hash on
//! every platform, toolchain and run, forever.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64 hasher with a stable, documented algorithm.
///
/// Unlike `std::hash::Hasher` implementations, the digest is part of the
/// public contract: persisted artifacts (journal keys, cache files) may embed
/// it and expect it to match across runs and machines.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Folds raw bytes into the state.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a string in, framed by its length so `("ab", "c")` and
    /// `("a", "bc")` hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Folds a `u64` in as little-endian bytes.
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Folds an `f64` in by its IEEE-754 bit pattern (so `-0.0` and `0.0`
    /// hash differently, and NaN payloads are preserved).
    pub fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    /// The current digest.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot stable hash of a string.
#[must_use]
pub fn stable_hash_str(s: &str) -> u64 {
    let mut hasher = StableHasher::new();
    hasher.write_str(s);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_pinned() {
        // The algorithm is part of the public contract: persisted journal
        // keys depend on these exact values never changing.
        assert_eq!(StableHasher::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = StableHasher::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn framing_distinguishes_concatenations() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn floats_hash_by_bit_pattern() {
        let mut a = StableHasher::new();
        a.write_f64(0.0);
        let mut b = StableHasher::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn one_shot_matches_incremental() {
        let mut h = StableHasher::new();
        h.write_str("megacity-10000");
        assert_eq!(h.finish(), stable_hash_str("megacity-10000"));
    }
}
