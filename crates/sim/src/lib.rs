//! # vanet-sim — deterministic discrete-event simulation kernel
//!
//! This crate provides the simulation substrate used by every other crate in
//! the `vanet` workspace: simulation time, a deterministic event queue, a
//! scheduler, seeded random-number streams and a small statistics toolkit.
//!
//! The kernel is intentionally independent of any networking or mobility
//! concept so that it can be unit-tested in isolation and reused for both the
//! packet-level simulation (`vanet-net`) and the mobility updates
//! (`vanet-mobility`).
//!
//! # Example
//!
//! ```
//! use vanet_sim::{EventQueue, SimTime};
//!
//! let mut queue = EventQueue::new();
//! queue.push(SimTime::from_secs(2.0), "world");
//! queue.push(SimTime::from_secs(1.0), "hello");
//! let (t, msg) = queue.pop().unwrap();
//! assert_eq!(t, SimTime::from_secs(1.0));
//! assert_eq!(msg, "hello");
//! ```

#![warn(missing_docs)]

pub mod calendar;
pub mod error;
pub mod event;
pub mod hash;
pub mod ids;
pub mod pool;
pub mod rng;
pub mod scheduler;
pub mod stats;
pub mod time;
pub mod wheel;
pub mod window;

pub use calendar::CalendarQueue;
pub use error::SimError;
pub use event::{EventEntry, EventHandle, EventQueue};
pub use hash::{stable_hash_str, StableHasher};
pub use ids::{FlowId, NodeId, PacketId, PacketIdAllocator, SeqNo};
pub use pool::{available_workers, parallel_map_indexed, parallel_map_with_progress};
pub use rng::SimRng;
pub use scheduler::{Clock, Scheduler, TimerHandle};
pub use stats::{Counter, Histogram, RunningStats, TimeWeightedAverage};
pub use time::{SimDuration, SimTime};
pub use wheel::{TimerWheel, WheelHandle};
pub use window::WindowClock;
