//! Error types for the simulation kernel.

use crate::time::SimTime;
use std::error::Error;
use std::fmt;

/// Errors produced by the simulation kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// An event was scheduled in the past relative to the current clock.
    ScheduledInPast {
        /// The current simulation time.
        now: SimTime,
        /// The (invalid) requested time.
        requested: SimTime,
    },
    /// The simulation ran out of events before reaching the requested time.
    ExhaustedEvents {
        /// The time of the last processed event.
        last: SimTime,
    },
    /// A configuration value was invalid.
    InvalidConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ScheduledInPast { now, requested } => write!(
                f,
                "event scheduled in the past: now {now}, requested {requested}"
            ),
            SimError::ExhaustedEvents { last } => {
                write!(f, "event queue exhausted at {last}")
            }
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::ScheduledInPast {
            now: SimTime::from_secs(2.0),
            requested: SimTime::from_secs(1.0),
        };
        let msg = e.to_string();
        assert!(msg.contains("past"));
        assert!(msg.contains("2.0"));

        let e = SimError::InvalidConfig("bad".into());
        assert!(e.to_string().contains("bad"));

        let e = SimError::ExhaustedEvents {
            last: SimTime::from_secs(3.0),
        };
        assert!(e.to_string().contains("exhausted"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
