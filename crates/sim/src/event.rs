//! The deterministic event queue.
//!
//! Events are ordered primarily by their firing time, and secondarily by a
//! monotonically increasing sequence number assigned at insertion. The
//! sequence number makes processing order deterministic when several events
//! share the same timestamp — essential for reproducible simulations where two
//! runs with the same seed must produce byte-identical results.

// lint: hot-path

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::num::NonZeroU32;

/// A scheduled entry: the time, insertion sequence and payload.
#[derive(Debug, Clone)]
pub struct EventEntry<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Insertion order, used as a deterministic tie-breaker.
    pub seq: u64,
    /// The event payload.
    pub event: E,
    /// Cancellation flag index plus one (see
    /// [`EventQueue::push_cancellable`]); `NonZeroU32` keeps the niche-packed
    /// option at 4 bytes, which matters when millions of entries flow through
    /// the heap per simulated second.
    handle: Option<NonZeroU32>,
}

impl<E> PartialEq for EventEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for EventEntry<E> {}

impl<E> PartialOrd for EventEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for EventEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: reverse so the earliest time pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A handle that can be used to cancel a scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(usize);

/// A deterministic priority queue of timed events.
///
/// # Example
///
/// ```
/// use vanet_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(5.0), "late");
/// q.push(SimTime::from_secs(5.0), "late-too, but inserted second");
/// q.push(SimTime::from_secs(1.0), "early");
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "late");
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<EventEntry<E>>,
    next_seq: u64,
    cancelled: Vec<bool>,
    live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            // lint: allow(P1) — construction, once per queue.
            cancelled: Vec::new(),
            live: 0,
        }
    }

    /// Number of live (non-cancelled) events in the queue.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the queue holds no live events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.push_with_seq(time, seq, event);
    }

    /// Schedules `event` at `time` with a caller-assigned tie-break sequence
    /// number. Used by [`Scheduler`](crate::Scheduler), which shares one
    /// sequence counter between this heap and its batched timer wheel so that
    /// the merged pop order is identical to a single queue's.
    ///
    /// `seq` must be strictly larger than any sequence number already used,
    /// or same-time ordering becomes unspecified.
    pub fn push_with_seq(&mut self, time: SimTime, seq: u64, event: E) {
        self.next_seq = self.next_seq.max(seq + 1);
        self.live += 1;
        self.heap.push(EventEntry {
            time,
            seq,
            event,
            handle: None,
        });
    }

    /// Schedules `event` at `time` and returns a handle that can later be
    /// passed to [`EventQueue::cancel`].
    pub fn push_cancellable(&mut self, time: SimTime, event: E) -> EventHandle {
        let seq = self.next_seq;
        self.push_cancellable_with_seq(time, seq, event)
    }

    /// Like [`EventQueue::push_with_seq`], returning a cancellation handle.
    pub fn push_cancellable_with_seq(&mut self, time: SimTime, seq: u64, event: E) -> EventHandle {
        self.next_seq = self.next_seq.max(seq + 1);
        self.live += 1;
        let idx = self.cancelled.len();
        self.cancelled.push(false);
        let tag = u32::try_from(idx + 1).expect("more than u32::MAX cancellable events");
        self.heap.push(EventEntry {
            time,
            seq,
            event,
            handle: NonZeroU32::new(tag),
        });
        EventHandle(idx)
    }

    /// Cancels a previously scheduled event. Cancelling an already-fired or
    /// already-cancelled event is a no-op and returns `false`.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        match self.cancelled.get_mut(handle.0) {
            Some(flag) if !*flag => {
                *flag = true;
                self.live = self.live.saturating_sub(1);
                true
            }
            _ => false,
        }
    }

    /// Returns the time of the next live event without removing it.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.drop_cancelled_head();
        self.heap.peek().map(|e| e.time)
    }

    /// Returns the `(time, seq)` key of the next live event without removing
    /// it — the key the scheduler merges against its timer wheel.
    #[must_use]
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        self.drop_cancelled_head();
        self.heap.peek().map(|e| (e.time, e.seq))
    }

    /// Removes and returns the next live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let entry = self.heap.pop()?;
            if let Some(tag) = entry.handle {
                let idx = tag.get() as usize - 1;
                if self.cancelled[idx] {
                    continue;
                }
                // Mark fired so a later cancel() is a no-op.
                self.cancelled[idx] = true;
            }
            self.live = self.live.saturating_sub(1);
            return Some((entry.time, entry.event));
        }
    }

    /// An approximate preview of events that will pop soon: the first `k`
    /// entries of the underlying heap array. The heap's array order is not
    /// sorted, but its prefix is heavily biased towards the smallest keys,
    /// which is exactly what a cache-warming pass wants — callers use this
    /// to touch the state upcoming events will need so the misses overlap
    /// instead of serialising. Purely advisory: no ordering guarantee.
    pub fn peek_upcoming(&self, k: usize) -> impl Iterator<Item = &E> {
        self.heap.iter().take(k).map(|entry| &entry.event)
    }

    /// Drops all events, leaving the queue empty. Handles issued before the
    /// clear become permanently dead (their flags are tombstoned, not
    /// recycled, so they can never alias an event pushed afterwards).
    pub fn clear(&mut self) {
        self.heap.clear();
        for flag in &mut self.cancelled {
            *flag = true;
        }
        self.live = 0;
    }

    fn drop_cancelled_head(&mut self) {
        while let Some(entry) = self.heap.peek() {
            match entry.handle {
                Some(tag) if self.cancelled[tag.get() as usize - 1] => {
                    self.heap.pop();
                }
                _ => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3.0), 3);
        q.push(SimTime::from_secs(1.0), 1);
        q.push(SimTime::from_secs(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..10 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_removes_event() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1.0), "keep");
        let h = q.push_cancellable(SimTime::from_secs(0.5), "drop");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(h));
        assert!(!q.cancel(h), "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "keep");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let h = q.push_cancellable(SimTime::from_secs(0.5), "x");
        assert_eq!(q.pop().unwrap().1, "x");
        assert!(!q.cancel(h));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.push_cancellable(SimTime::from_secs(1.0), "a");
        q.push(SimTime::from_secs(2.0), "b");
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2.0)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1.0), 1);
        q.push(SimTime::from_secs(2.0), 2);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::from_secs(1.0), 1);
        let h = q.push_cancellable(SimTime::from_secs(2.0), 2);
        assert_eq!(q.len(), 2);
        q.cancel(h);
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
    }
}
