//! Fixed-interval window bookkeeping for streaming telemetry.
//!
//! A [`WindowClock`] maps the simulation clock onto consecutive
//! fixed-width windows `[0, w), [w, 2w), …` and reports, as time advances,
//! which windows have *closed* — i.e. can never receive another sample
//! because the clock has moved past their right edge. Taps use it to decide
//! when a window's counters are final and may be sealed (medium-stats deltas
//! snapshotted, derived values computed).
//!
//! The mapping is a pure function of the window width and the observed
//! times, so two runs that observe the same event times seal the same
//! windows in the same order — the windowing layer adds no nondeterminism
//! of its own.

use crate::time::{SimDuration, SimTime};

/// Assigns simulation times to consecutive fixed-width windows and tracks
/// which windows have closed as the clock advances.
#[derive(Debug, Clone)]
pub struct WindowClock {
    width_s: f64,
    /// Index of the first window that has not been sealed yet.
    open: usize,
}

impl WindowClock {
    /// A clock with the given window width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero — every event would seal infinitely many
    /// windows.
    #[must_use]
    pub fn new(width: SimDuration) -> Self {
        assert!(
            width.as_secs() > 0.0,
            "telemetry window width must be positive"
        );
        WindowClock {
            width_s: width.as_secs(),
            open: 0,
        }
    }

    /// The window width.
    #[must_use]
    pub fn width(&self) -> SimDuration {
        SimDuration::from_secs(self.width_s)
    }

    /// The window index a time falls into (`t / width`, floored).
    #[must_use]
    pub fn index_of(&self, t: SimTime) -> usize {
        (t.as_secs() / self.width_s) as usize
    }

    /// Index of the earliest window not yet sealed.
    #[must_use]
    pub fn open_index(&self) -> usize {
        self.open
    }

    /// Advances the clock to `now` and returns the range of window indices
    /// that just closed (possibly empty). A window `[i·w, (i+1)·w)` closes
    /// once `now` reaches `(i+1)·w`; the range is yielded exactly once.
    pub fn advance(&mut self, now: SimTime) -> std::ops::Range<usize> {
        let current = self.index_of(now);
        let closed = self.open..current.max(self.open);
        self.open = current.max(self.open);
        closed
    }

    /// Seals every window up to and including the one containing `end`
    /// (used at end-of-run, where the final partial window must still be
    /// flushed). Returns the closed range.
    pub fn finish(&mut self, end: SimTime) -> std::ops::Range<usize> {
        let last = self.index_of(end);
        let closed = self.open..(last + 1).max(self.open);
        self.open = (last + 1).max(self.open);
        closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_close_as_time_passes_each_boundary() {
        let mut clock = WindowClock::new(SimDuration::from_secs(1.0));
        assert_eq!(clock.advance(SimTime::from_secs(0.4)), 0..0);
        assert_eq!(clock.advance(SimTime::from_secs(0.9)), 0..0);
        // Crossing 1.0 closes window 0.
        assert_eq!(clock.advance(SimTime::from_secs(1.0)), 0..1);
        // No double-close.
        assert_eq!(clock.advance(SimTime::from_secs(1.5)), 1..1);
        // A long gap closes several windows at once.
        assert_eq!(clock.advance(SimTime::from_secs(4.2)), 1..4);
        assert_eq!(clock.open_index(), 4);
    }

    #[test]
    fn finish_seals_the_partial_final_window() {
        let mut clock = WindowClock::new(SimDuration::from_secs(2.0));
        assert_eq!(clock.advance(SimTime::from_secs(3.0)), 0..1);
        assert_eq!(clock.finish(SimTime::from_secs(3.0)), 1..2);
        // Finishing twice yields nothing new.
        assert_eq!(clock.finish(SimTime::from_secs(3.0)), 2..2);
    }

    #[test]
    fn index_of_is_a_pure_floor() {
        let clock = WindowClock::new(SimDuration::from_secs(0.5));
        assert_eq!(clock.index_of(SimTime::ZERO), 0);
        assert_eq!(clock.index_of(SimTime::from_secs(0.49)), 0);
        assert_eq!(clock.index_of(SimTime::from_secs(0.5)), 1);
        assert_eq!(clock.index_of(SimTime::from_secs(7.75)), 15);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_width_panics() {
        let _ = WindowClock::new(SimDuration::ZERO);
    }
}
