//! Deterministic random-number streams.
//!
//! Every stochastic component in the simulation (mobility, channel fading,
//! traffic generation, protocol jitter) draws from a [`SimRng`] derived from
//! the scenario master seed. Components receive *independent streams* derived
//! from the master seed and a stream label, so adding randomness to one
//! component never perturbs the draws seen by another — a property the
//! deterministic-replay integration tests rely on.
//!
//! The generator is a self-contained xoshiro256++ seeded through SplitMix64,
//! so the kernel carries no external dependencies and the byte-exact replay
//! guarantee holds across platforms and toolchains.

/// A seeded random number generator with named sub-stream derivation.
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    state: [u64; 4],
}

/// One SplitMix64 step: advances `x` and returns the next output.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut x = seed;
        let state = [
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
        ];
        SimRng { seed, state }
    }

    /// The seed this generator was created from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent stream identified by `label`.
    ///
    /// Streams derived with the same `(seed, label)` pair are identical;
    /// streams with different labels are statistically independent.
    #[must_use]
    pub fn derive(&self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SimRng::new(self.seed ^ h.rotate_left(17))
    }

    /// Derives an independent stream for a numbered entity (e.g. a node).
    #[must_use]
    pub fn derive_index(&self, label: &str, index: u64) -> SimRng {
        let base = self.derive(label);
        SimRng::new(base.seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// The next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// The next raw 32-bit output (upper half of [`SimRng::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits give every representable double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn uniform_range(&mut self, low: f64, high: f64) -> f64 {
        assert!(low < high, "uniform_range requires low < high");
        low + (high - low) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "uniform_usize requires n > 0");
        // Lemire-style widening multiply with rejection keeps the draw
        // unbiased for every n, not just powers of two.
        let n = n as u64;
        let mut m = u128::from(self.next_u64()) * u128::from(n);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                m = u128::from(self.next_u64()) * u128::from(n);
                low = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Bernoulli trial returning `true` with probability `p` (clamped to [0,1]).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Picks a uniformly random element from a slice, or `None` if empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.uniform_usize(items.len())])
        }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.uniform_usize(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derived_streams_are_reproducible_and_independent() {
        let root = SimRng::new(7);
        let mut a1 = root.derive("mobility");
        let mut a2 = root.derive("mobility");
        let mut b = root.derive("channel");
        let sa1: Vec<u64> = (0..8).map(|_| a1.next_u64()).collect();
        let sa2: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(sa1, sa2);
        assert_ne!(sa1, sb);
    }

    #[test]
    fn derive_index_distinguishes_entities() {
        let root = SimRng::new(7);
        let mut n0 = root.derive_index("node", 0);
        let mut n1 = root.derive_index("node", 1);
        assert_ne!(n0.next_u64(), n1.next_u64());
    }

    #[test]
    fn uniform_range_respects_bounds() {
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            let x = rng.uniform_range(5.0, 6.0);
            assert!((5.0..6.0).contains(&x));
        }
    }

    #[test]
    fn uniform_usize_covers_range_without_bias_hotspots() {
        let mut rng = SimRng::new(17);
        let n = 7;
        let mut counts = vec![0u32; n];
        for _ in 0..70_000 {
            counts[rng.uniform_usize(n)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (f64::from(c) / 10_000.0 - 1.0).abs() < 0.05,
                "bucket {i} count {c} too far from uniform"
            );
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_mean_is_about_p() {
        let mut rng = SimRng::new(11);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.chance(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!(
            (freq - 0.3).abs() < 0.02,
            "frequency {freq} too far from 0.3"
        );
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SimRng::new(9);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(rng.choose(&items).unwrap()));

        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
        assert_ne!(v, orig, "shuffle of 50 elements should change order");
    }
}
