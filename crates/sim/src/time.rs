//! Simulation time and durations.
//!
//! Simulation time is represented as seconds in an `f64`. The newtypes
//! [`SimTime`] and [`SimDuration`] keep instants and intervals apart at the
//! type level (mixing them up is a classic simulation bug) and provide a
//! *total* ordering so they can be used as keys in the event queue.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in seconds since the start of the run.
///
/// `SimTime` implements a total ordering; constructing it from a NaN value is
/// a programming error and panics (see [`SimTime::from_secs`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SimTime(f64);

/// A length of simulated time, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SimDuration(f64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// A time later than every time a simulation will ever reach.
    pub const MAX: SimTime = SimTime(f64::MAX);

    /// Creates a time from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "simulation time must not be NaN");
        SimTime(secs)
    }

    /// Creates a time from milliseconds.
    #[must_use]
    pub fn from_millis(millis: f64) -> Self {
        Self::from_secs(millis / 1_000.0)
    }

    /// Returns the time as seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the time as milliseconds.
    #[must_use]
    pub fn as_millis(self) -> f64 {
        self.0 * 1_000.0
    }

    /// Duration elapsed since `earlier`. Returns [`SimDuration::ZERO`] if
    /// `earlier` is in the future.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        if earlier.0 > self.0 {
            SimDuration::ZERO
        } else {
            SimDuration(self.0 - earlier.0)
        }
    }

    /// Returns the later of two times.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two times.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// A duration longer than any simulation run.
    pub const MAX: SimDuration = SimDuration(f64::MAX);

    /// Creates a duration from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN or negative.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "duration must not be NaN");
        assert!(secs >= 0.0, "duration must not be negative, got {secs}");
        SimDuration(secs)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub fn from_millis(millis: f64) -> Self {
        Self::from_secs(millis / 1_000.0)
    }

    /// Creates a possibly-infinite duration; negative input is clamped to zero.
    #[must_use]
    pub fn from_secs_saturating(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            SimDuration::ZERO
        } else {
            SimDuration(secs)
        }
    }

    /// Returns the duration as seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the duration as milliseconds.
    #[must_use]
    pub fn as_millis(self) -> f64 {
        self.0 * 1_000.0
    }

    /// Whether this duration is zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Whether this duration is infinite (or `MAX`).
    #[must_use]
    pub fn is_infinite(self) -> bool {
        self.0.is_infinite() || self.0 == f64::MAX
    }

    /// Returns the smaller of two durations.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two durations.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // lint: allow(F1) — SimTime IS the total-order wrapper: every
        // constructor rejects NaN, so partial_cmp is total here.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Eq for SimDuration {}

impl Ord for SimDuration {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            // lint: allow(F1) — SimDuration IS the total-order wrapper:
            // every constructor rejects NaN, so partial_cmp is total here.
            .partial_cmp(&other.0)
            .expect("SimDuration is never NaN")
    }
}

impl PartialOrd for SimDuration {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration::from_secs_saturating(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration::from_secs_saturating(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_saturating(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_saturating(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;

    fn div(self, rhs: SimDuration) -> f64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl From<SimDuration> for f64 {
    fn from(d: SimDuration) -> f64 {
        d.0
    }
}

impl From<SimTime> for f64 {
    fn from(t: SimTime) -> f64 {
        t.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(10.0);
        let d = SimDuration::from_secs(2.5);
        assert_eq!((t + d).as_secs(), 12.5);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn subtracting_later_time_saturates() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(5.0);
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(4.0));
    }

    #[test]
    fn ordering_is_total() {
        let mut times = vec![
            SimTime::from_secs(3.0),
            SimTime::from_secs(1.0),
            SimTime::from_secs(2.0),
        ];
        times.sort();
        assert_eq!(
            times,
            vec![
                SimTime::from_secs(1.0),
                SimTime::from_secs(2.0),
                SimTime::from_secs(3.0)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs(-1.0);
    }

    #[test]
    fn millis_conversions() {
        assert_eq!(SimTime::from_millis(1500.0).as_secs(), 1.5);
        assert_eq!(SimDuration::from_millis(250.0).as_secs(), 0.25);
        assert_eq!(SimDuration::from_secs(0.25).as_millis(), 250.0);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(4.0);
        assert_eq!((d * 0.5).as_secs(), 2.0);
        assert_eq!((d / 2.0).as_secs(), 2.0);
        assert_eq!(d / SimDuration::from_secs(2.0), 2.0);
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let da = SimDuration::from_secs(1.0);
        let db = SimDuration::from_secs(2.0);
        assert_eq!(da.max(db), db);
        assert_eq!(da.min(db), da);
    }

    #[test]
    fn saturating_constructor_clamps() {
        assert_eq!(SimDuration::from_secs_saturating(-3.0), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_saturating(f64::NAN),
            SimDuration::ZERO
        );
        assert_eq!(SimDuration::from_secs_saturating(3.0).as_secs(), 3.0);
    }
}
