//! A minimal work-stealing worker pool for embarrassingly parallel jobs.
//!
//! Experiment campaigns expand into many independent simulation jobs; this
//! module runs `f(0..n)` across a fixed set of `std::thread` workers that
//! *steal* job indices from a shared atomic counter. Results land in their
//! job's slot, so the returned vector is always in job order regardless of
//! which worker ran which job or in what order they finished — the foundation
//! of the runner's "parallel results are byte-identical to serial" guarantee.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of workers to use by default: the available hardware parallelism,
/// or 1 if it cannot be determined.
#[must_use]
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f(i)` for every `i in 0..n` on `workers` threads and returns the
/// results in index order.
///
/// With `workers <= 1` the jobs run serially on the calling thread; the
/// results are identical either way because each job depends only on its
/// index. Panics in `f` propagate to the caller.
pub fn parallel_map_indexed<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_with_progress(n, workers, f, |_, _, _| {})
}

/// Like [`parallel_map_indexed`], but invokes `progress(job, done, total)`
/// after each job completes (from the worker that ran it), where `done` is
/// the number of jobs finished so far including this one.
pub fn parallel_map_with_progress<T, F, P>(n: usize, workers: usize, f: F, progress: P) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    P: Fn(usize, usize, usize) + Sync,
{
    let workers = workers.max(1).min(n.max(1));
    if workers <= 1 {
        return (0..n)
            .map(|i| {
                let v = f(i);
                progress(i, i + 1, n);
                v
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let v = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(v);
                let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                progress(i, finished, n);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job index below n is executed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_job_order() {
        let out = parallel_map_indexed(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial = parallel_map_indexed(37, 1, |i| i as u64 * 0x9e37_79b9);
        let parallel = parallel_map_indexed(37, 6, |i| i as u64 * 0x9e37_79b9);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<u8> = parallel_map_indexed(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn progress_reports_every_job() {
        let seen = AtomicUsize::new(0);
        let _ = parallel_map_with_progress(
            25,
            4,
            |i| i,
            |_, _, total| {
                assert_eq!(total, 25);
                seen.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(seen.load(Ordering::Relaxed), 25);
    }

    #[test]
    fn available_workers_is_positive() {
        assert!(available_workers() >= 1);
    }
}
