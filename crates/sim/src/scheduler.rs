//! The simulation scheduler: a clock plus an event queue.
//!
//! [`Scheduler`] is generic over the event payload type `E`. The owning
//! simulation drives it with a simple loop:
//!
//! ```
//! use vanet_sim::{Scheduler, SimDuration, SimTime};
//!
//! #[derive(Debug)]
//! enum Ev { Tick(u32) }
//!
//! let mut sched = Scheduler::new();
//! sched.schedule_after(SimDuration::from_secs(1.0), Ev::Tick(1));
//! sched.schedule_after(SimDuration::from_secs(2.0), Ev::Tick(2));
//!
//! let mut fired = Vec::new();
//! while let Some((time, ev)) = sched.next_event() {
//!     match ev {
//!         Ev::Tick(n) => fired.push((time.as_secs(), n)),
//!     }
//! }
//! assert_eq!(fired, vec![(1.0, 1), (2.0, 2)]);
//! ```

use crate::error::SimError;
use crate::event::{EventHandle, EventQueue};
use crate::time::{SimDuration, SimTime};

/// Read-only access to the current simulation time.
pub trait Clock {
    /// The current simulation time.
    fn now(&self) -> SimTime;
}

/// A discrete-event scheduler combining a clock and an event queue.
#[derive(Debug, Clone)]
pub struct Scheduler<E> {
    now: SimTime,
    queue: EventQueue<E>,
    processed: u64,
    horizon: Option<SimTime>,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Clock for Scheduler<E> {
    fn now(&self) -> SimTime {
        self.now
    }
}

impl<E> Scheduler<E> {
    /// Creates a scheduler with the clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            processed: 0,
            horizon: None,
        }
    }

    /// Creates a scheduler that refuses to advance past `horizon`.
    #[must_use]
    pub fn with_horizon(horizon: SimTime) -> Self {
        let mut s = Self::new();
        s.horizon = Some(horizon);
        s
    }

    /// The current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    #[must_use]
    pub fn processed_events(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Whether no events remain.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Schedules an event at an absolute time.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ScheduledInPast`] if `time` is before the current
    /// clock value.
    pub fn schedule_at(&mut self, time: SimTime, event: E) -> Result<(), SimError> {
        if time < self.now {
            return Err(SimError::ScheduledInPast {
                now: self.now,
                requested: time,
            });
        }
        self.queue.push(time, event);
        Ok(())
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedules an event `delay` after the current time, returning a handle
    /// that can be used to cancel it.
    pub fn schedule_after_cancellable(&mut self, delay: SimDuration, event: E) -> EventHandle {
        self.queue.push_cancellable(self.now + delay, event)
    }

    /// Cancels a previously scheduled event.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.queue.cancel(handle)
    }

    /// Time of the next pending event, if any.
    #[must_use]
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Pops the next event and advances the clock to its time.
    ///
    /// Returns `None` when the queue is empty or the next event lies beyond
    /// the configured horizon.
    pub fn next_event(&mut self) -> Option<(SimTime, E)> {
        let next_time = self.queue.peek_time()?;
        if let Some(h) = self.horizon {
            if next_time > h {
                return None;
            }
        }
        let (time, event) = self.queue.pop()?;
        debug_assert!(
            time >= self.now,
            "event queue returned an event in the past"
        );
        self.now = time;
        self.processed += 1;
        Some((time, event))
    }

    /// Advances the clock to `time` without processing events.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ScheduledInPast`] if `time` is before the clock.
    pub fn advance_to(&mut self, time: SimTime) -> Result<(), SimError> {
        if time < self.now {
            return Err(SimError::ScheduledInPast {
                now: self.now,
                requested: time,
            });
        }
        self.now = time;
        Ok(())
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        A,
        B,
        C,
    }

    #[test]
    fn clock_advances_with_events() {
        let mut s = Scheduler::new();
        s.schedule_after(SimDuration::from_secs(2.0), Ev::B);
        s.schedule_after(SimDuration::from_secs(1.0), Ev::A);
        assert_eq!(s.now(), SimTime::ZERO);
        let (t, e) = s.next_event().unwrap();
        assert_eq!(e, Ev::A);
        assert_eq!(t, SimTime::from_secs(1.0));
        assert_eq!(s.now(), t);
        let (t, e) = s.next_event().unwrap();
        assert_eq!(e, Ev::B);
        assert_eq!(s.now(), t);
        assert!(s.next_event().is_none());
        assert_eq!(s.processed_events(), 2);
    }

    #[test]
    fn scheduling_in_the_past_is_rejected() {
        let mut s = Scheduler::new();
        s.schedule_after(SimDuration::from_secs(5.0), Ev::A);
        s.next_event();
        let err = s.schedule_at(SimTime::from_secs(1.0), Ev::B).unwrap_err();
        assert!(matches!(err, SimError::ScheduledInPast { .. }));
    }

    #[test]
    fn horizon_stops_processing() {
        let mut s = Scheduler::with_horizon(SimTime::from_secs(1.5));
        s.schedule_after(SimDuration::from_secs(1.0), Ev::A);
        s.schedule_after(SimDuration::from_secs(2.0), Ev::B);
        assert!(s.next_event().is_some());
        assert!(
            s.next_event().is_none(),
            "event beyond horizon must not fire"
        );
        assert_eq!(s.pending_events(), 1);
    }

    #[test]
    fn cancellable_events() {
        let mut s = Scheduler::new();
        let h = s.schedule_after_cancellable(SimDuration::from_secs(1.0), Ev::A);
        s.schedule_after(SimDuration::from_secs(2.0), Ev::C);
        assert!(s.cancel(h));
        let (_, e) = s.next_event().unwrap();
        assert_eq!(e, Ev::C);
    }

    #[test]
    fn advance_to_moves_clock() {
        let mut s: Scheduler<Ev> = Scheduler::new();
        s.advance_to(SimTime::from_secs(10.0)).unwrap();
        assert_eq!(s.now(), SimTime::from_secs(10.0));
        assert!(s.advance_to(SimTime::from_secs(5.0)).is_err());
    }

    #[test]
    fn is_idle_and_clear() {
        let mut s = Scheduler::new();
        assert!(s.is_idle());
        s.schedule_after(SimDuration::from_secs(1.0), Ev::A);
        assert!(!s.is_idle());
        s.clear();
        assert!(s.is_idle());
    }
}
