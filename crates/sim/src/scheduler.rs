//! The simulation scheduler: a clock plus an event queue.
//!
//! [`Scheduler`] is generic over the event payload type `E`. The owning
//! simulation drives it with a simple loop:
//!
//! ```
//! use vanet_sim::{Scheduler, SimDuration, SimTime};
//!
//! #[derive(Debug)]
//! enum Ev { Tick(u32) }
//!
//! let mut sched = Scheduler::new();
//! sched.schedule_after(SimDuration::from_secs(1.0), Ev::Tick(1));
//! sched.schedule_after(SimDuration::from_secs(2.0), Ev::Tick(2));
//!
//! let mut fired = Vec::new();
//! while let Some((time, ev)) = sched.next_event() {
//!     match ev {
//!         Ev::Tick(n) => fired.push((time.as_secs(), n)),
//!     }
//! }
//! assert_eq!(fired, vec![(1.0, 1), (2.0, 2)]);
//! ```

use crate::calendar::CalendarQueue;
use crate::error::SimError;
use crate::event::{EventHandle, EventQueue};
use crate::time::{SimDuration, SimTime};
use crate::wheel::{TimerWheel, WheelHandle};

/// A cancellation handle for a batched timer: depending on how far out the
/// deadline was, the entry landed on the wheel or fell back to the heap (see
/// [`Scheduler::schedule_batched_after_cancellable`]); the handle remembers
/// which, so [`Scheduler::cancel_timer`] revokes it either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimerHandle {
    /// The timer lives in the event heap.
    Heap(EventHandle),
    /// The timer lives on the batched wheel.
    Wheel(WheelHandle),
}

/// Read-only access to the current simulation time.
pub trait Clock {
    /// The current simulation time.
    fn now(&self) -> SimTime;
}

/// Which tier holds the next pending event (see [`Scheduler::peek_merged`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tier {
    Heap,
    Wheel,
    Calendar,
}

/// A discrete-event scheduler combining a clock, an event queue, an optional
/// batched timer wheel for high-volume periodic events, and an optional
/// calendar queue for dense near-future events (in-flight packet arrivals).
///
/// All three tiers share one sequence counter, and [`Scheduler::next_event`]
/// pops whichever holds the smallest `(time, seq)` key — so enabling
/// batching or the calendar never changes the order events fire in, only the
/// cost of scheduling them.
#[derive(Debug, Clone)]
pub struct Scheduler<E> {
    now: SimTime,
    queue: EventQueue<E>,
    wheel: Option<TimerWheel<E>>,
    calendar: Option<CalendarQueue<E>>,
    seq: u64,
    processed: u64,
    horizon: Option<SimTime>,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Clock for Scheduler<E> {
    fn now(&self) -> SimTime {
        self.now
    }
}

impl<E> Scheduler<E> {
    /// Creates a scheduler with the clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            wheel: None,
            calendar: None,
            seq: 0,
            processed: 0,
            horizon: None,
        }
    }

    /// Creates a scheduler that refuses to advance past `horizon`.
    #[must_use]
    pub fn with_horizon(horizon: SimTime) -> Self {
        let mut s = Self::new();
        s.horizon = Some(horizon);
        s
    }

    /// The current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    #[must_use]
    pub fn processed_events(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.queue.len()
            + self.wheel.as_ref().map_or(0, TimerWheel::len)
            + self.calendar.as_ref().map_or(0, CalendarQueue::len)
    }

    /// Whether no events remain.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.pending_events() == 0
    }

    /// Enables the batched timer wheel with `slot`-wide buckets. Call once,
    /// before the first [`Scheduler::schedule_batched_after`]; pick the slot
    /// close to the period of the batched events (e.g. the beacon interval).
    ///
    /// # Panics
    ///
    /// Panics unless `slot` is positive and finite.
    pub fn enable_batching(&mut self, slot: SimDuration) {
        if self.wheel.is_none() {
            self.wheel = Some(TimerWheel::new(slot));
        }
    }

    /// Enables the calendar-queue tier with `buckets` ring buckets each
    /// `bucket` wide. Once enabled, [`Scheduler::schedule_at`] and
    /// [`Scheduler::schedule_after`] route events landing inside the
    /// calendar's window (`buckets × bucket` ahead) through the ring instead
    /// of the heap; anything further out still goes to the heap. Fire order
    /// is identical either way — the calendar shares the scheduler-wide
    /// `(time, seq)` keys and `next_event` merges all tiers by that key.
    ///
    /// # Panics
    ///
    /// Panics unless `bucket` is positive and finite and `buckets > 0`.
    pub fn enable_calendar(&mut self, bucket: SimDuration, buckets: usize) {
        if self.calendar.is_none() {
            self.calendar = Some(CalendarQueue::new(bucket, buckets));
        }
    }

    /// Routes `(time, seq, event)` to the calendar when it is enabled and
    /// `time` is inside its window, to the heap otherwise.
    fn push_near(&mut self, time: SimTime, seq: u64, event: E) {
        if let Some(cal) = &mut self.calendar {
            cal.reanchor(self.now);
            if cal.accepts(time) {
                cal.push(time, seq, event);
                return;
            }
        }
        self.queue.push_with_seq(time, seq, event);
    }

    fn next_seq(&mut self) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        seq
    }

    /// Schedules an event at an absolute time.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ScheduledInPast`] if `time` is before the current
    /// clock value.
    pub fn schedule_at(&mut self, time: SimTime, event: E) -> Result<(), SimError> {
        if time < self.now {
            return Err(SimError::ScheduledInPast {
                now: self.now,
                requested: time,
            });
        }
        let seq = self.next_seq();
        self.push_near(time, seq, event);
        Ok(())
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        let seq = self.next_seq();
        self.push_near(self.now + delay, seq, event);
    }

    /// Schedules an event `delay` after the current time through the batched
    /// timer wheel: an O(1) bucket push instead of a heap insertion. Intended
    /// for the per-node periodic timers (beacons) that would otherwise
    /// dominate the heap — i.e. events landing within a few slot widths of
    /// now. Falls back to the heap when batching is disabled or the delay is
    /// so far ahead that bucketing it would allocate a long run of empty
    /// slots ([`TimerWheel::MAX_SLOTS_AHEAD`]).
    ///
    /// Fire order is identical either way — the wheel shares the queue's
    /// sequence counter and `next_event` merges the two by `(time, seq)`.
    pub fn schedule_batched_after(&mut self, delay: SimDuration, event: E) {
        let time = self.now + delay;
        let seq = self.next_seq();
        match &mut self.wheel {
            Some(wheel) if wheel.accepts(time) => wheel.push(time, seq, event),
            _ => self.queue.push_with_seq(time, seq, event),
        }
    }

    /// Schedules an event `delay` after the current time, returning a handle
    /// that can be used to cancel it.
    pub fn schedule_after_cancellable(&mut self, delay: SimDuration, event: E) -> EventHandle {
        let seq = self.next_seq();
        self.queue
            .push_cancellable_with_seq(self.now + delay, seq, event)
    }

    /// Like [`Scheduler::schedule_batched_after`], returning a handle that
    /// revokes the deadline in O(1) — the lease pattern: re-arming a timer
    /// cancels the superseded deadline instead of letting it fire and be
    /// filtered by the consumer. The entry rides the wheel when it accepts
    /// the deadline and falls back to the heap otherwise; fire order is
    /// identical either way.
    pub fn schedule_batched_after_cancellable(
        &mut self,
        delay: SimDuration,
        event: E,
    ) -> TimerHandle {
        let time = self.now + delay;
        let seq = self.next_seq();
        match &mut self.wheel {
            Some(wheel) if wheel.accepts(time) => {
                TimerHandle::Wheel(wheel.push_cancellable(time, seq, event))
            }
            _ => TimerHandle::Heap(self.queue.push_cancellable_with_seq(time, seq, event)),
        }
    }

    /// Cancels a previously scheduled event.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.queue.cancel(handle)
    }

    /// Cancels a batched timer scheduled with
    /// [`Scheduler::schedule_batched_after_cancellable`]. Cancelling an
    /// already-fired or already-cancelled timer is a no-op returning `false`.
    pub fn cancel_timer(&mut self, handle: TimerHandle) -> bool {
        match handle {
            TimerHandle::Heap(h) => self.queue.cancel(h),
            TimerHandle::Wheel(h) => self.wheel.as_mut().is_some_and(|w| w.cancel(h)),
        }
    }

    /// The `(time, seq)` key of the next pending event across the heap, the
    /// wheel and the calendar, plus which tier holds it. Seq keys are
    /// globally unique, so the three-way minimum is unambiguous.
    fn peek_merged(&mut self) -> Option<(SimTime, u64, Tier)> {
        let mut best: Option<(SimTime, u64, Tier)> =
            self.queue.peek_key().map(|(t, s)| (t, s, Tier::Heap));
        if let Some((t, s)) = self.wheel.as_mut().and_then(TimerWheel::peek) {
            if !best.is_some_and(|(bt, bs, _)| (bt, bs) <= (t, s)) {
                best = Some((t, s, Tier::Wheel));
            }
        }
        if let Some((t, s)) = self.calendar.as_mut().and_then(CalendarQueue::peek) {
            if !best.is_some_and(|(bt, bs, _)| (bt, bs) <= (t, s)) {
                best = Some((t, s, Tier::Calendar));
            }
        }
        best
    }

    /// Time of the next pending event, if any.
    #[must_use]
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.peek_merged().map(|(time, _, _)| time)
    }

    /// Pops the next event and advances the clock to its time.
    ///
    /// Returns `None` when the queue is empty or the next event lies beyond
    /// the configured horizon.
    pub fn next_event(&mut self) -> Option<(SimTime, E)> {
        let (next_time, _, tier) = self.peek_merged()?;
        if let Some(h) = self.horizon {
            if next_time > h {
                return None;
            }
        }
        let (time, event) = match tier {
            Tier::Wheel => self.wheel.as_mut().expect("peek said wheel").pop()?,
            Tier::Calendar => self.calendar.as_mut().expect("peek said calendar").pop()?,
            Tier::Heap => self.queue.pop()?,
        };
        debug_assert!(
            time >= self.now,
            "event queue returned an event in the past"
        );
        self.now = time;
        self.processed += 1;
        Some((time, event))
    }

    /// An advisory preview of events likely to pop soon, drawn from the
    /// heap's array prefix, the wheel's activated slot and the calendar's
    /// activated bucket (see [`EventQueue::peek_upcoming`],
    /// [`TimerWheel::peek_upcoming`] and [`CalendarQueue::peek_upcoming`]).
    /// No ordering guarantee — intended for cache-warming the state the
    /// next few events will touch.
    pub fn peek_upcoming(&self, k: usize) -> impl Iterator<Item = &E> {
        self.queue
            .peek_upcoming(k)
            .chain(
                self.wheel
                    .iter()
                    .flat_map(move |wheel| wheel.peek_upcoming(k)),
            )
            .chain(
                self.calendar
                    .iter()
                    .flat_map(move |cal| cal.peek_upcoming(k)),
            )
    }

    /// Advances the clock to `time` without processing events.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ScheduledInPast`] if `time` is before the clock.
    pub fn advance_to(&mut self, time: SimTime) -> Result<(), SimError> {
        if time < self.now {
            return Err(SimError::ScheduledInPast {
                now: self.now,
                requested: time,
            });
        }
        self.now = time;
        Ok(())
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.queue.clear();
        if let Some(wheel) = &mut self.wheel {
            wheel.clear();
        }
        if let Some(cal) = &mut self.calendar {
            cal.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        A,
        B,
        C,
    }

    #[test]
    fn clock_advances_with_events() {
        let mut s = Scheduler::new();
        s.schedule_after(SimDuration::from_secs(2.0), Ev::B);
        s.schedule_after(SimDuration::from_secs(1.0), Ev::A);
        assert_eq!(s.now(), SimTime::ZERO);
        let (t, e) = s.next_event().unwrap();
        assert_eq!(e, Ev::A);
        assert_eq!(t, SimTime::from_secs(1.0));
        assert_eq!(s.now(), t);
        let (t, e) = s.next_event().unwrap();
        assert_eq!(e, Ev::B);
        assert_eq!(s.now(), t);
        assert!(s.next_event().is_none());
        assert_eq!(s.processed_events(), 2);
    }

    #[test]
    fn scheduling_in_the_past_is_rejected() {
        let mut s = Scheduler::new();
        s.schedule_after(SimDuration::from_secs(5.0), Ev::A);
        s.next_event();
        let err = s.schedule_at(SimTime::from_secs(1.0), Ev::B).unwrap_err();
        assert!(matches!(err, SimError::ScheduledInPast { .. }));
    }

    #[test]
    fn horizon_stops_processing() {
        let mut s = Scheduler::with_horizon(SimTime::from_secs(1.5));
        s.schedule_after(SimDuration::from_secs(1.0), Ev::A);
        s.schedule_after(SimDuration::from_secs(2.0), Ev::B);
        assert!(s.next_event().is_some());
        assert!(
            s.next_event().is_none(),
            "event beyond horizon must not fire"
        );
        assert_eq!(s.pending_events(), 1);
    }

    #[test]
    fn cancellable_events() {
        let mut s = Scheduler::new();
        let h = s.schedule_after_cancellable(SimDuration::from_secs(1.0), Ev::A);
        s.schedule_after(SimDuration::from_secs(2.0), Ev::C);
        assert!(s.cancel(h));
        let (_, e) = s.next_event().unwrap();
        assert_eq!(e, Ev::C);
    }

    #[test]
    fn advance_to_moves_clock() {
        let mut s: Scheduler<Ev> = Scheduler::new();
        s.advance_to(SimTime::from_secs(10.0)).unwrap();
        assert_eq!(s.now(), SimTime::from_secs(10.0));
        assert!(s.advance_to(SimTime::from_secs(5.0)).is_err());
    }

    #[test]
    fn batched_and_heap_events_fire_in_identical_merged_order() {
        // Interleave "beacon" (batched) and "arrival" (heap) events with
        // colliding timestamps; the pop order must equal a pure-heap
        // scheduler's, including same-time tie-breaks by scheduling order.
        let mut rng = crate::SimRng::new(42);
        let mut plan: Vec<(bool, f64)> = Vec::new();
        for _ in 0..500 {
            let batched = rng.chance(0.5);
            // Coarse timestamps force plenty of exact ties.
            let t = (rng.uniform_range(0.0, 20.0) * 4.0).round() / 4.0;
            plan.push((batched, t));
        }

        let mut plain: Scheduler<usize> = Scheduler::new();
        let mut wheeled: Scheduler<usize> = Scheduler::new();
        wheeled.enable_batching(SimDuration::from_secs(1.0));
        for (i, &(batched, t)) in plan.iter().enumerate() {
            let d = SimDuration::from_secs(t);
            plain.schedule_after(d, i);
            if batched {
                wheeled.schedule_batched_after(d, i);
            } else {
                wheeled.schedule_after(d, i);
            }
        }
        loop {
            let a = plain.next_event();
            let b = wheeled.next_event();
            assert_eq!(a, b, "merged pop order diverged");
            if a.is_none() {
                break;
            }
            // Re-schedule a fraction to exercise pushes into activated slots.
            if let Some((_, i)) = a {
                if i % 7 == 0 && plain.processed_events() < 700 {
                    let d = SimDuration::from_secs(0.3);
                    plain.schedule_after(d, i + 10_000);
                    wheeled.schedule_batched_after(d, i + 10_000);
                }
            }
        }
        assert_eq!(plain.processed_events(), wheeled.processed_events());
    }

    #[test]
    fn calendar_and_heap_events_fire_in_identical_merged_order() {
        // Randomized mix of near-future "arrivals" (inside the calendar
        // window), far-future events (heap fallback) and batched "beacons"
        // (wheel), with coarse timestamps forcing exact ties. The calendar-
        // enabled scheduler must pop in exactly the pure-heap order,
        // including same-time tie-breaks by scheduling order.
        let mut rng = crate::SimRng::new(7);
        let mut plain: Scheduler<usize> = Scheduler::new();
        let mut tiered: Scheduler<usize> = Scheduler::new();
        tiered.enable_batching(SimDuration::from_secs(1.0));
        tiered.enable_calendar(SimDuration::from_secs(0.001), 64);

        for i in 0..600 {
            let roll = rng.uniform_range(0.0, 1.0);
            let t = if roll < 0.6 {
                // Near-future arrival, quantised to force key collisions.
                (rng.uniform_range(0.0, 0.050) * 2_000.0).round() / 2_000.0
            } else {
                (rng.uniform_range(0.0, 5.0) * 4.0).round() / 4.0
            };
            let d = SimDuration::from_secs(t);
            // Every path consumes exactly one seq per event, so the two
            // schedulers' `(time, seq)` keys stay comparable.
            plain.schedule_after(d, i);
            if roll >= 0.9 {
                tiered.schedule_batched_after(d, i);
            } else {
                tiered.schedule_after(d, i);
            }
        }
        loop {
            let a = plain.next_event();
            let b = tiered.next_event();
            assert_eq!(a, b, "three-tier merged pop order diverged");
            if a.is_none() {
                break;
            }
            // Re-schedule a fraction from the current instant to exercise
            // pushes into the activated calendar bucket and ring wrap.
            if let Some((_, i)) = a {
                if i % 5 == 0 && plain.processed_events() < 900 {
                    let d = SimDuration::from_secs(0.0005);
                    plain.schedule_after(d, i + 10_000);
                    tiered.schedule_after(d, i + 10_000);
                }
            }
        }
        assert_eq!(plain.processed_events(), tiered.processed_events());
    }

    #[test]
    fn calendar_far_future_events_fall_back_to_heap_and_keep_order() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.enable_calendar(SimDuration::from_secs(0.001), 64);
        // Beyond the 64 ms window: must ride the heap and still fire in
        // order against in-window calendar entries.
        s.schedule_after(SimDuration::from_secs(10.0), 2);
        s.schedule_after(SimDuration::from_secs(0.005), 1);
        assert_eq!(s.pending_events(), 2);
        assert_eq!(s.next_event().unwrap().1, 1);
        assert_eq!(s.next_event().unwrap().1, 2);
        // After the idle jump to t=10 the ring must have reanchored so
        // near-future events are accepted again (pure perf concern; order
        // would be right either way).
        s.schedule_after(SimDuration::from_secs(0.001), 3);
        assert_eq!(s.next_event().unwrap().1, 3);
    }

    #[test]
    fn far_future_batched_events_fall_back_to_heap_and_keep_order() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.enable_batching(SimDuration::from_secs(1.0));
        // An hour-scale timer on a 1 s wheel must not allocate thousands of
        // empty slots; it goes to the heap and still fires in order.
        s.schedule_batched_after(SimDuration::from_secs(100_000.0), 2);
        s.schedule_batched_after(SimDuration::from_secs(1.0), 1);
        assert_eq!(s.pending_events(), 2);
        assert_eq!(s.next_event().unwrap().1, 1);
        assert_eq!(s.next_event().unwrap().1, 2);
    }

    #[test]
    fn batched_cancellable_timers_cancel_on_wheel_and_heap() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.enable_batching(SimDuration::from_secs(1.0));
        // Near deadline lands on the wheel, far deadline falls back to heap.
        let near = s.schedule_batched_after_cancellable(SimDuration::from_secs(1.0), 1);
        let far = s.schedule_batched_after_cancellable(SimDuration::from_secs(100_000.0), 2);
        assert!(matches!(near, TimerHandle::Wheel(_)));
        assert!(matches!(far, TimerHandle::Heap(_)));
        s.schedule_after(SimDuration::from_secs(2.0), 3);
        assert!(s.cancel_timer(near));
        assert!(s.cancel_timer(far));
        assert!(!s.cancel_timer(near), "double cancel is a no-op");
        assert_eq!(s.next_event().unwrap().1, 3);
        assert!(s.next_event().is_none());
    }

    #[test]
    fn renewed_lease_fires_once_at_the_latest_deadline() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.enable_batching(SimDuration::from_secs(1.0));
        let mut lease = s.schedule_batched_after_cancellable(SimDuration::from_secs(3.0), "lease");
        for _ in 0..3 {
            assert!(s.cancel_timer(lease));
            lease = s.schedule_batched_after_cancellable(SimDuration::from_secs(4.0), "lease");
        }
        let (time, event) = s.next_event().unwrap();
        assert_eq!(event, "lease");
        assert_eq!(time, SimTime::from_secs(4.0));
        assert!(s.next_event().is_none());
    }

    #[test]
    fn batching_without_enable_falls_back_to_heap() {
        let mut s: Scheduler<Ev> = Scheduler::new();
        s.schedule_batched_after(SimDuration::from_secs(1.0), Ev::A);
        assert_eq!(s.pending_events(), 1);
        assert_eq!(s.next_event().unwrap().1, Ev::A);
    }

    #[test]
    fn is_idle_and_clear() {
        let mut s = Scheduler::new();
        assert!(s.is_idle());
        s.schedule_after(SimDuration::from_secs(1.0), Ev::A);
        assert!(!s.is_idle());
        s.clear();
        assert!(s.is_idle());
    }
}
