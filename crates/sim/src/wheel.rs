//! A bucketed timer wheel for high-volume periodic events (beacons).
//!
//! A fleet of N beaconing nodes costs the binary-heap scheduler `O(log Q)`
//! per beacon with `Q ≈ N` pending timers. [`TimerWheel`] instead hashes
//! timers into slots one beacon interval wide: scheduling is an `O(1)` push
//! into the slot's vector, and a slot is sorted once when the clock reaches
//! it. The wheel also keeps those N long-lived timers *out* of the main heap,
//! which shrinks every remaining heap operation.
//!
//! Determinism: every entry carries the scheduler-wide `(time, seq)` key, the
//! same key the event heap orders by. [`TimerWheel::peek`] always exposes the
//! smallest key in the wheel, so the scheduler's two-way merge of wheel and
//! heap pops events in exactly the order a single queue would have — byte
//! identical, including same-timestamp tie-breaks.

use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// One wheel entry: the `(time, seq)` ordering key plus the payload.
type Entry<E> = (SimTime, u64, E);

/// A timer wheel whose slots are `slot` wide, merged against the event heap
/// by `(time, seq)` key.
#[derive(Debug, Clone)]
pub struct TimerWheel<E> {
    slot_s: f64,
    /// Absolute slot index of `slots[0]` (the next slot to activate).
    base: i64,
    /// Future slots, unsorted.
    slots: VecDeque<Vec<Entry<E>>>,
    /// The activated slot, sorted *descending* by key so the next entry to
    /// fire pops off the back in O(1).
    current: Vec<Entry<E>>,
    len: usize,
}

impl<E> TimerWheel<E> {
    /// Creates a wheel with `slot`-wide buckets.
    ///
    /// # Panics
    ///
    /// Panics unless `slot` is positive and finite.
    #[must_use]
    pub fn new(slot: SimDuration) -> Self {
        let slot_s = slot.as_secs();
        assert!(
            slot_s.is_finite() && slot_s > 0.0,
            "timer-wheel slot must be positive and finite"
        );
        TimerWheel {
            slot_s,
            base: 0,
            slots: VecDeque::new(),
            current: Vec::new(),
            len: 0,
        }
    }

    /// How many slots the wheel will allocate ahead of its base. Entries
    /// further out should live in the scheduler's heap instead (see
    /// [`TimerWheel::accepts`]); the merge by `(time, seq)` keeps order
    /// identical either way.
    pub const MAX_SLOTS_AHEAD: i64 = 4_096;

    fn slot_index(&self, time: SimTime) -> i64 {
        (time.as_secs() / self.slot_s).floor() as i64
    }

    /// Whether `time` is near enough for the wheel to bucket it without
    /// allocating an unbounded run of empty slots.
    #[must_use]
    pub fn accepts(&self, time: SimTime) -> bool {
        self.slot_index(time) - self.base < Self::MAX_SLOTS_AHEAD
    }

    /// Number of pending entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `event` at `time` with ordering key `(time, seq)`.
    pub fn push(&mut self, time: SimTime, seq: u64, event: E) {
        self.len += 1;
        let idx = self.slot_index(time);
        if idx < self.base {
            // The slot is already activated (or the wheel has advanced past
            // it): splice into the sorted remainder so ordering holds.
            let key = (time, seq);
            let pos = self.current.partition_point(|&(t, s, _)| (t, s) > key);
            self.current.insert(pos, (time, seq, event));
            return;
        }
        let offset = usize::try_from(idx - self.base).expect("slot offset fits usize");
        if offset >= self.slots.len() {
            self.slots.resize_with(offset + 1, Vec::new);
        }
        self.slots[offset].push((time, seq, event));
    }

    /// Activates slots until `current` is non-empty or the wheel is drained.
    fn advance(&mut self) {
        while self.current.is_empty() {
            let Some(mut slot) = self.slots.pop_front() else {
                return;
            };
            self.base += 1;
            if !slot.is_empty() {
                slot.sort_unstable_by_key(|&(t, s, _)| std::cmp::Reverse((t, s)));
                self.current = slot;
            }
        }
    }

    /// The `(time, seq)` key of the earliest pending entry.
    #[must_use]
    pub fn peek(&mut self) -> Option<(SimTime, u64)> {
        self.advance();
        self.current.last().map(|&(t, s, _)| (t, s))
    }

    /// Removes and returns the earliest pending entry.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.advance();
        let (time, _, event) = self.current.pop()?;
        self.len -= 1;
        Some((time, event))
    }

    /// Drops all pending entries.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.current.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimerWheel::new(SimDuration::from_secs(1.0));
        w.push(t(2.5), 3, "c");
        w.push(t(0.5), 1, "a");
        w.push(t(2.5), 2, "b");
        w.push(t(1.1), 0, "z");
        let order: Vec<&str> = std::iter::from_fn(|| w.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "z", "b", "c"]);
        assert!(w.is_empty());
    }

    #[test]
    fn push_into_activated_slot_keeps_order() {
        let mut w = TimerWheel::new(SimDuration::from_secs(1.0));
        w.push(t(0.2), 0, "first");
        w.push(t(0.8), 1, "third");
        assert_eq!(w.pop().unwrap().1, "first");
        // Slot 0 is activated and half-drained; a late arrival for it must
        // still fire in key order.
        w.push(t(0.5), 2, "second");
        assert_eq!(w.pop().unwrap().1, "second");
        assert_eq!(w.pop().unwrap().1, "third");
    }

    #[test]
    fn sparse_far_future_slots() {
        let mut w = TimerWheel::new(SimDuration::from_secs(1.0));
        w.push(t(100.0), 0, "far");
        w.push(t(3.0), 1, "near");
        assert_eq!(w.len(), 2);
        assert_eq!(w.peek(), Some((t(3.0), 1)));
        assert_eq!(w.pop().unwrap().1, "near");
        assert_eq!(w.pop().unwrap().1, "far");
        assert!(w.pop().is_none());
    }

    #[test]
    fn clear_empties_wheel() {
        let mut w = TimerWheel::new(SimDuration::from_secs(1.0));
        w.push(t(1.0), 0, 1);
        w.clear();
        assert!(w.is_empty());
        assert!(w.pop().is_none());
    }
}
