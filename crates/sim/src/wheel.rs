//! A bucketed deadline wheel for high-volume timers (beacons, per-node
//! maintenance deadlines, neighbour leases).
//!
//! A fleet of N periodically-firing nodes costs the binary-heap scheduler
//! `O(log Q)` per timer with `Q ≈ N` pending entries. [`TimerWheel`] instead
//! hashes timers into slots one period wide: scheduling is an `O(1)` push
//! into the slot's vector, and a slot is sorted once when the clock reaches
//! it. The wheel also keeps those N long-lived timers *out* of the main heap,
//! which shrinks every remaining heap operation.
//!
//! Originally the wheel only batched beacons; it is now a general deadline
//! wheel: any event type can ride it, and [`TimerWheel::push_cancellable`]
//! returns a [`WheelHandle`] that revokes a pending deadline in O(1)
//! (tombstone flag, reaped when the entry surfaces) — the primitive lease-
//! style timers need when a deadline is superseded before it fires.
//!
//! Determinism: every entry carries the scheduler-wide `(time, seq)` key, the
//! same key the event heap orders by. [`TimerWheel::peek`] always exposes the
//! smallest key in the wheel, so the scheduler's two-way merge of wheel and
//! heap pops events in exactly the order a single queue would have — byte
//! identical, including same-timestamp tie-breaks.

use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;
use std::num::NonZeroU32;

/// One wheel entry: the `(time, seq)` ordering key, the payload, and the
/// index of its cancellation flag (if cancellable).
#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
    /// Cancellation flag index plus one; niche-packed to 4 bytes because a
    /// fleet's worth of entries lands in every slot.
    handle: Option<NonZeroU32>,
}

impl<E> Entry<E> {
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// A handle that can be used to cancel a deadline scheduled on the wheel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WheelHandle(usize);

/// A timer wheel whose slots are `slot` wide, merged against the event heap
/// by `(time, seq)` key.
#[derive(Debug, Clone)]
pub struct TimerWheel<E> {
    slot_s: f64,
    /// Absolute slot index of `slots[0]` (the next slot to activate).
    base: i64,
    /// Future slots, unsorted.
    slots: VecDeque<Vec<Entry<E>>>,
    /// The activated slot, sorted *descending* by key so the next entry to
    /// fire pops off the back in O(1).
    current: Vec<Entry<E>>,
    /// Cancellation flags, indexed by [`WheelHandle`]. A flag flips to `true`
    /// on cancel (or once its entry fires, making later cancels no-ops).
    cancelled: Vec<bool>,
    /// Live (non-cancelled) entries.
    len: usize,
}

impl<E> TimerWheel<E> {
    /// Creates a wheel with `slot`-wide buckets.
    ///
    /// # Panics
    ///
    /// Panics unless `slot` is positive and finite.
    #[must_use]
    pub fn new(slot: SimDuration) -> Self {
        let slot_s = slot.as_secs();
        assert!(
            slot_s.is_finite() && slot_s > 0.0,
            "timer-wheel slot must be positive and finite"
        );
        TimerWheel {
            slot_s,
            base: 0,
            slots: VecDeque::new(),
            current: Vec::new(),
            cancelled: Vec::new(),
            len: 0,
        }
    }

    /// How many slots the wheel will allocate ahead of its base. Entries
    /// further out should live in the scheduler's heap instead (see
    /// [`TimerWheel::accepts`]); the merge by `(time, seq)` keeps order
    /// identical either way.
    pub const MAX_SLOTS_AHEAD: i64 = 4_096;

    fn slot_index(&self, time: SimTime) -> i64 {
        (time.as_secs() / self.slot_s).floor() as i64
    }

    /// Whether `time` is near enough for the wheel to bucket it without
    /// allocating an unbounded run of empty slots.
    #[must_use]
    pub fn accepts(&self, time: SimTime) -> bool {
        self.slot_index(time) - self.base < Self::MAX_SLOTS_AHEAD
    }

    /// Number of pending (non-cancelled) entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn insert(&mut self, entry: Entry<E>) {
        self.len += 1;
        let idx = self.slot_index(entry.time);
        if idx < self.base {
            // The slot is already activated (or the wheel has advanced past
            // it): splice into the sorted remainder so ordering holds.
            let key = entry.key();
            let pos = self.current.partition_point(|e| e.key() > key);
            self.current.insert(pos, entry);
            return;
        }
        let offset = usize::try_from(idx - self.base).expect("slot offset fits usize");
        if offset >= self.slots.len() {
            self.slots.resize_with(offset + 1, Vec::new);
        }
        self.slots[offset].push(entry);
    }

    /// Schedules `event` at `time` with ordering key `(time, seq)`.
    pub fn push(&mut self, time: SimTime, seq: u64, event: E) {
        self.insert(Entry {
            time,
            seq,
            event,
            handle: None,
        });
    }

    /// Schedules `event` at `time` and returns a handle that can later be
    /// passed to [`TimerWheel::cancel`].
    ///
    /// Each cancellable push allocates one flag slot for the wheel's
    /// lifetime (the same bookkeeping [`EventQueue`](crate::EventQueue)
    /// uses), so this suits timers that are cancelled occasionally — a
    /// workload that re-arms per entry at high frequency should prefer a
    /// supersede-on-fire scheme over per-renewal cancellation.
    pub fn push_cancellable(&mut self, time: SimTime, seq: u64, event: E) -> WheelHandle {
        let handle = self.cancelled.len();
        self.cancelled.push(false);
        let tag = u32::try_from(handle + 1).expect("more than u32::MAX cancellable deadlines");
        self.insert(Entry {
            time,
            seq,
            event,
            handle: NonZeroU32::new(tag),
        });
        WheelHandle(handle)
    }

    /// Cancels a pending deadline in O(1). Cancelling an already-fired or
    /// already-cancelled deadline is a no-op and returns `false`. The
    /// tombstoned entry is reaped when its slot surfaces.
    pub fn cancel(&mut self, handle: WheelHandle) -> bool {
        match self.cancelled.get_mut(handle.0) {
            Some(flag) if !*flag => {
                *flag = true;
                self.len -= 1;
                true
            }
            _ => false,
        }
    }

    fn is_cancelled(&self, entry: &Entry<E>) -> bool {
        entry
            .handle
            .is_some_and(|tag| self.cancelled[tag.get() as usize - 1])
    }

    /// Drops cancelled entries off the back of `current`, then activates
    /// slots until `current` ends in a live entry or the wheel is drained.
    fn advance(&mut self) {
        loop {
            while let Some(tail) = self.current.last() {
                if self.is_cancelled(tail) {
                    self.current.pop();
                } else {
                    return;
                }
            }
            let Some(mut slot) = self.slots.pop_front() else {
                return;
            };
            self.base += 1;
            if !slot.is_empty() {
                slot.sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
                self.current = slot;
            }
        }
    }

    /// The `(time, seq)` key of the earliest pending entry.
    #[must_use]
    pub fn peek(&mut self) -> Option<(SimTime, u64)> {
        self.advance();
        self.current.last().map(Entry::key)
    }

    /// Removes and returns the earliest pending entry.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.advance();
        let entry = self.current.pop()?;
        if let Some(tag) = entry.handle {
            // Mark fired so a later cancel() is a no-op.
            self.cancelled[tag.get() as usize - 1] = true;
        }
        self.len -= 1;
        Some((entry.time, entry.event))
    }

    /// The next `k` entries of the activated slot, soonest first (exact for
    /// the current slot; later slots are not previewed). Advisory, for
    /// cache-warming passes over upcoming events.
    pub fn peek_upcoming(&self, k: usize) -> impl Iterator<Item = &E> {
        self.current.iter().rev().take(k).map(|entry| &entry.event)
    }

    /// Drops all pending entries. Handles issued before the clear become
    /// permanently dead (their flags are tombstoned, not recycled, so they
    /// can never alias an entry pushed afterwards).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.current.clear();
        for flag in &mut self.cancelled {
            *flag = true;
        }
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimerWheel::new(SimDuration::from_secs(1.0));
        w.push(t(2.5), 3, "c");
        w.push(t(0.5), 1, "a");
        w.push(t(2.5), 2, "b");
        w.push(t(1.1), 0, "z");
        let order: Vec<&str> = std::iter::from_fn(|| w.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "z", "b", "c"]);
        assert!(w.is_empty());
    }

    #[test]
    fn push_into_activated_slot_keeps_order() {
        let mut w = TimerWheel::new(SimDuration::from_secs(1.0));
        w.push(t(0.2), 0, "first");
        w.push(t(0.8), 1, "third");
        assert_eq!(w.pop().unwrap().1, "first");
        // Slot 0 is activated and half-drained; a late arrival for it must
        // still fire in key order.
        w.push(t(0.5), 2, "second");
        assert_eq!(w.pop().unwrap().1, "second");
        assert_eq!(w.pop().unwrap().1, "third");
    }

    #[test]
    fn sparse_far_future_slots() {
        let mut w = TimerWheel::new(SimDuration::from_secs(1.0));
        w.push(t(100.0), 0, "far");
        w.push(t(3.0), 1, "near");
        assert_eq!(w.len(), 2);
        assert_eq!(w.peek(), Some((t(3.0), 1)));
        assert_eq!(w.pop().unwrap().1, "near");
        assert_eq!(w.pop().unwrap().1, "far");
        assert!(w.pop().is_none());
    }

    #[test]
    fn cancellation_revokes_a_pending_deadline() {
        let mut w = TimerWheel::new(SimDuration::from_secs(1.0));
        let h = w.push_cancellable(t(1.0), 0, "lease");
        w.push(t(2.0), 1, "keep");
        assert_eq!(w.len(), 2);
        assert!(w.cancel(h));
        assert!(!w.cancel(h), "double cancel is a no-op");
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop().unwrap().1, "keep");
        assert!(w.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut w = TimerWheel::new(SimDuration::from_secs(1.0));
        let h = w.push_cancellable(t(0.5), 0, "x");
        assert_eq!(w.pop().unwrap().1, "x");
        assert!(!w.cancel(h));
        assert!(w.is_empty());
    }

    #[test]
    fn peek_skips_cancelled_entries() {
        let mut w = TimerWheel::new(SimDuration::from_secs(1.0));
        let h = w.push_cancellable(t(0.5), 0, "dead");
        w.push(t(1.5), 1, "live");
        w.cancel(h);
        assert_eq!(w.peek(), Some((t(1.5), 1)));
        assert_eq!(w.pop().unwrap().1, "live");
    }

    #[test]
    fn lease_renewal_pattern_fires_only_the_latest_deadline() {
        // The neighbour-lease shape: each renewal cancels the previous
        // deadline and schedules a later one.
        let mut w = TimerWheel::new(SimDuration::from_secs(1.0));
        let mut handle = w.push_cancellable(t(3.0), 0, 3u32);
        for (seq, deadline) in [(1u64, 4.0), (2, 5.0), (3, 6.0)] {
            assert!(w.cancel(handle));
            handle = w.push_cancellable(t(deadline), seq, deadline as u32);
        }
        assert_eq!(w.len(), 1);
        let fired: Vec<u32> = std::iter::from_fn(|| w.pop().map(|(_, e)| e)).collect();
        assert_eq!(fired, vec![6]);
    }

    #[test]
    fn clear_empties_wheel() {
        let mut w = TimerWheel::new(SimDuration::from_secs(1.0));
        w.push(t(1.0), 0, 1);
        let h = w.push_cancellable(t(2.0), 1, 2);
        w.clear();
        assert!(w.is_empty());
        assert!(w.pop().is_none());
        assert!(!w.cancel(h), "handles from before clear are dead");
    }
}
