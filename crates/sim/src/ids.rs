//! Identifier newtypes shared across the workspace.
//!
//! Using distinct newtypes for node, packet and flow identifiers prevents the
//! accidental mixing of identifier spaces (for example routing a packet to a
//! packet id instead of a node id), which the type system then rejects.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a simulation node (vehicle, road-side unit or bus ferry).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

/// Identifier of a packet, unique within one simulation run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PacketId(pub u64);

/// Identifier of an application traffic flow (source/destination pair).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct FlowId(pub u32);

/// Monotonically increasing sequence number (AODV/DSDV style).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SeqNo(pub u64);

impl NodeId {
    /// Returns the raw index value.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PacketId {
    /// Returns the raw value.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }
}

impl SeqNo {
    /// Returns the incremented sequence number, leaving `self` untouched.
    #[must_use]
    pub fn next(self) -> SeqNo {
        SeqNo(self.0 + 1)
    }

    /// Whether `self` is fresher (strictly greater) than `other`.
    #[must_use]
    pub fn is_fresher_than(self, other: SeqNo) -> bool {
        self.0 > other.0
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A small allocator handing out unique [`PacketId`]s.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct PacketIdAllocator {
    next: u64,
}

impl PacketIdAllocator {
    /// Creates an allocator starting at id 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a fresh, never-before-returned packet id.
    pub fn allocate(&mut self) -> PacketId {
        let id = PacketId(self.next);
        self.next += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_index() {
        let n = NodeId(7);
        assert_eq!(n.to_string(), "n7");
        assert_eq!(n.index(), 7);
        assert_eq!(NodeId::from(7u32), n);
        assert_eq!(NodeId::from(7usize), n);
    }

    #[test]
    fn seqno_freshness() {
        let a = SeqNo(1);
        let b = a.next();
        assert!(b.is_fresher_than(a));
        assert!(!a.is_fresher_than(b));
        assert!(!a.is_fresher_than(a));
    }

    #[test]
    fn packet_allocator_is_unique_and_monotone() {
        let mut alloc = PacketIdAllocator::new();
        let ids: Vec<_> = (0..100).map(|_| alloc.allocate()).collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.value(), i as u64);
        }
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert_eq!(PacketId(3).to_string(), "p3");
        assert_eq!(FlowId(2).to_string(), "f2");
        assert_eq!(SeqNo(9).to_string(), "#9");
    }
}
