//! A fixed-bucket calendar queue for the near-future event tier (in-flight
//! packet arrivals).
//!
//! The [`TimerWheel`](crate::TimerWheel) batches *periodic* timers whose
//! deadlines sit a slot width or more apart; the few thousand sub-millisecond
//! in-flight arrivals between a transmission and its deliveries are a
//! different population: dense, very near future, never cancelled. Keeping
//! them in the binary heap costs `O(log Q)` pointer-chasing comparisons per
//! arrival. [`CalendarQueue`] instead hashes them into a fixed ring of
//! `buckets` buckets each `bucket` wide: scheduling is an `O(1)` push into a
//! contiguous vector, and a bucket is sorted once when the clock reaches it,
//! so the per-event cost is an amortised in-cache sort of one small bucket.
//!
//! Events beyond the ring's window (`buckets × bucket` ahead of the ring
//! base) are rejected by [`CalendarQueue::accepts`] and belong in the heap;
//! the scheduler's merge keeps fire order identical either way.
//!
//! Determinism: every entry carries the scheduler-wide `(time, seq)` key —
//! the same key the event heap and the timer wheel order by.
//! [`CalendarQueue::peek`] always exposes the smallest key in the ring, so
//! the scheduler's three-way merge pops events in exactly the order a single
//! heap would have, byte identical, including same-timestamp tie-breaks.

// lint: hot-path

use crate::time::{SimDuration, SimTime};

/// One calendar entry: the `(time, seq)` ordering key plus the payload.
/// Arrivals are never cancelled, so there is no tombstone bookkeeping.
#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// A fixed-size calendar queue merged against the event heap and timer wheel
/// by `(time, seq)` key.
#[derive(Debug, Clone)]
pub struct CalendarQueue<E> {
    bucket_s: f64,
    /// Absolute bucket index anchoring the ring: `buckets[base % n]` is the
    /// next bucket to activate.
    base: i64,
    /// The ring. A bucket holds entries for exactly one absolute index at a
    /// time (pushes beyond the window are rejected, so a lap can never fold
    /// two generations into one bucket).
    buckets: Vec<Vec<Entry<E>>>,
    /// The activated bucket, sorted *descending* by key so the next entry to
    /// fire pops off the back in O(1).
    current: Vec<Entry<E>>,
    /// Pending entries across `buckets` and `current`.
    len: usize,
}

impl<E> CalendarQueue<E> {
    /// Creates a calendar with `buckets` ring buckets each `bucket` wide.
    ///
    /// # Panics
    ///
    /// Panics unless `bucket` is positive and finite and `buckets > 0`.
    #[must_use]
    pub fn new(bucket: SimDuration, buckets: usize) -> Self {
        let bucket_s = bucket.as_secs();
        assert!(
            bucket_s.is_finite() && bucket_s > 0.0,
            "calendar bucket width must be positive and finite"
        );
        assert!(buckets > 0, "calendar needs at least one bucket");
        CalendarQueue {
            bucket_s,
            base: 0,
            // lint: allow(P1) — construction, once per queue; buckets are
            // recycled in place for the life of the run.
            buckets: (0..buckets).map(|_| Vec::new()).collect(),
            // lint: allow(P1) — construction, once per queue.
            current: Vec::new(),
            len: 0,
        }
    }

    fn bucket_index(&self, time: SimTime) -> i64 {
        (time.as_secs() / self.bucket_s).floor() as i64
    }

    fn ring_slot(&self, index: i64) -> usize {
        index.rem_euclid(self.buckets.len() as i64) as usize
    }

    /// Whether `time` falls inside the ring's current window. Anything later
    /// must go to the heap; the `(time, seq)` merge keeps order identical.
    #[must_use]
    pub fn accepts(&self, time: SimTime) -> bool {
        self.bucket_index(time) - self.base < self.buckets.len() as i64
    }

    /// Drags the ring base up to `now` while the calendar is empty, so an
    /// idle stretch does not leave the window anchored in the past (which
    /// would bounce every later near-future event to the heap). A no-op
    /// whenever entries are pending — the base then catches up by activating
    /// buckets in order, which is what keeps the pop order exact.
    pub fn reanchor(&mut self, now: SimTime) {
        if self.len == 0 {
            self.base = self.base.max(self.bucket_index(now));
        }
    }

    /// Number of pending entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `event` at `time` with ordering key `(time, seq)`.
    ///
    /// Callers must check [`CalendarQueue::accepts`] first; in debug builds a
    /// push beyond the window panics (in release it would fold into an
    /// occupied ring bucket and corrupt the order).
    pub fn push(&mut self, time: SimTime, seq: u64, event: E) {
        self.len += 1;
        let idx = self.bucket_index(time);
        if idx < self.base {
            // The bucket is already activated (or the ring has advanced past
            // it): splice into the sorted remainder so ordering holds.
            let entry = Entry { time, seq, event };
            let key = entry.key();
            let pos = self.current.partition_point(|e| e.key() > key);
            self.current.insert(pos, entry);
            return;
        }
        debug_assert!(
            idx - self.base < self.buckets.len() as i64,
            "push beyond the calendar window; check accepts() first"
        );
        let slot = self.ring_slot(idx);
        self.buckets[slot].push(Entry { time, seq, event });
    }

    /// Activates ring buckets until `current` holds an entry or the calendar
    /// is drained. Capacity ping-pongs: the drained `current` vector is
    /// swapped back into the vacated ring slot so steady state allocates
    /// nothing.
    fn advance(&mut self) {
        while self.current.is_empty() {
            if self.len == 0 {
                return;
            }
            let slot = self.ring_slot(self.base);
            std::mem::swap(&mut self.buckets[slot], &mut self.current);
            self.base += 1;
            if !self.current.is_empty() {
                self.current
                    .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
            }
        }
    }

    /// The `(time, seq)` key of the earliest pending entry.
    #[must_use]
    pub fn peek(&mut self) -> Option<(SimTime, u64)> {
        self.advance();
        self.current.last().map(Entry::key)
    }

    /// Removes and returns the earliest pending entry.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.advance();
        let entry = self.current.pop()?;
        self.len -= 1;
        Some((entry.time, entry.event))
    }

    /// The next `k` entries of the activated bucket, soonest first (exact
    /// for the activated bucket; later buckets are not previewed). Advisory,
    /// for cache-warming passes over upcoming events.
    pub fn peek_upcoming(&self, k: usize) -> impl Iterator<Item = &E> {
        self.current.iter().rev().take(k).map(|entry| &entry.event)
    }

    /// Drops all pending entries; ring capacity is retained.
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.current.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn cal() -> CalendarQueue<&'static str> {
        CalendarQueue::new(SimDuration::from_secs(0.001), 64)
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut c = cal();
        c.push(t(0.0105), 3, "c");
        c.push(t(0.0002), 1, "a");
        c.push(t(0.0105), 2, "b");
        c.push(t(0.0041), 0, "z");
        let order: Vec<&str> = std::iter::from_fn(|| c.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "z", "b", "c"]);
        assert!(c.is_empty());
    }

    #[test]
    fn push_into_activated_bucket_keeps_order() {
        let mut c = cal();
        c.push(t(0.0002), 0, "first");
        c.push(t(0.0008), 1, "third");
        assert_eq!(c.pop().unwrap().1, "first");
        // Bucket 0 is activated and half-drained; a late arrival for it must
        // still fire in key order.
        c.push(t(0.0005), 2, "second");
        assert_eq!(c.pop().unwrap().1, "second");
        assert_eq!(c.pop().unwrap().1, "third");
    }

    #[test]
    fn rejects_times_beyond_the_window() {
        let c = cal();
        assert!(c.accepts(t(0.0)));
        assert!(c.accepts(t(0.063)));
        assert!(!c.accepts(t(0.064)), "64 × 1 ms window is exclusive");
        assert!(!c.accepts(t(5.0)));
    }

    #[test]
    fn ring_wraps_across_many_laps_without_mixing_generations() {
        let mut c = cal();
        let mut popped = Vec::new();
        // Push/pop far more entries than the ring has buckets, always within
        // the window of the moment, and check global sorted order.
        let mut seq = 0u64;
        let mut now = 0.0f64;
        for lap in 0..10 {
            for i in 0..32 {
                let time = now + 0.001 * f64::from(i);
                c.reanchor(t(now));
                assert!(c.accepts(t(time)));
                c.push(t(time), seq, if lap % 2 == 0 { "even" } else { "odd" });
                seq += 1;
            }
            while let Some((time, _)) = c.pop() {
                popped.push((time, seq));
                now = time.as_secs();
            }
        }
        assert_eq!(popped.len(), 320);
        assert!(popped.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn reanchor_moves_an_idle_ring_forward() {
        let mut c = cal();
        c.push(t(0.001), 0, "early");
        assert_eq!(c.pop().unwrap().1, "early");
        // Idle gap far beyond the window: without reanchoring, a near-future
        // event would be rejected.
        assert!(!c.accepts(t(10.0)));
        c.reanchor(t(10.0));
        assert!(c.accepts(t(10.0005)));
        c.push(t(10.0005), 1, "late");
        assert_eq!(c.pop().unwrap().1, "late");
    }

    #[test]
    fn reanchor_is_a_noop_while_entries_are_pending() {
        let mut c = cal();
        c.push(t(0.0005), 0, "pending");
        c.reanchor(t(0.050));
        assert_eq!(c.pop().unwrap().1, "pending");
    }

    #[test]
    fn clear_empties_calendar() {
        let mut c = cal();
        c.push(t(0.001), 0, "x");
        c.push(t(0.002), 1, "y");
        c.clear();
        assert!(c.is_empty());
        assert!(c.pop().is_none());
    }
}
