//! Fixture-corpus and end-to-end tests for `vanet-lint`.
//!
//! The corpus under `tests/fixtures/` carries, per rule, at least one true
//! positive and one *tricky* false positive (the rule's name in a string,
//! a raw string, a comment, test-only code, or an audited allow). These
//! tests pin both directions: the true positives must be found, and the
//! tricky files must scan clean — plus the repo itself must be lint-clean.

use std::fs;
use std::path::Path;
use std::process::Command;

use vanet_lint::{scan_source, scan_workspace, Finding};

/// Scans a fixture file as if it lived at `as_path` in the workspace.
fn scan_fixture(name: &str, as_path: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let source = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()));
    scan_source(as_path, &source)
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

const SIM_PATH: &str = "crates/net/src/fixture.rs";

#[test]
fn d1_true_positive_found() {
    let f = scan_fixture("d1_true.rs", SIM_PATH);
    assert_eq!(rules_of(&f), vec!["D1", "D1"], "{f:?}");
}

#[test]
fn d1_tricky_false_positives_clean() {
    let f = scan_fixture("d1_tricky.rs", SIM_PATH);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn d1_does_not_apply_outside_sim_visible_crates() {
    let f = scan_fixture("d1_true.rs", "crates/runner/src/fixture.rs");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn d2_true_positive_found() {
    let f = scan_fixture("d2_true.rs", SIM_PATH);
    assert!(
        !f.is_empty() && rules_of(&f).iter().all(|r| *r == "D2"),
        "{f:?}"
    );
}

#[test]
fn d2_tricky_false_positives_clean() {
    let f = scan_fixture("d2_tricky.rs", SIM_PATH);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn d2_exempts_runner_and_bench() {
    assert!(scan_fixture("d2_true.rs", "crates/runner/src/fixture.rs").is_empty());
    assert!(scan_fixture("d2_true.rs", "crates/bench/src/fixture.rs").is_empty());
}

#[test]
fn d3_true_positive_found() {
    let f = scan_fixture("d3_true.rs", SIM_PATH);
    assert!(
        !f.is_empty() && rules_of(&f).iter().all(|r| *r == "D3"),
        "{f:?}"
    );
}

#[test]
fn d3_tricky_false_positives_clean() {
    let f = scan_fixture("d3_tricky.rs", SIM_PATH);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn d4_true_positive_found() {
    let f = scan_fixture("d4_true.rs", SIM_PATH);
    assert_eq!(rules_of(&f), vec!["D4"], "{f:?}");
}

#[test]
fn d4_tricky_false_positives_clean() {
    let f = scan_fixture("d4_tricky.rs", SIM_PATH);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn d4_exempts_the_pool_module() {
    let f = scan_fixture("d4_true.rs", "crates/sim/src/pool.rs");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn d5_true_positive_found() {
    let f = scan_fixture("d5_true.rs", SIM_PATH);
    assert_eq!(rules_of(&f), vec!["D5"], "{f:?}");
}

#[test]
fn d5_tricky_false_positives_clean() {
    let f = scan_fixture("d5_tricky.rs", SIM_PATH);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn d5_exempts_binaries() {
    assert!(scan_fixture("d5_true.rs", "crates/runner/src/main.rs").is_empty());
    assert!(scan_fixture("d5_true.rs", "crates/runner/src/bin/tool.rs").is_empty());
}

#[test]
fn p1_true_positive_found() {
    let f = scan_fixture("p1_true.rs", SIM_PATH);
    assert_eq!(rules_of(&f), vec!["P1"], "{f:?}");
}

#[test]
fn p1_tricky_false_positives_clean() {
    let f = scan_fixture("p1_tricky.rs", SIM_PATH);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn p1_only_applies_to_hot_path_files() {
    // The same allocation is fine in a file without the header: strip it.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/p1_true.rs");
    let source = fs::read_to_string(path).unwrap();
    let without_header = source.replacen("// lint: hot-path\n", "", 1);
    assert!(scan_source(SIM_PATH, &without_header).is_empty());
}

#[test]
fn f1_true_positive_found() {
    let f = scan_fixture("f1_true.rs", SIM_PATH);
    assert_eq!(rules_of(&f), vec!["F1", "F1"], "{f:?}");
}

#[test]
fn f1_tricky_false_positives_clean() {
    let f = scan_fixture("f1_tricky.rs", SIM_PATH);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn a0_true_positive_found() {
    let f = scan_fixture("a0_true.rs", SIM_PATH);
    assert_eq!(rules_of(&f), vec!["A0", "A0"], "{f:?}");
}

#[test]
fn a0_tricky_false_positives_clean() {
    let f = scan_fixture("a0_tricky.rs", SIM_PATH);
    assert!(f.is_empty(), "{f:?}");
}

/// The repo's own sources must be lint-clean: every remaining unordered
/// container, wall-clock read, print, hot-path allocation and float compare
/// is either fixed or carries an audited allow.
#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = scan_workspace(&root).expect("scan repo");
    assert!(
        findings.is_empty(),
        "repo must be lint-clean:\n{}",
        findings
            .iter()
            .map(Finding::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// End-to-end: the binary exits 0 on the (clean) repo and 1 on a scratch
/// workspace seeded with a true-positive fixture, and `--format jsonl`
/// output stays byte-pinned.
#[test]
fn cli_exit_codes_and_jsonl_format() {
    let bin = env!("CARGO_BIN_EXE_vanet-lint");
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let clean = Command::new(bin)
        .arg("--root")
        .arg(&repo_root)
        .output()
        .expect("run vanet-lint");
    assert!(
        clean.status.success(),
        "repo scan should exit 0:\n{}",
        String::from_utf8_lossy(&clean.stdout)
    );

    let scratch = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-scratch");
    let src_dir = scratch.join("crates/net/src");
    fs::create_dir_all(&src_dir).unwrap();
    fs::write(
        src_dir.join("bad.rs"),
        "use std::time::Instant;\npub fn now() -> Instant { Instant::now() }\n",
    )
    .unwrap();

    let dirty = Command::new(bin)
        .args(["--root"])
        .arg(&scratch)
        .args(["--format", "jsonl"])
        .output()
        .expect("run vanet-lint");
    assert_eq!(dirty.status.code(), Some(1));
    let stdout = String::from_utf8(dirty.stdout).unwrap();
    let first = stdout.lines().next().expect("at least one finding");
    assert!(
        first.starts_with("{\"file\":\"crates/net/src/bad.rs\",\"line\":1,\"rule\":\"D2\","),
        "jsonl format is pinned, got: {first}"
    );
}
