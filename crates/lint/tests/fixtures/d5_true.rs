//! D5 true positive: stdout noise from a library crate.

pub fn report_progress(done: usize, total: usize) {
    println!("progress: {done}/{total}");
}
