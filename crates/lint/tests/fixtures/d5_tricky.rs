//! D5 tricky false positives: the macro name in strings, `writeln!` to a
//! caller-supplied sink, an audited operator warning, and test prints —
//! zero findings.

use std::io::Write;

pub fn advice() -> &'static str {
    "use writeln! into a sink, not println!"
}

pub fn render(mut out: impl Write) -> std::io::Result<()> {
    // writeln! to a caller-owned sink is the sanctioned form.
    writeln!(out, "ok")
}

pub fn degrade(error: &str) {
    // lint: allow(D5) — operator-facing degradation warning on a failure
    // path; never on stdout, so exports stay parseable.
    eprintln!("warning: {error}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print() {
        println!("visible only under --nocapture");
    }
}
