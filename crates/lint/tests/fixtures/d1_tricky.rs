//! D1 tricky false positives: every `HashMap` here is either not code, not
//! a declaration, test-only, or carries an audited allow — zero findings.

// A HashMap mentioned in a comment is not a declaration.
use std::collections::HashMap;

pub fn docs() -> &'static str {
    // The string below names the type but declares nothing.
    "replace HashMap with BTreeMap"
}

pub fn raw() -> &'static str {
    r#"let m: HashMap<u32, u64> = HashMap::new();"#
}

pub struct Index {
    // lint: allow(D1) — lookup-only (`insert`/`get` by key); never iterated,
    // so its order cannot reach a Report. Pinned by fixture_self_test.
    slots: HashMap<u32, u64>,
}

impl Index {
    pub fn get(&self, k: u32) -> Option<&u64> {
        self.slots.get(&k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_use_unordered_maps() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u64);
        for (_, v) in m.iter() {
            assert_eq!(*v, 2);
        }
    }
}
