//! D2 tricky false positives: `Instant` appears only in comments, strings,
//! and test code — zero findings.

/// Use `SimTime`, never `Instant`, on the sim path.
pub fn advice() -> &'static str {
    "Instant and SystemTime are banned here"
}

pub fn raw() -> &'static str {
    r"let t = Instant::now();"
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn tests_may_time_themselves() {
        let t = Instant::now();
        assert!(t.elapsed().as_secs() < 60);
    }
}
