//! D2 true positive: a wall-clock read in sim-visible code.

use std::time::Instant;

pub fn elapsed_ms(start: Instant) -> u128 {
    start.elapsed().as_millis()
}
