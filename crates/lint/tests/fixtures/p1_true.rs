// lint: hot-path
//! P1 true positive: an unaudited allocation in a hot-path file.

pub fn step(ids: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    out.extend_from_slice(ids);
    out
}
