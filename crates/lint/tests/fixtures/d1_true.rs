//! D1 true positives: an unordered container declared and iterated in a
//! sim-visible crate (scanned as `crates/net/src/fixture.rs`).

use std::collections::HashMap;

pub struct Counters {
    by_node: HashMap<u32, u64>, // D1: declaration
}

impl Counters {
    pub fn total(&self) -> u64 {
        let mut sum = 0;
        for (_, v) in self.by_node.iter() {
            // D1: unordered iteration
            sum += v;
        }
        sum
    }
}
