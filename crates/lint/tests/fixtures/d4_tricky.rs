//! D4 tricky false positives: a `spawn` method on the deterministic pool,
//! and `thread::spawn` appearing only in a string — zero findings.

pub struct Pool;

impl Pool {
    pub fn spawn(&self, _job: u64) {}
}

pub fn submit(pool: &Pool) {
    // A method named `spawn` on our own pool is exactly the sanctioned path.
    pool.spawn(42);
}

pub fn warning() -> &'static str {
    "never call thread::spawn directly; go through vanet_sim::pool"
}
