//! A0 tricky false positives: directive-shaped text inside strings and a
//! well-formed allow (with an em-dash *and* with a plain `--`) — zero
//! findings.

pub fn docs() -> &'static str {
    "write // lint: allow(D1) only as a real comment"
}

pub fn raw() -> &'static str {
    r#"// lint: allow(D5)"#
}

pub fn warn() {
    // lint: allow(D5) — operator warning; reason present, em-dash form.
    eprintln!("warned");
}

pub fn warn_ascii() {
    // lint: allow(D5) -- operator warning; reason present, double-dash form.
    eprintln!("warned again");
}
