//! F1 true positives: force-unwrapped and defaulted float comparisons.

pub fn nearest(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn rank(xs: &mut [(u32, f64)]) {
    xs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
}
