//! D3 tricky false positives: names that merely *contain* banned substrings,
//! a `rand` identifier that is not a crate path, and banned names inside raw
//! strings — zero findings.

pub struct Strand {
    pub rand: u64, // a field named `rand` is not the rand crate
}

pub fn operand(rand: u64) -> u64 {
    // `rand` here is a plain parameter; no `::` follows it.
    rand.wrapping_mul(0x9e37_79b9)
}

pub fn docs() -> &'static str {
    r#"thread_rng() and OsRng are banned; use SimRng::from_seed"#
}
