//! D4 true positive: thread creation outside `vanet_sim::pool`.

pub fn run_detached(f: impl FnOnce() + Send + 'static) {
    std::thread::spawn(f);
}
