//! A0 true positives: a reasonless allow and an allow naming an unknown
//! rule — both are findings, and neither suppresses anything.

pub fn f() -> u64 {
    // lint: allow(D5)
    1
}

pub fn g() -> u64 {
    // lint: allow(Z9) — no such rule
    2
}
