// lint: hot-path
//! P1 tricky false positives: allocation names in comments and strings, an
//! audited setup-path allocation, and test-only allocation — zero findings.

pub struct Ring {
    slots: [u64; 8],
}

impl Ring {
    /// Reuses `self.slots`; no `Vec::new` or `collect` on this path.
    pub fn sum(&self) -> u64 {
        self.slots.iter().sum()
    }

    pub fn label() -> &'static str {
        "zero-alloc: no vec![], no format!(), no .to_vec()"
    }

    #[must_use]
    pub fn staging() -> Vec<u64> {
        // lint: allow(P1) — construction, once per run; the steady state
        // reuses the returned buffer.
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_allocate() {
        let v: Vec<u64> = (0..8).collect();
        assert_eq!(v.len(), Ring { slots: [0; 8] }.slots.len());
    }
}
