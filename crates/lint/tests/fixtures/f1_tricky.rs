//! F1 tricky false positives: the `PartialOrd` impl itself, a *handled*
//! `partial_cmp` (matched, not unwrapped), `total_cmp`, and an audited
//! wrapper impl — zero findings.

use std::cmp::Ordering;

pub struct Meters(f64);

impl PartialEq for Meters {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl PartialOrd for Meters {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.0.partial_cmp(&other.0)
    }
}

pub fn handled(a: f64, b: f64) -> Ordering {
    match a.partial_cmp(&b) {
        Some(ord) => ord,
        None => Ordering::Equal, // explicit NaN policy, not a blind unwrap
    }
}

pub fn total(xs: &mut [f64]) {
    xs.sort_by(f64::total_cmp);
}

impl Eq for Meters {}

impl Ord for Meters {
    fn cmp(&self, other: &Self) -> Ordering {
        // lint: allow(F1) — Meters is the total-order wrapper: constructors
        // reject NaN, so partial_cmp is total here.
        self.0.partial_cmp(&other.0).expect("Meters is never NaN")
    }
}
