//! D3 true positive: ambient randomness instead of the seed-derived SimRng.

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
