//! Source scrubbing: a comment/string/char-literal-aware pass that blanks
//! every non-code byte while preserving the line structure, so the rule
//! passes downstream can match tokens without ever being fooled by a
//! `"println!"` inside a string literal, a `HashMap` in a doc comment, or a
//! raw string full of fixture code.
//!
//! The scrubber is also where the lint's *annotation contract* is read:
//! while blanking a comment it parses `lint:` directives out of it —
//! `// lint: allow(<rule>) — <reason>` and the `// lint: hot-path` file
//! header — and records them with their line numbers. Rust block comments
//! nest; raw strings carry arbitrary `#` fences; char literals must be
//! distinguished from lifetimes. All three are handled here so the rest of
//! the tool can treat the scrubbed text as pure code.

/// An audited suppression parsed from a `// lint: allow(<rule>) — <reason>`
/// comment. The annotation suppresses findings of `rule` on its own line and
/// on the line directly below it (so it can sit at the end of the offending
/// line or on its own line immediately above a multi-line statement).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the annotation comment starts on.
    pub line: usize,
    /// The rule code being allowed, e.g. `"D1"`.
    pub rule: String,
    /// Whether the annotation carries a non-empty justification after the
    /// rule code. Annotations without one are themselves findings (A0).
    pub has_reason: bool,
}

/// The result of scrubbing one source file.
#[derive(Debug, Default)]
pub struct Scrubbed {
    /// The source with every comment, string, and char literal blanked to
    /// spaces. Newlines are preserved, so byte offsets map to the same
    /// lines as the original.
    pub code: String,
    /// Audited `allow` annotations, in source order.
    pub allows: Vec<Allow>,
    /// Lines (1-based) of `lint:` directives that failed to parse — an
    /// unknown directive, a malformed allow, or an allow with no reason.
    pub bad_directives: Vec<(usize, String)>,
    /// Whether the file carries a `// lint: hot-path` header.
    pub hot_path: bool,
    /// Per 1-based line: whether any code (non-comment, non-string) remains
    /// on it after scrubbing.
    code_lines: Vec<bool>,
}

impl Scrubbed {
    /// Whether findings of `rule` at `line` are suppressed by an audited
    /// allow annotation — one on the same line (trailing comment) or one
    /// whose comment directly precedes the finding's line with no other
    /// code line in between (the annotation-above-the-statement form, which
    /// may span several comment lines).
    #[must_use]
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        self.allows.iter().any(|a| {
            a.rule == rule
                && a.has_reason
                && (a.line == line || self.next_code_line(a.line) == Some(line))
        })
    }

    /// The first line after `from` carrying code.
    fn next_code_line(&self, from: usize) -> Option<usize> {
        (from + 1..self.code_lines.len()).find(|&l| self.code_lines[l])
    }
}

/// Scrubs `source`, blanking comments/strings/char literals and collecting
/// `lint:` directives.
#[must_use]
pub fn scrub(source: &str) -> Scrubbed {
    let bytes = source.as_bytes();
    let mut out = String::with_capacity(source.len());
    let mut scrubbed = Scrubbed::default();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                out.push('\n');
                line += 1;
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let text = &source[start..i];
                parse_directive(text, line, &mut scrubbed);
                push_blank(&mut out, text);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let text = &source[start..i];
                parse_directive(text, start_line, &mut scrubbed);
                push_blank(&mut out, text);
            }
            b'"' => {
                let end = skip_string(bytes, i, &mut line);
                push_blank(&mut out, &source[i..end]);
                i = end;
            }
            b'r' | b'b' if starts_raw_or_byte_string(bytes, i) => {
                let end = skip_raw_or_byte_string(bytes, i, &mut line);
                push_blank(&mut out, &source[i..end]);
                i = end;
            }
            b'\'' => {
                if let Some(end) = char_literal_end(bytes, i) {
                    push_blank(&mut out, &source[i..end]);
                    i = end;
                } else {
                    // A lifetime: keep the tick, the identifier follows as
                    // ordinary code.
                    out.push('\'');
                    i += 1;
                }
            }
            _ => {
                // Copy code bytes through, including multi-byte UTF-8.
                let ch_len = utf8_len(c);
                out.push_str(&source[i..i + ch_len]);
                i += ch_len;
            }
        }
    }
    scrubbed.code_lines = std::iter::once(false) // lines are 1-based
        .chain(out.lines().map(|l| !l.trim().is_empty()))
        .collect();
    scrubbed.code = out;
    scrubbed
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Blanks `text` into `out`: every non-newline char becomes a space.
fn push_blank(out: &mut String, text: &str) {
    for ch in text.chars() {
        out.push(if ch == '\n' { '\n' } else { ' ' });
    }
}

/// Whether `r"`, `r#"`, `br"`, `b"`, `br#"` starts at `i`.
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        while bytes.get(j) == Some(&b'#') {
            j += 1;
        }
        return bytes.get(j) == Some(&b'"');
    }
    // Plain byte string `b"..."`.
    bytes[i] == b'b' && bytes.get(i + 1) == Some(&b'"')
}

/// Skips a `"..."` string starting at the opening quote; returns the index
/// just past the closing quote.
fn skip_string(bytes: &[u8], start: usize, line: &mut usize) -> usize {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            // An escape skips the next byte — which may be the newline of a
            // `\`-line-continuation, so keep the line count honest.
            b'\\' => {
                if bytes.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw/byte string starting at `r`/`b`; returns the index just past
/// its terminator.
fn skip_raw_or_byte_string(bytes: &[u8], start: usize, line: &mut usize) -> usize {
    let mut i = start;
    if bytes[i] == b'b' {
        i += 1;
    }
    if bytes.get(i) != Some(&b'r') {
        // Plain byte string: same escape rules as a normal string.
        return skip_string(bytes, i, line);
    }
    i += 1;
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && bytes.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

/// If a char literal starts at the tick at `i`, returns the index just past
/// its closing tick; `None` means the tick starts a lifetime.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let next = *bytes.get(i + 1)?;
    if next == b'\\' {
        // Escaped char: skip to the closing tick.
        let mut j = i + 2;
        while j < bytes.len() && bytes[j] != b'\'' && bytes[j] != b'\n' {
            j += 1;
        }
        return (bytes.get(j) == Some(&b'\'')).then_some(j + 1);
    }
    // `'x'` (any single char, incl. multi-byte) followed by a tick is a char
    // literal; `'ident` without a near closing tick is a lifetime.
    let ch_len = utf8_len(next);
    if bytes.get(i + 1 + ch_len) == Some(&b'\'') {
        return Some(i + 2 + ch_len);
    }
    None
}

/// Parses a `lint:` directive out of a comment's text, if present.
fn parse_directive(comment: &str, line: usize, out: &mut Scrubbed) {
    let body = comment
        .trim_start_matches(['/', '*', '!'])
        .trim_start()
        .trim_end_matches(['*', '/'])
        .trim_end();
    let Some(rest) = body.strip_prefix("lint:") else {
        return;
    };
    let rest = rest.trim_start();
    if rest == "hot-path" {
        out.hot_path = true;
        return;
    }
    if let Some(after) = rest.strip_prefix("allow(") {
        let Some(close) = after.find(')') else {
            out.bad_directives
                .push((line, "malformed allow: missing `)`".to_owned()));
            return;
        };
        let rule = after[..close].trim().to_owned();
        if !crate::rules::is_known_rule(&rule) {
            out.bad_directives
                .push((line, format!("allow names unknown rule `{rule}`")));
            return;
        }
        let tail = after[close + 1..].trim_start();
        let reason = tail
            .strip_prefix("\u{2014}")
            .or_else(|| tail.strip_prefix("--"))
            .or_else(|| tail.strip_prefix('-'))
            .map(str::trim)
            .unwrap_or("");
        let has_reason = !reason.is_empty();
        if !has_reason {
            out.bad_directives.push((
                line,
                format!("allow({rule}) has no justification — write `// lint: allow({rule}) — <reason>`"),
            ));
        }
        out.allows.push(Allow {
            line,
            rule,
            has_reason,
        });
        return;
    }
    out.bad_directives
        .push((line, format!("unknown lint directive `{rest}`")));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_comments_and_strings_preserving_lines() {
        let src = "let a = \"HashMap\"; // HashMap here\nlet b = 2;\n";
        let s = scrub(src);
        assert!(!s.code.contains("HashMap"));
        assert_eq!(s.code.lines().count(), src.lines().count());
        assert!(s.code.contains("let b = 2;"));
    }

    #[test]
    fn nested_block_comments_and_raw_strings() {
        let src = "/* outer /* inner */ still comment */ let x = r#\"Instant \"quoted\" \"#;";
        let s = scrub(src);
        assert!(!s.code.contains("Instant"));
        assert!(!s.code.contains("still"));
        assert!(s.code.contains("let x ="));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let s = scrub(src);
        assert!(s.code.contains("'a str"));
        assert!(!s.code.contains("'x'"));
    }

    #[test]
    fn allow_directive_with_reason_parses() {
        let src = "// lint: allow(D1) \u{2014} counts only; order never escapes\nlet m = 1;\n";
        let s = scrub(src);
        assert_eq!(s.allows.len(), 1);
        assert!(s.allows[0].has_reason);
        assert!(s.allowed("D1", 1));
        assert!(s.allowed("D1", 2));
        assert!(!s.allowed("D1", 3));
        assert!(!s.allowed("D2", 2));
    }

    #[test]
    fn string_line_continuation_keeps_line_numbers_honest() {
        // The `\`-newline escape inside a string spans two source lines; a
        // directive after it must still land on its true line.
        let src =
            "let s = \"two \\\n lines\";\n// lint: allow(D5) \u{2014} reason\neprintln!(\"x\");\n";
        let s = scrub(src);
        assert_eq!(s.allows.len(), 1);
        assert_eq!(s.allows[0].line, 3);
        assert!(s.allowed("D5", 4));
    }

    #[test]
    fn allow_without_reason_is_a_bad_directive() {
        let s = scrub("// lint: allow(D5)\n");
        assert_eq!(s.bad_directives.len(), 1);
        assert!(!s.allowed("D5", 2));
    }

    #[test]
    fn hot_path_header_detected() {
        assert!(scrub("// lint: hot-path\nfn f() {}\n").hot_path);
        assert!(!scrub("// hot-path mentioned casually\n").hot_path);
    }
}
