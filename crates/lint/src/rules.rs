//! The rule catalog and the token-level passes that enforce it.
//!
//! Every rule encodes one of the repo's written-down invariants (see the
//! README "Static analysis" section): determinism rules D1–D5, the
//! zero-allocation hot-path rule P1, and the float-total-order rule F1.
//! Findings carry the rule code, the 1-based line, and a message; audited
//! `// lint: allow(<rule>) — <reason>` annotations suppress them (the
//! reason is mandatory — a bare allow is itself an A0 finding).

use crate::scrub::{scrub, Scrubbed};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule code, e.g. `"D1"`.
    pub rule: &'static str,
    /// Human-readable explanation of the violation.
    pub message: String,
}

impl Finding {
    /// The human-readable `file:line: rule — message` form.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {} \u{2014} {}",
            self.file, self.line, self.rule, self.message
        )
    }

    /// The pinned machine-readable JSONL form:
    /// `{"file":...,"line":...,"rule":...,"message":...}`.
    #[must_use]
    pub fn render_jsonl(&self) -> String {
        format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            escape_json(&self.file),
            self.line,
            self.rule,
            escape_json(&self.message)
        )
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Every rule code, in catalog order.
pub const RULES: [&str; 8] = ["D1", "D2", "D3", "D4", "D5", "P1", "F1", "A0"];

/// Whether `code` names a rule in the catalog.
#[must_use]
pub fn is_known_rule(code: &str) -> bool {
    RULES.contains(&code)
}

/// The long-form explanation printed by `vanet-lint --explain <rule>`.
#[must_use]
pub fn explain(code: &str) -> Option<&'static str> {
    match code {
        "D1" => Some(
            "D1 — unordered containers in sim-visible crates.\n\
             Reports must be byte-identical across workers, shards, resumes and\n\
             engine rewrites, so nothing the simulation can observe may depend on\n\
             HashMap/HashSet iteration order (which is seeded per-process). D1\n\
             flags (a) every HashMap/HashSet declaration and (b) every unordered\n\
             iteration (`for .. in`, `.iter()`, `.keys()`, `.values()`,\n\
             `.drain()`, `.retain()`, ...) over one, in the sim-visible crates\n\
             (core, net, routing, sim, mobility, links). Fix: use BTreeMap /\n\
             BTreeSet / a sorted Vec, or — when order provably never escapes\n\
             (e.g. only counts leave the map) — annotate the site with\n\
             `// lint: allow(D1) — <order-insensitivity argument>` naming the\n\
             property test that pins it.",
        ),
        "D2" => Some(
            "D2 — wall-clock reads outside runner/bench/tests.\n\
             `std::time::Instant` / `SystemTime` values differ run to run, so any\n\
             sim-visible use breaks replay determinism. Only the campaign runner\n\
             and the bench harness may measure wall time (for throughput\n\
             reporting); simulation code must use `SimTime` exclusively.",
        ),
        "D3" => Some(
            "D3 — ambient randomness.\n\
             All randomness must derive from the run's seed through `SimRng`\n\
             (the self-contained xoshiro256++ generator). Entropy-seeded\n\
             sources — `thread_rng`, `OsRng`, `from_entropy`, `RandomState`,\n\
             `DefaultHasher`, the `rand`/`fastrand`/`getrandom` crates — make\n\
             runs unrepeatable and are banned everywhere.",
        ),
        "D4" => Some(
            "D4 — thread creation outside vanet_sim::pool.\n\
             Parallelism is only deterministic because every parallel campaign\n\
             execution goes through the work-stealing pool, whose result order\n\
             is pinned byte-identical to serial. Spawning threads anywhere else\n\
             (`std::thread::spawn` / `scope` / `Builder`) introduces scheduling\n\
             nondeterminism the goldens cannot see.",
        ),
        "D5" => Some(
            "D5 — println!/eprintln!/dbg! in library crates.\n\
             Library output corrupts the machine-readable exports (JSONL/CSV go\n\
             to stdout) and hides real diagnostics. CLI binaries (`src/bin/`,\n\
             `main.rs`) may print; libraries must return data. Operator-facing\n\
             degradation warnings are allowed with an audited\n\
             `// lint: allow(D5) — <reason>`.",
        ),
        "P1" => Some(
            "P1 — allocation in a `// lint: hot-path` file.\n\
             Files carrying the `// lint: hot-path` header implement the\n\
             zero-allocation steady-state event path (PRs 2/3/6 measured every\n\
             allocation removed from it). P1 flags allocating calls —\n\
             `Vec::new`, `with_capacity`, `collect`, `format!`, `vec!`,\n\
             `to_vec`, `to_owned`, `to_string`, `clone`, `Box::new` — in such\n\
             files. Setup-path allocations (build/reset/convenience forms) are\n\
             fine but must be audited: `// lint: allow(P1) — <why not on the\n\
             steady-state path>`.",
        ),
        "F1" => Some(
            "F1 — force-unwrapped float comparisons.\n\
             `.partial_cmp(..).unwrap()/.expect()/.unwrap_or(Equal)` either\n\
             panics on NaN or silently produces a non-total order that makes\n\
             sort/min/max results depend on element order. Use\n\
             `f64::total_cmp`, or a total-order wrapper type (`SimTime`), or\n\
             annotate the wrapper's own impl with `// lint: allow(F1) — <why\n\
             NaN is impossible>`.",
        ),
        "A0" => Some(
            "A0 — malformed lint directive.\n\
             Every `// lint: allow(<rule>)` must name a known rule and carry a\n\
             justification after an em-dash: `// lint: allow(D1) — <reason>`.\n\
             An allow without a reason is an unaudited suppression and is\n\
             reported instead of honoured.",
        ),
        _ => None,
    }
}

/// Crates whose behaviour is observable by the simulation (golden-pinned).
const SIM_VISIBLE: [&str; 6] = [
    "crates/core/",
    "crates/net/",
    "crates/routing/",
    "crates/sim/",
    "crates/mobility/",
    "crates/links/",
];

/// Crates allowed to read the wall clock (throughput measurement).
const CLOCK_EXEMPT: [&str; 2] = ["crates/runner/", "crates/bench/"];

/// The one module allowed to create threads.
const POOL_FILE: &str = "crates/sim/src/pool.rs";

/// One token of scrubbed source: an identifier or a single punctuation char.
#[derive(Debug, Clone, Copy)]
struct Tok<'a> {
    text: &'a str,
    line: usize,
}

fn tokenize(code: &str) -> Vec<Tok<'_>> {
    let mut toks = Vec::new();
    let bytes = code.as_bytes();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        if c == b'\n' {
            line += 1;
            i += 1;
        } else if c.is_ascii_whitespace() {
            i += 1;
        } else if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            toks.push(Tok {
                text: &code[start..i],
                line,
            });
        } else if c.is_ascii_digit() {
            // Numbers (incl. suffixes like 1e-9, 0xff, 1_000u64) are never
            // rule-relevant; consume the maximal alnum/._- run conservatively.
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
            {
                // A `.` only continues the number when a digit follows —
                // `1.5` yes, but `0..n` is a range and `x.0.clone()` is a
                // tuple-field method call whose `.` must stay a token.
                if bytes[i] == b'.' && !bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    break;
                }
                i += 1;
            }
        } else if c.is_ascii() {
            toks.push(Tok {
                text: &code[i..i + 1],
                line,
            });
            i += 1;
        } else {
            // Non-ASCII code chars (shouldn't appear outside comments).
            i += 1;
        }
    }
    toks
}

/// Per-line mask of `#[cfg(test)]`-gated spans: rule passes skip findings on
/// masked lines (test code is not sim-visible).
fn test_line_mask(code: &str) -> Vec<bool> {
    let toks = tokenize(code);
    let total_lines = code.lines().count() + 1;
    let mut mask = vec![false; total_lines + 2];
    let mut i = 0usize;
    while i + 6 < toks.len() {
        let is_cfg_test = toks[i].text == "#"
            && toks[i + 1].text == "["
            && toks[i + 2].text == "cfg"
            && toks[i + 3].text == "("
            && toks[i + 4].text == "test"
            && toks[i + 5].text == ")"
            && toks[i + 6].text == "]";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Find the brace block the attribute gates and mask its line span.
        let mut j = i + 7;
        while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
            j += 1;
        }
        if j < toks.len() && toks[j].text == "{" {
            let start_line = toks[i].line;
            let mut depth = 0usize;
            let mut end_line = toks[j].line;
            while j < toks.len() {
                match toks[j].text {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            end_line = toks[j].line;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            for entry in mask
                .iter_mut()
                .take(end_line.min(total_lines) + 1)
                .skip(start_line)
            {
                *entry = true;
            }
        }
        i = j.max(i + 1);
    }
    mask
}

/// Scans one file's source text; `path` is the workspace-relative path used
/// for crate classification and reporting.
#[must_use]
pub fn scan_source(path: &str, source: &str) -> Vec<Finding> {
    let scrubbed = scrub(source);
    let toks = tokenize(&scrubbed.code);
    let test_mask = test_line_mask(&scrubbed.code);
    let in_tests = |line: usize| test_mask.get(line).copied().unwrap_or(false);
    let mut findings = Vec::new();

    for (line, message) in &scrubbed.bad_directives {
        findings.push(Finding {
            file: path.to_owned(),
            line: *line,
            rule: "A0",
            message: message.clone(),
        });
    }

    let sim_visible = SIM_VISIBLE.iter().any(|c| path.starts_with(c));
    let clock_exempt = CLOCK_EXEMPT.iter().any(|c| path.starts_with(c));
    let is_binary = path.contains("/bin/") || path.ends_with("main.rs");

    if sim_visible {
        check_d1(path, &toks, &scrubbed, &in_tests, &mut findings);
    }
    if !clock_exempt {
        check_d2(path, &toks, &scrubbed, &in_tests, &mut findings);
    }
    check_d3(path, &toks, &scrubbed, &in_tests, &mut findings);
    if path != POOL_FILE {
        check_d4(path, &toks, &scrubbed, &in_tests, &mut findings);
    }
    if !is_binary {
        check_d5(path, &toks, &scrubbed, &in_tests, &mut findings);
    }
    if scrubbed.hot_path {
        check_p1(path, &toks, &scrubbed, &in_tests, &mut findings);
    }
    check_f1(path, &toks, &scrubbed, &in_tests, &mut findings);

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

fn push_unless_allowed(
    findings: &mut Vec<Finding>,
    scrubbed: &Scrubbed,
    in_tests: &dyn Fn(usize) -> bool,
    path: &str,
    line: usize,
    rule: &'static str,
    message: String,
) {
    if in_tests(line) || scrubbed.allowed(rule, line) {
        return;
    }
    findings.push(Finding {
        file: path.to_owned(),
        line,
        rule,
        message,
    });
}

const UNORDERED_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const UNORDERED_ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// D1: unordered containers (declarations and iteration) in sim-visible
/// crates. Scope tracking is per file: every identifier declared with a
/// HashMap/HashSet type (struct field `name: HashMap<..>` or binding
/// `let name = HashMap::new()`) is recorded, and iteration constructs over
/// those identifiers are flagged.
fn check_d1(
    path: &str,
    toks: &[Tok<'_>],
    scrubbed: &Scrubbed,
    in_tests: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    let mut tracked: Vec<&str> = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        if !UNORDERED_TYPES.contains(&tok.text) {
            continue;
        }
        // `use std::collections::HashMap;` — imports are not declarations.
        if statement_starts_with_use(toks, i) {
            continue;
        }
        // Walk back over a `path ::` prefix (each `seg ::` is three tokens)
        // and any `&` / `mut` qualifiers, landing on the first token of the
        // full type path.
        let mut j = i;
        while j >= 3
            && toks[j - 1].text == ":"
            && toks[j - 2].text == ":"
            && is_ident(toks[j - 3].text)
        {
            j -= 3;
        }
        while j >= 1 && (toks[j - 1].text == "&" || toks[j - 1].text == "mut") {
            j -= 1;
        }
        let decl_name = if j >= 2
            && toks[j - 1].text == ":"
            && (j < 3 || toks[j - 2].text != ":")
            && is_ident(toks[j - 2].text)
        {
            // `name : [path ::] HashMap < .. >` — a field, binding
            // annotation, or parameter.
            Some(toks[j - 2].text)
        } else if j >= 2 && toks[j - 1].text == "=" {
            // `let [mut] name = HashMap::new()`
            let name_at = j - 2;
            let mut p = name_at;
            if p >= 1 && toks[p - 1].text == "mut" {
                p -= 1;
            }
            (p >= 1 && toks[p - 1].text == "let").then(|| toks[name_at].text)
        } else {
            None
        };
        let Some(name) = decl_name else { continue };
        if is_ident(name) {
            tracked.push(name);
            push_unless_allowed(
                findings,
                scrubbed,
                in_tests,
                path,
                tok.line,
                "D1",
                format!(
                    "`{name}` is declared as {} in a sim-visible crate; iteration order is \
                     process-seeded — use BTreeMap/BTreeSet or justify with an audited allow",
                    tok.text
                ),
            );
        }
    }
    // Iteration constructs over tracked identifiers.
    for i in 0..toks.len() {
        // `<name> . iter ( ... )` and friends.
        if toks[i].text == "."
            && i >= 1
            && tracked.contains(&toks[i - 1].text)
            && i + 2 < toks.len()
            && UNORDERED_ITER_METHODS.contains(&toks[i + 1].text)
            && toks[i + 2].text == "("
        {
            push_unless_allowed(
                findings,
                scrubbed,
                in_tests,
                path,
                toks[i + 1].line,
                "D1",
                format!(
                    "unordered iteration: `.{}()` over `{}` (a HashMap/HashSet) in a \
                     sim-visible crate",
                    toks[i + 1].text,
                    toks[i - 1].text
                ),
            );
        }
        // `for pat in <name> {` (possibly through `&`/`mut`/`self.`).
        if toks[i].text == "for" {
            let mut j = i + 1;
            let mut depth = 0usize;
            while j < toks.len() {
                match toks[j].text {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth = depth.saturating_sub(1),
                    "in" if depth == 0 => break,
                    "{" | ";" => {
                        j = toks.len();
                    }
                    _ => {}
                }
                j += 1;
            }
            if j >= toks.len() {
                continue;
            }
            let mut k = j + 1;
            while k < toks.len()
                && (toks[k].text == "&" || toks[k].text == "mut" || toks[k].text == "self")
            {
                k += 1;
            }
            if k < toks.len() && toks[k].text == "." {
                k += 1;
            }
            if k + 1 < toks.len()
                && tracked.contains(&toks[k].text)
                && (toks[k + 1].text == "{" || toks[k + 1].text == ".")
            {
                // Direct `for x in map {` — method-call forms were already
                // caught above; only flag the bare-map loop here.
                if toks[k + 1].text == "{" {
                    push_unless_allowed(
                        findings,
                        scrubbed,
                        in_tests,
                        path,
                        toks[k].line,
                        "D1",
                        format!(
                            "unordered iteration: `for .. in {}` (a HashMap/HashSet) in a \
                             sim-visible crate",
                            toks[k].text
                        ),
                    );
                }
            }
        }
    }
}

fn is_ident(s: &str) -> bool {
    s.chars()
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
}

/// Whether the statement containing token `i` starts with `use` or `pub use`.
fn statement_starts_with_use(toks: &[Tok<'_>], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        let t = toks[j - 1].text;
        if t == ";" || t == "{" || t == "}" {
            break;
        }
        j -= 1;
    }
    toks.get(j).map(|t| t.text) == Some("use")
        || (toks.get(j).map(|t| t.text) == Some("pub")
            && toks.get(j + 1).map(|t| t.text) == Some("use"))
}

/// D2: wall-clock types outside runner/bench/tests.
fn check_d2(
    path: &str,
    toks: &[Tok<'_>],
    scrubbed: &Scrubbed,
    in_tests: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    for tok in toks {
        if tok.text == "Instant" || tok.text == "SystemTime" {
            push_unless_allowed(
                findings,
                scrubbed,
                in_tests,
                path,
                tok.line,
                "D2",
                format!(
                    "wall-clock type `{}` outside runner/bench — sim code must use SimTime",
                    tok.text
                ),
            );
        }
    }
}

const AMBIENT_RANDOM: [&str; 7] = [
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "from_entropy",
    "RandomState",
    "DefaultHasher",
    "getrandom",
];

/// D3: ambient (non-seed-derived) randomness anywhere.
fn check_d3(
    path: &str,
    toks: &[Tok<'_>],
    scrubbed: &Scrubbed,
    in_tests: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    for (i, tok) in toks.iter().enumerate() {
        let ambient = AMBIENT_RANDOM.contains(&tok.text)
            || ((tok.text == "rand" || tok.text == "fastrand")
                && toks.get(i + 1).map(|t| t.text) == Some(":")
                && toks.get(i + 2).map(|t| t.text) == Some(":"));
        if ambient {
            push_unless_allowed(
                findings,
                scrubbed,
                in_tests,
                path,
                tok.line,
                "D3",
                format!(
                    "ambient randomness `{}` — all randomness must derive from the run seed \
                     via SimRng",
                    tok.text
                ),
            );
        }
    }
}

/// D4: thread creation outside `vanet_sim::pool`.
fn check_d4(
    path: &str,
    toks: &[Tok<'_>],
    scrubbed: &Scrubbed,
    in_tests: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    for i in 0..toks.len() {
        if toks[i].text == "thread"
            && toks.get(i + 1).map(|t| t.text) == Some(":")
            && toks.get(i + 2).map(|t| t.text) == Some(":")
            && matches!(
                toks.get(i + 3).map(|t| t.text),
                Some("spawn") | Some("scope") | Some("Builder")
            )
        {
            push_unless_allowed(
                findings,
                scrubbed,
                in_tests,
                path,
                toks[i].line,
                "D4",
                format!(
                    "thread creation (`thread::{}`) outside vanet_sim::pool — parallel \
                     determinism is only pinned through the pool",
                    toks[i + 3].text
                ),
            );
        }
    }
}

/// D5: stdout/stderr macros in library code.
fn check_d5(
    path: &str,
    toks: &[Tok<'_>],
    scrubbed: &Scrubbed,
    in_tests: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    for i in 0..toks.len() {
        if matches!(
            toks[i].text,
            "println" | "eprintln" | "print" | "eprint" | "dbg"
        ) && toks.get(i + 1).map(|t| t.text) == Some("!")
        {
            push_unless_allowed(
                findings,
                scrubbed,
                in_tests,
                path,
                toks[i].line,
                "D5",
                format!(
                    "`{}!` in a library crate — return data instead, or audit an operator \
                     warning with an allow",
                    toks[i].text
                ),
            );
        }
    }
}

const ALLOC_PATH_CALLS: [(&str, &str); 2] = [("Vec", "new"), ("Box", "new")];
const ALLOC_METHODS: [&str; 5] = ["collect", "to_vec", "to_owned", "to_string", "clone"];
const ALLOC_MACROS: [&str; 2] = ["format", "vec"];

/// P1: allocating calls in a `lint: hot-path` file.
fn check_p1(
    path: &str,
    toks: &[Tok<'_>],
    scrubbed: &Scrubbed,
    in_tests: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    for i in 0..toks.len() {
        let t = toks[i].text;
        let mut hit: Option<String> = None;
        if ALLOC_PATH_CALLS
            .iter()
            .any(|&(ty, m)| t == ty && path_call_is(toks, i, m))
        {
            hit = Some(format!("{t}::{}", toks[i + 3].text));
        } else if t == "with_capacity"
            && toks.get(i + 1).map(|x| x.text) == Some("(")
            && i >= 2
            && toks[i - 1].text == ":"
        {
            hit = Some(format!("{}::with_capacity", toks[i.saturating_sub(3)].text));
        } else if ALLOC_METHODS.contains(&t)
            && i >= 1
            && toks[i - 1].text == "."
            && toks.get(i + 1).map(|x| x.text) == Some("(")
        {
            hit = Some(format!(".{t}()"));
        } else if ALLOC_MACROS.contains(&t) && toks.get(i + 1).map(|x| x.text) == Some("!") {
            hit = Some(format!("{t}!"));
        } else if t == "new"
            && i >= 2
            && toks[i - 1].text == ":"
            && toks[i - 2].text == ":"
            && i >= 3
            && matches!(
                toks[i - 3].text,
                "String" | "VecDeque" | "BTreeMap" | "BTreeSet"
            )
        {
            hit = Some(format!("{}::new", toks[i - 3].text));
        }
        if let Some(what) = hit {
            push_unless_allowed(
                findings,
                scrubbed,
                in_tests,
                path,
                toks[i].line,
                "P1",
                format!(
                    "allocation (`{what}`) in a `lint: hot-path` file — keep the steady-state \
                     path zero-alloc, or audit a setup-path allocation with an allow"
                ),
            );
        }
    }
}

/// Whether tokens at `i` form `<ident> :: <method> (`.
fn path_call_is(toks: &[Tok<'_>], i: usize, method: &str) -> bool {
    toks.get(i + 1).map(|t| t.text) == Some(":")
        && toks.get(i + 2).map(|t| t.text) == Some(":")
        && toks.get(i + 3).map(|t| t.text) == Some(method)
        && toks.get(i + 4).map(|t| t.text) == Some("(")
}

const F1_SINKS: [&str; 5] = [
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
];

/// F1: `partial_cmp` force-unwrapped or defaulted (a non-total float order).
fn check_f1(
    path: &str,
    toks: &[Tok<'_>],
    scrubbed: &Scrubbed,
    in_tests: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    for i in 0..toks.len() {
        if toks[i].text != "partial_cmp" || toks.get(i + 1).map(|t| t.text) != Some("(") {
            continue;
        }
        // Skip the PartialOrd impl definition itself: `fn partial_cmp(..)`.
        if i >= 1 && toks[i - 1].text == "fn" {
            continue;
        }
        // Find the matching close paren of the call.
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < toks.len() {
            match toks[j].text {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if j + 2 < toks.len() && toks[j + 1].text == "." && F1_SINKS.contains(&toks[j + 2].text) {
            push_unless_allowed(
                findings,
                scrubbed,
                in_tests,
                path,
                toks[i].line,
                "F1",
                format!(
                    "`.partial_cmp(..).{}(..)` — NaN makes this panic or degrade to a \
                     non-total order; use f64::total_cmp or a total-order wrapper",
                    toks[j + 2].text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(path: &str, src: &str) -> Vec<&'static str> {
        scan_source(path, src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn d1_tracks_fields_and_bindings() {
        let src = "struct S { m: HashMap<u32, u64> }\n\
                   fn f(s: &S) { for x in s.m.values() { let _ = x; } }\n";
        let found = rules_of("crates/core/src/x.rs", src);
        assert_eq!(found, vec!["D1", "D1"]);
        // Same file in a non-sim-visible crate: clean.
        assert!(rules_of("crates/runner/src/x.rs", src).is_empty());
    }

    #[test]
    fn d1_let_binding_and_for_loop() {
        let src = "fn f() { let mut m = HashMap::new(); m.insert(1, 2);\n\
                   for kv in m { let _ = kv; } }\n";
        let found = rules_of("crates/net/src/x.rs", src);
        assert_eq!(found, vec!["D1", "D1"]);
    }

    #[test]
    fn d1_ignores_imports_and_lookups() {
        let src = "use std::collections::HashMap;\n\
                   struct S { m: HashMap<u32, u64> }\n\
                   // lint: allow(D1) \u{2014} lookup-only; covered by test x\n\
                   fn f(s: &S) -> Option<&u64> { s.m.get(&1) }\n";
        // Declaration on line 2 is unannotated; the lookup itself is not a
        // finding.
        let f = scan_source("crates/sim/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].rule, f[0].line), ("D1", 2));
    }

    #[test]
    fn jsonl_form_is_pinned() {
        let f = Finding {
            file: "crates/net/src/x.rs".into(),
            line: 7,
            rule: "D2",
            message: "wall-clock".into(),
        };
        assert_eq!(
            f.render_jsonl(),
            "{\"file\":\"crates/net/src/x.rs\",\"line\":7,\"rule\":\"D2\",\"message\":\"wall-clock\"}"
        );
    }

    #[test]
    fn every_rule_has_an_explanation() {
        for rule in RULES {
            assert!(explain(rule).is_some(), "missing --explain text for {rule}");
        }
        assert!(explain("Z9").is_none());
    }
}
