//! `vanet-lint` CLI: walk `crates/` + `src/`, enforce the invariant rules,
//! exit nonzero on findings. See `--explain <rule>` for the catalog.

use std::path::PathBuf;
use std::process::ExitCode;

use vanet_lint::{explain, scan_workspace, RULES};

const USAGE: &str = "\
vanet-lint — determinism & hot-path invariant checker

USAGE:
    vanet-lint [--root DIR] [--format text|jsonl]
    vanet-lint --explain <rule>
    vanet-lint --rules

OPTIONS:
    --root DIR        Workspace root to scan (default: current directory)
    --format FORMAT   `text` (file:line: rule — message) or `jsonl`
                      ({\"file\":..,\"line\":..,\"rule\":..,\"message\":..})
    --explain RULE    Print the long-form explanation of one rule
    --rules           List every rule code
    --help            Show this help

EXIT CODES:
    0  no findings
    1  findings reported
    2  usage or I/O error
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut format = "text".to_owned();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--rules" => {
                for rule in RULES {
                    println!("{rule}");
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => {
                let Some(rule) = iter.next() else {
                    eprintln!("--explain needs a rule code (one of {})", RULES.join(", "));
                    return ExitCode::from(2);
                };
                match explain(rule) {
                    Some(text) => {
                        println!("{text}");
                        return ExitCode::SUCCESS;
                    }
                    None => {
                        eprintln!("unknown rule `{rule}` (one of {})", RULES.join(", "));
                        return ExitCode::from(2);
                    }
                }
            }
            "--root" => {
                let Some(dir) = iter.next() else {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(dir);
            }
            "--format" => {
                let Some(f) = iter.next() else {
                    eprintln!("--format needs `text` or `jsonl`");
                    return ExitCode::from(2);
                };
                if f != "text" && f != "jsonl" {
                    eprintln!("unknown format `{f}` (expected `text` or `jsonl`)");
                    return ExitCode::from(2);
                }
                format = f.clone();
            }
            other => {
                eprintln!("unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let findings = match scan_workspace(&root) {
        Ok(findings) => findings,
        Err(error) => {
            eprintln!("vanet-lint: cannot scan {}: {error}", root.display());
            return ExitCode::from(2);
        }
    };
    for finding in &findings {
        if format == "jsonl" {
            println!("{}", finding.render_jsonl());
        } else {
            println!("{}", finding.render());
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        if format == "text" {
            eprintln!(
                "vanet-lint: {} finding(s); run `vanet-lint --explain <rule>` for the \
                 invariant behind each code",
                findings.len()
            );
        }
        ExitCode::from(1)
    }
}
