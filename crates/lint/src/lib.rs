//! `vanet-lint` — the workspace's determinism & hot-path invariant checker.
//!
//! The repo's core guarantee is that Reports are byte-identical across
//! workers, shards, resumes and engine rewrites. That guarantee is pinned
//! *dynamically* by the 21 protocol goldens; this crate enforces the
//! invariants *statically*, so a violation is a compile-gate failure rather
//! than a code-review hope:
//!
//! | rule | invariant |
//! |------|-----------|
//! | D1   | no unordered (HashMap/HashSet) containers in sim-visible crates |
//! | D2   | no wall-clock reads outside runner/bench/tests |
//! | D3   | no ambient randomness (everything derives from the seed via SimRng) |
//! | D4   | no thread creation outside `vanet_sim::pool` |
//! | D5   | no `println!`/`eprintln!`/`dbg!` in library crates |
//! | P1   | no allocation in `// lint: hot-path` files |
//! | F1   | no force-unwrapped `partial_cmp` float comparisons |
//! | A0   | every `lint:` directive is well-formed and justified |
//!
//! The pass is deliberately self-contained — a lightweight scrubber/lexer
//! (comments, strings, raw strings, char literals) plus per-file scope
//! tracking, no `syn` — because the build environment is offline. Findings
//! can be suppressed only by an *audited* annotation naming its reason:
//!
//! ```text
//! // lint: allow(D1) — only counts leave this map; pinned by <test name>
//! ```

mod rules;
mod scrub;

pub use rules::{explain, is_known_rule, scan_source, Finding, RULES};
pub use scrub::{scrub, Scrubbed};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never scanned: generated output, fixture corpora, and
/// test/bench/example code (not sim-visible; exercised dynamically instead).
const SKIP_DIRS: [&str; 7] = [
    "target", "tests", "benches", "examples", "fixtures", ".git", ".github",
];

/// Collects every lintable `.rs` file under `root`'s `crates/` and `src/`
/// trees, in deterministic (sorted) order, as workspace-relative paths.
pub fn collect_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    let mut rel: Vec<PathBuf> = files
        .into_iter()
        .filter_map(|p| p.strip_prefix(root).ok().map(Path::to_path_buf))
        .collect();
    rel.sort();
    Ok(rel)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            walk(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans the whole workspace under `root`; findings come back sorted by
/// (file, line, rule).
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for rel in collect_sources(root)? {
        let source = fs::read_to_string(root.join(&rel))?;
        let rel_str = rel
            .to_str()
            .map(|s| s.replace('\\', "/"))
            .unwrap_or_default();
        findings.extend(scan_source(&rel_str, &source));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_order_is_deterministic_and_skips_fixture_dirs() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let a = collect_sources(&root).unwrap();
        let b = collect_sources(&root).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a
            .iter()
            .all(|p| !p.components().any(|c| c.as_os_str() == "fixtures")));
        assert!(a
            .iter()
            .all(|p| !p.components().any(|c| c.as_os_str() == "tests")));
    }
}
