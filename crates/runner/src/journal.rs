//! Resumable per-job campaign journals, doubling as a result cache.
//!
//! While a campaign runs, the [`Runner`](crate::Runner) streams one JSON line
//! per completed job into `journal.jsonl` inside the journal directory. Each
//! line is self-contained: the job's stable content key (from
//! [`PlanJob::key`](vanet_core::PlanJob::key), a hash of the fully seeded
//! scenario and the protocol), a little bookkeeping, and the complete
//! [`Report`] with floats rendered in shortest-round-trip form — so
//! `parse(render(r))` reproduces the exact bits and resumed campaigns stay
//! byte-identical to cold runs.
//!
//! On open, every parseable line becomes a cache entry keyed by the content
//! hash. Jobs whose key is already present are not re-executed; because keys
//! depend only on (scenario, protocol, seed) content, this gives three
//! behaviours for free:
//!
//! * **resume** — re-running an interrupted campaign executes only the
//!   missing jobs;
//! * **sharded resume** — `--shard i/n` composes, since each shard only looks
//!   up its own cells' keys;
//! * **cell-level caching** — editing a plan invalidates exactly the cells
//!   whose scenario or protocol changed; untouched cells replay from disk.
//!
//! A line interrupted mid-write (the crash that makes resuming worthwhile)
//! fails to parse and is skipped — its job simply re-runs.

use crate::export::{json_escape, JsonParser};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use vanet_core::Report;

/// Name of the journal file inside a journal directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// One completed job as persisted in the journal.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// The job's stable content key (`PlanJob::key`).
    pub key: u64,
    /// The campaign the job ran under (bookkeeping only — not part of the
    /// cache key, so campaigns can share a journal directory).
    pub campaign: String,
    /// The cell label (bookkeeping only).
    pub label: String,
    /// The job's fully derived seed.
    pub seed: u64,
    /// The complete per-run report.
    pub report: Report,
}

/// Renders one journal line (no trailing newline). Floats use Rust's
/// shortest-round-trip `Display`, so parsing reproduces the exact bits.
#[must_use]
pub fn render_entry(entry: &JournalEntry) -> String {
    let r = &entry.report;
    format!(
        "{{\"key\":\"{:016x}\",\"campaign\":\"{}\",\"label\":\"{}\",\"seed\":{},\
         \"report\":{{\"protocol\":\"{}\",\"scenario\":\"{}\",\"data_sent\":{},\
         \"data_delivered\":{},\"duplicate_deliveries\":{},\"delivery_ratio\":{},\
         \"avg_delay_s\":{},\"max_delay_s\":{},\"avg_hops\":{},\"control_packets\":{},\
         \"control_bytes\":{},\"data_transmissions\":{},\"control_per_delivered\":{},\
         \"transmissions_per_delivered\":{},\"route_errors\":{},\"drops\":{},\
         \"avg_neighbors\":{},\"bundles_stored\":{},\"bundles_forwarded\":{},\
         \"bundles_expired\":{},\"bundles_evicted\":{},\"custody_transfers\":{},\
         \"buffer_peak\":{}}}}}",
        entry.key,
        json_escape(&entry.campaign),
        json_escape(&entry.label),
        entry.seed,
        json_escape(&r.protocol),
        json_escape(&r.scenario),
        r.data_sent,
        r.data_delivered,
        r.duplicate_deliveries,
        r.delivery_ratio,
        r.avg_delay_s,
        r.max_delay_s,
        r.avg_hops,
        r.control_packets,
        r.control_bytes,
        r.data_transmissions,
        r.control_per_delivered,
        r.transmissions_per_delivered,
        r.route_errors,
        r.drops,
        r.avg_neighbors,
        r.bundles_stored,
        r.bundles_forwarded,
        r.bundles_expired,
        r.bundles_evicted,
        r.custody_transfers,
        r.buffer_peak,
    )
}

/// Parses one journal line. Returns a description of the first problem for
/// malformed lines (the caller decides whether that is fatal — the journal
/// loader treats it as "interrupted write, re-run the job").
pub fn parse_entry(line: &str) -> Result<JournalEntry, String> {
    let value = JsonParser::new(line).value()?;
    let text = |key: &str| -> Result<String, String> {
        value
            .get(key)
            .and_then(super::export::Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("missing string field {key:?}"))
    };
    let key_hex = text("key")?;
    let key = u64::from_str_radix(&key_hex, 16).map_err(|_| format!("bad key {key_hex:?}"))?;
    let seed = value
        .get("seed")
        .and_then(super::export::Json::as_f64)
        .ok_or("missing seed")? as u64;
    let report_value = value.get("report").ok_or("missing report object")?;
    let rtext = |key: &str| -> Result<String, String> {
        report_value
            .get(key)
            .and_then(super::export::Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("missing report field {key:?}"))
    };
    let num = |key: &str| -> Result<f64, String> {
        report_value
            .get(key)
            .and_then(super::export::Json::as_f64)
            .ok_or_else(|| format!("missing report field {key:?}"))
    };
    let int = |key: &str| -> Result<u64, String> { Ok(num(key)? as u64) };
    let report = Report {
        protocol: rtext("protocol")?,
        scenario: rtext("scenario")?,
        data_sent: int("data_sent")?,
        data_delivered: int("data_delivered")?,
        duplicate_deliveries: int("duplicate_deliveries")?,
        delivery_ratio: num("delivery_ratio")?,
        avg_delay_s: num("avg_delay_s")?,
        max_delay_s: num("max_delay_s")?,
        avg_hops: num("avg_hops")?,
        control_packets: int("control_packets")?,
        control_bytes: int("control_bytes")?,
        data_transmissions: int("data_transmissions")?,
        control_per_delivered: num("control_per_delivered")?,
        transmissions_per_delivered: num("transmissions_per_delivered")?,
        route_errors: int("route_errors")?,
        drops: int("drops")?,
        avg_neighbors: num("avg_neighbors")?,
        // Bundle counters postdate the journal format: absent in lines
        // written before the DTN layer, so they default to zero.
        bundles_stored: int("bundles_stored").unwrap_or(0),
        bundles_forwarded: int("bundles_forwarded").unwrap_or(0),
        bundles_expired: int("bundles_expired").unwrap_or(0),
        bundles_evicted: int("bundles_evicted").unwrap_or(0),
        custody_transfers: int("custody_transfers").unwrap_or(0),
        buffer_peak: int("buffer_peak").unwrap_or(0),
    };
    Ok(JournalEntry {
        key,
        campaign: text("campaign")?,
        label: text("label")?,
        seed,
        report,
    })
}

/// A job the campaign gave up on: every allowed attempt panicked. Persisted
/// in the journal alongside completed jobs so resumed campaigns neither
/// re-run a known-poisoned job nor forget why a cell is missing.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineEntry {
    /// The job's stable content key (`PlanJob::key`).
    pub key: u64,
    /// The campaign the job ran under (bookkeeping only).
    pub campaign: String,
    /// The cell label (bookkeeping only).
    pub label: String,
    /// The job's fully derived seed.
    pub seed: u64,
    /// How many times the job was attempted before quarantine.
    pub attempts: u32,
    /// The exponential backoff schedule that *would* apply between attempts,
    /// in seconds. Recorded rather than slept so resume stays deterministic.
    pub backoff_s: Vec<f64>,
    /// First line of the panic payload from the final attempt.
    pub error: String,
}

/// Renders one quarantine line (no trailing newline). The `"quarantined":true`
/// marker distinguishes it from a report line.
#[must_use]
pub fn render_quarantine(entry: &QuarantineEntry) -> String {
    let backoff = entry
        .backoff_s
        .iter()
        .map(|b| b.to_string())
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"key\":\"{:016x}\",\"quarantined\":true,\"campaign\":\"{}\",\"label\":\"{}\",\
         \"seed\":{},\"attempts\":{},\"backoff_s\":[{}],\"error\":\"{}\"}}",
        entry.key,
        json_escape(&entry.campaign),
        json_escape(&entry.label),
        entry.seed,
        entry.attempts,
        backoff,
        json_escape(&entry.error),
    )
}

/// Parses one quarantine line (a line carrying the `"quarantined":true`
/// marker). Returns a description of the first problem for malformed lines.
pub fn parse_quarantine(line: &str) -> Result<QuarantineEntry, String> {
    let value = JsonParser::new(line).value()?;
    if value
        .get("quarantined")
        .and_then(super::export::Json::as_f64)
        != Some(1.0)
    {
        return Err("missing quarantined marker".to_owned());
    }
    let text = |key: &str| -> Result<String, String> {
        value
            .get(key)
            .and_then(super::export::Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("missing string field {key:?}"))
    };
    let num = |key: &str| -> Result<f64, String> {
        value
            .get(key)
            .and_then(super::export::Json::as_f64)
            .ok_or_else(|| format!("missing field {key:?}"))
    };
    let key_hex = text("key")?;
    let key = u64::from_str_radix(&key_hex, 16).map_err(|_| format!("bad key {key_hex:?}"))?;
    let backoff_s = value
        .get("backoff_s")
        .and_then(super::export::Json::as_array)
        .ok_or("missing backoff_s array")?
        .iter()
        .map(|v| v.as_f64().ok_or_else(|| "bad backoff_s element".to_owned()))
        .collect::<Result<Vec<f64>, String>>()?;
    Ok(QuarantineEntry {
        key,
        campaign: text("campaign")?,
        label: text("label")?,
        seed: num("seed")? as u64,
        attempts: num("attempts")? as u32,
        backoff_s,
        error: text("error")?,
    })
}

/// An open journal: the cache loaded from disk plus an append handle for
/// streaming new completions.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    cache: HashMap<u64, Report>,
    quarantine: HashMap<u64, QuarantineEntry>,
    file: Mutex<File>,
    skipped_lines: usize,
}

impl Journal {
    /// Opens (creating if needed) the journal in `dir`, loading every
    /// parseable line of an existing `journal.jsonl` into the cache.
    /// Unparseable lines — typically one interrupted final write — are
    /// counted and skipped, not fatal.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Journal> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let mut cache = HashMap::new();
        let mut quarantine: HashMap<u64, QuarantineEntry> = HashMap::new();
        let mut skipped_lines = 0;
        let mut needs_newline = false;
        if let Ok(existing) = std::fs::read_to_string(&path) {
            // Last-wins per key: a report line heals an earlier quarantine
            // (the job succeeded on a later attempt or under a raised retry
            // budget), and a quarantine line supersedes nothing — a cached
            // report for the same key always takes precedence.
            for line in existing.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                if let Ok(entry) = parse_entry(line) {
                    quarantine.remove(&entry.key);
                    cache.insert(entry.key, entry.report);
                } else if let Ok(entry) = parse_quarantine(line) {
                    if !cache.contains_key(&entry.key) {
                        quarantine.insert(entry.key, entry);
                    }
                } else {
                    skipped_lines += 1;
                }
            }
            // A file not ending in '\n' was interrupted mid-write; appending
            // straight after would glue the first new record onto the partial
            // line and corrupt it too.
            needs_newline = !existing.is_empty() && !existing.ends_with('\n');
        }
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        if needs_newline {
            writeln!(file)?;
        }
        Ok(Journal {
            path,
            cache,
            quarantine,
            file: Mutex::new(file),
            skipped_lines,
        })
    }

    /// The journal file's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of cached job results loaded at open time.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the cache loaded empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Number of unparseable lines skipped at open time.
    #[must_use]
    pub fn skipped_lines(&self) -> usize {
        self.skipped_lines
    }

    /// Number of quarantined jobs loaded at open time.
    #[must_use]
    pub fn quarantined_len(&self) -> usize {
        self.quarantine.len()
    }

    /// Looks a completed job up by its content key.
    #[must_use]
    pub fn lookup(&self, key: u64) -> Option<&Report> {
        self.cache.get(&key)
    }

    /// Looks a quarantined job up by its content key. A key never appears in
    /// both maps: a successful report heals the quarantine at load time.
    #[must_use]
    pub fn lookup_quarantine(&self, key: u64) -> Option<&QuarantineEntry> {
        self.quarantine.get(&key)
    }

    /// Appends a completed job and flushes, so a crash immediately after
    /// loses at most the line being written. Safe to call from worker
    /// threads; the line and its newline go down in one `write` on the
    /// append-mode handle, so concurrent shard *processes* sharing a journal
    /// directory cannot interleave within a record either.
    pub fn record(&self, entry: &JournalEntry) -> std::io::Result<()> {
        let mut line = render_entry(entry);
        line.push('\n');
        let mut file = self.file.lock().expect("journal file lock poisoned");
        file.write_all(line.as_bytes())?;
        file.flush()
    }

    /// Appends a quarantine record and flushes; same atomicity guarantees as
    /// [`Journal::record`].
    pub fn record_quarantine(&self, entry: &QuarantineEntry) -> std::io::Result<()> {
        let mut line = render_quarantine(entry);
        line.push('\n');
        let mut file = self.file.lock().expect("journal file lock poisoned");
        file.write_all(line.as_bytes())?;
        file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn report() -> Report {
        Report {
            protocol: "AODV".to_owned(),
            scenario: "highway-20".to_owned(),
            data_sent: 40,
            data_delivered: 31,
            duplicate_deliveries: 2,
            delivery_ratio: 0.775,
            avg_delay_s: 0.012_345_678_901_234_5,
            max_delay_s: 0.9,
            avg_hops: 2.5,
            control_packets: 120,
            control_bytes: 2880,
            data_transmissions: 77,
            control_per_delivered: 3.870_967_741_935_484,
            transmissions_per_delivered: 6.354_838_709_677_419,
            route_errors: 4,
            drops: 9,
            avg_neighbors: 5.333_333_333_333_333,
            bundles_stored: 6,
            bundles_forwarded: 3,
            bundles_expired: 1,
            bundles_evicted: 2,
            custody_transfers: 3,
            buffer_peak: 5,
        }
    }

    fn entry() -> JournalEntry {
        JournalEntry {
            key: 0x0123_4567_89ab_cdef,
            campaign: "test \"quoted\"".to_owned(),
            label: "hw,dense".to_owned(),
            seed: 101,
            report: report(),
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("vanet-journal-{tag}-{}-{n}", std::process::id()))
    }

    #[test]
    fn entry_round_trips_exactly() {
        let e = entry();
        let parsed = parse_entry(&render_entry(&e)).expect("rendered entry parses");
        assert_eq!(parsed, e, "journal round-trip must be lossless");
    }

    #[test]
    fn malformed_lines_are_reported() {
        assert!(parse_entry("{oops").is_err());
        assert!(parse_entry("{\"key\":\"zz\"}").is_err());
        let truncated = &render_entry(&entry())[..40];
        assert!(parse_entry(truncated).is_err());
    }

    #[test]
    fn journal_persists_and_recovers() {
        let dir = temp_dir("basic");
        let journal = Journal::open(&dir).unwrap();
        assert!(journal.is_empty());
        journal.record(&entry()).unwrap();
        let mut second = entry();
        second.key = 7;
        second.report.data_sent = 99;
        journal.record(&second).unwrap();
        drop(journal);

        let reopened = Journal::open(&dir).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.skipped_lines(), 0);
        assert_eq!(reopened.lookup(entry().key), Some(&entry().report));
        assert_eq!(reopened.lookup(7).unwrap().data_sent, 99);
        assert_eq!(reopened.lookup(8), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn quarantine() -> QuarantineEntry {
        QuarantineEntry {
            key: 0xdead_beef_0000_0001,
            campaign: "chaos".to_owned(),
            label: "hw/AODV".to_owned(),
            seed: 42,
            attempts: 3,
            backoff_s: vec![1.0, 2.0, 4.0],
            error: "poison fault fired at 1.000s in scenario 'hw'".to_owned(),
        }
    }

    #[test]
    fn quarantine_round_trips_exactly() {
        let q = quarantine();
        let line = render_quarantine(&q);
        assert!(line.contains("\"quarantined\":true"));
        let parsed = parse_quarantine(&line).expect("rendered quarantine parses");
        assert_eq!(parsed, q, "quarantine round-trip must be lossless");
        // A quarantine line is not a report line and vice versa.
        assert!(parse_entry(&line).is_err());
        assert!(parse_quarantine(&render_entry(&entry())).is_err());
    }

    #[test]
    fn report_line_heals_earlier_quarantine() {
        let dir = temp_dir("heal");
        let journal = Journal::open(&dir).unwrap();
        let mut q = quarantine();
        q.key = entry().key;
        journal.record_quarantine(&q).unwrap();
        drop(journal);

        let reopened = Journal::open(&dir).unwrap();
        assert_eq!(reopened.quarantined_len(), 1);
        assert_eq!(reopened.lookup_quarantine(q.key), Some(&q));
        assert_eq!(reopened.lookup(q.key), None);
        // The job later succeeds (e.g. under a raised --max-retries): the
        // report supersedes the quarantine on the next load.
        reopened.record(&entry()).unwrap();
        drop(reopened);

        let healed = Journal::open(&dir).unwrap();
        assert_eq!(healed.quarantined_len(), 0);
        assert_eq!(healed.lookup_quarantine(q.key), None);
        assert_eq!(healed.lookup(q.key), Some(&entry().report));
        // And a cached success is never displaced by a stale quarantine line.
        healed.record_quarantine(&q).unwrap();
        drop(healed);
        let still_healed = Journal::open(&dir).unwrap();
        assert_eq!(still_healed.quarantined_len(), 0);
        assert_eq!(still_healed.lookup(q.key), Some(&entry().report));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interrupted_final_line_is_skipped_not_fatal() {
        let dir = temp_dir("interrupted");
        let journal = Journal::open(&dir).unwrap();
        journal.record(&entry()).unwrap();
        let path = journal.path().to_path_buf();
        drop(journal);
        // Simulate a crash mid-write: append half a line.
        let full = std::fs::read_to_string(&path).unwrap();
        let half = &full[..full.len() / 2];
        std::fs::write(&path, format!("{full}{half}")).unwrap();

        let reopened = Journal::open(&dir).unwrap();
        assert_eq!(reopened.len(), 1);
        assert_eq!(reopened.skipped_lines(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
