//! `vanet-campaign` — run an experiment campaign from the command line.
//!
//! ```text
//! vanet-campaign [NAME] [options]
//!
//! NAME                    a catalog campaign (see --list); default: quick
//!
//! Options:
//!   --list                list catalog campaigns and exit
//!   --scenarios S1,S2,..  parameterised campaign over these scenarios
//!                         (highway-<N>, urban-<N>, megacity-<N>, sparse,
//!                         normal, congested; options e.g.
//!                         sparse:rsus=4,flows=5; deterministic disruptions
//!                         via fault=, e.g. highway-40:fault=node:10..20s or
//!                         fault=jam:5:0.9:30..60s — see scenario_spec)
//!   --protocols P1,P2,..  protocols for a parameterised campaign
//!                         (default: the five Table-I representatives)
//!   --seeds N             replications per cell (default 3)
//!   --resume DIR          journal completed jobs in DIR/journal.jsonl and
//!                         skip jobs already recorded there (resumable,
//!                         cached campaigns)
//!   --max-retries N       extra attempts per panicking job before it is
//!                         quarantined (default 0; backoff is recorded in
//!                         the journal, never slept)
//!   --allow-quarantine    exit 0 even when jobs were quarantined (they are
//!                         always reported; without this flag quarantine
//!                         fails the run)
//!   --ci-target W         adaptive replication: keep adding seeds per cell
//!                         until the 95% CI half-width of --ci-metric is <= W
//!                         (min replications = --seeds, cap = --ci-max)
//!   --ci-metric NAME      metric watched by --ci-target
//!                         (default delivery_ratio)
//!   --ci-max N            replication cap per cell for --ci-target
//!                         (default 32)
//!   --workers N           worker threads (default: available cores)
//!   --format F            table | csv | jsonl        (default table)
//!   --out FILE            write results to FILE instead of stdout
//!   --telemetry           stream windowed per-job telemetry to
//!                         DIR/telemetry.jsonl beside the journal
//!                         (requires --resume DIR; with --bench, writes
//!                         telemetry.jsonl beside the bench JSON)
//!   --telemetry-window S  telemetry window width in sim seconds (default 1)
//!   --telemetry-regions N spatial regions per axis (default 8)
//!   --full                paper-scale variant of catalog campaigns
//!   --quiet               suppress per-job progress on stderr
//!
//! vanet-campaign analyze ...   verdicts from campaign artifacts
//!                              (significance tests, windowed CSV exports,
//!                              bench-trajectory regression checks — see
//!                              `analyze --help`)
//! ```

use std::process::ExitCode;
use vanet_core::ProtocolKind;
use vanet_runner::{
    campaign_by_name, gate_events_per_sec, parse_scenario, protocol_by_name, render_bench_json,
    render_csv, render_fleet_bench_json, render_jsonl, render_table, run_analyze, run_fleet_bench,
    run_hotpath_bench, run_hotpath_bench_tapped, CampaignPlan, CampaignSpec, ReplicationPolicy,
    Runner, TelemetryEntry, TelemetryLog, TelemetrySettings, CATALOG,
};
use vanet_sim::pool::available_workers;

#[derive(Debug, PartialEq)]
enum Format {
    Table,
    Csv,
    Jsonl,
}

struct Args {
    name: Option<String>,
    scenarios: Vec<String>,
    protocols: Vec<String>,
    seeds: Option<usize>,
    resume: Option<String>,
    max_retries: u32,
    allow_quarantine: bool,
    ci_target: Option<f64>,
    ci_metric: String,
    ci_max: usize,
    workers: Option<usize>,
    format: Format,
    out: Option<String>,
    full: bool,
    quiet: bool,
    list: bool,
    shard: Option<(usize, usize)>,
    bench: bool,
    bench_fleet: bool,
    bench_vehicles: usize,
    bench_duration_s: f64,
    bench_label: String,
    bench_shards: Option<usize>,
    bench_gate: Option<String>,
    bench_gate_ratio: f64,
    telemetry: bool,
    telemetry_window_s: f64,
    telemetry_regions: usize,
}

fn usage() -> String {
    let mut text = String::from(
        "usage: vanet-campaign [NAME] [--scenarios S1,S2] [--protocols P1,P2] \
         [--seeds N] [--resume DIR] [--max-retries N] [--allow-quarantine] \
         [--ci-target W] [--ci-metric NAME] \
         [--ci-max N] [--workers N] [--format table|csv|jsonl] [--out FILE] \
         [--shard I/N] [--telemetry] [--telemetry-window S] \
         [--telemetry-regions N] [--full] [--quiet] [--list]\n       \
         vanet-campaign --bench [--bench-vehicles N] [--bench-duration S] \
         [--bench-label baseline|current] [--out FILE] \
         [--bench-gate FILE] [--bench-gate-ratio R] [--telemetry]\n       \
         vanet-campaign --bench-fleet [--bench-shards N] [--bench-vehicles N] \
         [--bench-duration S] [--bench-label baseline|current] [--out FILE]\n       \
         vanet-campaign analyze --journal DIR | --timeseries DIR | \
         --regions DIR | --bench-trend FILE... (see analyze --help)\n\n\
         campaign telemetry (--telemetry, requires --resume DIR) streams \
         windowed per-job counters\n         to DIR/telemetry.jsonl beside \
         the journal; analyze turns artifacts into verdicts.\n\n\
         catalog campaigns:\n",
    );
    for (name, blurb) in CATALOG {
        text.push_str(&format!("  {name:<10} {blurb}\n"));
    }
    text
}

/// Internal marker distinguishing a help request from a parse error.
const HELP_SENTINEL: &str = "\u{0}help";

/// Splits a `--scenarios` value into specifiers. Commas separate scenarios,
/// but they also separate *options inside* one specifier
/// (`highway-40:fault=node:10..20s,fault=burst:0.5`), so a piece that does
/// not begin a new scenario family is a continuation of the previous one.
fn split_scenarios(raw: &str) -> Vec<String> {
    let starts_family = |piece: &str| {
        ["highway-", "urban-", "megacity-"]
            .iter()
            .any(|family| piece.starts_with(family))
            || matches!(
                piece.split(':').next(),
                Some("sparse" | "normal" | "congested")
            )
    };
    let mut specs: Vec<String> = Vec::new();
    for piece in raw.split(',') {
        match specs.last_mut() {
            Some(last) if !starts_family(piece) => {
                last.push(',');
                last.push_str(piece);
            }
            _ => specs.push(piece.to_owned()),
        }
    }
    specs
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        name: None,
        scenarios: Vec::new(),
        protocols: Vec::new(),
        seeds: None,
        resume: None,
        max_retries: 0,
        allow_quarantine: false,
        ci_target: None,
        ci_metric: "delivery_ratio".to_owned(),
        ci_max: 32,
        workers: None,
        format: Format::Table,
        out: None,
        full: false,
        quiet: false,
        list: false,
        shard: None,
        bench: false,
        bench_fleet: false,
        bench_vehicles: 10_000,
        bench_duration_s: 20.0,
        bench_label: "current".to_owned(),
        bench_shards: None,
        bench_gate: None,
        bench_gate_ratio: 0.75,
        telemetry: false,
        telemetry_window_s: 1.0,
        telemetry_regions: 8,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--list" => args.list = true,
            "--full" => args.full = true,
            "--quiet" => args.quiet = true,
            "--scenarios" => {
                args.scenarios = split_scenarios(value("--scenarios")?);
            }
            "--protocols" => {
                args.protocols = value("--protocols")?
                    .split(',')
                    .map(str::to_owned)
                    .collect();
            }
            "--seeds" => {
                args.seeds = Some(
                    value("--seeds")?
                        .parse()
                        .map_err(|_| "--seeds needs an integer".to_owned())?,
                );
            }
            "--workers" => {
                args.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|_| "--workers needs an integer".to_owned())?,
                );
            }
            "--format" => {
                args.format = match value("--format")?.as_str() {
                    "table" => Format::Table,
                    "csv" => Format::Csv,
                    "jsonl" => Format::Jsonl,
                    other => return Err(format!("unknown format {other:?}")),
                };
            }
            "--resume" => args.resume = Some(value("--resume")?.clone()),
            "--max-retries" => {
                args.max_retries = value("--max-retries")?
                    .parse()
                    .map_err(|_| "--max-retries needs an integer".to_owned())?;
            }
            "--allow-quarantine" => args.allow_quarantine = true,
            "--ci-target" => {
                let width: f64 = value("--ci-target")?
                    .parse()
                    .map_err(|_| "--ci-target needs a number (CI half-width)".to_owned())?;
                if !width.is_finite() || width <= 0.0 {
                    return Err("--ci-target must be a positive number".to_owned());
                }
                args.ci_target = Some(width);
            }
            "--ci-metric" => args.ci_metric = value("--ci-metric")?.clone(),
            "--ci-max" => {
                let max: usize = value("--ci-max")?
                    .parse()
                    .map_err(|_| "--ci-max needs an integer".to_owned())?;
                if max == 0 {
                    return Err("--ci-max must be at least 1".to_owned());
                }
                args.ci_max = max;
            }
            "--out" => args.out = Some(value("--out")?.clone()),
            "--shard" => {
                let raw = value("--shard")?;
                let (i, n) = raw
                    .split_once('/')
                    .ok_or_else(|| "--shard needs the form I/N (e.g. 0/4)".to_owned())?;
                let shard = (
                    i.parse()
                        .map_err(|_| "--shard index must be an integer".to_owned())?,
                    n.parse()
                        .map_err(|_| "--shard count must be an integer".to_owned())?,
                );
                if shard.1 == 0 || shard.0 >= shard.1 {
                    return Err(format!("--shard {raw} is out of range (need I < N)"));
                }
                args.shard = Some(shard);
            }
            "--bench" => args.bench = true,
            "--bench-fleet" => args.bench_fleet = true,
            "--bench-shards" => {
                let shards: usize = value("--bench-shards")?
                    .parse()
                    .map_err(|_| "--bench-shards needs an integer".to_owned())?;
                if shards == 0 {
                    return Err("--bench-shards must be at least 1".to_owned());
                }
                args.bench_shards = Some(shards);
            }
            "--bench-gate" => args.bench_gate = Some(value("--bench-gate")?.clone()),
            "--bench-gate-ratio" => {
                let ratio: f64 = value("--bench-gate-ratio")?
                    .parse()
                    .map_err(|_| "--bench-gate-ratio needs a number".to_owned())?;
                if !(0.0..=1.0).contains(&ratio) {
                    return Err("--bench-gate-ratio must be within 0..=1".to_owned());
                }
                args.bench_gate_ratio = ratio;
            }
            "--telemetry" => args.telemetry = true,
            "--telemetry-window" => {
                let window: f64 = value("--telemetry-window")?
                    .parse()
                    .map_err(|_| "--telemetry-window needs a number of seconds".to_owned())?;
                if !window.is_finite() || window <= 0.0 {
                    return Err("--telemetry-window must be a positive number".to_owned());
                }
                args.telemetry_window_s = window;
            }
            "--telemetry-regions" => {
                let regions: usize = value("--telemetry-regions")?
                    .parse()
                    .map_err(|_| "--telemetry-regions needs an integer".to_owned())?;
                if regions == 0 {
                    return Err("--telemetry-regions must be at least 1".to_owned());
                }
                args.telemetry_regions = regions;
            }
            "--bench-vehicles" => {
                args.bench_vehicles = value("--bench-vehicles")?
                    .parse()
                    .map_err(|_| "--bench-vehicles needs an integer".to_owned())?;
            }
            "--bench-duration" => {
                args.bench_duration_s = value("--bench-duration")?
                    .parse()
                    .map_err(|_| "--bench-duration needs a number of seconds".to_owned())?;
            }
            "--bench-label" => {
                let label = value("--bench-label")?.clone();
                if label != "baseline" && label != "current" {
                    return Err("--bench-label must be baseline or current".to_owned());
                }
                args.bench_label = label;
            }
            "--help" | "-h" => return Err(HELP_SENTINEL.to_owned()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            name if args.name.is_none() => args.name = Some(name.to_owned()),
            extra => return Err(format!("unexpected argument {extra:?}")),
        }
    }
    Ok(args)
}

fn build_plan(args: &Args) -> Result<CampaignPlan, String> {
    let spec = if !args.scenarios.is_empty() {
        let mut spec = CampaignSpec::new(args.name.clone().unwrap_or_else(|| "custom".to_owned()))
            .replications(args.seeds.unwrap_or(3));
        for label in &args.scenarios {
            let scenario = parse_scenario(label).map_err(|error| error.to_string())?;
            spec = spec.scenario(label.clone(), scenario);
        }
        let protocols = if args.protocols.is_empty() {
            ProtocolKind::REPRESENTATIVES.to_vec()
        } else {
            args.protocols
                .iter()
                .map(|name| {
                    protocol_by_name(name).ok_or_else(|| format!("unknown protocol {name:?}"))
                })
                .collect::<Result<Vec<_>, _>>()?
        };
        spec.protocols(protocols)
    } else {
        let name = args.name.as_deref().unwrap_or("quick");
        let mut spec = campaign_by_name(name, args.full)
            .ok_or_else(|| format!("unknown campaign {name:?}\n\n{}", usage()))?;
        if let Some(seeds) = args.seeds {
            spec = spec.replications(seeds);
        }
        spec
    };
    let mut plan = spec.to_plan();
    if let Some(target_width) = args.ci_target {
        let min = args.seeds.unwrap_or(3);
        if args.ci_max < min {
            return Err(format!(
                "--ci-max {} is below the minimum replication count {min} (--seeds)",
                args.ci_max
            ));
        }
        plan = plan.with_replication(ReplicationPolicy::confidence_width(
            args.ci_metric.clone(),
            target_width,
            min,
            args.ci_max,
        ));
    }
    Ok(plan)
}

fn bench_protocol(args: &Args) -> Result<ProtocolKind, String> {
    match args.protocols.first() {
        None => Ok(ProtocolKind::Greedy),
        Some(name) => protocol_by_name(name).ok_or_else(|| format!("unknown protocol {name:?}")),
    }
}

/// Applies `--bench-gate`: compares `measured_events_per_sec` against the
/// committed bench file's events/sec (same scenario and protocol required)
/// and fails below `--bench-gate-ratio`.
fn apply_gate(
    args: &Args,
    scenario: &str,
    protocol: ProtocolKind,
    measured_events_per_sec: f64,
) -> Result<(), String> {
    let Some(path) = args.bench_gate.as_deref() else {
        return Ok(());
    };
    let committed = std::fs::read_to_string(path)
        .map_err(|error| format!("cannot read gate reference {path:?}: {error}"))?;
    let ratio = gate_events_per_sec(
        &committed,
        scenario,
        protocol.name(),
        measured_events_per_sec,
        args.bench_gate_ratio,
    )
    .map_err(|message| format!("perf gate vs {path}: {message}"))?;
    eprintln!(
        "[vanet-campaign] perf gate vs {path}: {:.0}% of committed events/sec (floor {:.0}%)",
        ratio * 100.0,
        args.bench_gate_ratio * 100.0
    );
    Ok(())
}

/// `--bench`: one single-threaded megacity run; the measurement is merged
/// into the bench JSON file under `--bench-label`, preserving the other
/// label so baseline/current pairs accumulate a speedup.
fn run_bench(args: &Args) -> ExitCode {
    let protocol = match bench_protocol(args) {
        Ok(p) => p,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "[vanet-campaign] bench: megacity-{} x {}s under {} ({})",
        args.bench_vehicles, args.bench_duration_s, protocol, args.bench_label
    );
    let (outcome, tap) = if args.telemetry {
        let (outcome, tap) = run_hotpath_bench_tapped(
            args.bench_vehicles,
            args.bench_duration_s,
            protocol,
            args.telemetry_window_s,
            args.telemetry_regions,
        );
        (outcome, Some(tap))
    } else {
        (
            run_hotpath_bench(args.bench_vehicles, args.bench_duration_s, protocol),
            None,
        )
    };
    eprintln!(
        "[vanet-campaign] {} events in {:.2}s = {:.0} events/sec, peak RSS {:.1} MiB, pdr {:.3}",
        outcome.run.events,
        outcome.run.wall_s,
        outcome.run.events_per_sec,
        outcome.run.peak_rss_bytes as f64 / (1024.0 * 1024.0),
        outcome.report.delivery_ratio,
    );
    let path = args.out.as_deref().unwrap_or("BENCH_hotpath.json");
    let existing = std::fs::read_to_string(path).ok();
    let rendered = render_bench_json(existing.as_deref(), &args.bench_label, &outcome);
    if let Err(error) = std::fs::write(path, &rendered) {
        eprintln!("cannot write {path:?}: {error}");
        return ExitCode::FAILURE;
    }
    eprintln!("[vanet-campaign] wrote {path}");
    if let Some(tap) = &tap {
        let dir = std::path::Path::new(path)
            .parent()
            .filter(|parent| !parent.as_os_str().is_empty())
            .unwrap_or_else(|| std::path::Path::new("."));
        // The bench workload is fully described by its label; a stable key
        // keeps repeated runs of the same workload on one telemetry line.
        let mut hasher = vanet_sim::StableHasher::new();
        hasher.write_str("bench-telemetry/v1");
        hasher.write_str(&outcome.scenario);
        hasher.write_str(protocol.name());
        hasher.write_u64(args.bench_duration_s.to_bits());
        let entry = TelemetryEntry::from_tap(
            hasher.finish(),
            "bench",
            &format!("{}/{}", outcome.scenario, protocol.name()),
            0,
            tap,
        );
        match TelemetryLog::open(dir).and_then(|log| {
            log.record(&entry)?;
            Ok(log.path().to_path_buf())
        }) {
            Ok(telemetry_path) => {
                eprintln!("[vanet-campaign] wrote {}", telemetry_path.display());
            }
            Err(error) => {
                eprintln!("cannot write telemetry beside {path:?}: {error}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(message) = apply_gate(
        args,
        &outcome.scenario,
        protocol,
        outcome.run.events_per_sec,
    ) {
        eprintln!("{message}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `--bench-fleet`: one simulation per core (or `--bench-shards`) on the
/// worker pool — the fleet-capacity measurement, written to
/// `BENCH_fleet.json` under `--bench-label`.
fn run_bench_fleet(args: &Args) -> ExitCode {
    let protocol = match bench_protocol(args) {
        Ok(p) => p,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let shards = args
        .bench_shards
        .or(args.workers)
        .unwrap_or_else(available_workers);
    eprintln!(
        "[vanet-campaign] fleet bench: {} x megacity-{} x {}s under {} ({})",
        shards, args.bench_vehicles, args.bench_duration_s, protocol, args.bench_label
    );
    let outcome = run_fleet_bench(args.bench_vehicles, args.bench_duration_s, protocol, shards);
    let per_core: Vec<String> = outcome
        .run
        .per_core_events_per_sec
        .iter()
        .map(|eps| format!("{eps:.0}"))
        .collect();
    eprintln!(
        "[vanet-campaign] {} events across {} shards in {:.2}s = {:.0} events/sec aggregate \
         (per core: [{}]), peak RSS {:.1} MiB",
        outcome.run.total_events,
        outcome.run.shards,
        outcome.run.wall_s,
        outcome.run.aggregate_events_per_sec,
        per_core.join(", "),
        outcome.run.peak_rss_bytes as f64 / (1024.0 * 1024.0),
    );
    let path = args.out.as_deref().unwrap_or("BENCH_fleet.json");
    let existing = std::fs::read_to_string(path).ok();
    let rendered = render_fleet_bench_json(existing.as_deref(), &args.bench_label, &outcome);
    if let Err(error) = std::fs::write(path, &rendered) {
        eprintln!("cannot write {path:?}: {error}");
        return ExitCode::FAILURE;
    }
    eprintln!("[vanet-campaign] wrote {path}");
    if let Err(message) = apply_gate(
        args,
        &outcome.scenario,
        protocol,
        outcome.run.mean_core_events_per_sec(),
    ) {
        eprintln!("{message}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("analyze") {
        return match run_analyze(&argv[1..]) {
            Ok(report) => {
                print!("{}", report.text);
                if !report.text.ends_with('\n') {
                    println!();
                }
                if report.regressions > 0 {
                    eprintln!("[vanet-campaign] {} check(s) failed", report.regressions);
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) if message == HELP_SENTINEL => {
            print!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if args.list {
        print!("{}", usage());
        return ExitCode::SUCCESS;
    }
    if args.bench && args.bench_fleet {
        eprintln!("--bench and --bench-fleet are mutually exclusive");
        return ExitCode::FAILURE;
    }
    if args.bench {
        return run_bench(&args);
    }
    if args.bench_fleet {
        return run_bench_fleet(&args);
    }
    let plan = match build_plan(&args) {
        Ok(plan) => plan,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(metric) = plan.cells.iter().find_map(|cell| match &cell.replication {
        ReplicationPolicy::ConfidenceWidth { metric, .. }
            if vanet_runner::Summary::default().metric(metric).is_none() =>
        {
            Some(metric.clone())
        }
        _ => None,
    }) {
        eprintln!(
            "unknown --ci-metric {metric:?} (expected one of: {})",
            vanet_runner::METRIC_NAMES.join(", ")
        );
        return ExitCode::FAILURE;
    }

    let mut runner = Runner::new()
        .with_progress(!args.quiet)
        .with_max_retries(args.max_retries);
    if let Some(workers) = args.workers {
        runner = runner.with_workers(workers);
    }
    if let Some((index, count)) = args.shard {
        runner = runner.with_shard(index, count);
    }
    if let Some(dir) = &args.resume {
        runner = runner.with_journal(dir);
    }
    if args.telemetry {
        if args.resume.is_none() {
            eprintln!("--telemetry needs --resume DIR (telemetry.jsonl lives beside the journal)");
            return ExitCode::FAILURE;
        }
        runner = runner.with_telemetry(TelemetrySettings {
            window_s: args.telemetry_window_s,
            regions_per_axis: args.telemetry_regions,
        });
    }
    let results = runner.run_plan(&plan);
    if args.resume.is_some() {
        // Printed even under --quiet: resume/caching behaviour is the one
        // thing scripts (and the CI smoke) need to observe.
        eprintln!(
            "[vanet-campaign] {} jobs executed, {} cached",
            results.executed_jobs, results.cached_jobs
        );
    }

    let rendered = match args.format {
        Format::Table => render_table(&results),
        Format::Csv => render_csv(&results),
        Format::Jsonl => render_jsonl(&results),
    };
    match &args.out {
        None => print!("{rendered}"),
        Some(path) => {
            if let Err(error) = std::fs::write(path, &rendered) {
                eprintln!("cannot write {path:?}: {error}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "[vanet-campaign] wrote {} cells to {path}",
                results.cells.len()
            );
        }
    }
    if !results.quarantined.is_empty() {
        eprintln!(
            "[vanet-campaign] {} job(s) quarantined after repeated panics{}",
            results.quarantined.len(),
            if args.allow_quarantine {
                " (tolerated by --allow-quarantine)"
            } else {
                ""
            }
        );
        if !args.allow_quarantine {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::split_scenarios;

    #[test]
    fn scenario_splitting_keeps_multi_option_specs_together() {
        assert_eq!(
            split_scenarios("highway-12,urban-20:rsus=2"),
            ["highway-12", "urban-20:rsus=2"]
        );
        assert_eq!(
            split_scenarios("highway-40:fault=node:10..20s,fault=burst:0.5,sparse:flows=2,seed=9"),
            [
                "highway-40:fault=node:10..20s,fault=burst:0.5",
                "sparse:flows=2,seed=9"
            ]
        );
        // A leading continuation piece is passed through so the parser can
        // reject it with a proper error.
        assert_eq!(split_scenarios("fault=burst:0.5"), ["fault=burst:0.5"]);
    }
}
