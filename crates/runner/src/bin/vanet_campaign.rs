//! `vanet-campaign` — run an experiment campaign from the command line.
//!
//! ```text
//! vanet-campaign [NAME] [options]
//!
//! NAME                    a catalog campaign (see --list); default: quick
//!
//! Options:
//!   --list                list catalog campaigns and exit
//!   --scenarios S1,S2,..  parameterised campaign over these scenarios
//!                         (highway-<N>, urban-<N>, sparse, normal,
//!                         congested; options e.g. sparse:rsus=4,flows=5)
//!   --protocols P1,P2,..  protocols for a parameterised campaign
//!                         (default: the five Table-I representatives)
//!   --seeds N             replications per cell (default 3)
//!   --workers N           worker threads (default: available cores)
//!   --format F            table | csv | jsonl        (default table)
//!   --out FILE            write results to FILE instead of stdout
//!   --full                paper-scale variant of catalog campaigns
//!   --quiet               suppress per-job progress on stderr
//! ```

use std::process::ExitCode;
use vanet_core::ProtocolKind;
use vanet_runner::{
    campaign_by_name, parse_scenario, protocol_by_name, render_bench_json, render_csv,
    render_jsonl, render_table, run_hotpath_bench, CampaignSpec, Runner, CATALOG,
};

#[derive(Debug, PartialEq)]
enum Format {
    Table,
    Csv,
    Jsonl,
}

struct Args {
    name: Option<String>,
    scenarios: Vec<String>,
    protocols: Vec<String>,
    seeds: Option<usize>,
    workers: Option<usize>,
    format: Format,
    out: Option<String>,
    full: bool,
    quiet: bool,
    list: bool,
    shard: Option<(usize, usize)>,
    bench: bool,
    bench_vehicles: usize,
    bench_duration_s: f64,
    bench_label: String,
}

fn usage() -> String {
    let mut text = String::from(
        "usage: vanet-campaign [NAME] [--scenarios S1,S2] [--protocols P1,P2] \
         [--seeds N] [--workers N] [--format table|csv|jsonl] [--out FILE] \
         [--shard I/N] [--full] [--quiet] [--list]\n       \
         vanet-campaign --bench [--bench-vehicles N] [--bench-duration S] \
         [--bench-label baseline|current] [--out FILE]\n\ncatalog campaigns:\n",
    );
    for (name, blurb) in CATALOG {
        text.push_str(&format!("  {name:<10} {blurb}\n"));
    }
    text
}

/// Internal marker distinguishing a help request from a parse error.
const HELP_SENTINEL: &str = "\u{0}help";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        name: None,
        scenarios: Vec::new(),
        protocols: Vec::new(),
        seeds: None,
        workers: None,
        format: Format::Table,
        out: None,
        full: false,
        quiet: false,
        list: false,
        shard: None,
        bench: false,
        bench_vehicles: 10_000,
        bench_duration_s: 20.0,
        bench_label: "current".to_owned(),
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--list" => args.list = true,
            "--full" => args.full = true,
            "--quiet" => args.quiet = true,
            "--scenarios" => {
                args.scenarios = value("--scenarios")?
                    .split(',')
                    .map(str::to_owned)
                    .collect();
            }
            "--protocols" => {
                args.protocols = value("--protocols")?
                    .split(',')
                    .map(str::to_owned)
                    .collect();
            }
            "--seeds" => {
                args.seeds = Some(
                    value("--seeds")?
                        .parse()
                        .map_err(|_| "--seeds needs an integer".to_owned())?,
                );
            }
            "--workers" => {
                args.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|_| "--workers needs an integer".to_owned())?,
                );
            }
            "--format" => {
                args.format = match value("--format")?.as_str() {
                    "table" => Format::Table,
                    "csv" => Format::Csv,
                    "jsonl" => Format::Jsonl,
                    other => return Err(format!("unknown format {other:?}")),
                };
            }
            "--out" => args.out = Some(value("--out")?.clone()),
            "--shard" => {
                let raw = value("--shard")?;
                let (i, n) = raw
                    .split_once('/')
                    .ok_or_else(|| "--shard needs the form I/N (e.g. 0/4)".to_owned())?;
                let shard = (
                    i.parse()
                        .map_err(|_| "--shard index must be an integer".to_owned())?,
                    n.parse()
                        .map_err(|_| "--shard count must be an integer".to_owned())?,
                );
                if shard.1 == 0 || shard.0 >= shard.1 {
                    return Err(format!("--shard {raw} is out of range (need I < N)"));
                }
                args.shard = Some(shard);
            }
            "--bench" => args.bench = true,
            "--bench-vehicles" => {
                args.bench_vehicles = value("--bench-vehicles")?
                    .parse()
                    .map_err(|_| "--bench-vehicles needs an integer".to_owned())?;
            }
            "--bench-duration" => {
                args.bench_duration_s = value("--bench-duration")?
                    .parse()
                    .map_err(|_| "--bench-duration needs a number of seconds".to_owned())?;
            }
            "--bench-label" => {
                let label = value("--bench-label")?.clone();
                if label != "baseline" && label != "current" {
                    return Err("--bench-label must be baseline or current".to_owned());
                }
                args.bench_label = label;
            }
            "--help" | "-h" => return Err(HELP_SENTINEL.to_owned()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            name if args.name.is_none() => args.name = Some(name.to_owned()),
            extra => return Err(format!("unexpected argument {extra:?}")),
        }
    }
    Ok(args)
}

fn build_spec(args: &Args) -> Result<CampaignSpec, String> {
    if !args.scenarios.is_empty() {
        let mut spec = CampaignSpec::new(args.name.clone().unwrap_or_else(|| "custom".to_owned()))
            .replications(args.seeds.unwrap_or(3));
        for label in &args.scenarios {
            let scenario = parse_scenario(label)
                .ok_or_else(|| format!("unknown scenario specifier {label:?}"))?;
            spec = spec.scenario(label.clone(), scenario);
        }
        let protocols = if args.protocols.is_empty() {
            ProtocolKind::REPRESENTATIVES.to_vec()
        } else {
            args.protocols
                .iter()
                .map(|name| {
                    protocol_by_name(name).ok_or_else(|| format!("unknown protocol {name:?}"))
                })
                .collect::<Result<Vec<_>, _>>()?
        };
        Ok(spec.protocols(protocols))
    } else {
        let name = args.name.as_deref().unwrap_or("quick");
        let mut spec = campaign_by_name(name, args.full)
            .ok_or_else(|| format!("unknown campaign {name:?}\n\n{}", usage()))?;
        if let Some(seeds) = args.seeds {
            spec = spec.replications(seeds);
        }
        Ok(spec)
    }
}

/// `--bench`: one single-threaded megacity run; the measurement is merged
/// into the bench JSON file under `--bench-label`, preserving the other
/// label so baseline/current pairs accumulate a speedup.
fn run_bench(args: &Args) -> ExitCode {
    let protocol = match args.protocols.first() {
        None => ProtocolKind::Greedy,
        Some(name) => match protocol_by_name(name) {
            Some(p) => p,
            None => {
                eprintln!("unknown protocol {name:?}");
                return ExitCode::FAILURE;
            }
        },
    };
    eprintln!(
        "[vanet-campaign] bench: megacity-{} x {}s under {} ({})",
        args.bench_vehicles, args.bench_duration_s, protocol, args.bench_label
    );
    let outcome = run_hotpath_bench(args.bench_vehicles, args.bench_duration_s, protocol);
    eprintln!(
        "[vanet-campaign] {} events in {:.2}s = {:.0} events/sec, peak RSS {:.1} MiB, pdr {:.3}",
        outcome.run.events,
        outcome.run.wall_s,
        outcome.run.events_per_sec,
        outcome.run.peak_rss_bytes as f64 / (1024.0 * 1024.0),
        outcome.report.delivery_ratio,
    );
    let path = args.out.as_deref().unwrap_or("BENCH_hotpath.json");
    let existing = std::fs::read_to_string(path).ok();
    let rendered = render_bench_json(existing.as_deref(), &args.bench_label, &outcome);
    if let Err(error) = std::fs::write(path, &rendered) {
        eprintln!("cannot write {path:?}: {error}");
        return ExitCode::FAILURE;
    }
    eprintln!("[vanet-campaign] wrote {path}");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) if message == HELP_SENTINEL => {
            print!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if args.list {
        print!("{}", usage());
        return ExitCode::SUCCESS;
    }
    if args.bench {
        return run_bench(&args);
    }
    let spec = match build_spec(&args) {
        Ok(spec) => spec,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let mut runner = Runner::new().with_progress(!args.quiet);
    if let Some(workers) = args.workers {
        runner = runner.with_workers(workers);
    }
    if let Some((index, count)) = args.shard {
        runner = runner.with_shard(index, count);
    }
    let results = runner.run(&spec);

    let rendered = match args.format {
        Format::Table => render_table(&results),
        Format::Csv => render_csv(&results),
        Format::Jsonl => render_jsonl(&results),
    };
    match &args.out {
        None => print!("{rendered}"),
        Some(path) => {
            if let Err(error) = std::fs::write(path, &rendered) {
                eprintln!("cannot write {path:?}: {error}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "[vanet-campaign] wrote {} cells to {path}",
                results.cells.len()
            );
        }
    }
    ExitCode::SUCCESS
}
