//! `vanet-campaign` — run an experiment campaign from the command line.
//!
//! ```text
//! vanet-campaign [NAME] [options]
//!
//! NAME                    a catalog campaign (see --list); default: quick
//!
//! Options:
//!   --list                list catalog campaigns and exit
//!   --scenarios S1,S2,..  parameterised campaign over these scenarios
//!                         (highway-<N>, urban-<N>, sparse, normal,
//!                         congested; options e.g. sparse:rsus=4,flows=5)
//!   --protocols P1,P2,..  protocols for a parameterised campaign
//!                         (default: the five Table-I representatives)
//!   --seeds N             replications per cell (default 3)
//!   --workers N           worker threads (default: available cores)
//!   --format F            table | csv | jsonl        (default table)
//!   --out FILE            write results to FILE instead of stdout
//!   --full                paper-scale variant of catalog campaigns
//!   --quiet               suppress per-job progress on stderr
//! ```

use std::process::ExitCode;
use vanet_core::ProtocolKind;
use vanet_runner::{
    campaign_by_name, parse_scenario, protocol_by_name, render_csv, render_jsonl, render_table,
    CampaignSpec, Runner, CATALOG,
};

#[derive(Debug, PartialEq)]
enum Format {
    Table,
    Csv,
    Jsonl,
}

struct Args {
    name: Option<String>,
    scenarios: Vec<String>,
    protocols: Vec<String>,
    seeds: Option<usize>,
    workers: Option<usize>,
    format: Format,
    out: Option<String>,
    full: bool,
    quiet: bool,
    list: bool,
}

fn usage() -> String {
    let mut text = String::from(
        "usage: vanet-campaign [NAME] [--scenarios S1,S2] [--protocols P1,P2] \
         [--seeds N] [--workers N] [--format table|csv|jsonl] [--out FILE] \
         [--full] [--quiet] [--list]\n\ncatalog campaigns:\n",
    );
    for (name, blurb) in CATALOG {
        text.push_str(&format!("  {name:<10} {blurb}\n"));
    }
    text
}

/// Internal marker distinguishing a help request from a parse error.
const HELP_SENTINEL: &str = "\u{0}help";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        name: None,
        scenarios: Vec::new(),
        protocols: Vec::new(),
        seeds: None,
        workers: None,
        format: Format::Table,
        out: None,
        full: false,
        quiet: false,
        list: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--list" => args.list = true,
            "--full" => args.full = true,
            "--quiet" => args.quiet = true,
            "--scenarios" => {
                args.scenarios = value("--scenarios")?
                    .split(',')
                    .map(str::to_owned)
                    .collect();
            }
            "--protocols" => {
                args.protocols = value("--protocols")?
                    .split(',')
                    .map(str::to_owned)
                    .collect();
            }
            "--seeds" => {
                args.seeds = Some(
                    value("--seeds")?
                        .parse()
                        .map_err(|_| "--seeds needs an integer".to_owned())?,
                );
            }
            "--workers" => {
                args.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|_| "--workers needs an integer".to_owned())?,
                );
            }
            "--format" => {
                args.format = match value("--format")?.as_str() {
                    "table" => Format::Table,
                    "csv" => Format::Csv,
                    "jsonl" => Format::Jsonl,
                    other => return Err(format!("unknown format {other:?}")),
                };
            }
            "--out" => args.out = Some(value("--out")?.clone()),
            "--help" | "-h" => return Err(HELP_SENTINEL.to_owned()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            name if args.name.is_none() => args.name = Some(name.to_owned()),
            extra => return Err(format!("unexpected argument {extra:?}")),
        }
    }
    Ok(args)
}

fn build_spec(args: &Args) -> Result<CampaignSpec, String> {
    if !args.scenarios.is_empty() {
        let mut spec = CampaignSpec::new(args.name.clone().unwrap_or_else(|| "custom".to_owned()))
            .replications(args.seeds.unwrap_or(3));
        for label in &args.scenarios {
            let scenario = parse_scenario(label)
                .ok_or_else(|| format!("unknown scenario specifier {label:?}"))?;
            spec = spec.scenario(label.clone(), scenario);
        }
        let protocols = if args.protocols.is_empty() {
            ProtocolKind::REPRESENTATIVES.to_vec()
        } else {
            args.protocols
                .iter()
                .map(|name| {
                    protocol_by_name(name).ok_or_else(|| format!("unknown protocol {name:?}"))
                })
                .collect::<Result<Vec<_>, _>>()?
        };
        Ok(spec.protocols(protocols))
    } else {
        let name = args.name.as_deref().unwrap_or("quick");
        let mut spec = campaign_by_name(name, args.full)
            .ok_or_else(|| format!("unknown campaign {name:?}\n\n{}", usage()))?;
        if let Some(seeds) = args.seeds {
            spec = spec.replications(seeds);
        }
        Ok(spec)
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) if message == HELP_SENTINEL => {
            print!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if args.list {
        print!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let spec = match build_spec(&args) {
        Ok(spec) => spec,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let mut runner = Runner::new().with_progress(!args.quiet);
    if let Some(workers) = args.workers {
        runner = runner.with_workers(workers);
    }
    let results = runner.run(&spec);

    let rendered = match args.format {
        Format::Table => render_table(&results),
        Format::Csv => render_csv(&results),
        Format::Jsonl => render_jsonl(&results),
    };
    match &args.out {
        None => print!("{rendered}"),
        Some(path) => {
            if let Err(error) = std::fs::write(path, &rendered) {
                eprintln!("cannot write {path:?}: {error}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "[vanet-campaign] wrote {} cells to {path}",
                results.cells.len()
            );
        }
    }
    ExitCode::SUCCESS
}
