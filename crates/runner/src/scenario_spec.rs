//! Textual scenario specifiers (`highway-40`, `urban-25`, `sparse`, …).
//!
//! Shared by the `vanet-campaign` CLI and the catalog so campaigns can be
//! parameterised from the command line without a configuration file. Parsing
//! returns a [`ScenarioParseError`] naming the field that was wrong, which
//! the CLI prints verbatim; [`parse_opt`] is the legacy `Option` shim.

use vanet_core::{FaultPlan, Scenario, TrafficRegime};
use vanet_sim::SimDuration;

/// A failed scenario-specifier parse: which specifier, and which part of it
/// was wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioParseError {
    /// The specifier that failed to parse.
    pub spec: String,
    /// What was wrong, naming the offending field or option.
    pub message: String,
}

impl std::fmt::Display for ScenarioParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bad scenario specifier {:?}: {}",
            self.spec, self.message
        )
    }
}

impl std::error::Error for ScenarioParseError {}

fn error(spec: &str, message: impl Into<String>) -> ScenarioParseError {
    ScenarioParseError {
        spec: spec.to_owned(),
        message: message.into(),
    }
}

fn count(spec: &str, family: &str, raw: &str) -> Result<usize, ScenarioParseError> {
    raw.parse().map_err(|_| {
        error(
            spec,
            format!("{family} vehicle count {raw:?} is not a positive integer"),
        )
    })
}

/// Parses one fault-injection option (`fault=...`) into `plan`.
///
/// Grammar (segments separated by `:`; a window is `<start>..<end>` in
/// simulated seconds, either bound may carry a trailing `s`, an omitted end
/// — `10..` — means "until the end of the run", and an omitted window means
/// the whole run):
///
/// * `node:<id>:<window>` or `node:<window>` (node 0) — vehicle outage;
/// * `rsu:<id>` or `rsu:<id>:<window>` — road-side-unit outage;
/// * `jam:<region>:<loss>` or `jam:<region>:<loss>:<window>` — regional
///   channel jamming with the given extra loss probability;
/// * `burst:<loss>` or `burst:<loss>:<window>` — scenario-wide burst loss;
/// * `panic:<t>s` — deterministic poison (the run panics at `t`), for
///   exercising the campaign quarantine path.
fn parse_fault(spec: &str, value: &str, plan: FaultPlan) -> Result<FaultPlan, ScenarioParseError> {
    let seconds = |raw: &str, field: &str| -> Result<f64, ScenarioParseError> {
        let trimmed = raw.strip_suffix('s').unwrap_or(raw);
        trimmed.parse::<f64>().map_err(|_| {
            error(
                spec,
                format!("fault {field} {raw:?} is not a number of seconds"),
            )
        })
    };
    let window = |raw: &str| -> Result<(f64, f64), ScenarioParseError> {
        let (a, b) = raw.split_once("..").ok_or_else(|| {
            error(
                spec,
                format!("fault window {raw:?} must look like <start>..<end>s"),
            )
        })?;
        let start = seconds(a, "window start")?;
        let end = if b.is_empty() {
            f64::INFINITY
        } else {
            seconds(b, "window end")?
        };
        Ok((start, end))
    };
    let index = |raw: &str, field: &str| -> Result<u32, ScenarioParseError> {
        raw.parse().map_err(|_| {
            error(
                spec,
                format!("fault {field} {raw:?} is not a non-negative integer"),
            )
        })
    };
    let loss = |raw: &str| -> Result<f64, ScenarioParseError> {
        raw.parse().map_err(|_| {
            error(
                spec,
                format!("fault loss {raw:?} is not a probability in 0..=1"),
            )
        })
    };
    let whole_run = (0.0, f64::INFINITY);
    let segments: Vec<&str> = value.split(':').collect();
    Ok(match segments.as_slice() {
        ["node", w] if w.contains("..") => {
            let (start, end) = window(w)?;
            plan.node_outage(0, start, end)
        }
        ["node", id] => plan.node_outage(index(id, "node id")?, whole_run.0, whole_run.1),
        ["node", id, w] => {
            let (start, end) = window(w)?;
            plan.node_outage(index(id, "node id")?, start, end)
        }
        ["rsu", id] => plan.rsu_outage(index(id, "rsu id")?, whole_run.0, whole_run.1),
        ["rsu", id, w] => {
            let (start, end) = window(w)?;
            plan.rsu_outage(index(id, "rsu id")?, start, end)
        }
        ["jam", region, l] => plan.jam(
            index(region, "jam region")?,
            loss(l)?,
            whole_run.0,
            whole_run.1,
        ),
        ["jam", region, l, w] => {
            let (start, end) = window(w)?;
            plan.jam(index(region, "jam region")?, loss(l)?, start, end)
        }
        ["burst", l] => plan.burst_loss(loss(l)?, whole_run.0, whole_run.1),
        ["burst", l, w] => {
            let (start, end) = window(w)?;
            plan.burst_loss(loss(l)?, start, end)
        }
        ["panic", t] => plan.poison(seconds(t, "panic time")?),
        _ => {
            return Err(error(
                spec,
                format!(
                    "unknown fault {value:?} (expected node:[<id>:]<window>, rsu:<id>[:<window>], \
                     jam:<region>:<loss>[:<window>], burst:<loss>[:<window>] or panic:<t>s)"
                ),
            ))
        }
    })
}

/// Parses one scenario specifier:
///
/// * `highway-<N>` — an N-vehicle highway;
/// * `urban-<N>` — an N-vehicle Manhattan grid;
/// * `megacity-<N>` — the density-preserving stress/bench grid (the city
///   grows with the fleet; `megacity-100000` is the fleet-capacity workload);
/// * `disrupted-<N>` — the sparse partition-and-outage highway where
///   connected-path routing fails and store-carry-forward delivers;
/// * `sparse` / `normal` / `congested` — a Table-I highway traffic regime;
/// * an optional `:rsus=<K>` suffix adds K road-side units, e.g.
///   `sparse:rsus=4`; `flows=<N>` and `seed=<N>` work the same way;
/// * `buffer=<slots>`, `ttl=<seconds>` and `copies=<L>` set the DTN
///   store-carry-forward knobs (bundle-buffer capacity, bundle lifetime and
///   the Spray-and-Wait ticket budget); they only affect protocols 18–21;
/// * `fault=<fault>` schedules a deterministic disruption (repeatable), e.g.
///   `fault=node:10..20s`, `fault=rsu:1`, `fault=jam:5:0.9:10..30s`,
///   `fault=burst:0.5:2..4s`, `fault=panic:1s` — see [`parse_fault`] for the
///   grammar; the assembled [`FaultPlan`] is validated as a whole, rejecting
///   inverted/empty windows and overlapping windows for one target.
///
/// # Errors
///
/// Returns a [`ScenarioParseError`] naming the bad field: the scenario
/// family, the vehicle count, or the offending option key/value.
pub fn parse(spec: &str) -> Result<Scenario, ScenarioParseError> {
    let (base, options) = match spec.split_once(':') {
        Some((b, o)) => (b, Some(o)),
        None => (spec, None),
    };
    let mut scenario = if let Some(raw) = base.strip_prefix("highway-") {
        Scenario::highway(count(spec, "highway", raw)?)
    } else if let Some(raw) = base.strip_prefix("urban-") {
        Scenario::urban(count(spec, "urban", raw)?)
    } else if let Some(raw) = base.strip_prefix("megacity-") {
        Scenario::megacity(count(spec, "megacity", raw)?)
    } else if let Some(raw) = base.strip_prefix("disrupted-") {
        Scenario::disrupted_highway(count(spec, "disrupted", raw)?)
    } else {
        let regime = match base {
            "sparse" => TrafficRegime::Sparse,
            "normal" => TrafficRegime::Normal,
            "congested" => TrafficRegime::Congested,
            other => {
                return Err(error(
                    spec,
                    format!(
                        "unknown scenario family {other:?} (expected highway-<N>, urban-<N>, \
                         megacity-<N>, disrupted-<N>, sparse, normal or congested)"
                    ),
                ))
            }
        };
        Scenario::highway_regime(regime)
    };
    let mut faults = FaultPlan::new();
    if let Some(options) = options {
        for option in options.split(',') {
            let Some((key, value)) = option.split_once('=') else {
                return Err(error(
                    spec,
                    format!("option {option:?} is missing its '=<value>'"),
                ));
            };
            let integer = |field: &str| -> Result<u64, ScenarioParseError> {
                value.parse().map_err(|_| {
                    error(
                        spec,
                        format!("option {field} has non-integer value {value:?}"),
                    )
                })
            };
            match key {
                "rsus" => scenario = scenario.with_rsus(integer("rsus")? as usize),
                "flows" => scenario = scenario.with_flows(integer("flows")? as usize),
                "seed" => scenario = scenario.with_seed(integer("seed")?),
                "buffer" => scenario = scenario.with_dtn_buffer(integer("buffer")? as usize),
                "ttl" => {
                    let raw = value.strip_suffix('s').unwrap_or(value);
                    let secs: f64 = raw.parse().map_err(|_| {
                        error(spec, format!("option ttl has non-numeric value {value:?}"))
                    })?;
                    if !secs.is_finite() || secs <= 0.0 {
                        return Err(error(
                            spec,
                            format!(
                                "option ttl must be a positive number of seconds, got {value:?}"
                            ),
                        ));
                    }
                    scenario = scenario.with_dtn_ttl(SimDuration::from_secs(secs));
                }
                "copies" => scenario = scenario.with_dtn_copies(integer("copies")? as u32),
                "fault" => faults = parse_fault(spec, value, faults)?,
                other => {
                    return Err(error(
                        spec,
                        format!(
                            "unknown option {other:?} (expected rsus, flows, seed, buffer, ttl, \
                             copies or fault)"
                        ),
                    ))
                }
            }
        }
    }
    if !faults.is_empty() {
        faults
            .validate()
            .map_err(|fault_error| error(spec, format!("invalid fault plan: {fault_error}")))?;
        scenario = scenario.with_faults(faults);
    }
    Ok(scenario)
}

/// The legacy `Option` shim over [`parse`], for callers that only care
/// whether the specifier is valid.
#[must_use]
pub fn parse_opt(spec: &str) -> Option<Scenario> {
    parse(spec).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_scenario_families() {
        assert_eq!(parse("highway-40").unwrap().vehicle_count(), 40);
        assert_eq!(parse("urban-25").unwrap().vehicle_count(), 25);
        assert_eq!(parse("megacity-50").unwrap().vehicle_count(), 50);
        assert_eq!(parse("megacity-50").unwrap().name, "megacity-50");
        assert!(parse("sparse").unwrap().name.contains("sparse"));
        assert!(parse("congested").is_ok());
    }

    #[test]
    fn parses_option_suffixes() {
        let s = parse("sparse:rsus=4,flows=5,seed=9").unwrap();
        assert_eq!(s.rsu_count, 4);
        assert_eq!(s.flows, 5);
        assert_eq!(s.seed, 9);
    }

    #[test]
    fn parses_the_disrupted_family_and_dtn_knobs() {
        let s = parse("disrupted-16").unwrap();
        assert_eq!(s.vehicle_count(), 16);
        assert!(s.name.contains("disrupted"));
        assert!(!s.faults.is_empty(), "disrupted highway schedules outages");

        let s = parse("highway-20:buffer=64,ttl=45s,copies=4").unwrap();
        assert_eq!(s.dtn.buffer_capacity, 64);
        assert_eq!(s.dtn.bundle_ttl, SimDuration::from_secs(45.0));
        assert_eq!(s.dtn.copies, 4);
        // The bare-number ttl spelling works too.
        assert_eq!(
            parse("highway-20:ttl=45").unwrap().dtn.bundle_ttl,
            SimDuration::from_secs(45.0)
        );

        let err = parse("highway-20:ttl=soon").unwrap_err();
        assert!(err.message.contains("ttl"), "{err}");
        let err = parse("highway-20:ttl=-3").unwrap_err();
        assert!(err.message.contains("positive"), "{err}");
        let err = parse("highway-20:buffer=lots").unwrap_err();
        assert!(err.message.contains("buffer"), "{err}");
    }

    #[test]
    fn errors_name_the_bad_field() {
        let err = parse("highway-").unwrap_err();
        assert!(err.message.contains("highway vehicle count"), "{err}");
        let err = parse("moon-base").unwrap_err();
        assert!(err.message.contains("unknown scenario family"), "{err}");
        assert!(err.message.contains("moon-base"), "{err}");
        let err = parse("sparse:warp=9").unwrap_err();
        assert!(err.message.contains("unknown option \"warp\""), "{err}");
        let err = parse("sparse:rsus=many").unwrap_err();
        assert!(err.message.contains("rsus"), "{err}");
        assert!(err.message.contains("many"), "{err}");
        let err = parse("sparse:rsus").unwrap_err();
        assert!(err.message.contains("missing its '=<value>'"), "{err}");
        // Display includes the full specifier for CLI output.
        assert!(err.to_string().contains("sparse:rsus"), "{err}");
    }

    #[test]
    fn parses_fault_options() {
        use vanet_core::FaultKind;
        let s = parse("highway-20:fault=node:10..20s").unwrap();
        assert_eq!(s.faults.faults.len(), 1);
        assert_eq!(s.faults.faults[0].kind, FaultKind::NodeOutage { node: 0 });
        assert_eq!(s.faults.faults[0].start_s, 10.0);
        assert_eq!(s.faults.faults[0].end_s, 20.0);

        let s = parse("highway-20:fault=node:3:5s..,fault=rsu:1,fault=jam:5:0.9:10..30s").unwrap();
        assert_eq!(s.faults.faults.len(), 3);
        assert_eq!(s.faults.faults[0].kind, FaultKind::NodeOutage { node: 3 });
        assert_eq!(s.faults.faults[0].start_s, 5.0);
        assert!(s.faults.faults[0].end_s.is_infinite());
        assert_eq!(s.faults.faults[1].kind, FaultKind::RsuOutage { rsu: 1 });
        assert!(s.faults.faults[1].end_s.is_infinite());
        assert_eq!(
            s.faults.faults[2].kind,
            FaultKind::Jam {
                region: 5,
                loss: 0.9
            }
        );

        let s = parse("sparse:fault=burst:0.5:2..4s,seed=7").unwrap();
        assert_eq!(s.seed, 7);
        assert_eq!(s.faults.faults[0].kind, FaultKind::BurstLoss { loss: 0.5 });

        let s = parse("highway-8:fault=panic:1s").unwrap();
        assert_eq!(s.faults.faults[0].kind, FaultKind::Poison);
        assert_eq!(s.faults.faults[0].start_s, 1.0);
    }

    #[test]
    fn fault_errors_name_the_bad_field() {
        let err = parse("highway-20:fault=warp:1..2s").unwrap_err();
        assert!(err.message.contains("unknown fault"), "{err}");
        let err = parse("highway-20:fault=node:3:banana..2s").unwrap_err();
        assert!(err.message.contains("not a number of seconds"), "{err}");
        let err = parse("highway-20:fault=node:3:10s").unwrap_err();
        assert!(err.message.contains("<start>..<end>s"), "{err}");
        let err = parse("highway-20:fault=jam:x:0.5").unwrap_err();
        assert!(err.message.contains("jam region"), "{err}");
        // Inverted and overlapping windows are rejected by whole-plan
        // validation with the precise message from FaultPlan::validate.
        let err = parse("highway-20:fault=node:3:20..10s").unwrap_err();
        assert!(err.message.contains("invalid fault plan"), "{err}");
        let err = parse("highway-20:fault=node:3:5..15s,fault=node:3:10..20s").unwrap_err();
        assert!(err.message.contains("overlap"), "{err}");
        assert!(err.message.contains("invalid fault plan"), "{err}");
        let err = parse("highway-20:fault=burst:1.5").unwrap_err();
        assert!(err.message.contains("invalid fault plan"), "{err}");
    }

    #[test]
    fn option_shim_mirrors_the_result() {
        assert!(parse_opt("highway-40").is_some());
        assert!(parse_opt("highway-").is_none());
        assert!(parse_opt("moon-base").is_none());
        assert!(parse_opt("sparse:warp=9").is_none());
    }
}
