//! Textual scenario specifiers (`highway-40`, `urban-25`, `sparse`, …).
//!
//! Shared by the `vanet-campaign` CLI and the catalog so campaigns can be
//! parameterised from the command line without a configuration file.

use vanet_core::{Scenario, TrafficRegime};

/// Parses one scenario specifier:
///
/// * `highway-<N>` — an N-vehicle highway;
/// * `urban-<N>` — an N-vehicle Manhattan grid;
/// * `megacity-<N>` — the density-preserving stress/bench grid (the city
///   grows with the fleet; `megacity-100000` is the fleet-capacity workload);
/// * `sparse` / `normal` / `congested` — a Table-I highway traffic regime;
/// * an optional `:rsus=<K>` suffix adds K road-side units, e.g.
///   `sparse:rsus=4`.
#[must_use]
pub fn parse(spec: &str) -> Option<Scenario> {
    let (base, options) = match spec.split_once(':') {
        Some((b, o)) => (b, Some(o)),
        None => (spec, None),
    };
    let mut scenario = if let Some(count) = base.strip_prefix("highway-") {
        Scenario::highway(count.parse().ok()?)
    } else if let Some(count) = base.strip_prefix("urban-") {
        Scenario::urban(count.parse().ok()?)
    } else if let Some(count) = base.strip_prefix("megacity-") {
        Scenario::megacity(count.parse().ok()?)
    } else {
        let regime = match base {
            "sparse" => TrafficRegime::Sparse,
            "normal" => TrafficRegime::Normal,
            "congested" => TrafficRegime::Congested,
            _ => return None,
        };
        Scenario::highway_regime(regime)
    };
    if let Some(options) = options {
        for option in options.split(',') {
            let (key, value) = option.split_once('=')?;
            match key {
                "rsus" => scenario = scenario.with_rsus(value.parse().ok()?),
                "flows" => scenario = scenario.with_flows(value.parse().ok()?),
                "seed" => scenario = scenario.with_seed(value.parse().ok()?),
                _ => return None,
            }
        }
    }
    Some(scenario)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_scenario_families() {
        assert_eq!(parse("highway-40").unwrap().vehicle_count(), 40);
        assert_eq!(parse("urban-25").unwrap().vehicle_count(), 25);
        assert_eq!(parse("megacity-50").unwrap().vehicle_count(), 50);
        assert_eq!(parse("megacity-50").unwrap().name, "megacity-50");
        assert!(parse("sparse").unwrap().name.contains("sparse"));
        assert!(parse("congested").is_some());
    }

    #[test]
    fn parses_option_suffixes() {
        let s = parse("sparse:rsus=4,flows=5,seed=9").unwrap();
        assert_eq!(s.rsu_count, 4);
        assert_eq!(s.flows, 5);
        assert_eq!(s.seed, 9);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("highway-").is_none());
        assert!(parse("moon-base").is_none());
        assert!(parse("sparse:warp=9").is_none());
    }
}
