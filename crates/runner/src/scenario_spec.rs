//! Textual scenario specifiers (`highway-40`, `urban-25`, `sparse`, …).
//!
//! Shared by the `vanet-campaign` CLI and the catalog so campaigns can be
//! parameterised from the command line without a configuration file. Parsing
//! returns a [`ScenarioParseError`] naming the field that was wrong, which
//! the CLI prints verbatim; [`parse_opt`] is the legacy `Option` shim.

use vanet_core::{Scenario, TrafficRegime};

/// A failed scenario-specifier parse: which specifier, and which part of it
/// was wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioParseError {
    /// The specifier that failed to parse.
    pub spec: String,
    /// What was wrong, naming the offending field or option.
    pub message: String,
}

impl std::fmt::Display for ScenarioParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bad scenario specifier {:?}: {}",
            self.spec, self.message
        )
    }
}

impl std::error::Error for ScenarioParseError {}

fn error(spec: &str, message: impl Into<String>) -> ScenarioParseError {
    ScenarioParseError {
        spec: spec.to_owned(),
        message: message.into(),
    }
}

fn count(spec: &str, family: &str, raw: &str) -> Result<usize, ScenarioParseError> {
    raw.parse().map_err(|_| {
        error(
            spec,
            format!("{family} vehicle count {raw:?} is not a positive integer"),
        )
    })
}

/// Parses one scenario specifier:
///
/// * `highway-<N>` — an N-vehicle highway;
/// * `urban-<N>` — an N-vehicle Manhattan grid;
/// * `megacity-<N>` — the density-preserving stress/bench grid (the city
///   grows with the fleet; `megacity-100000` is the fleet-capacity workload);
/// * `sparse` / `normal` / `congested` — a Table-I highway traffic regime;
/// * an optional `:rsus=<K>` suffix adds K road-side units, e.g.
///   `sparse:rsus=4`; `flows=<N>` and `seed=<N>` work the same way.
///
/// # Errors
///
/// Returns a [`ScenarioParseError`] naming the bad field: the scenario
/// family, the vehicle count, or the offending option key/value.
pub fn parse(spec: &str) -> Result<Scenario, ScenarioParseError> {
    let (base, options) = match spec.split_once(':') {
        Some((b, o)) => (b, Some(o)),
        None => (spec, None),
    };
    let mut scenario = if let Some(raw) = base.strip_prefix("highway-") {
        Scenario::highway(count(spec, "highway", raw)?)
    } else if let Some(raw) = base.strip_prefix("urban-") {
        Scenario::urban(count(spec, "urban", raw)?)
    } else if let Some(raw) = base.strip_prefix("megacity-") {
        Scenario::megacity(count(spec, "megacity", raw)?)
    } else {
        let regime = match base {
            "sparse" => TrafficRegime::Sparse,
            "normal" => TrafficRegime::Normal,
            "congested" => TrafficRegime::Congested,
            other => {
                return Err(error(
                    spec,
                    format!(
                        "unknown scenario family {other:?} (expected highway-<N>, urban-<N>, \
                         megacity-<N>, sparse, normal or congested)"
                    ),
                ))
            }
        };
        Scenario::highway_regime(regime)
    };
    if let Some(options) = options {
        for option in options.split(',') {
            let Some((key, value)) = option.split_once('=') else {
                return Err(error(
                    spec,
                    format!("option {option:?} is missing its '=<value>'"),
                ));
            };
            let integer = |field: &str| -> Result<u64, ScenarioParseError> {
                value.parse().map_err(|_| {
                    error(
                        spec,
                        format!("option {field} has non-integer value {value:?}"),
                    )
                })
            };
            match key {
                "rsus" => scenario = scenario.with_rsus(integer("rsus")? as usize),
                "flows" => scenario = scenario.with_flows(integer("flows")? as usize),
                "seed" => scenario = scenario.with_seed(integer("seed")?),
                other => {
                    return Err(error(
                        spec,
                        format!("unknown option {other:?} (expected rsus, flows or seed)"),
                    ))
                }
            }
        }
    }
    Ok(scenario)
}

/// The legacy `Option` shim over [`parse`], for callers that only care
/// whether the specifier is valid.
#[must_use]
pub fn parse_opt(spec: &str) -> Option<Scenario> {
    parse(spec).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_scenario_families() {
        assert_eq!(parse("highway-40").unwrap().vehicle_count(), 40);
        assert_eq!(parse("urban-25").unwrap().vehicle_count(), 25);
        assert_eq!(parse("megacity-50").unwrap().vehicle_count(), 50);
        assert_eq!(parse("megacity-50").unwrap().name, "megacity-50");
        assert!(parse("sparse").unwrap().name.contains("sparse"));
        assert!(parse("congested").is_ok());
    }

    #[test]
    fn parses_option_suffixes() {
        let s = parse("sparse:rsus=4,flows=5,seed=9").unwrap();
        assert_eq!(s.rsu_count, 4);
        assert_eq!(s.flows, 5);
        assert_eq!(s.seed, 9);
    }

    #[test]
    fn errors_name_the_bad_field() {
        let err = parse("highway-").unwrap_err();
        assert!(err.message.contains("highway vehicle count"), "{err}");
        let err = parse("moon-base").unwrap_err();
        assert!(err.message.contains("unknown scenario family"), "{err}");
        assert!(err.message.contains("moon-base"), "{err}");
        let err = parse("sparse:warp=9").unwrap_err();
        assert!(err.message.contains("unknown option \"warp\""), "{err}");
        let err = parse("sparse:rsus=many").unwrap_err();
        assert!(err.message.contains("rsus"), "{err}");
        assert!(err.message.contains("many"), "{err}");
        let err = parse("sparse:rsus").unwrap_err();
        assert!(err.message.contains("missing its '=<value>'"), "{err}");
        // Display includes the full specifier for CLI output.
        assert!(err.to_string().contains("sparse:rsus"), "{err}");
    }

    #[test]
    fn option_shim_mirrors_the_result() {
        assert!(parse_opt("highway-40").is_some());
        assert!(parse_opt("highway-").is_none());
        assert!(parse_opt("moon-base").is_none());
        assert!(parse_opt("sparse:warp=9").is_none());
    }
}
