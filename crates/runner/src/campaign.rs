//! Legacy campaign specification: the (scenario grid × protocols × seeds)
//! cube, superseded by [`CampaignPlan`].
//!
//! A [`CampaignSpec`] names a set of labelled scenarios, a set of protocols
//! and a replication count, and expands into a flat list of independent
//! [`Job`]s. Each job's seed is fixed at expansion time
//! (`scenario.seed + replicate`, the same convention as
//! `vanet_core::run_averaged`), which is what makes parallel execution
//! trivially deterministic: a job's result depends only on the job, never on
//! which worker runs it or when.
//!
//! **Deprecated in favour of [`CampaignPlan`]**: a spec can only apply every
//! protocol to every scenario uniformly with a fixed replication count. It is
//! kept as a convenience wrapper for exactly that shape — the engine converts
//! it via [`CampaignSpec::to_plan`] (which preserves cell numbering, seeding
//! and therefore byte-identical results) and all new capabilities (per-cell
//! protocol bindings, adaptive replication, journals) exist only on the plan
//! side.

use vanet_core::{CampaignPlan, ProtocolKind, Scenario};

/// A declarative description of one uniform cross-product campaign.
/// Superseded by [`CampaignPlan`]; see the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (used in exports and progress output).
    pub name: String,
    /// Labelled scenarios (the rows of the evaluation matrix).
    pub scenarios: Vec<(String, Scenario)>,
    /// Protocols to evaluate on every scenario.
    pub protocols: Vec<ProtocolKind>,
    /// Seed replications per (scenario, protocol) cell.
    pub replications: usize,
}

/// One independent unit of work: a single simulation run.
#[derive(Debug, Clone)]
pub struct Job {
    /// Index of the (scenario × protocol) cell this job belongs to.
    pub cell: usize,
    /// Replication index within the cell (0-based).
    pub replicate: usize,
    /// The fully seeded scenario to run.
    pub scenario: Scenario,
    /// The protocol to run it with.
    pub protocol: ProtocolKind,
}

impl CampaignSpec {
    /// Creates an empty campaign with 1 replication.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        CampaignSpec {
            name: name.into(),
            scenarios: Vec::new(),
            protocols: Vec::new(),
            replications: 1,
        }
    }

    /// Adds a labelled scenario.
    #[must_use]
    pub fn scenario(mut self, label: impl Into<String>, scenario: Scenario) -> Self {
        self.scenarios.push((label.into(), scenario));
        self
    }

    /// Sets the protocol list.
    #[must_use]
    pub fn protocols(mut self, protocols: impl IntoIterator<Item = ProtocolKind>) -> Self {
        self.protocols = protocols.into_iter().collect();
        self
    }

    /// Sets the replication count (clamped to at least 1).
    #[must_use]
    pub fn replications(mut self, replications: usize) -> Self {
        self.replications = replications.max(1);
        self
    }

    /// Number of (scenario × protocol) cells.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.scenarios.len() * self.protocols.len()
    }

    /// Number of individual simulation jobs.
    #[must_use]
    pub fn job_count(&self) -> usize {
        self.cell_count() * self.replications.max(1)
    }

    /// The label, scenario and protocol of cell `index` (cells are
    /// scenario-major); the single place the cell numbering is decoded.
    #[must_use]
    pub fn cell(&self, index: usize) -> (&str, &Scenario, ProtocolKind) {
        let per_scenario = self.protocols.len();
        let (label, scenario) = &self.scenarios[index / per_scenario];
        (label, scenario, self.protocols[index % per_scenario])
    }

    /// Converts the spec to the equivalent [`CampaignPlan`]: one `Fixed`
    /// cell per (scenario, protocol) pair in the same scenario-major order,
    /// so plan execution reproduces spec execution byte-identically.
    #[must_use]
    pub fn to_plan(&self) -> CampaignPlan {
        CampaignPlan::cross_product(
            self.name.clone(),
            &self.scenarios,
            &self.protocols,
            self.replications.max(1),
        )
    }

    /// Expands the campaign into its flat, cell-major job list.
    #[must_use]
    pub fn jobs(&self) -> Vec<Job> {
        let replications = self.replications.max(1);
        let mut jobs = Vec::with_capacity(self.job_count());
        let mut cell = 0;
        for (_, scenario) in &self.scenarios {
            for &protocol in &self.protocols {
                for replicate in 0..replications {
                    jobs.push(Job {
                        cell,
                        replicate,
                        scenario: scenario.clone().with_seed(scenario.seed + replicate as u64),
                        protocol,
                    });
                }
                cell += 1;
            }
        }
        jobs
    }
}

/// Parses a protocol by its display name (e.g. `"AODV"`, `"Greedy"`) or its
/// enum-ish identifier (case-insensitive).
#[must_use]
pub fn protocol_by_name(name: &str) -> Option<ProtocolKind> {
    ProtocolKind::ALL.into_iter().find(|p| {
        p.name().eq_ignore_ascii_case(name) || format!("{p:?}").eq_ignore_ascii_case(name)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vanet_sim::SimDuration;

    fn spec() -> CampaignSpec {
        CampaignSpec::new("test")
            .scenario("a", Scenario::highway(10).with_seed(100))
            .scenario("b", Scenario::urban(10).with_seed(200))
            .protocols([ProtocolKind::Aodv, ProtocolKind::Greedy])
            .replications(3)
    }

    #[test]
    fn job_expansion_is_cell_major_and_seeded() {
        let spec = spec();
        assert_eq!(spec.cell_count(), 4);
        assert_eq!(spec.job_count(), 12);
        let jobs = spec.jobs();
        assert_eq!(jobs.len(), 12);
        // First cell: scenario "a" with AODV, seeds 100..103.
        for (r, job) in jobs[..3].iter().enumerate() {
            assert_eq!(job.cell, 0);
            assert_eq!(job.replicate, r);
            assert_eq!(job.scenario.seed, 100 + r as u64);
            assert_eq!(job.protocol, ProtocolKind::Aodv);
        }
        // Cells are numbered scenario-major.
        assert_eq!(jobs[3].cell, 1);
        assert_eq!(jobs[3].protocol, ProtocolKind::Greedy);
        assert_eq!(jobs[6].cell, 2);
        assert_eq!(jobs[6].scenario.seed, 200);
        let (label, scenario, protocol) = spec.cell(2);
        assert_eq!(
            (label, scenario.seed, protocol),
            ("b", 200, ProtocolKind::Aodv)
        );
    }

    #[test]
    fn replications_clamp_to_one() {
        let spec = CampaignSpec::new("x")
            .scenario(
                "a",
                Scenario::highway(4).with_duration(SimDuration::from_secs(1.0)),
            )
            .protocols([ProtocolKind::Flooding])
            .replications(0);
        assert_eq!(spec.job_count(), 1);
        assert_eq!(spec.jobs().len(), 1);
    }

    #[test]
    fn protocol_names_round_trip() {
        // Exhaustive: every catalogued kind must round-trip through both its
        // display name and its enum identifier, case-insensitively — a new
        // protocol that forgets a name mapping fails here.
        for kind in ProtocolKind::ALL {
            assert_eq!(protocol_by_name(kind.name()), Some(kind), "{kind:?}");
            assert_eq!(
                protocol_by_name(&kind.name().to_lowercase()),
                Some(kind),
                "{kind:?} (lowercase display name)"
            );
            let identifier = format!("{kind:?}");
            assert_eq!(
                protocol_by_name(&identifier),
                Some(kind),
                "{kind:?} (enum identifier)"
            );
        }
        assert_eq!(protocol_by_name("aodv"), Some(ProtocolKind::Aodv));
        assert_eq!(protocol_by_name("YanTbpss"), Some(ProtocolKind::YanTbpss));
        assert_eq!(protocol_by_name("nope"), None);
    }

    #[test]
    fn spec_converts_to_equivalent_plan() {
        let spec = spec();
        let plan = spec.to_plan();
        assert_eq!(plan.name, spec.name);
        assert_eq!(plan.cells.len(), spec.cell_count());
        assert_eq!(plan.initial_job_count(), spec.job_count());
        // Same cell numbering, labels, protocols and job seeding.
        let plan_jobs = plan.initial_jobs();
        for (job, plan_job) in spec.jobs().iter().zip(&plan_jobs) {
            assert_eq!(job.cell, plan_job.cell);
            assert_eq!(job.replicate, plan_job.replicate);
            assert_eq!(job.scenario, plan_job.scenario);
            assert_eq!(job.protocol, plan_job.protocol);
        }
    }
}
