//! Statistical summaries of replicated simulation runs.
//!
//! The old `average_reports` reduction collapsed a set of per-seed
//! [`Report`]s to a bare mean, throwing away every notion of spread. A
//! [`Summary`] instead carries, for every metric, the sample mean, sample
//! standard deviation, minimum, maximum and the half-width of the 95%
//! confidence interval of the mean (Student's t for small replication
//! counts), which is what the paper-style evaluation tables actually need.

use vanet_core::Report;

/// Five-number statistical summary of one metric over the replications.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SummaryStat {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for a single sample).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Half-width of the 95% confidence interval of the mean
    /// (`t · s / √n`; 0 for a single sample).
    pub ci95: f64,
}

/// Two-sided 95% Student's t critical values for 1..=30 degrees of freedom;
/// beyond that the normal approximation (1.96) is used.
const T95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// The t critical value for a 95% two-sided interval with `df` degrees of
/// freedom.
#[must_use]
pub fn t_critical_95(df: usize) -> f64 {
    if df == 0 {
        f64::INFINITY
    } else if df <= T95.len() {
        T95[df - 1]
    } else {
        1.96
    }
}

impl SummaryStat {
    /// Computes the summary of a non-empty sample. Returns `None` when
    /// `values` is empty.
    #[must_use]
    pub fn from_values(values: &[f64]) -> Option<SummaryStat> {
        let first = *values.first()?;
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let (mut min, mut max) = (first, first);
        let mut ss = 0.0;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            let d = v - mean;
            ss += d * d;
        }
        let std_dev = if values.len() < 2 {
            0.0
        } else {
            (ss / (n - 1.0)).sqrt()
        };
        let ci95 = if values.len() < 2 {
            0.0
        } else {
            t_critical_95(values.len() - 1) * std_dev / n.sqrt()
        };
        Some(SummaryStat {
            mean,
            std_dev,
            min,
            max,
            ci95,
        })
    }

    /// Renders the stat as `mean ± ci95`.
    #[must_use]
    pub fn pm(&self) -> String {
        format!("{:.3} ±{:.3}", self.mean, self.ci95)
    }
}

/// Names of the metrics a [`Summary`] carries, in export order.
pub const METRIC_NAMES: [&str; 21] = [
    "data_sent",
    "data_delivered",
    "duplicate_deliveries",
    "delivery_ratio",
    "avg_delay_s",
    "max_delay_s",
    "avg_hops",
    "control_packets",
    "control_bytes",
    "data_transmissions",
    "control_per_delivered",
    "transmissions_per_delivered",
    "route_errors",
    "drops",
    "avg_neighbors",
    "bundles_stored",
    "bundles_forwarded",
    "bundles_expired",
    "bundles_evicted",
    "custody_transfers",
    "buffer_peak",
];

/// Per-metric statistical summary of one experiment cell's replications.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Summary {
    /// Number of replications summarised.
    pub replications: usize,
    /// Data packets originated.
    pub data_sent: SummaryStat,
    /// Unique data packets delivered.
    pub data_delivered: SummaryStat,
    /// Duplicate deliveries.
    pub duplicate_deliveries: SummaryStat,
    /// Packet delivery ratio.
    pub delivery_ratio: SummaryStat,
    /// Mean end-to-end delay, seconds.
    pub avg_delay_s: SummaryStat,
    /// Maximum end-to-end delay, seconds.
    pub max_delay_s: SummaryStat,
    /// Mean hop count of delivered packets.
    pub avg_hops: SummaryStat,
    /// Control packets transmitted.
    pub control_packets: SummaryStat,
    /// Control bytes transmitted.
    pub control_bytes: SummaryStat,
    /// Data-packet transmissions (every hop).
    pub data_transmissions: SummaryStat,
    /// Control packets per delivered data packet.
    pub control_per_delivered: SummaryStat,
    /// Total transmissions per delivered data packet.
    pub transmissions_per_delivered: SummaryStat,
    /// Route-error packets.
    pub route_errors: SummaryStat,
    /// Packet drops at the routing layer.
    pub drops: SummaryStat,
    /// Average neighbour count.
    pub avg_neighbors: SummaryStat,
    /// Bundles stored into DTN buffers.
    pub bundles_stored: SummaryStat,
    /// Bundle copies forwarded on neighbour contact.
    pub bundles_forwarded: SummaryStat,
    /// Bundles whose TTL ran out in a buffer.
    pub bundles_expired: SummaryStat,
    /// Bundles evicted under buffer pressure.
    pub bundles_evicted: SummaryStat,
    /// Custody hand-overs.
    pub custody_transfers: SummaryStat,
    /// Peak bundle-buffer occupancy at any node.
    pub buffer_peak: SummaryStat,
}

impl Summary {
    /// Summarises a set of per-seed reports. Returns `None` for an empty set.
    #[must_use]
    pub fn from_reports(reports: &[Report]) -> Option<Summary> {
        if reports.is_empty() {
            return None;
        }
        let stat_u = |f: &dyn Fn(&Report) -> u64| -> SummaryStat {
            let values: Vec<f64> = reports.iter().map(|r| f(r) as f64).collect();
            SummaryStat::from_values(&values).expect("reports is non-empty")
        };
        let stat_f = |f: &dyn Fn(&Report) -> f64| -> SummaryStat {
            let values: Vec<f64> = reports.iter().map(f).collect();
            SummaryStat::from_values(&values).expect("reports is non-empty")
        };
        Some(Summary {
            replications: reports.len(),
            data_sent: stat_u(&|r| r.data_sent),
            data_delivered: stat_u(&|r| r.data_delivered),
            duplicate_deliveries: stat_u(&|r| r.duplicate_deliveries),
            delivery_ratio: stat_f(&|r| r.delivery_ratio),
            avg_delay_s: stat_f(&|r| r.avg_delay_s),
            max_delay_s: stat_f(&|r| r.max_delay_s),
            avg_hops: stat_f(&|r| r.avg_hops),
            control_packets: stat_u(&|r| r.control_packets),
            control_bytes: stat_u(&|r| r.control_bytes),
            data_transmissions: stat_u(&|r| r.data_transmissions),
            control_per_delivered: stat_f(&|r| r.control_per_delivered),
            transmissions_per_delivered: stat_f(&|r| r.transmissions_per_delivered),
            route_errors: stat_u(&|r| r.route_errors),
            drops: stat_u(&|r| r.drops),
            avg_neighbors: stat_f(&|r| r.avg_neighbors),
            bundles_stored: stat_u(&|r| r.bundles_stored),
            bundles_forwarded: stat_u(&|r| r.bundles_forwarded),
            bundles_expired: stat_u(&|r| r.bundles_expired),
            bundles_evicted: stat_u(&|r| r.bundles_evicted),
            custody_transfers: stat_u(&|r| r.custody_transfers),
            buffer_peak: stat_u(&|r| r.buffer_peak),
        })
    }

    /// The metrics in [`METRIC_NAMES`] order.
    #[must_use]
    pub fn metrics(&self) -> [(&'static str, &SummaryStat); 21] {
        [
            ("data_sent", &self.data_sent),
            ("data_delivered", &self.data_delivered),
            ("duplicate_deliveries", &self.duplicate_deliveries),
            ("delivery_ratio", &self.delivery_ratio),
            ("avg_delay_s", &self.avg_delay_s),
            ("max_delay_s", &self.max_delay_s),
            ("avg_hops", &self.avg_hops),
            ("control_packets", &self.control_packets),
            ("control_bytes", &self.control_bytes),
            ("data_transmissions", &self.data_transmissions),
            ("control_per_delivered", &self.control_per_delivered),
            (
                "transmissions_per_delivered",
                &self.transmissions_per_delivered,
            ),
            ("route_errors", &self.route_errors),
            ("drops", &self.drops),
            ("avg_neighbors", &self.avg_neighbors),
            ("bundles_stored", &self.bundles_stored),
            ("bundles_forwarded", &self.bundles_forwarded),
            ("bundles_expired", &self.bundles_expired),
            ("bundles_evicted", &self.bundles_evicted),
            ("custody_transfers", &self.custody_transfers),
            ("buffer_peak", &self.buffer_peak),
        ]
    }

    /// Looks a metric up by its [`METRIC_NAMES`] name.
    #[must_use]
    pub fn metric(&self, name: &str) -> Option<&SummaryStat> {
        self.metrics()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| s)
    }

    /// Mutable lookup, used when reconstructing a summary from an export.
    pub(crate) fn metric_mut(&mut self, name: &str) -> Option<&mut SummaryStat> {
        let stat = match name {
            "data_sent" => &mut self.data_sent,
            "data_delivered" => &mut self.data_delivered,
            "duplicate_deliveries" => &mut self.duplicate_deliveries,
            "delivery_ratio" => &mut self.delivery_ratio,
            "avg_delay_s" => &mut self.avg_delay_s,
            "max_delay_s" => &mut self.max_delay_s,
            "avg_hops" => &mut self.avg_hops,
            "control_packets" => &mut self.control_packets,
            "control_bytes" => &mut self.control_bytes,
            "data_transmissions" => &mut self.data_transmissions,
            "control_per_delivered" => &mut self.control_per_delivered,
            "transmissions_per_delivered" => &mut self.transmissions_per_delivered,
            "route_errors" => &mut self.route_errors,
            "drops" => &mut self.drops,
            "avg_neighbors" => &mut self.avg_neighbors,
            "bundles_stored" => &mut self.bundles_stored,
            "bundles_forwarded" => &mut self.bundles_forwarded,
            "bundles_expired" => &mut self.bundles_expired,
            "bundles_evicted" => &mut self.bundles_evicted,
            "custody_transfers" => &mut self.custody_transfers,
            "buffer_peak" => &mut self.buffer_peak,
            _ => return None,
        };
        Some(stat)
    }

    /// Collapses the summary back to a mean-only [`Report`], matching the
    /// rounding behaviour of `vanet_core::average_reports` so existing
    /// figure generators can keep their return types.
    #[must_use]
    pub fn mean_report(&self, protocol: impl Into<String>, scenario: impl Into<String>) -> Report {
        let round = |s: &SummaryStat| s.mean.round() as u64;
        Report {
            protocol: protocol.into(),
            scenario: scenario.into(),
            data_sent: round(&self.data_sent),
            data_delivered: round(&self.data_delivered),
            duplicate_deliveries: round(&self.duplicate_deliveries),
            delivery_ratio: self.delivery_ratio.mean,
            avg_delay_s: self.avg_delay_s.mean,
            max_delay_s: self.max_delay_s.mean,
            avg_hops: self.avg_hops.mean,
            control_packets: round(&self.control_packets),
            control_bytes: round(&self.control_bytes),
            data_transmissions: round(&self.data_transmissions),
            control_per_delivered: self.control_per_delivered.mean,
            transmissions_per_delivered: self.transmissions_per_delivered.mean,
            route_errors: round(&self.route_errors),
            drops: round(&self.drops),
            avg_neighbors: self.avg_neighbors.mean,
            bundles_stored: round(&self.bundles_stored),
            bundles_forwarded: round(&self.bundles_forwarded),
            bundles_expired: round(&self.bundles_expired),
            bundles_evicted: round(&self.bundles_evicted),
            custody_transfers: round(&self.custody_transfers),
            buffer_peak: round(&self.buffer_peak),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_of_known_sample() {
        let s = SummaryStat::from_values(&[2.0, 4.0, 6.0]).unwrap();
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        // t(df=2) = 4.303, ci = 4.303 * 2 / sqrt(3)
        assert!((s.ci95 - 4.303 * 2.0 / 3f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let s = SummaryStat::from_values(&[5.0]).unwrap();
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn empty_sample_is_none() {
        assert_eq!(SummaryStat::from_values(&[]), None);
        assert_eq!(Summary::from_reports(&[]), None);
    }

    #[test]
    fn t_table_shape() {
        assert!(t_critical_95(1) > t_critical_95(2));
        assert!((t_critical_95(100) - 1.96).abs() < 1e-12);
        assert!(t_critical_95(0).is_infinite());
    }

    #[test]
    fn metric_lookup_covers_all_names() {
        let mut summary = Summary::default();
        // metric() and metric_mut() must both resolve every exported name
        // and address the same field — the export parsers write through
        // metric_mut, so a gap here would silently zero a parsed metric.
        for (i, name) in METRIC_NAMES.iter().enumerate() {
            let marker = 1.0 + i as f64;
            summary
                .metric_mut(name)
                .unwrap_or_else(|| panic!("{name} missing from metric_mut"))
                .mean = marker;
            assert_eq!(
                summary
                    .metric(name)
                    .unwrap_or_else(|| panic!("{name} missing"))
                    .mean,
                marker,
                "metric() and metric_mut() disagree for {name}"
            );
        }
        assert!(summary.metric("nope").is_none());
        assert!(summary.metric_mut("nope").is_none());
    }
}
